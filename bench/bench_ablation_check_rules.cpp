// Ablation bench — check-node rule variants on the fixed-point datapath.
//
// The paper's functional units implement the exact (correction-LUT) rule;
// min-sum variants are the standard cheaper alternatives. This bench
// quantifies the trade at the paper's operating point (6-bit, 30
// iterations, R=1/2): FER and average iterations at a fixed Eb/N0 near
// threshold for exact / min-sum / normalized / offset min-sum.
//
//   ./bench_ablation_check_rules [--ebn0=1.3] [--frames=20] [--rate=1/2]
#include <iostream>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "comm/ber.hpp"
#include "core/decoder.hpp"

using namespace dvbs2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"ebn0", "frames", "rate"});
    const double ebn0 = args.get_double("ebn0", 1.3);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 20));
    const auto rate = bench::parse_rate(args.get("rate", "1/2"));
    bench::banner("CN-rule ablation", "fixed-point 6-bit, 30 iterations, R=" +
                                          code::to_string(rate) + " @ " +
                                          util::TextTable::num(ebn0, 2) + " dB");

    const code::Dvbs2Code c(code::standard_params(rate));
    comm::SimConfig sim;
    sim.limits.max_frames = frames;
    sim.limits.min_frames = frames;
    sim.limits.target_bit_errors = ~0ULL;
    sim.limits.target_frame_errors = ~0ULL;

    util::TextTable t;
    t.set_header({"rule", "FER", "BER", "avg iters", "undetected"});
    double fer_exact = 1.0, fer_minsum = 0.0;
    for (auto rule : {core::CheckRule::Exact, core::CheckRule::MinSum,
                      core::CheckRule::NormalizedMinSum, core::CheckRule::OffsetMinSum}) {
        core::DecoderConfig cfg;
        cfg.rule = rule;
        cfg.max_iterations = 30;
        core::FixedDecoder dec(c, cfg, quant::kQuant6);
        comm::DecodeFn fn = [&](const std::vector<double>& llr) {
            const auto r = dec.decode(llr);
            return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
        };
        const auto pt = comm::simulate_point(c, fn, ebn0, sim);
        if (rule == core::CheckRule::Exact) fer_exact = pt.fer();
        if (rule == core::CheckRule::MinSum) fer_minsum = pt.fer();
        t.add_row({core::to_string(rule), util::TextTable::num(pt.fer(), 2),
                   bench::sci(pt.ber(static_cast<std::uint64_t>(c.k()))),
                   util::TextTable::num(pt.avg_iterations, 1),
                   util::TextTable::num((long long)pt.undetected_frame_errors)});
    }
    t.print(std::cout);
    // Plain min-sum must not beat the exact rule near threshold; the
    // corrected variants should sit between them.
    const bool ok = fer_minsum >= fer_exact - 1e-9;
    std::cout << (ok ? "Ablation PASS: exact rule is at least as good as plain min-sum\n"
                     : "Ablation FAIL\n");
    return ok ? 0 : 1;
}
