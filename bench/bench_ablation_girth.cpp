// Ablation bench — what the generator's girth control buys.
//
// Two parts:
//  1. Error-floor demonstration at small parallelism: with P = 12 the
//     unconstrained ensemble carries several 4-cycles, which show up as an
//     error floor; the girth-6 generator removes it completely.
//  2. Full-scale accounting at P = 360: the DVB-S2 group structure already
//     spreads edges so well that a random ensemble has only a handful of
//     4-cycles — the constraints are cheap insurance that eliminates the
//     residue (plus the zigzag-adjacent and half-turn cases the BFS girth
//     scanner exposed, see docs/ARCHITECTURE.md §2).
//
//   ./bench_ablation_girth [--frames=3000] [--ebn0=5.0]
#include <iostream>

#include "bench_common.hpp"
#include "code/girth.hpp"
#include "code/tables.hpp"
#include "code/tanner.hpp"
#include "comm/ber.hpp"
#include "core/decoder.hpp"

using namespace dvbs2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"frames", "ebn0"});
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 3000));
    const double ebn0 = args.get_double("ebn0", 5.0);
    bench::banner("Girth ablation", "girth-6 generator vs. unconstrained ensemble");

    // Part 1: toy scale (P = 12, N = 144), where 4-cycles are common.
    const auto toy = code::toy_params(12, 7, 2, 6, 3, 77);
    const auto tables_girth = code::generate_tables(toy);
    const auto tables_plain = code::generate_tables_unconstrained(toy);

    comm::SimConfig sim;
    sim.limits.max_frames = frames;
    sim.limits.min_frames = frames;
    sim.limits.target_bit_errors = ~0ULL;
    sim.limits.target_frame_errors = ~0ULL;

    util::TextTable t;
    t.set_header({"code (P=12, N=144)", "info 4-cycles", "FER @" +
                      util::TextTable::num(ebn0, 1) + "dB", "BER"});
    double ber_girth = 0.0, ber_plain = 0.0;
    long long cycles_plain_toy = 0;
    for (const bool constrained : {true, false}) {
        const code::Dvbs2Code c(toy, constrained ? tables_girth : tables_plain);
        const long long cycles = code::count_information_4cycles(toy, c.tables());
        if (!constrained) cycles_plain_toy = cycles;
        core::DecoderConfig cfg;
        cfg.max_iterations = 30;
        core::Decoder dec(c, cfg);
        comm::DecodeFn fn = [&](const std::vector<double>& llr) {
            const auto r = dec.decode(llr);
            return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
        };
        const auto pt = comm::simulate_point(c, fn, ebn0, sim);
        const double ber = pt.ber(static_cast<std::uint64_t>(c.k()));
        (constrained ? ber_girth : ber_plain) = ber;
        t.add_row({constrained ? "girth-6 (library)" : "unconstrained",
                   util::TextTable::num(cycles), util::TextTable::num(pt.fer(), 4),
                   bench::sci(ber)});
    }
    t.print(std::cout);

    // Part 2: full-scale structural accounting.
    const auto full = code::standard_params(code::CodeRate::R1_2);
    const long long full_plain =
        code::count_information_4cycles(full, code::generate_tables_unconstrained(full));
    const long long full_girth =
        code::count_information_4cycles(full, code::generate_tables(full));
    std::cout << "\nN = 64800 (P = 360): unconstrained ensemble carries " << full_plain
              << " information 4-cycles, girth-6 generator " << full_girth
              << " — at full parallelism the group structure already suppresses\n"
              << "most cycles; the constraints eliminate the residue (floor insurance).\n";

    const bool pass =
        cycles_plain_toy > 0 && ber_girth < ber_plain && full_girth == 0;
    std::cout << (pass ? "Girth ablation PASS: 4-cycles cause a measurable floor at small P; "
                         "the generator removes them at every scale\n"
                       : "Girth ablation FAIL\n");
    return pass ? 0 : 1;
}
