// Motivation bench — paper Sec. 1's code-design argument:
//
//   "[decoder-first design] is only suitable for regular LDPC codes ...
//    But for an improved communications performance so called irregular
//    LDPC codes are mandatory [6]. This is the case for the DVB-S2 code."
//
// Builds a regular-information-degree IRA code (every information node
// degree 3) with the same N, K, q and check regularity as the standard
// rate-1/2 profile, and compares analytic GA-DE thresholds plus measured
// FER at a point between the two thresholds — where the irregular profile
// decodes and the regular one does not.
//
//   ./bench_ablation_irregular [--frames=10] [--ebn0=1.2]
#include <iostream>

#include "bench_common.hpp"
#include "code/profile_solver.hpp"
#include "code/tanner.hpp"
#include "comm/ber.hpp"
#include "comm/density_evolution.hpp"
#include "core/decoder.hpp"

using namespace dvbs2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"frames", "ebn0"});
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 10));
    const double ebn0 = args.get_double("ebn0", 1.2);
    bench::banner("Irregular vs regular", "why DVB-S2 uses irregular degree profiles");

    const auto irregular = code::standard_params(code::CodeRate::R1_2);
    auto regular_opt = code::derive_profile(64800, 32400, 360, 3.0);
    if (!regular_opt || regular_opt->n_hi != 0) {
        std::cout << "no all-degree-3 profile found\n";
        return 1;
    }
    const auto regular = *regular_opt;

    comm::SimConfig sim;
    sim.limits.max_frames = frames;
    sim.limits.min_frames = frames;
    sim.limits.target_bit_errors = ~0ULL;
    sim.limits.target_frame_errors = ~0ULL;

    util::TextTable t;
    t.set_header({"profile", "info degrees", "DE threshold [dB]",
                  "FER @" + util::TextTable::num(ebn0, 1) + "dB", "avg iters"});
    double fer_irregular = 1.0, fer_regular = 0.0;
    for (const bool irr : {true, false}) {
        const auto& params = irr ? irregular : regular;
        const double de = comm::de_threshold_db(params, 500);
        const code::Dvbs2Code c(params);
        core::DecoderConfig cfg;
        cfg.max_iterations = 30;
        core::FixedDecoder dec(c, cfg, quant::kQuant6);
        comm::DecodeFn fn = [&](const std::vector<double>& llr) {
            const auto r = dec.decode(llr);
            return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
        };
        const auto pt = comm::simulate_point(c, fn, ebn0, sim);
        (irr ? fer_irregular : fer_regular) = pt.fer();
        t.add_row({irr ? "irregular (standard, Table 1)" : "regular (all-degree-3)",
                   irr ? "8 / 3" : "3", util::TextTable::num(de, 2),
                   util::TextTable::num(pt.fer(), 2),
                   util::TextTable::num(pt.avg_iterations, 1)});
    }
    t.print(std::cout);
    std::cout << "\nsame N, K, q, check regularity and hardware mapping — only the degree\n"
              << "profile differs. The irregular profile buys the waterfall position;\n"
              << "the architecture supports both (the point of Sec. 3's serial FUs).\n";
    const bool pass = fer_irregular < fer_regular;
    std::cout << (pass ? "Irregular PASS: the irregular profile decodes where regular fails\n"
                       : "Irregular FAIL\n");
    return pass ? 0 : 1;
}
