// Baseline bench — paper Sec. 1's architecture argument:
//
//   "For a fully parallel hardware realization each node is instantiated
//    and the connections between them are hardwired. This was shown in [4]
//    for a 1024 bit LDPC code. But even for this relatively short block
//    length severe routing congestion problems exist. Therefore a partly
//    parallel architecture becomes mandatory for larger block length."
//
// Quantifies the claim with the fully-parallel estimator: a ~1k-bit
// regular code (the Blanksby/Howland design point, reported at 52.5 mm² in
// 0.16 µm) vs. the DVB-S2 N = 64800 code, against the partly-parallel
// Table-3 total of 22.74 mm².
#include <iostream>

#include "arch/area.hpp"
#include "arch/baselines.hpp"
#include "bench_common.hpp"

using namespace dvbs2;

int main() {
    bench::banner("Baseline / Sec. 1", "fully parallel vs. partly parallel realization");

    // A 1024-bit-class regular code at small parallelism (the paper's [4]
    // reference design point: N=1024, regular degree-3/6-ish).
    const auto small = code::toy_params(8, 64, 0, 4, 64, 1);  // N = 1024, K = 512
    // The paper's code.
    const auto big = code::standard_params(code::CodeRate::R1_2);

    util::TextTable t;
    t.set_header({"design", "N", "logic [mm^2]", "routing [mm^2]", "total [mm^2]",
                  "info throughput"});
    const auto est_small = arch::fully_parallel_estimate(small, quant::kQuant6);
    const auto est_big = arch::fully_parallel_estimate(big, quant::kQuant6);

    std::vector<code::CodeParams> all;
    for (auto r : code::all_rates()) all.push_back(code::standard_params(r));
    const auto partly = arch::area_model(all, quant::kQuant6);

    auto tp = [](double bps) { return util::TextTable::num(bps / 1e9, 1) + " Gbit/s"; };
    t.add_row({"fully parallel (1024-bit ref [4])", util::TextTable::num((long long)small.n),
               util::TextTable::num(est_small.logic_mm2, 1),
               util::TextTable::num(est_small.routing_mm2, 1),
               util::TextTable::num(est_small.total_mm2, 1), tp(est_small.info_throughput_bps)});
    t.add_row({"fully parallel (DVB-S2 R=1/2)", util::TextTable::num((long long)big.n),
               util::TextTable::num(est_big.logic_mm2, 1),
               util::TextTable::num(est_big.routing_mm2, 1),
               util::TextTable::num(est_big.total_mm2, 1), tp(est_big.info_throughput_bps)});
    t.add_row({"partly parallel (this paper, all rates)", util::TextTable::num((long long)big.n),
               "-", "-", util::TextTable::num(partly.total_mm2, 1), "0.26 Gbit/s (Eq. 8)"});
    t.print(std::cout);

    const double blowup = est_big.total_mm2 / partly.total_mm2;
    std::cout << "\nfully parallel at N = 64800 needs ~" << util::TextTable::num(blowup, 0)
              << "x the silicon of the paper's partly parallel core. The 1024-bit\n"
              << "reference is feasible (single-digit mm^2 in this lean 0.13 um min-sum\n"
              << "model; [4] reports 52.5 mm^2 at 0.16 um with a richer datapath), with\n"
              << "interconnect already ~half the area — the Sec. 1 argument, quantified.\n";
    const bool pass = est_big.total_mm2 > 10.0 * partly.total_mm2 &&
                      est_small.total_mm2 > 2.0 && est_small.total_mm2 < 200.0 &&
                      est_small.routing_mm2 > 0.3 * est_small.logic_mm2;
    std::cout << (pass ? "Baseline PASS: partly parallel is mandatory at N = 64800\n"
                       : "Baseline FAIL\n");
    return pass ? 0 : 1;
}
