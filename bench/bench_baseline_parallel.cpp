// Baseline bench — paper Sec. 1's architecture argument:
//
//   "For a fully parallel hardware realization each node is instantiated
//    and the connections between them are hardwired. This was shown in [4]
//    for a 1024 bit LDPC code. But even for this relatively short block
//    length severe routing congestion problems exist. Therefore a partly
//    parallel architecture becomes mandatory for larger block length."
//
// Quantifies the claim with the fully-parallel estimator: a ~1k-bit
// regular code (the Blanksby/Howland design point, reported at 52.5 mm² in
// 0.16 µm) vs. the DVB-S2 N = 64800 code, against the partly-parallel
// Table-3 total of 22.74 mm².
//
// A second section measures the *software* parallel baseline: the
// frame-parallel Monte-Carlo engine (comm/parallel.hpp) on a short-frame
// config at 1 vs N worker threads, checking that the tallies are
// bit-identical and reporting the wall-clock speedup.
//
//   ./bench_baseline_parallel [--threads=N] [--mc-frames=32] [--mc-iters=10]
#include <chrono>
#include <iostream>
#include <memory>

#include "arch/area.hpp"
#include "arch/baselines.hpp"
#include "bench_common.hpp"
#include "comm/parallel.hpp"
#include "core/decoder.hpp"

using namespace dvbs2;

namespace {

/// Times one simulate_point_parallel run at `threads` workers.
struct McRun {
    comm::BerPoint pt;
    double wall_s = 0.0;
};

McRun run_mc(const code::Dvbs2Code& c, const core::DecoderConfig& dcfg, const comm::SimConfig& sim,
             unsigned threads, double ebn0_db) {
    comm::SimConfig cfg = sim;
    cfg.threads = threads;
    comm::DecodeFactory factory = [&](unsigned) {
        auto dec = std::make_shared<core::Decoder>(c, dcfg);
        return [dec](const std::vector<double>& llr) {
            const auto r = dec->decode(llr);
            return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
        };
    };
    McRun run;
    const auto t0 = std::chrono::steady_clock::now();
    run.pt = comm::simulate_point_parallel(c, factory, ebn0_db, cfg);
    run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return run;
}

/// Same point through the engine-spec entry path (per-worker engines from
/// the registry, batch-sized decode calls); tallies must match run_mc's.
McRun run_mc_engine(const code::Dvbs2Code& c, const core::DecoderConfig& dcfg,
                    const comm::SimConfig& sim, unsigned threads, double ebn0_db) {
    comm::SimConfig cfg = sim;
    cfg.threads = threads;
    const core::EngineSpec spec{core::Arithmetic::Float, dcfg, quant::kQuant6};
    McRun run;
    const auto t0 = std::chrono::steady_clock::now();
    run.pt = comm::simulate_point_engine(c, spec, ebn0_db, cfg);
    run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return run;
}

bool same_tallies(const comm::BerPoint& a, const comm::BerPoint& b) {
    return a.frames == b.frames && a.bit_errors == b.bit_errors &&
           a.frame_errors == b.frame_errors &&
           a.undetected_frame_errors == b.undetected_frame_errors &&
           a.avg_iterations == b.avg_iterations;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"threads", "mc-frames", "mc-iters"});
    bench::banner("Baseline / Sec. 1", "fully parallel vs. partly parallel realization");

    // A 1024-bit-class regular code at small parallelism (the paper's [4]
    // reference design point: N=1024, regular degree-3/6-ish).
    const auto small = code::toy_params(8, 64, 0, 4, 64, 1);  // N = 1024, K = 512
    // The paper's code.
    const auto big = code::standard_params(code::CodeRate::R1_2);

    util::TextTable t;
    t.set_header({"design", "N", "logic [mm^2]", "routing [mm^2]", "total [mm^2]",
                  "info throughput"});
    const auto est_small = arch::fully_parallel_estimate(small, quant::kQuant6);
    const auto est_big = arch::fully_parallel_estimate(big, quant::kQuant6);

    std::vector<code::CodeParams> all;
    for (auto r : code::all_rates()) all.push_back(code::standard_params(r));
    const auto partly = arch::area_model(all, quant::kQuant6);

    auto tp = [](double bps) { return util::TextTable::num(bps / 1e9, 1) + " Gbit/s"; };
    t.add_row({"fully parallel (1024-bit ref [4])", util::TextTable::num((long long)small.n),
               util::TextTable::num(est_small.logic_mm2, 1),
               util::TextTable::num(est_small.routing_mm2, 1),
               util::TextTable::num(est_small.total_mm2, 1), tp(est_small.info_throughput_bps)});
    t.add_row({"fully parallel (DVB-S2 R=1/2)", util::TextTable::num((long long)big.n),
               util::TextTable::num(est_big.logic_mm2, 1),
               util::TextTable::num(est_big.routing_mm2, 1),
               util::TextTable::num(est_big.total_mm2, 1), tp(est_big.info_throughput_bps)});
    t.add_row({"partly parallel (this paper, all rates)", util::TextTable::num((long long)big.n),
               "-", "-", util::TextTable::num(partly.total_mm2, 1), "0.26 Gbit/s (Eq. 8)"});
    t.print(std::cout);

    const double blowup = est_big.total_mm2 / partly.total_mm2;
    std::cout << "\nfully parallel at N = 64800 needs ~" << util::TextTable::num(blowup, 0)
              << "x the silicon of the paper's partly parallel core. The 1024-bit\n"
              << "reference is feasible (single-digit mm^2 in this lean 0.13 um min-sum\n"
              << "model; [4] reports 52.5 mm^2 at 0.16 um with a richer datapath), with\n"
              << "interconnect already ~half the area — the Sec. 1 argument, quantified.\n";
    bool pass = est_big.total_mm2 > 10.0 * partly.total_mm2 &&
                est_small.total_mm2 > 2.0 && est_small.total_mm2 < 200.0 &&
                est_small.routing_mm2 > 0.3 * est_small.logic_mm2;

    // ---- software baseline: frame-parallel Monte-Carlo engine ----
    const auto mc_threads =
        util::resolve_thread_count(static_cast<unsigned>(args.get_int("threads", 0)));
    const auto mc_frames = static_cast<std::uint64_t>(args.get_int("mc-frames", 32));
    const code::Dvbs2Code short_code(code::standard_params(code::CodeRate::R1_2,
                                                           code::FrameSize::Short));
    core::DecoderConfig dcfg;
    dcfg.schedule = core::Schedule::ZigzagForward;
    dcfg.max_iterations = static_cast<int>(args.get_int("mc-iters", 10));
    comm::SimConfig sim;
    sim.seed = 7;
    sim.limits.max_frames = mc_frames;
    sim.limits.min_frames = mc_frames;
    sim.limits.target_bit_errors = ~0ULL;  // fixed work: no early stop
    sim.limits.target_frame_errors = ~0ULL;
    const double ebn0 = 1.0;  // noisy → decoder runs its full iteration budget

    std::cout << "\n--- software baseline: frame-parallel Monte-Carlo engine ("
              << short_code.params().name << ", " << mc_frames << " frames) ---\n";
    util::TextTable mc;
    mc.set_header({"threads", "wall [s]", "frames/s", "speedup", "tallies"});
    const McRun serial = run_mc(short_code, dcfg, sim, 1, ebn0);
    std::vector<unsigned> sweep = {1};
    if (mc_threads > 1) sweep.push_back(mc_threads);
    bool identical = true;
    for (unsigned th : sweep) {
        const McRun r = th == 1 ? serial : run_mc(short_code, dcfg, sim, th, ebn0);
        const bool same = same_tallies(r.pt, serial.pt);
        identical = identical && same;
        mc.add_row({util::TextTable::num(static_cast<long long>(th)),
                    util::TextTable::num(r.wall_s, 2),
                    util::TextTable::num(static_cast<double>(r.pt.frames) / r.wall_s, 1),
                    util::TextTable::num(serial.wall_s / r.wall_s, 2),
                    same ? "identical" : "MISMATCH"});
    }
    // Engine-spec path (per-worker registry engines, batched decode calls)
    // must reproduce the DecodeFn path's tallies exactly.
    const McRun eng = run_mc_engine(short_code, dcfg, sim, mc_threads, ebn0);
    const bool engine_same = same_tallies(eng.pt, serial.pt);
    identical = identical && engine_same;
    mc.add_row({"engine x" + std::to_string(mc_threads), util::TextTable::num(eng.wall_s, 2),
                util::TextTable::num(static_cast<double>(eng.pt.frames) / eng.wall_s, 1),
                util::TextTable::num(serial.wall_s / eng.wall_s, 2),
                engine_same ? "identical" : "MISMATCH"});
    mc.print(std::cout);
    std::cout << "(counts are bit-identical by construction: per-frame counter-based RNG\n"
              << "streams + batch-prefix early stop; the engine row decodes through\n"
              << "Engine::decode_batch and must reproduce the DecodeFn tallies exactly)\n";
    pass = pass && identical;

    std::cout << (pass ? "Baseline PASS: partly parallel is mandatory at N = 64800; "
                         "software engine is thread-count invariant\n"
                       : "Baseline FAIL\n");
    return pass ? 0 : 1;
}
