// Shared helpers for the experiment benches (E1..E11, see DESIGN.md §3).
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "code/params.hpp"
#include "comm/ber.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dvbs2::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title) {
    std::cout << "=== " << id << ": " << title << " ===\n";
}

/// Scientific-notation formatting for BER columns.
inline std::string sci(double v, int prec = 2) {
    std::ostringstream os;
    os.precision(prec);
    os << std::scientific << v;
    return os.str();
}

/// Parses a rate label ("1/2") into the enum; throws on junk.
inline code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s);
}

/// Aggregates the Monte-Carlo engine's per-point final progress events
/// (install `hook()` as SimConfig::progress) and prints one frames/sec +
/// worker-utilization summary line for the whole bench run.
class SimMeter {
public:
    comm::ProgressFn hook() {
        return [this](const comm::SimProgress& p) {
            if (!p.finished) return;
            std::lock_guard<std::mutex> lock(mu_);
            ++points_;
            frames_ += p.frames;
            wall_s_ += p.elapsed_s;
            busy_thread_s_ += p.worker_utilization * p.elapsed_s * p.threads;
            threads_ = p.threads;
        };
    }

    void print(std::ostream& os) const {
        std::lock_guard<std::mutex> lock(mu_);
        if (wall_s_ <= 0.0 || points_ == 0) return;
        os << "[sim] " << frames_ << " frames over " << points_ << " points in "
           << util::TextTable::num(wall_s_, 2) << " s = "
           << util::TextTable::num(static_cast<double>(frames_) / wall_s_, 1) << " frames/s at "
           << threads_ << " thread(s), worker utilization "
           << util::TextTable::num(100.0 * busy_thread_s_ / (wall_s_ * threads_), 0) << "%\n";
    }

private:
    mutable std::mutex mu_;
    std::uint64_t points_ = 0;
    std::uint64_t frames_ = 0;
    double wall_s_ = 0.0;
    double busy_thread_s_ = 0.0;
    unsigned threads_ = 1;
};

}  // namespace dvbs2::bench
