// Shared helpers for the experiment benches (E1..E11, see DESIGN.md §3).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "code/params.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dvbs2::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title) {
    std::cout << "=== " << id << ": " << title << " ===\n";
}

/// Scientific-notation formatting for BER columns.
inline std::string sci(double v, int prec = 2) {
    std::ostringstream os;
    os.precision(prec);
    os << std::scientific << v;
    return os.str();
}

/// Parses a rate label ("1/2") into the enum; throws on junk.
inline code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s);
}

}  // namespace dvbs2::bench
