// Ablation bench — Gaussian-approximation density evolution vs. the
// Shannon limit (analytic companion to experiment E8).
//
// For every rate: the BPSK-constrained Shannon limit, the GA-DE asymptotic
// threshold (1000 iterations) and the 30-iteration GA-DE threshold (the
// paper's operating point), all analytic (no Monte Carlo). Shows where the
// "≈0.7 dB to Shannon" of the ensemble comes from, and quantifies what the
// 30-iteration cap costs per rate.
#include <iostream>

#include "bench_common.hpp"
#include "comm/capacity.hpp"
#include "comm/density_evolution.hpp"
#include "comm/modem.hpp"

using namespace dvbs2;

int main() {
    bench::banner("DE ablation", "GA density-evolution thresholds per rate");

    util::TextTable t;
    t.set_header({"Rate", "Shannon [dB]", "DE inf-iter [dB]", "DE 30-iter [dB]",
                  "asymptotic gap [dB]", "30-iter penalty [dB]"});
    bool sane = true;
    for (auto rate : code::all_rates()) {
        const auto p = code::standard_params(rate);
        const double sh = comm::shannon_limit_bpsk_db(p.rate());
        const double de_inf = comm::de_threshold_db(p, 1000);
        const double de_30 = comm::de_threshold_db(p, 30);
        sane = sane && de_inf > sh - 0.05 && de_30 >= de_inf - 1e-6;
        t.add_row({code::to_string(rate), util::TextTable::num(sh, 2),
                   util::TextTable::num(de_inf, 2), util::TextTable::num(de_30, 2),
                   util::TextTable::num(de_inf - sh, 2), util::TextTable::num(de_30 - de_inf, 2)});
    }
    t.print(std::cout);
    std::cout << "\nnotes: GA-DE is exact only for tree-like ensembles; the heavy degree-2\n"
                 "zigzag fraction of the low-rate IRA profiles makes GA pessimistic there\n"
                 "(the simulated thresholds of E8 are the ground truth; mid/high rates\n"
                 "agree to ~0.3 dB). The 30-iteration penalty column is the convergence\n"
                 "cost the paper's Fig. 2b schedule halves relative to two-phase.\n";
    std::cout << (sane ? "DE PASS: thresholds above Shannon, monotone in iterations\n"
                       : "DE FAIL\n");
    return sane ? 0 : 1;
}
