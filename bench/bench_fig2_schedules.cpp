// Experiment E4 — paper Fig. 2 + Sec. 2.2: conventional two-phase update vs
// the optimized zigzag update of the degree-2 parity chain.
//
// Paper claims reproduced here:
//  1. convergence: "10 iterations can be saved, i.e. 30 iterations instead
//     of 40" — measured as the mean early-stop iteration count at a fixed
//     Eb/N0 near threshold, plus frame success at tight iteration caps;
//  2. memory: "we need to store only one message instead of two" — the
//     zigzag schedules keep E_PN/2 parity messages instead of E_PN;
//  3. the segmented (hardware) variant and the full-MAP backward variant
//     the paper mentions, as ablations.
//
//   ./bench_fig2_schedules [--rate=1/2] [--ebn0=1.2] [--frames=12] [--cap=22]
#include <iostream>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "comm/ber.hpp"
#include "core/decoder.hpp"

using namespace dvbs2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"rate", "ebn0", "frames", "cap"});
    const auto rate = bench::parse_rate(args.get("rate", "1/2"));
    const double ebn0 = args.get_double("ebn0", 1.2);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 12));
    const int cap = static_cast<int>(args.get_int("cap", 22));
    bench::banner("E4 / Fig. 2", "message-update schedules: convergence and storage");

    const code::Dvbs2Code c(code::standard_params(rate));
    const struct {
        core::Schedule schedule;
        const char* note;
    } cases[] = {
        {core::Schedule::TwoPhase, "Fig. 2a conventional"},
        {core::Schedule::ZigzagForward, "Fig. 2b optimized"},
        {core::Schedule::ZigzagSegmented, "Fig. 2b, hardware-segmented"},
        {core::Schedule::ZigzagMap, "MAP (both sweeps sequential)"},
        {core::Schedule::Layered, "row-layered (extension)"},
    };

    comm::SimConfig sim;
    sim.limits.max_frames = frames;
    sim.limits.min_frames = frames;
    sim.limits.target_bit_errors = ~0ULL;  // fixed frame count
    sim.limits.target_frame_errors = ~0ULL;

    util::TextTable t;
    t.set_header({"schedule", "avg iters (early stop)", "FER @cap", "PN storage", "note"});
    double iters_twophase = 0.0, iters_zigzag = 0.0;
    for (const auto& cs : cases) {
        // Pass 1: generous cap with early stop — average convergence time.
        core::DecoderConfig cfg;
        cfg.schedule = cs.schedule;
        cfg.max_iterations = 60;
        core::Decoder dec(c, cfg);
        comm::DecodeFn fn = [&](const std::vector<double>& llr) {
            const auto r = dec.decode(llr);
            return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
        };
        const auto pt = comm::simulate_point(c, fn, ebn0, sim);

        // Pass 2: tight iteration cap — who still decodes?
        core::DecoderConfig cfg_cap = cfg;
        cfg_cap.max_iterations = cap;
        core::Decoder dec_cap(c, cfg_cap);
        comm::DecodeFn fn_cap = [&](const std::vector<double>& llr) {
            const auto r = dec_cap.decode(llr);
            return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
        };
        const auto pt_cap = comm::simulate_point(c, fn_cap, ebn0, sim);

        long long pn_store = c.params().e_pn() / 2;
        if (cs.schedule == core::Schedule::TwoPhase) pn_store = c.params().e_pn();
        if (cs.schedule == core::Schedule::Layered) pn_store = c.params().e_pn();  // u and d
        if (cs.schedule == core::Schedule::TwoPhase) iters_twophase = pt.avg_iterations;
        if (cs.schedule == core::Schedule::ZigzagForward) iters_zigzag = pt.avg_iterations;
        t.add_row({core::to_string(cs.schedule), util::TextTable::num(pt.avg_iterations, 1),
                   util::TextTable::num(pt_cap.fer(), 2), util::TextTable::num(pn_store),
                   cs.note});
    }
    t.print(std::cout);

    const double ratio = iters_zigzag / iters_twophase;
    std::cout << "\niteration ratio zigzag/two-phase: " << util::TextTable::num(ratio, 2)
              << " (paper: 30/40 = 0.75)\n"
              << "PN message storage halved: " << c.params().e_pn() << " -> "
              << c.params().e_pn() / 2 << " messages\n";
    const bool pass = ratio < 0.95;  // the optimized schedule must converge faster
    std::cout << (pass ? "E4 PASS: optimized update converges faster with half the PN storage\n"
                       : "E4 FAIL: no speedup measured\n");
    return pass ? 0 : 1;
}
