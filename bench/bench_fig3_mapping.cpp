// Experiment E3 — paper Fig. 1 + Fig. 3: graph structure and the message /
// functional-unit mapping.
//
// For every rate, audits the structural properties the mapping exploits:
//  * group-shift property of Π (360 edges per table entry = one cyclic
//    shift, one common RAM address),
//  * check regularity (every CN gets exactly k−2 information edges),
//  * per-FU load balance q·(k−2) (Eq. 6),
//  * girth ≥ 6 of the information part,
// and reports the mapping quantities of the R = 1/2 example in Fig. 3.
#include <iostream>

#include "arch/mapping.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "code/validate.hpp"

using namespace dvbs2;

int main() {
    bench::banner("E3 / Fig. 1+3", "hardware mapping structural audit");

    util::TextTable t;
    t.set_header({"Rate", "group-shift", "check-regular", "FU load", "4-cycles", "verdict"});
    bool all_ok = true;
    for (auto rate : code::all_rates()) {
        const code::Dvbs2Code c(code::standard_params(rate));
        const auto rep = code::audit_structure(c);
        const arch::HardwareMapping map(c);
        all_ok = all_ok && rep.all_ok() && map.fu_load() == map.ram_words();
        t.add_row({code::to_string(rate), rep.group_shift_ok ? "ok" : "FAIL",
                   rep.check_regular ? "ok" : "FAIL",
                   util::TextTable::num((long long)map.fu_load()),
                   util::TextTable::num(rep.four_cycles), rep.all_ok() ? "ok" : rep.detail});
    }
    t.print(std::cout);

    // Fig. 3 narrative for R = 1/2.
    const code::Dvbs2Code half(code::standard_params(code::CodeRate::R1_2));
    const arch::HardwareMapping map(half);
    std::cout << "\nFig. 3 (R = 1/2): 360 consecutive IN -> 360 FUs; first q=90 CNs -> FU 0;\n"
              << "  address/shuffle ROM: " << map.ram_words() << " words (paper: 450),\n"
              << "  slots per check node: " << map.slots_per_cn() << " (= k-2 = 5),\n"
              << "  per-FU edges per half-iteration: " << map.fu_load() << " (= q*(k-2))\n";
    std::cout << (all_ok ? "E3 PASS: mapping properties hold for all rates\n" : "E3 FAIL\n");
    return all_ok ? 0 : 1;
}
