// Experiment E9 — paper Sec. 4 + Fig. 5: the hierarchical 4-partition RAM,
// the write-conflict buffer and its simulated-annealing minimization.
//
// For every rate: cycle-accurate conflict statistics of the canonical
// addressing, then after annealing; the paper's claim is that one small
// buffer suffices for all code rates after the optimization step.
//
//   ./bench_fig5_conflicts [--sa-iters=3000]
#include <algorithm>
#include <iostream>

#include "arch/anneal.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"

using namespace dvbs2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"sa-iters"});
    const int sa_iters = static_cast<int>(args.get_int("sa-iters", 3000));
    bench::banner("E9 / Fig. 5", "RAM partition conflicts and SA buffer minimization");

    util::TextTable t;
    t.set_header({"Rate", "buffer before", "buffer after", "residency before", "residency after",
                  "blocked before", "blocked after", "accepted"});
    int worst_after = 0;
    bool never_worse = true;
    for (auto rate : code::all_rates()) {
        const code::Dvbs2Code c(code::standard_params(rate));
        arch::HardwareMapping map(c);
        arch::AnnealConfig cfg;
        cfg.iterations = sa_iters;
        const auto res = arch::anneal_addressing(map, cfg);
        never_worse = never_worse && res.after.peak_buffer <= res.before.peak_buffer;
        worst_after = std::max(worst_after, res.after.peak_buffer);
        t.add_row({code::to_string(rate), util::TextTable::num((long long)res.before.peak_buffer),
                   util::TextTable::num((long long)res.after.peak_buffer),
                   util::TextTable::num(res.before.buffer_word_cycles),
                   util::TextTable::num(res.after.buffer_word_cycles),
                   util::TextTable::num(res.before.blocked_write_events),
                   util::TextTable::num(res.after.blocked_write_events),
                   util::TextTable::num((long long)res.moves_accepted)});
    }
    t.print(std::cout);
    std::cout << "\nsingle buffer sized for all rates: " << worst_after
              << " words (paper: one small buffer \"holds for all code rates\")\n";
    std::cout << (never_worse && worst_after <= 64
                      ? "E9 PASS: annealing never regressed; worst-case buffer is small\n"
                      : "E9 FAIL\n");
    return never_worse && worst_after <= 64 ? 0 : 1;
}
