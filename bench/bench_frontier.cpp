// E12: the algorithm frontier — BER vs decoded throughput vs mean
// iterations for the three engine algorithm families (min-sum MP, improved
// WBF, relaxed half-stochastic BP) over the 2-4 dB Eb/N0 range, measured
// through the same registry engines and Monte-Carlo harness the service
// uses. The point of the experiment: the Algorithm axis spans a real
// price/quality frontier —
//
//   * WBF iterations cost a few compare/add passes (no message memories),
//     so its throughput is an order of magnitude above MP — but it only
//     corrects few-error patterns, surrendering (0 iterations) at low SNR;
//   * min-sum MP is the workhorse: near-capacity BER at 30 iterations;
//   * RHS-BP trades iterations (relaxation slows convergence) for the
//     BP-grade BER its tracker calibration recovers.
//
// The emitted BENCH_frontier.json is the machine-readable frontier that
// service/sla.hpp consumes: each row is (algorithm, snr_db, ber, mbps,
// mean_iterations), and the "sla_examples" block shows two SLAs mapping to
// different algorithms at the same SNR — the routing decision
// tests/test_service.cpp pins end to end.
//
// Flags:
//   --rate=1/2        code rate
//   --frames=20       frames per (algorithm, SNR) point (fixed work: early
//                     stopping on error targets is disabled so throughput
//                     numbers compare like for like)
//   --iters=30        MP/WBF iteration budget
//   --rhs-iters=150   RHS-BP budget (relaxation converges a few times slower)
//   --threads=1       Monte-Carlo workers
//   --json=PATH       write BENCH_frontier.json
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "comm/parallel.hpp"
#include "core/engine.hpp"
#include "service/sla.hpp"
#include "util/table.hpp"

using namespace dvbs2;

namespace {

struct Row {
    core::Algorithm algorithm{};
    double snr_db = 0.0;
    double ber = 0.0;
    double fer = 0.0;
    double mbps = 0.0;
    double mean_iterations = 0.0;
    double converged_fraction = 0.0;
};

core::EngineSpec spec_for_algorithm(core::Algorithm a, int iters, int rhs_iters) {
    core::EngineSpec spec;
    spec.arith = core::Arithmetic::Float;
    spec.config.backend = core::DecoderBackend::Scalar;
    spec.config.algorithm = a;
    spec.config.max_iterations = a == core::Algorithm::RhsBp ? rhs_iters : iters;
    switch (a) {
        case core::Algorithm::MinSum:
            spec.config.rule = core::CheckRule::MinSum;
            spec.config.schedule = core::Schedule::ZigzagForward;
            break;
        case core::Algorithm::Wbf:
            // Flooding is the only schedule with a WBF analogue (derived by
            // classify_algorithm; validate_engine_spec enforces it).
            spec.config.schedule = core::Schedule::TwoPhase;
            break;
        case core::Algorithm::RhsBp:
            spec.config.schedule = core::Schedule::ZigzagForward;
            break;
    }
    return spec;
}

}  // namespace

int main(int argc, char** argv) {
    util::CliArgs args(argc, argv, {"rate", "frames", "iters", "rhs-iters", "threads", "json"});
    const code::CodeRate rate = bench::parse_rate(args.get("rate", "1/2"));
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 20));
    const int iters = static_cast<int>(args.get_int("iters", 30));
    const int rhs_iters = static_cast<int>(args.get_int("rhs-iters", 150));
    const auto threads = static_cast<unsigned>(args.get_int("threads", 1));

    bench::banner("E12", "algorithm frontier: BER vs throughput vs iterations (2-4 dB)");
    const code::Dvbs2Code code(code::standard_params(rate));
    const auto k = static_cast<std::uint64_t>(code.k());

    comm::SimConfig cfg;
    cfg.seed = 1;
    cfg.threads = threads;
    // Fixed work per point: disable the error-target early stops so every
    // (algorithm, SNR) point decodes the same frames and the wall-clock
    // throughput numbers compare like for like.
    cfg.limits.max_frames = frames;
    cfg.limits.min_frames = frames;
    cfg.limits.target_bit_errors = std::numeric_limits<std::uint64_t>::max();
    cfg.limits.target_frame_errors = std::numeric_limits<std::uint64_t>::max();
    bench::SimMeter meter;
    cfg.progress = meter.hook();

    const std::vector<double> snrs = {2.0, 3.0, 4.0};
    const std::vector<core::Algorithm> algorithms = {
        core::Algorithm::MinSum, core::Algorithm::Wbf, core::Algorithm::RhsBp};

    std::vector<Row> rows;
    util::TextTable table;
    table.set_header({"algorithm", "Eb/N0 dB", "BER", "FER", "Mbit/s", "mean iters",
                      "converged %"});
    for (core::Algorithm a : algorithms) {
        const core::EngineSpec spec = spec_for_algorithm(a, iters, rhs_iters);
        for (double snr : snrs) {
            const auto t0 = std::chrono::steady_clock::now();
            const comm::BerPoint p = comm::simulate_point_engine(code, spec, snr, cfg);
            const double dt = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0).count();
            Row row;
            row.algorithm = a;
            row.snr_db = snr;
            row.ber = p.ber(k);
            row.fer = p.fer();
            row.mbps = dt > 0.0
                           ? static_cast<double>(p.frames * k) / dt / 1e6
                           : 0.0;
            row.mean_iterations = p.avg_iterations;
            row.converged_fraction =
                p.frames ? static_cast<double>(p.convergence.converged_frames) /
                               static_cast<double>(p.frames)
                         : 0.0;
            rows.push_back(row);
            table.add_row({core::to_string(a), util::TextTable::num(snr, 1),
                           bench::sci(row.ber), bench::sci(row.fer),
                           util::TextTable::num(row.mbps, 2),
                           util::TextTable::num(row.mean_iterations, 2),
                           util::TextTable::num(100.0 * row.converged_fraction, 1)});
        }
    }
    table.print(std::cout);
    meter.print(std::cout);

    // The frontier in the service's own terms: two SLAs at the top of the
    // measured range mapping to different algorithms.
    std::vector<service::FrontierRow> frontier;
    for (const Row& r : rows)
        frontier.push_back({r.algorithm, r.snr_db, r.ber, r.mbps, r.mean_iterations});
    const service::SlaTarget bulk{1.0, 0.0};       // throughput-only tenant
    const service::SlaTarget strict{1e-4, 0.0};    // BER-bound tenant
    const auto bulk_pick = service::select_algorithm(frontier, 4.0, bulk);
    const auto strict_pick = service::select_algorithm(frontier, 4.0, strict);
    std::cout << "\nSLA routing at 4.0 dB: bulk (any BER) -> "
              << (bulk_pick ? core::to_string(*bulk_pick) : "none")
              << ", strict (BER <= 1e-4) -> "
              << (strict_pick ? core::to_string(*strict_pick) : "none") << "\n";

    if (args.has("json")) {
        std::ofstream os(args.get("json", ""));
        os << "{\n  \"bench\": \"bench_frontier\",\n"
           << "  \"rate\": \"" << code::to_string(rate) << "\",\n"
           << "  \"frames\": " << frames << ",\n  \"iters\": " << iters << ",\n"
           << "  \"rhs_iters\": " << rhs_iters << ",\n  \"results\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            os << "    {\"algorithm\": \"" << core::to_string(r.algorithm)
               << "\", \"snr_db\": " << r.snr_db << ", \"ber\": " << r.ber
               << ", \"fer\": " << r.fer << ", \"mbps\": " << r.mbps
               << ", \"mean_iterations\": " << r.mean_iterations
               << ", \"converged_fraction\": " << r.converged_fraction << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"sla_examples\": [\n"
           << "    {\"snr_db\": 4.0, \"max_ber\": 1.0, \"min_mbps\": 0.0, \"selected\": \""
           << (bulk_pick ? core::to_string(*bulk_pick) : "none") << "\"},\n"
           << "    {\"snr_db\": 4.0, \"max_ber\": 1e-4, \"min_mbps\": 0.0, \"selected\": \""
           << (strict_pick ? core::to_string(*strict_pick) : "none") << "\"}\n"
           << "  ]\n}\n";
        std::cout << "wrote " << args.get("json", "") << "\n";
    }
    return 0;
}
