// Experiment E11 — google-benchmark microbenchmarks of the decoder kernels:
// pairwise combine operators, check-node extrinsic computation across the
// degree range of the DVB-S2 rates, variable-node update, the shuffle
// network, encoding, and end-to-end decode iterations (software throughput
// of the bit-accurate model).
#include <benchmark/benchmark.h>

#include "arch/mapping.hpp"
#include "arch/rtl_model.hpp"
#include "arch/shuffle.hpp"
#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/arith.hpp"
#include "core/decoder.hpp"
#include "core/kernels.hpp"
#include "enc/encoder.hpp"
#include "util/math.hpp"
#include "util/prng.hpp"

using namespace dvbs2;

namespace {

const code::Dvbs2Code& rate_half() {
    static const code::Dvbs2Code c(code::standard_params(code::CodeRate::R1_2));
    return c;
}

std::vector<double> noisy_llr(const code::Dvbs2Code& c, double ebn0, std::uint64_t seed) {
    const enc::Encoder enc(c);
    const auto cw = enc.encode(enc::random_info_bits(c.k(), seed));
    comm::AwgnModem modem(comm::Modulation::Bpsk, seed + 9);
    return modem.transmit(cw, comm::noise_sigma(ebn0, c.params().rate(), comm::Modulation::Bpsk));
}

}  // namespace

static void BM_BoxplusExactFloat(benchmark::State& state) {
    util::Xoshiro256pp rng(1);
    double a = 3.0 * rng.gaussian(), b = 3.0 * rng.gaussian();
    for (auto _ : state) {
        benchmark::DoNotOptimize(a = util::boxplus_exact(a, b));
        b += 0.001;  // defeat constant folding
    }
}
BENCHMARK(BM_BoxplusExactFloat);

static void BM_BoxplusMinSumFloat(benchmark::State& state) {
    double a = 1.7, b = -2.3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(a = util::boxplus_minsum(a, b) + 1.0);
        b += 0.001;
    }
}
BENCHMARK(BM_BoxplusMinSumFloat);

static void BM_BoxplusTableFixed(benchmark::State& state) {
    const quant::BoxplusTable table(quant::kQuant6);
    quant::QLLR a = 7, b = -12;
    for (auto _ : state) {
        benchmark::DoNotOptimize(a = table.boxplus(a, b) | 1);
        b = (b + 5) % 31;
    }
}
BENCHMARK(BM_BoxplusTableFixed);

static void BM_CnExtrinsicsFloat(benchmark::State& state) {
    const int d = static_cast<int>(state.range(0));
    core::FloatArith arith(core::CheckRule::Exact, 0.75, 0.5);
    std::vector<double> ins(static_cast<std::size_t>(d)), outs(ins), pre(ins), suf(ins);
    util::Xoshiro256pp rng(2);
    for (auto& v : ins) v = 4.0 * rng.gaussian();
    for (auto _ : state) {
        core::compute_extrinsics(arith, ins.data(), d, outs.data(), pre.data(), suf.data());
        benchmark::DoNotOptimize(outs.data());
    }
    state.SetItemsProcessed(state.iterations() * d);
}
// Degrees spanning the DVB-S2 range: k = 4 (R=1/4) .. 30 (R=9/10).
BENCHMARK(BM_CnExtrinsicsFloat)->Arg(4)->Arg(7)->Arg(11)->Arg(18)->Arg(30);

static void BM_CnExtrinsicsFixed(benchmark::State& state) {
    const int d = static_cast<int>(state.range(0));
    const quant::BoxplusTable table(quant::kQuant6);
    core::FixedArith arith(core::CheckRule::Exact, quant::kQuant6, &table, 0.75, 0.5);
    std::vector<quant::QLLR> ins(static_cast<std::size_t>(d)), outs(ins), pre(ins), suf(ins);
    util::Xoshiro256pp rng(3);
    for (auto& v : ins) v = static_cast<quant::QLLR>(rng.below(63)) - 31;
    for (auto _ : state) {
        core::compute_extrinsics(arith, ins.data(), d, outs.data(), pre.data(), suf.data());
        benchmark::DoNotOptimize(outs.data());
    }
    state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_CnExtrinsicsFixed)->Arg(4)->Arg(7)->Arg(11)->Arg(18)->Arg(30);

static void BM_RotateLanes360(benchmark::State& state) {
    std::vector<quant::QLLR> word(360);
    for (int i = 0; i < 360; ++i) word[static_cast<std::size_t>(i)] = i;
    int s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(arch::rotate_lanes(word, s));
        s = (s + 37) % 360;
    }
}
BENCHMARK(BM_RotateLanes360);

static void BM_EncodeRateHalf(benchmark::State& state) {
    const enc::Encoder enc(rate_half());
    const auto info = enc::random_info_bits(rate_half().k(), 5);
    for (auto _ : state) benchmark::DoNotOptimize(enc.encode(info));
    state.SetItemsProcessed(state.iterations() * rate_half().k());
}
BENCHMARK(BM_EncodeRateHalf);

static void BM_SyndromeRateHalf(benchmark::State& state) {
    const enc::Encoder enc(rate_half());
    const auto cw = enc.encode(enc::random_info_bits(rate_half().k(), 6));
    for (auto _ : state) benchmark::DoNotOptimize(rate_half().syndrome(cw));
}
BENCHMARK(BM_SyndromeRateHalf);

static void BM_DecodeIterationFloat(benchmark::State& state) {
    core::DecoderConfig cfg;
    cfg.schedule = core::Schedule::ZigzagForward;
    cfg.max_iterations = 1;
    cfg.early_stop = false;
    core::Decoder dec(rate_half(), cfg);
    const auto llr = noisy_llr(rate_half(), 1.0, 7);
    for (auto _ : state) benchmark::DoNotOptimize(dec.decode(llr));
    state.SetItemsProcessed(state.iterations() * rate_half().n());
}
BENCHMARK(BM_DecodeIterationFloat)->Unit(benchmark::kMillisecond);

static void BM_DecodeIterationFixed6(benchmark::State& state) {
    core::DecoderConfig cfg;
    cfg.schedule = core::Schedule::ZigzagSegmented;
    cfg.max_iterations = 1;
    cfg.early_stop = false;
    core::FixedDecoder dec(rate_half(), cfg, quant::kQuant6);
    const auto llr = noisy_llr(rate_half(), 1.0, 8);
    for (auto _ : state) benchmark::DoNotOptimize(dec.decode(llr));
    state.SetItemsProcessed(state.iterations() * rate_half().n());
}
BENCHMARK(BM_DecodeIterationFixed6)->Unit(benchmark::kMillisecond);

static void BM_RtlIteration(benchmark::State& state) {
    static const arch::HardwareMapping map(rate_half());
    arch::RtlConfig rc;
    rc.decoder.max_iterations = 1;
    rc.decoder.early_stop = false;
    arch::RtlDecoder rtl(rate_half(), map, rc);
    const auto llr = noisy_llr(rate_half(), 1.0, 9);
    std::vector<quant::QLLR> q(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i) q[i] = quant::quantize(llr[i], rc.spec);
    for (auto _ : state) {
        rtl.run_iterations(q, 1);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * rate_half().n());
}
BENCHMARK(BM_RtlIteration)->Unit(benchmark::kMillisecond);

static void BM_FullDecode30ItersFixed(benchmark::State& state) {
    core::DecoderConfig cfg;
    cfg.schedule = core::Schedule::ZigzagForward;
    cfg.max_iterations = 30;
    core::FixedDecoder dec(rate_half(), cfg, quant::kQuant6);
    const auto llr = noisy_llr(rate_half(), 1.4, 10);
    for (auto _ : state) benchmark::DoNotOptimize(dec.decode(llr));
    state.SetItemsProcessed(state.iterations() * rate_half().k());
    state.SetLabel("items = info bits (software Mbit/s)");
}
BENCHMARK(BM_FullDecode30ItersFixed)->Unit(benchmark::kMillisecond);
