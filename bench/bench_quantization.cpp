// Experiment E7 — paper Sec. 2.1: fixed-point message quantization loss.
//
// "For fixed-point implementations it was shown that the total quantization
// loss is 0.1 dB when using a 6 bit message quantization compared to
// infinite precision. For a 5 bit message quantization the loss is
// [0.15-0.2] dB."
//
// Measures the Eb/N0 threshold (smallest SNR with BER below a target) of
// the floating-point decoder and of the 6-bit and 5-bit fixed-point
// decoders on the same code/schedule, and reports the losses.
//
//   ./bench_quantization [--rate=1/2] [--target=1e-4] [--frames=16]
//                        [--step=0.1] [--start=0.8] [--threads=N]
//
// Runs on the frame-parallel Monte-Carlo engine (comm/parallel.hpp):
// --threads (default: DVBS2_THREADS env or hardware_concurrency) scales
// frames/sec while leaving every measured number bit-identical.
#include <iostream>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "comm/parallel.hpp"
#include "core/decoder.hpp"

using namespace dvbs2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"rate", "target", "frames", "step", "start", "threads"});
    const auto rate = bench::parse_rate(args.get("rate", "1/2"));
    const double target = args.get_double("target", 1e-4);
    const double step = args.get_double("step", 0.05);
    const double start = args.get_double("start", 0.8);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 24));
    const auto threads =
        util::resolve_thread_count(static_cast<unsigned>(args.get_int("threads", 0)));
    bench::banner("E7", "message-quantization loss (float vs 6-bit vs 5-bit)");

    const code::Dvbs2Code c(code::standard_params(rate));
    core::DecoderConfig cfg;
    cfg.schedule = core::Schedule::ZigzagForward;
    cfg.max_iterations = 30;

    comm::SimConfig sim;
    sim.limits.max_frames = frames;
    sim.limits.min_frames = frames / 2;
    sim.limits.target_bit_errors = 60;
    sim.limits.target_frame_errors = 8;
    sim.threads = threads;
    bench::SimMeter meter;
    sim.progress = meter.hook();

    // One independent decoder per worker (decoders own message memories).
    comm::DecodeFactory float_factory = [&](unsigned) {
        auto dec = std::make_shared<core::Decoder>(c, cfg);
        return [dec](const std::vector<double>& llr) {
            const auto r = dec->decode(llr);
            return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
        };
    };
    auto fixed_factory = [&](const quant::QuantSpec& spec) {
        return comm::DecodeFactory([&c, &cfg, spec](unsigned) {
            auto dec = std::make_shared<core::FixedDecoder>(c, cfg, spec);
            return [dec](const std::vector<double>& llr) {
                const auto r = dec->decode(llr);
                return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
            };
        });
    };

    const std::optional<double> opt_f =
        comm::find_threshold_db_parallel(c, float_factory, target, start, step, sim, 4.0);
    if (!opt_f) {
        std::cout << "E7 FAIL: float decoder never reached BER " << bench::sci(target, 0)
                  << " within the scan range\n";
        return 1;
    }
    const double th_f = *opt_f;
    const std::optional<double> th_6 = comm::find_threshold_db_parallel(
        c, fixed_factory(quant::kQuant6), target, th_f - step, step, sim, 4.0);
    const std::optional<double> th_5 = comm::find_threshold_db_parallel(
        c, fixed_factory(quant::kQuant5), target, th_f - step, step, sim, 4.0);

    const auto loss = [&](const std::optional<double>& th) {
        return th ? util::TextTable::num(*th - th_f, 2) : std::string("n/a");
    };
    const auto th_text = [](const std::optional<double>& th) {
        return th ? util::TextTable::num(*th, 2) : std::string("not found");
    };
    util::TextTable t;
    t.set_header({"decoder", "threshold @BER<" + bench::sci(target, 0) + " [dB]", "loss [dB]",
                  "paper loss [dB]"});
    t.add_row({"float (exact boxplus)", util::TextTable::num(th_f, 2), "0.00", "-"});
    t.add_row({"fixed 6-bit", th_text(th_6), loss(th_6), "~0.1"});
    t.add_row({"fixed 5-bit", th_text(th_5), loss(th_5), "~0.15-0.2"});
    t.print(std::cout);
    meter.print(std::cout);
    std::cout << "(threshold resolution " << step << " dB, " << frames
              << " frames/point, 30 iterations, " << c.params().name << ")\n";

    // Shape check: 6-bit within ~0.2 dB of float, 5-bit worse than or equal
    // to 6-bit, all thresholds found within the scan range.
    const bool pass = th_6 && th_5 && (*th_6 - th_f) <= 0.25 + 1e-9 &&
                      *th_5 >= *th_6 - step - 1e-9 && th_f < 3.9;
    std::cout << (pass ? "E7 PASS: quantization-loss ordering and magnitude match the paper\n"
                       : "E7 FAIL\n");
    return pass ? 0 : 1;
}
