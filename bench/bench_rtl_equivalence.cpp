// Experiment E10 — "synthesizable IP" validation: the cycle-driven
// architecture model (RAM banks, shuffle network, FU pipelines, boundary
// registers) must be bit-exact with the algorithmic fixed-point decoder.
//
// For a set of rates: run both models on the same noisy frames and compare
// (a) the complete check-to-variable message RAM after k iterations and
// (b) full decode outcomes (bits, iteration counts, convergence), before
// and after annealing the addressing.
//
//   ./bench_rtl_equivalence [--frames=2] [--iters=4]
#include <iostream>

#include "arch/anneal.hpp"
#include "arch/mapping.hpp"
#include "arch/rtl_model.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/decoder.hpp"
#include "enc/encoder.hpp"

using namespace dvbs2;

namespace {

std::vector<quant::QLLR> noisy_frame(const code::Dvbs2Code& c, double ebn0, std::uint64_t seed,
                                     const quant::QuantSpec& spec) {
    const enc::Encoder encoder(c);
    const auto cw = encoder.encode(enc::random_info_bits(c.k(), seed));
    comm::AwgnModem modem(comm::Modulation::Bpsk, seed + 31);
    const double sigma = comm::noise_sigma(ebn0, c.params().rate(), comm::Modulation::Bpsk);
    const auto llr = modem.transmit(cw, sigma);
    std::vector<quant::QLLR> q(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i) q[i] = quant::quantize(llr[i], spec);
    return q;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"frames", "iters"});
    const int frames = static_cast<int>(args.get_int("frames", 2));
    const int iters = static_cast<int>(args.get_int("iters", 4));
    bench::banner("E10", "bit-exactness: RTL model vs fixed-point reference");

    const code::CodeRate rates[] = {code::CodeRate::R1_4, code::CodeRate::R1_2,
                                    code::CodeRate::R3_5, code::CodeRate::R9_10};
    util::TextTable t;
    t.set_header({"Rate", "mapping", "frames", "messages equal", "decodes equal"});
    bool all_ok = true;
    for (auto rate : rates) {
        const code::Dvbs2Code c(code::standard_params(rate));
        for (const bool annealed : {false, true}) {
            arch::HardwareMapping map(c);
            if (annealed) {
                arch::AnnealConfig acfg;
                acfg.iterations = 600;
                arch::anneal_addressing(map, acfg);
            }
            arch::RtlConfig rc;
            rc.decoder.max_iterations = 30;
            arch::RtlDecoder rtl(c, map, rc);
            core::DecoderConfig ref_cfg;
            ref_cfg.schedule = core::Schedule::ZigzagSegmented;
            ref_cfg.max_iterations = 30;
            core::FixedDecoder ref(c, ref_cfg, rc.spec);
            ref.set_cn_order(map.extract_cn_order());

            bool msgs_ok = true, dec_ok = true;
            for (int f = 0; f < frames; ++f) {
                const auto ch = noisy_frame(c, 2.0, static_cast<std::uint64_t>(f) + 1, rc.spec);
                rtl.run_iterations(ch, iters);
                msgs_ok = msgs_ok && rtl.dump_c2v_canonical() == ref.run_and_dump_c2v(ch, iters);
                const auto a = rtl.decode_raw(ch);
                const auto b = ref.decode_raw(ch);
                dec_ok = dec_ok && a.info_bits == b.info_bits && a.iterations == b.iterations &&
                         a.converged == b.converged;
            }
            all_ok = all_ok && msgs_ok && dec_ok;
            t.add_row({code::to_string(rate), annealed ? "annealed" : "canonical",
                       util::TextTable::num((long long)frames), msgs_ok ? "yes" : "NO",
                       dec_ok ? "yes" : "NO"});
        }
    }
    t.print(std::cout);
    std::cout << (all_ok ? "E10 PASS: architecture model is bit-exact with the reference\n"
                         : "E10 FAIL\n");
    return all_ok ? 0 : 1;
}
