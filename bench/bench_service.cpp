// Service soak bench: the streaming decode service (src/service/) under
// sustained multi-tenant load — ≥1000 concurrent streams across mixed
// (rate, quant, schedule, backend) classes, several producer threads, and a
// shard-worker pool — plus a worker-scaling section that re-measures the
// PR 1 (parallel Monte-Carlo) and PR 3 (SIMD batching) speedup story on the
// service path: frames/s vs worker count, with the decoded-bit tally pinned
// invariant across worker counts (the service only re-batches; it must not
// change a bit).
//
//   bench_service                      # full soak (short frames, 6 classes)
//   bench_service --smoke --json=...  # CI mode: toy codes, seconds not minutes
//
// The JSON gate consumed by CI (.github/workflows/ci.yml) checks
// ordering_violations == 0, decode_failures == 0 and mean_batch_fill > 0.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "service/service.hpp"
#include "service/traffic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace dvbs2;

namespace {

struct ClassPlan {
    std::string label;
    code::CodeParams params;
    core::EngineSpec spec;
};

core::EngineSpec make_spec(core::DecoderBackend backend, core::Schedule schedule,
                           quant::QuantSpec q, int max_iters) {
    core::EngineSpec spec;
    spec.arith = core::Arithmetic::Fixed;
    spec.config.backend = backend;
    spec.config.schedule = schedule;
    spec.config.max_iterations = max_iters;
    spec.config.early_stop = true;
    spec.quant = q;
    return spec;
}

/// The mixed-tenant class set of the full soak: three rates, both shipped
/// quantizers, four schedules, SIMD plus one scalar class (the scalar class
/// exercises the preferred_batch()==1 scheduling path alongside the lane
/// blocks).
std::vector<ClassPlan> soak_plan(int iters) {
    using core::DecoderBackend;
    using core::Schedule;
    const auto frame = code::FrameSize::Short;
    return {
        {"r1/2-q6-zigzag-simd", code::standard_params(code::CodeRate::R1_2, frame),
         make_spec(DecoderBackend::Simd, Schedule::ZigzagForward, quant::kQuant6, iters)},
        {"r3/4-q6-layered-simd", code::standard_params(code::CodeRate::R3_4, frame),
         make_spec(DecoderBackend::Simd, Schedule::Layered, quant::kQuant6, iters)},
        {"r2/5-q5-zigzag-simd", code::standard_params(code::CodeRate::R2_5, frame),
         make_spec(DecoderBackend::Simd, Schedule::ZigzagForward, quant::kQuant5, iters)},
        {"r1/2-q5-two-phase-simd", code::standard_params(code::CodeRate::R1_2, frame),
         make_spec(DecoderBackend::Simd, Schedule::TwoPhase, quant::kQuant5, iters)},
        {"r3/4-q6-zigzag-scalar", code::standard_params(code::CodeRate::R3_4, frame),
         make_spec(DecoderBackend::Scalar, Schedule::ZigzagForward, quant::kQuant6, iters)},
        {"r2/5-q6-segmented-simd", code::standard_params(code::CodeRate::R2_5, frame),
         make_spec(DecoderBackend::Simd, Schedule::ZigzagSegmented, quant::kQuant6, iters)},
    };
}

/// CI smoke: same topology, toy codes — runs in seconds on one core.
std::vector<ClassPlan> smoke_plan(int iters) {
    using core::DecoderBackend;
    using core::Schedule;
    return {
        {"toy-zigzag-simd", code::toy_params(12, 7, 2, 6, 3),
         make_spec(DecoderBackend::Simd, Schedule::ZigzagForward, quant::kQuant6, iters)},
        {"toy-layered-scalar", code::toy_params(12, 7, 2, 6, 3),
         make_spec(DecoderBackend::Scalar, Schedule::Layered, quant::kQuant6, iters)},
    };
}

struct RunOutcome {
    service::TrafficReport traffic;
    service::ServiceMetrics metrics;
    double p50_min_s = 0.0, p50_max_s = 0.0;  // spread of per-stream medians
    std::vector<int> preferred;               // per class
    std::vector<std::size_t> frame_len;       // per class
};

RunOutcome run_once(const std::vector<ClassPlan>& plan,
                    const std::vector<code::Dvbs2Code>& codes, const service::ServiceConfig& cfg,
                    const service::TrafficOptions& opt, double ebn0_db) {
    service::DecodeService svc(cfg);
    std::vector<service::TrafficClass> classes;
    RunOutcome out;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const auto cls = svc.add_class(codes[i], plan[i].spec);
        classes.push_back({cls, &codes[i], ebn0_db});
        out.preferred.push_back(svc.class_preferred_batch(cls));
        out.frame_len.push_back(svc.class_frame_length(cls));
    }
    out.traffic = service::run_traffic(svc, classes, opt);
    out.metrics = svc.metrics();
    // Spread of per-stream p50 latencies (sampled from the first 64 streams:
    // stream ids are assigned densely from 0 by open_stream).
    const std::size_t sample = std::min<std::size_t>(opt.streams, 64);
    for (std::size_t s = 0; s < sample; ++s) {
        const auto ls = svc.stream_latency(static_cast<service::StreamId>(s));
        if (ls.frames == 0) continue;
        if (out.p50_max_s == 0.0) out.p50_min_s = out.p50_max_s = ls.p50_s;
        out.p50_min_s = std::min(out.p50_min_s, ls.p50_s);
        out.p50_max_s = std::max(out.p50_max_s, ls.p50_s);
    }
    svc.stop();
    return out;
}

void print_outcome(const std::vector<ClassPlan>& plan, const RunOutcome& o) {
    util::TextTable ct;
    ct.set_header({"class", "N", "preferred_batch"});
    for (std::size_t i = 0; i < plan.size(); ++i)
        ct.add_row({plan[i].label, util::TextTable::num((long long)o.frame_len[i]),
                    util::TextTable::num((long long)o.preferred[i])});
    ct.print(std::cout);

    const auto& m = o.metrics;
    const auto& t = o.traffic;
    util::TextTable st;
    st.set_header({"metric", "value"});
    st.add_row({"frames submitted", util::TextTable::num((long long)t.submitted)});
    st.add_row({"accepted / rejected", util::TextTable::num((long long)t.accepted) + " / " +
                                           util::TextTable::num((long long)t.rejected)});
    st.add_row({"delivered", util::TextTable::num((long long)t.delivered)});
    st.add_row({"throughput (frames/s)",
                util::TextTable::num(t.wall_s > 0 ? (double)t.delivered / t.wall_s : 0.0, 1)});
    st.add_row({"ordering violations (svc+cb)",
                util::TextTable::num((long long)(m.ordering_violations + t.ordering_violations))});
    st.add_row({"decode failures", util::TextTable::num((long long)m.decode_failures)});
    st.add_row({"peak queue depth", util::TextTable::num((long long)m.peak_queue_depth)});
    st.add_row({"batches (full / linger)",
                util::TextTable::num((long long)m.batches) + " (" +
                    util::TextTable::num((long long)m.full_batches) + " / " +
                    util::TextTable::num((long long)m.linger_batches) + ")"});
    st.add_row({"mean batch fill", util::TextTable::num(m.mean_batch_fill(), 3)});
    st.add_row({"latency p50/p90/p99 (ms)", util::TextTable::num(m.latency.percentile(0.5) * 1e3, 2) +
                                                " / " +
                                                util::TextTable::num(m.latency.percentile(0.9) * 1e3, 2) +
                                                " / " +
                                                util::TextTable::num(m.latency.percentile(0.99) * 1e3, 2)});
    st.add_row({"mean iterations", util::TextTable::num(m.convergence.mean_iterations(), 2)});
    st.add_row({"converged fraction", util::TextTable::num(m.convergence.convergence_rate(), 3)});
    st.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
    try {
        util::CliArgs args(argc, argv,
                           {"smoke", "streams", "frames", "producers", "workers", "iters",
                            "ebn0", "queue", "linger-us", "json"});
        const bool smoke = args.has("smoke");
        bench::banner("service soak",
                      smoke ? "streaming decode service (smoke: toy codes)"
                            : "streaming decode service under multi-tenant load");

        const int iters = static_cast<int>(args.get_int("iters", 10));
        const double ebn0 = args.get_double("ebn0", 3.5);
        const auto plan = smoke ? smoke_plan(iters) : soak_plan(iters);
        std::vector<code::Dvbs2Code> codes;
        codes.reserve(plan.size());
        for (const auto& p : plan) codes.emplace_back(p.params);

        service::ServiceConfig cfg;
        cfg.workers = static_cast<unsigned>(args.get_int("workers", 4));
        cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue", smoke ? 128 : 512));
        cfg.max_linger = std::chrono::microseconds(args.get_int("linger-us", smoke ? 2000 : 20000));
        cfg.admission = service::Admission::Block;  // soak measures fill, not drops

        service::TrafficOptions opt;
        opt.streams = static_cast<std::size_t>(args.get_int("streams", smoke ? 96 : 1008));
        opt.frames_per_stream = static_cast<std::size_t>(args.get_int("frames", smoke ? 8 : 3));
        opt.producers = static_cast<unsigned>(args.get_int("producers", 4));

        std::cout << "hw_concurrency=" << std::thread::hardware_concurrency() << " workers="
                  << cfg.workers << " streams=" << opt.streams << " frames/stream="
                  << opt.frames_per_stream << " producers=" << opt.producers << "\n\n";

        const RunOutcome main_run = run_once(plan, codes, cfg, opt, ebn0);
        print_outcome(plan, main_run);

        // --- worker scaling: the PR 1 / PR 3 speedup story on this path ---
        // Same deterministic traffic at 1/2/4 workers. The decoded-bit tally
        // must be identical (decode_batch is bit-pinned; the service only
        // re-batches), mirroring the 1=2=8 thread pin of the Monte-Carlo
        // engine. On a 1-core container the speedup is honestly ~1x —
        // hw_concurrency lands in the JSON for that reason.
        service::TrafficOptions scale_opt = opt;
        scale_opt.streams = smoke ? 48 : 240;
        scale_opt.frames_per_stream = 2;
        struct ScaleRow {
            unsigned workers;
            double frames_per_s;
            double speedup;
            std::uint64_t bit_tally;
        };
        std::vector<ScaleRow> scaling;
        bool deterministic = true;
        for (unsigned w : {1u, 2u, 4u}) {
            service::ServiceConfig scfg = cfg;
            scfg.workers = w;
            const RunOutcome r = run_once(plan, codes, scfg, scale_opt, ebn0);
            const double fps =
                r.traffic.wall_s > 0 ? (double)r.traffic.delivered / r.traffic.wall_s : 0.0;
            scaling.push_back({w, fps, scaling.empty() ? 1.0 : fps / scaling.front().frames_per_s,
                               r.traffic.decoded_bit_tally});
            deterministic = deterministic &&
                            scaling.front().bit_tally == r.traffic.decoded_bit_tally &&
                            r.traffic.delivered == scale_opt.streams * scale_opt.frames_per_stream;
        }
        std::cout << "\nworker scaling (deterministic traffic, bit tally must not move):\n";
        util::TextTable wt;
        wt.set_header({"workers", "frames/s", "speedup vs 1", "decoded-bit tally"});
        for (const auto& r : scaling)
            wt.add_row({util::TextTable::num((long long)r.workers),
                        util::TextTable::num(r.frames_per_s, 1), util::TextTable::num(r.speedup, 2),
                        util::TextTable::num((long long)r.bit_tally)});
        wt.print(std::cout);

        const auto& m = main_run.metrics;
        const auto& t = main_run.traffic;
        const std::uint64_t violations = m.ordering_violations + t.ordering_violations;
        const bool pass = violations == 0 && m.decode_failures == 0 && deterministic &&
                          t.delivered == t.accepted;

        if (args.has("json")) {
            std::ofstream os(args.get("json", ""));
            os << "{\n  \"bench\": \"bench_service\",\n"
               << "  \"mode\": \"" << (smoke ? "smoke" : "soak") << "\",\n"
               << "  \"hw_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
               << "  \"workers\": " << cfg.workers << ",\n"
               << "  \"streams\": " << opt.streams << ",\n"
               << "  \"frames_per_stream\": " << opt.frames_per_stream << ",\n"
               << "  \"producers\": " << opt.producers << ",\n"
               << "  \"queue_capacity\": " << cfg.queue_capacity << ",\n"
               << "  \"max_linger_us\": " << cfg.max_linger.count() << ",\n"
               << "  \"classes\": [\n";
            for (std::size_t i = 0; i < plan.size(); ++i)
                os << "    {\"label\": \"" << plan[i].label << "\", \"n\": " << main_run.frame_len[i]
                   << ", \"preferred_batch\": " << main_run.preferred[i] << "}"
                   << (i + 1 < plan.size() ? "," : "") << "\n";
            os << "  ],\n"
               << "  \"submitted\": " << t.submitted << ",\n"
               << "  \"accepted\": " << t.accepted << ",\n"
               << "  \"rejected\": " << t.rejected << ",\n"
               << "  \"delivered\": " << t.delivered << ",\n"
               << "  \"frames_per_s\": " << (t.wall_s > 0 ? (double)t.delivered / t.wall_s : 0.0)
               << ",\n"
               << "  \"wall_s\": " << t.wall_s << ",\n"
               << "  \"ordering_violations\": " << violations << ",\n"
               << "  \"decode_failures\": " << m.decode_failures << ",\n"
               << "  \"peak_queue_depth\": " << m.peak_queue_depth << ",\n"
               << "  \"batches\": " << m.batches << ",\n"
               << "  \"full_batches\": " << m.full_batches << ",\n"
               << "  \"linger_batches\": " << m.linger_batches << ",\n"
               << "  \"mean_batch_fill\": " << m.mean_batch_fill() << ",\n"
               << "  \"batch_fill_deciles\": [";
            for (std::size_t i = 0; i < m.batch_fill_deciles.size(); ++i)
                os << (i ? ", " : "") << m.batch_fill_deciles[i];
            os << "],\n"
               << "  \"latency_p50_s\": " << m.latency.percentile(0.5) << ",\n"
               << "  \"latency_p90_s\": " << m.latency.percentile(0.9) << ",\n"
               << "  \"latency_p99_s\": " << m.latency.percentile(0.99) << ",\n"
               << "  \"stream_p50_spread_s\": [" << main_run.p50_min_s << ", "
               << main_run.p50_max_s << "],\n"
               << "  \"mean_iterations\": " << m.convergence.mean_iterations() << ",\n"
               << "  \"converged_fraction\": " << m.convergence.convergence_rate() << ",\n"
               << "  \"scaling\": [\n";
            for (std::size_t i = 0; i < scaling.size(); ++i)
                os << "    {\"workers\": " << scaling[i].workers
                   << ", \"frames_per_s\": " << scaling[i].frames_per_s
                   << ", \"speedup\": " << scaling[i].speedup
                   << ", \"bit_tally\": " << scaling[i].bit_tally << "}"
                   << (i + 1 < scaling.size() ? "," : "") << "\n";
            os << "  ],\n"
               << "  \"deterministic_across_workers\": " << (deterministic ? "true" : "false")
               << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
            std::cout << "\nwrote " << args.get("json", "") << "\n";
        }

        std::cout << (pass ? "\nSERVICE PASS: in-order, loss-accounted, deterministic across "
                             "worker counts\n"
                           : "\nSERVICE FAIL: ordering/determinism/delivery invariant broken\n");
        return pass ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "bench_service: " << e.what() << "\n";
        return 2;
    }
}
