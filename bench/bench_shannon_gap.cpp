// Experiment E8 — paper Sec. 1: "This huge maximum codeword length is the
// reason for the outstanding communications performance (~0.7 dB to
// Shannon) of this DVB-S2 LDPC code proposal."
//
// Measures the decoding threshold (BER target at 30 iterations) of selected
// rates and compares against the binary-input AWGN Shannon limit. Our codes
// are synthetic IRA ensembles with the standard's structure, so gaps land
// in the same regime (≈0.7-1.2 dB at 30 iterations) rather than matching
// the standard's hand-optimized tables exactly — see EXPERIMENTS.md.
//
//   ./bench_shannon_gap [--rates=1/2,3/4] [--target=1e-4] [--frames=12]
//                       [--step=0.15] [--all] [--threads=N]
//
// Runs on the frame-parallel Monte-Carlo engine (comm/parallel.hpp):
// --threads (default: DVBS2_THREADS env or hardware_concurrency) scales
// frames/sec while leaving every measured number bit-identical.
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "comm/capacity.hpp"
#include "comm/parallel.hpp"
#include "core/decoder.hpp"

using namespace dvbs2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv, {"rates", "target", "frames", "step", "all", "threads"});
    const double target = args.get_double("target", 1e-4);
    const double step = args.get_double("step", 0.15);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 12));
    const auto threads =
        util::resolve_thread_count(static_cast<unsigned>(args.get_int("threads", 0)));
    bench::banner("E8", "gap to the Shannon limit at 30 iterations");

    std::vector<code::CodeRate> rates;
    if (args.has("all")) {
        rates = code::all_rates();
    } else {
        std::stringstream ss(args.get("rates", "1/2,3/4"));
        std::string tok;
        while (std::getline(ss, tok, ',')) rates.push_back(bench::parse_rate(tok));
    }

    comm::SimConfig sim;
    sim.limits.max_frames = frames;
    sim.limits.min_frames = frames / 2;
    sim.limits.target_bit_errors = 60;
    sim.limits.target_frame_errors = 8;
    sim.threads = threads;
    bench::SimMeter meter;
    sim.progress = meter.hook();

    util::TextTable t;
    t.set_header({"Rate", "Shannon (BPSK) [dB]", "Shannon (unconstr.) [dB]",
                  "threshold [dB]", "gap [dB]"});
    bool pass = true;
    for (auto rate : rates) {
        const code::Dvbs2Code c(code::standard_params(rate));
        core::DecoderConfig cfg;
        cfg.schedule = core::Schedule::ZigzagForward;
        cfg.max_iterations = 30;
        // One independent decoder per worker: decoders own message memories.
        comm::DecodeFactory factory = [&](unsigned) {
            auto dec = std::make_shared<core::Decoder>(c, cfg);
            return [dec](const std::vector<double>& llr) {
                const auto r = dec->decode(llr);
                return comm::DecodeOutcome{r.info_bits, r.converged, r.iterations};
            };
        };
        const double limit = comm::shannon_limit_bpsk_db(c.params().rate());
        const std::optional<double> th = comm::find_threshold_db_parallel(
            c, factory, target, limit + 0.3, step, sim, limit + 3.0);
        // No threshold within the scan range: the gap is not "3 dB", it is
        // unbounded — report it as such and fail the shape check.
        const double gap = th ? *th - limit : std::numeric_limits<double>::infinity();
        pass = pass && th.has_value() && gap < 2.0;  // same regime as the paper's 0.7 dB
        t.add_row({code::to_string(rate), util::TextTable::num(limit, 2),
                   util::TextTable::num(comm::shannon_limit_unconstrained_db(c.params().rate()), 2),
                   th ? util::TextTable::num(*th, 2) : ">" + util::TextTable::num(limit + 3.0, 2),
                   th ? util::TextTable::num(gap, 2) : "unbounded"});
    }
    t.print(std::cout);
    meter.print(std::cout);
    std::cout << "(paper: ~0.7 dB for the standard's tables; synthetic structural-twin codes at "
                 "30 iterations and "
              << frames << " frames/point land in the same regime)\n";
    std::cout << (pass ? "E8 PASS: every measured gap is in the sub-2 dB capacity-approaching "
                         "regime\n"
                       : "E8 FAIL\n");
    return pass ? 0 : 1;
}
