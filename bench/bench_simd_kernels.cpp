// SIMD decoder bench — single-thread throughput of the two SIMD fixed-point
// lane mappings vs the scalar MpDecoder<FixedArith> reference, per schedule,
// on the full-size code:
//
//   * group-parallel (lane = functional unit): single-frame decoding,
//     TwoPhase and ZigzagSegmented schedules only;
//   * frame-per-lane (lane = frame): batched decoding of W frames in
//     lockstep, every schedule.
//
// Every timed channel vector is also used for a message-level bit-exactness
// check (c2v / v2c / backward state for the group engine, per-lane c2v
// extraction for the batch engine); any divergence makes the bench exit
// nonzero, so the CI perf-smoke job doubles as an end-to-end equivalence
// gate.
//
// Flags:
//   --rate=1/2        code rate under test (default 1/2)
//   --iters=10        message-passing iterations per frame
//   --frames=8        timed frames per engine (after 1 warmup run)
//   --json=PATH       write machine-readable results (BENCH_decoder.json)
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "core/arith.hpp"
#include "core/decoder.hpp"
#include "core/mp_decoder.hpp"
#include "core/simd/batch_decoder.hpp"
#include "core/simd/simd_decoder.hpp"
#include "quant/fixed.hpp"

#include <chrono>

using namespace dvbs2;

namespace {

std::uint64_t splitmix64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<quant::QLLR> random_channel(const code::Dvbs2Code& code, std::uint64_t seed) {
    std::vector<quant::QLLR> ch(static_cast<std::size_t>(code.n()));
    const std::uint64_t span = static_cast<std::uint64_t>(2 * quant::kQuant6.max_raw() + 1);
    for (auto& v : ch)
        v = static_cast<quant::QLLR>(static_cast<std::int64_t>(splitmix64(seed) % span) -
                                     quant::kQuant6.max_raw());
    return ch;
}

struct Row {
    std::string schedule;
    bool has_group = false;   // group-parallel engine supports this schedule
    double scalar_mbps = 0.0;
    double simd_mbps = 0.0;   // group-parallel, single frame
    double batch_mbps = 0.0;  // frame-per-lane, W frames per block
    double speedup = 0.0;       // group vs scalar
    double batch_speedup = 0.0; // batch vs scalar
    bool bit_exact = false;
};

/// Times `frames` runs of `iters` full iterations; returns coded Mbit/s.
template <class Engine>
double time_engine(Engine& eng, const std::vector<std::vector<quant::QLLR>>& channels,
                   int iters, int n_bits) {
    eng.run_iterations(channels[0], iters);  // warmup: touch all state once
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& ch : channels) eng.run_iterations(ch, iters);
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return s > 0.0 ? static_cast<double>(n_bits) * static_cast<double>(channels.size()) / s / 1e6
                   : 0.0;
}

/// Times the frame-per-lane engine over ceil(frames / lanes) batch blocks of
/// the frame-major concatenated channel buffer; returns coded Mbit/s over
/// all frames (partial last blocks decode at reduced lane occupancy, which
/// is exactly what a real batched workload pays).
double time_batch_engine(core::SimdBatchFixedDecoder& eng, const std::vector<quant::QLLR>& flat,
                         std::size_t frames, std::size_t n, int iters, int n_bits) {
    const auto lanes = static_cast<std::size_t>(core::SimdBatchFixedDecoder::lanes());
    const std::size_t first = std::min(lanes, frames);
    eng.run_iterations(std::span<const quant::QLLR>(flat.data(), first * n), first, iters);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t f0 = 0; f0 < frames; f0 += lanes) {
        const std::size_t cnt = std::min(lanes, frames - f0);
        eng.run_iterations(std::span<const quant::QLLR>(flat.data() + f0 * n, cnt * n), cnt,
                           iters);
    }
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return s > 0.0 ? static_cast<double>(n_bits) * static_cast<double>(frames) / s / 1e6 : 0.0;
}

bool messages_equal(const core::MpDecoder<core::FixedArith>& a, const core::SimdFixedDecoder& b) {
    return a.c2v_messages() == b.c2v_messages() && a.v2c_messages() == b.v2c_messages() &&
           a.backward_messages() == b.backward_messages();
}

/// Frame-per-lane equivalence: run one full batch block, then check every
/// lane's c2v state against a scalar decode of that lane's frame.
bool batch_lanes_exact(core::MpDecoder<core::FixedArith>& scalar,
                       core::SimdBatchFixedDecoder& batch, const std::vector<quant::QLLR>& flat,
                       const std::vector<std::vector<quant::QLLR>>& channels, std::size_t n,
                       int iters) {
    const auto lanes = static_cast<std::size_t>(core::SimdBatchFixedDecoder::lanes());
    const std::size_t cnt = std::min(lanes, channels.size());
    batch.run_iterations(std::span<const quant::QLLR>(flat.data(), cnt * n), cnt, iters);
    for (std::size_t l = 0; l < cnt; ++l) {
        scalar.run_iterations(channels[l], iters);
        if (batch.c2v_messages(l) != scalar.c2v_messages()) return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    util::CliArgs args(argc, argv, {"rate", "iters", "frames", "json"});
    const code::CodeRate rate = bench::parse_rate(args.get("rate", "1/2"));
    const int iters = static_cast<int>(args.get_int("iters", 10));
    const int frames = static_cast<int>(args.get_int("frames", 8));

    bench::banner("SIMD", "SIMD lane mappings vs scalar reference (1 thread)");
    std::cout << "backend=" << core::simd_backend_name() << " width=" << core::simd_backend_width()
              << " rate=" << code::to_string(rate) << " iters=" << iters << " frames=" << frames
              << "\n\n";

    const code::Dvbs2Code code(code::standard_params(rate));
    const auto n = static_cast<std::size_t>(code.n());
    std::vector<std::vector<quant::QLLR>> channels;
    std::vector<quant::QLLR> flat;  // frame-major concatenation for batches
    for (int f = 0; f < frames; ++f) {
        channels.push_back(random_channel(code, 0xBE11C + static_cast<std::uint64_t>(f)));
        flat.insert(flat.end(), channels.back().begin(), channels.back().end());
    }

    const quant::BoxplusTable table(quant::kQuant6);
    std::vector<Row> rows;
    bool all_exact = true;
    double max_speedup = 0.0;
    double max_batch_speedup = 0.0;
    util::TextTable t;
    t.set_header({"Schedule", "scalar Mbit/s", "group Mbit/s", "batch Mbit/s", "group x",
                  "batch x", "bit-exact"});
    for (const core::Schedule schedule :
         {core::Schedule::TwoPhase, core::Schedule::ZigzagForward,
          core::Schedule::ZigzagSegmented, core::Schedule::ZigzagMap, core::Schedule::Layered}) {
        core::DecoderConfig cfg;
        cfg.schedule = schedule;
        cfg.rule = core::CheckRule::Exact;
        core::MpDecoder<core::FixedArith> scalar(
            code, cfg, core::FixedArith(cfg.rule, quant::kQuant6, &table, cfg.normalization,
                                        cfg.offset));

        Row row;
        row.schedule = core::to_string(schedule);
        row.has_group = schedule == core::Schedule::TwoPhase ||
                        schedule == core::Schedule::ZigzagSegmented;
        row.scalar_mbps = time_engine(scalar, channels, iters, code.n());

        row.bit_exact = true;
        if (row.has_group) {
            core::SimdFixedDecoder simd(code, cfg, quant::kQuant6);
            row.simd_mbps = time_engine(simd, channels, iters, code.n());
            row.speedup = row.scalar_mbps > 0.0 ? row.simd_mbps / row.scalar_mbps : 0.0;
            // Both engines last decoded channels.back(); compare final
            // state, then re-check on the first vector for good measure.
            row.bit_exact = messages_equal(scalar, simd);
            if (row.bit_exact) {
                scalar.run_iterations(channels[0], iters);
                simd.run_iterations(channels[0], iters);
                row.bit_exact = messages_equal(scalar, simd);
            }
        }

        core::SimdBatchFixedDecoder batch(code, cfg, quant::kQuant6);
        row.batch_mbps = time_batch_engine(batch, flat, static_cast<std::size_t>(frames), n,
                                           iters, code.n());
        row.batch_speedup = row.scalar_mbps > 0.0 ? row.batch_mbps / row.scalar_mbps : 0.0;
        row.bit_exact =
            row.bit_exact && batch_lanes_exact(scalar, batch, flat, channels, n, iters);

        all_exact = all_exact && row.bit_exact;
        max_speedup = std::max(max_speedup, row.speedup);
        max_batch_speedup = std::max(max_batch_speedup, row.batch_speedup);
        rows.push_back(row);
        t.add_row({row.schedule, util::TextTable::num(row.scalar_mbps, 1),
                   row.has_group ? util::TextTable::num(row.simd_mbps, 1) : "-",
                   util::TextTable::num(row.batch_mbps, 1),
                   row.has_group ? util::TextTable::num(row.speedup, 2) : "-",
                   util::TextTable::num(row.batch_speedup, 2), row.bit_exact ? "yes" : "NO"});
    }
    t.print(std::cout);

    if (args.has("json")) {
        std::ofstream os(args.get("json", ""));
        os << "{\n  \"bench\": \"bench_simd_kernels\",\n"
           << "  \"backend\": \"" << core::simd_backend_name() << "\",\n"
           << "  \"width\": " << core::simd_backend_width() << ",\n"
           << "  \"lanes\": " << core::SimdBatchFixedDecoder::lanes() << ",\n"
           << "  \"rate\": \"" << code::to_string(rate) << "\",\n"
           << "  \"iters\": " << iters << ",\n  \"frames\": " << frames << ",\n"
           << "  \"results\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            os << "    {\"schedule\": \"" << r.schedule << "\", \"scalar_mbps\": " << r.scalar_mbps
               << ", \"simd_mbps\": " << r.simd_mbps << ", \"batch_mbps\": " << r.batch_mbps
               << ", \"speedup\": " << r.speedup << ", \"batch_speedup\": " << r.batch_speedup
               << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"max_speedup\": " << max_speedup << ",\n"
           << "  \"max_batch_speedup\": " << max_batch_speedup << ",\n"
           << "  \"all_bit_exact\": " << (all_exact ? "true" : "false") << "\n}\n";
        std::cout << "\nwrote " << args.get("json", "") << "\n";
    }

    std::cout << (all_exact
                      ? "SIMD PASS: all lane mappings bit-exact with the scalar reference\n"
                      : "SIMD FAIL: message divergence from the scalar reference\n");
    return all_exact ? 0 : 1;
}
