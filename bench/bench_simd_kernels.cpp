// SIMD decoder bench — single-thread throughput of the group-parallel SIMD
// fixed-point backend vs the scalar MpDecoder<FixedArith> reference, per
// schedule, on the full-size code. Every timed channel vector is also used
// for a message-level bit-exactness check (c2v / v2c / backward after the
// timed iteration count); any divergence makes the bench exit nonzero, so
// the CI perf-smoke job doubles as an end-to-end equivalence gate.
//
// Flags:
//   --rate=1/2        code rate under test (default 1/2)
//   --iters=10        message-passing iterations per frame
//   --frames=8        timed frames per engine (after 1 warmup frame)
//   --json=PATH       write machine-readable results (BENCH_decoder.json)
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "core/arith.hpp"
#include "core/decoder.hpp"
#include "core/mp_decoder.hpp"
#include "core/simd/simd_decoder.hpp"
#include "quant/fixed.hpp"

#include <chrono>

using namespace dvbs2;

namespace {

std::uint64_t splitmix64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<quant::QLLR> random_channel(const code::Dvbs2Code& code, std::uint64_t seed) {
    std::vector<quant::QLLR> ch(static_cast<std::size_t>(code.n()));
    const std::uint64_t span = static_cast<std::uint64_t>(2 * quant::kQuant6.max_raw() + 1);
    for (auto& v : ch)
        v = static_cast<quant::QLLR>(static_cast<std::int64_t>(splitmix64(seed) % span) -
                                     quant::kQuant6.max_raw());
    return ch;
}

struct Row {
    std::string schedule;
    double scalar_mbps = 0.0;
    double simd_mbps = 0.0;
    double speedup = 0.0;
    bool bit_exact = false;
};

/// Times `frames` runs of `iters` full iterations; returns coded Mbit/s.
template <class Engine>
double time_engine(Engine& eng, const std::vector<std::vector<quant::QLLR>>& channels,
                   int iters, int n_bits) {
    eng.run_iterations(channels[0], iters);  // warmup: touch all state once
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& ch : channels) eng.run_iterations(ch, iters);
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return s > 0.0 ? static_cast<double>(n_bits) * static_cast<double>(channels.size()) / s / 1e6
                   : 0.0;
}

bool messages_equal(const core::MpDecoder<core::FixedArith>& a, const core::SimdFixedDecoder& b) {
    return a.c2v_messages() == b.c2v_messages() && a.v2c_messages() == b.v2c_messages() &&
           a.backward_messages() == b.backward_messages();
}

}  // namespace

int main(int argc, char** argv) {
    util::CliArgs args(argc, argv, {"rate", "iters", "frames", "json"});
    const code::CodeRate rate = bench::parse_rate(args.get("rate", "1/2"));
    const int iters = static_cast<int>(args.get_int("iters", 10));
    const int frames = static_cast<int>(args.get_int("frames", 8));

    bench::banner("SIMD", "group-parallel SIMD backend vs scalar reference (1 thread)");
    std::cout << "backend=" << core::simd_backend_name() << " width=" << core::simd_backend_width()
              << " rate=" << code::to_string(rate) << " iters=" << iters << " frames=" << frames
              << "\n\n";

    const code::Dvbs2Code code(code::standard_params(rate));
    std::vector<std::vector<quant::QLLR>> channels;
    for (int f = 0; f < frames; ++f)
        channels.push_back(random_channel(code, 0xBE11C + static_cast<std::uint64_t>(f)));

    const quant::BoxplusTable table(quant::kQuant6);
    std::vector<Row> rows;
    bool all_exact = true;
    double max_speedup = 0.0;
    util::TextTable t;
    t.set_header({"Schedule", "scalar Mbit/s", "SIMD Mbit/s", "speedup", "bit-exact"});
    for (const core::Schedule schedule :
         {core::Schedule::TwoPhase, core::Schedule::ZigzagSegmented}) {
        core::DecoderConfig cfg;
        cfg.schedule = schedule;
        cfg.rule = core::CheckRule::Exact;
        core::MpDecoder<core::FixedArith> scalar(
            code, cfg, core::FixedArith(cfg.rule, quant::kQuant6, &table, cfg.normalization,
                                        cfg.offset));
        core::SimdFixedDecoder simd(code, cfg, quant::kQuant6);

        Row row;
        row.schedule = core::to_string(schedule);
        row.scalar_mbps = time_engine(scalar, channels, iters, code.n());
        row.simd_mbps = time_engine(simd, channels, iters, code.n());
        row.speedup = row.scalar_mbps > 0.0 ? row.simd_mbps / row.scalar_mbps : 0.0;

        // Both engines last decoded channels.back(); compare final state,
        // then re-check on the first vector for good measure.
        row.bit_exact = messages_equal(scalar, simd);
        if (row.bit_exact) {
            scalar.run_iterations(channels[0], iters);
            simd.run_iterations(channels[0], iters);
            row.bit_exact = messages_equal(scalar, simd);
        }
        all_exact = all_exact && row.bit_exact;
        max_speedup = std::max(max_speedup, row.speedup);
        rows.push_back(row);
        t.add_row({row.schedule, util::TextTable::num(row.scalar_mbps, 1),
                   util::TextTable::num(row.simd_mbps, 1), util::TextTable::num(row.speedup, 2),
                   row.bit_exact ? "yes" : "NO"});
    }
    t.print(std::cout);

    if (args.has("json")) {
        std::ofstream os(args.get("json", ""));
        os << "{\n  \"bench\": \"bench_simd_kernels\",\n"
           << "  \"backend\": \"" << core::simd_backend_name() << "\",\n"
           << "  \"width\": " << core::simd_backend_width() << ",\n"
           << "  \"rate\": \"" << code::to_string(rate) << "\",\n"
           << "  \"iters\": " << iters << ",\n  \"frames\": " << frames << ",\n"
           << "  \"results\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            os << "    {\"schedule\": \"" << r.schedule << "\", \"scalar_mbps\": " << r.scalar_mbps
               << ", \"simd_mbps\": " << r.simd_mbps << ", \"speedup\": " << r.speedup
               << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"max_speedup\": " << max_speedup << ",\n"
           << "  \"all_bit_exact\": " << (all_exact ? "true" : "false") << "\n}\n";
        std::cout << "\nwrote " << args.get("json", "") << "\n";
    }

    std::cout << (all_exact ? "SIMD PASS: all schedules bit-exact with the scalar reference\n"
                            : "SIMD FAIL: message divergence from the scalar reference\n");
    return all_exact ? 0 : 1;
}
