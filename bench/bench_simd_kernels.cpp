// SIMD decoder bench — single-thread throughput of the two SIMD fixed-point
// lane mappings vs the scalar MpDecoder<FixedArith> reference, per schedule,
// on the full-size code:
//
//   * group-parallel (lane = functional unit): single-frame decoding,
//     TwoPhase and ZigzagSegmented schedules only;
//   * frame-per-lane (lane = frame): batched decoding of W frames in
//     lockstep, every schedule.
//
// Every timed channel vector is also used for a message-level bit-exactness
// check (c2v / v2c / backward state for the group engine, per-lane c2v
// extraction for the batch engine); any divergence makes the bench exit
// nonzero, so the CI perf-smoke job doubles as an end-to-end equivalence
// gate.
//
// A second section measures per-lane early termination with lane compaction
// (decode_stream) on real noisy frames at an operating SNR: fixed-budget vs
// early-stopping effective throughput, mean iterations, and a frame-by-frame
// equivalence gate against the scalar early-stopping reference (codeword,
// iteration count and converged flag must match bit for bit; any divergence
// makes the bench exit nonzero).
//
// Flags:
//   --rate=1/2        code rate under test (default 1/2)
//   --iters=10        message-passing iterations per frame
//   --frames=8        timed frames per engine (after 1 warmup run)
//   --snr=2.0         Eb/N0 (dB) of the early-termination section
//   --es-frames=32    noisy frames of the early-termination section
//   --json=PATH       write machine-readable results (BENCH_decoder.json)
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/ir/transform.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/arith.hpp"
#include "core/decoder.hpp"
#include "core/mp_decoder.hpp"
#include "core/simd/batch_decoder.hpp"
#include "core/simd/simd_decoder.hpp"
#include "enc/encoder.hpp"
#include "quant/fixed.hpp"
#include "util/bitvec.hpp"

#include <chrono>

using namespace dvbs2;

namespace {

std::uint64_t splitmix64(std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<quant::QLLR> random_channel(const code::Dvbs2Code& code, std::uint64_t seed) {
    std::vector<quant::QLLR> ch(static_cast<std::size_t>(code.n()));
    const std::uint64_t span = static_cast<std::uint64_t>(2 * quant::kQuant6.max_raw() + 1);
    for (auto& v : ch)
        v = static_cast<quant::QLLR>(static_cast<std::int64_t>(splitmix64(seed) % span) -
                                     quant::kQuant6.max_raw());
    return ch;
}

struct Row {
    std::string schedule;
    bool has_group = false;   // group-parallel engine supports this schedule
    double scalar_mbps = 0.0;
    double simd_mbps = 0.0;   // group-parallel, single frame
    double batch_mbps = 0.0;  // frame-per-lane, W frames per block
    double speedup = 0.0;       // group vs scalar
    double batch_speedup = 0.0; // batch vs scalar
    bool bit_exact = false;
};

/// Times `frames` runs of `iters` full iterations; returns coded Mbit/s.
template <class Engine>
double time_engine(Engine& eng, const std::vector<std::vector<quant::QLLR>>& channels,
                   int iters, int n_bits) {
    eng.run_iterations(channels[0], iters);  // warmup: touch all state once
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& ch : channels) eng.run_iterations(ch, iters);
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return s > 0.0 ? static_cast<double>(n_bits) * static_cast<double>(channels.size()) / s / 1e6
                   : 0.0;
}

/// Times the frame-per-lane engine over ceil(frames / lanes) batch blocks of
/// the frame-major concatenated channel buffer; returns coded Mbit/s over
/// all frames (partial last blocks decode at reduced lane occupancy, which
/// is exactly what a real batched workload pays).
double time_batch_engine(core::SimdBatchFixedDecoder& eng, const std::vector<quant::QLLR>& flat,
                         std::size_t frames, std::size_t n, int iters, int n_bits) {
    const auto lanes = static_cast<std::size_t>(core::SimdBatchFixedDecoder::lanes());
    const std::size_t first = std::min(lanes, frames);
    eng.run_iterations(std::span<const quant::QLLR>(flat.data(), first * n), first, iters);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t f0 = 0; f0 < frames; f0 += lanes) {
        const std::size_t cnt = std::min(lanes, frames - f0);
        eng.run_iterations(std::span<const quant::QLLR>(flat.data() + f0 * n, cnt * n), cnt,
                           iters);
    }
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return s > 0.0 ? static_cast<double>(n_bits) * static_cast<double>(frames) / s / 1e6 : 0.0;
}

/// Encoded random codewords through an AWGN channel at `ebn0_db`, quantized
/// to the decoder's fixed point — realistic traffic whose per-frame
/// convergence times vary, which is what early termination exploits.
std::vector<std::vector<quant::QLLR>> noisy_channels(const code::Dvbs2Code& code,
                                                     double ebn0_db, int frames) {
    const auto& cp = code.params();
    const double sigma = comm::noise_sigma(ebn0_db, cp.rate(), comm::Modulation::Bpsk);
    const enc::Encoder encoder(code);
    std::vector<std::vector<quant::QLLR>> out;
    std::uint64_t seed = 0xE54117ULL;
    for (int f = 0; f < frames; ++f) {
        util::BitVec info(static_cast<std::size_t>(cp.k));
        for (int v = 0; v < cp.k; ++v)
            if (splitmix64(seed) & 1u) info.set(static_cast<std::size_t>(v), true);
        comm::AwgnModem modem(comm::Modulation::Bpsk, 0xA9C0 + static_cast<std::uint64_t>(f));
        const std::vector<double> llr = modem.transmit(encoder.encode(info), sigma);
        std::vector<quant::QLLR> q(llr.size());
        for (std::size_t i = 0; i < llr.size(); ++i) q[i] = quant::quantize(llr[i], quant::kQuant6);
        out.push_back(std::move(q));
    }
    return out;
}

/// Early-termination section results for one schedule.
struct EsRow {
    std::string schedule;
    double scalar_es_mbps = 0.0;  // scalar reference with early stopping
    double fixed_mbps = 0.0;      // frame-per-lane stream, full budget
    double es_mbps = 0.0;         // frame-per-lane stream, early termination
    double es_multiplier = 0.0;   // es_mbps / fixed_mbps (compaction payoff)
    double mean_iters = 0.0;
    double converged_frac = 0.0;
    bool es_exact = false;  // batch ES results == scalar ES results, bit for bit
    core::ConvergenceStats stats;
};

/// One decode_stream pass over `channels` (frame-major vectors); returns
/// elapsed seconds. Results land in `out` in input order.
double stream_decode_all(core::SimdBatchFixedDecoder& eng,
                         const std::vector<std::vector<quant::QLLR>>& channels,
                         std::vector<core::DecodeResult>& out) {
    struct Src {
        const std::vector<std::vector<quant::QLLR>>* ch;
    } src{&channels};
    const auto t0 = std::chrono::steady_clock::now();
    eng.decode_stream(
        channels.size(),
        [](void* ctx, std::size_t f, quant::QLLR* dst) {
            const auto& v = (*static_cast<const Src*>(ctx)->ch)[f];
            std::copy(v.begin(), v.end(), dst);
        },
        &src, out.data());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Frame-by-frame equivalence of two decode passes (the early-termination
/// invariant: codeword, iteration count and converged flag all match).
bool results_equal(const std::vector<core::DecodeResult>& a,
                   const std::vector<core::DecodeResult>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].converged != b[i].converged || a[i].iterations != b[i].iterations ||
            !(a[i].codeword == b[i].codeword))
            return false;
    }
    return true;
}

bool messages_equal(const core::MpDecoder<core::FixedArith>& a, const core::SimdFixedDecoder& b) {
    return a.c2v_messages() == b.c2v_messages() && a.v2c_messages() == b.v2c_messages() &&
           a.backward_messages() == b.backward_messages();
}

/// Frame-per-lane equivalence: run one full batch block, then check every
/// lane's c2v state against a scalar decode of that lane's frame.
bool batch_lanes_exact(core::MpDecoder<core::FixedArith>& scalar,
                       core::SimdBatchFixedDecoder& batch, const std::vector<quant::QLLR>& flat,
                       const std::vector<std::vector<quant::QLLR>>& channels, std::size_t n,
                       int iters) {
    const auto lanes = static_cast<std::size_t>(core::SimdBatchFixedDecoder::lanes());
    const std::size_t cnt = std::min(lanes, channels.size());
    batch.run_iterations(std::span<const quant::QLLR>(flat.data(), cnt * n), cnt, iters);
    for (std::size_t l = 0; l < cnt; ++l) {
        scalar.run_iterations(channels[l], iters);
        if (batch.c2v_messages(l) != scalar.c2v_messages()) return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    util::CliArgs args(argc, argv, {"rate", "iters", "frames", "snr", "es-frames", "json"});
    const code::CodeRate rate = bench::parse_rate(args.get("rate", "1/2"));
    const int iters = static_cast<int>(args.get_int("iters", 10));
    const int frames = static_cast<int>(args.get_int("frames", 8));
    const double snr_db = args.get_double("snr", 2.0);
    const int es_frames = static_cast<int>(args.get_int("es-frames", 32));

    bench::banner("SIMD", "SIMD lane mappings vs scalar reference (1 thread)");
    std::cout << "backend=" << core::simd_backend_name() << " width=" << core::simd_backend_width()
              << " rate=" << code::to_string(rate) << " iters=" << iters << " frames=" << frames
              << "\n\n";

    const code::Dvbs2Code code(code::standard_params(rate));
    const auto n = static_cast<std::size_t>(code.n());
    std::vector<std::vector<quant::QLLR>> channels;
    std::vector<quant::QLLR> flat;  // frame-major concatenation for batches
    for (int f = 0; f < frames; ++f) {
        channels.push_back(random_channel(code, 0xBE11C + static_cast<std::uint64_t>(f)));
        flat.insert(flat.end(), channels.back().begin(), channels.back().end());
    }

    const quant::BoxplusTable table(quant::kQuant6);
    std::vector<Row> rows;
    bool all_exact = true;
    double max_speedup = 0.0;
    double max_batch_speedup = 0.0;
    util::TextTable t;
    t.set_header({"Schedule", "scalar Mbit/s", "group Mbit/s", "batch Mbit/s", "group x",
                  "batch x", "bit-exact"});
    for (const core::Schedule schedule :
         {core::Schedule::TwoPhase, core::Schedule::ZigzagForward,
          core::Schedule::ZigzagSegmented, core::Schedule::ZigzagMap, core::Schedule::Layered}) {
        core::DecoderConfig cfg;
        cfg.schedule = schedule;
        cfg.rule = core::CheckRule::Exact;
        core::MpDecoder<core::FixedArith> scalar(
            code, cfg, core::FixedArith(cfg.rule, quant::kQuant6, &table, cfg.normalization,
                                        cfg.offset));

        Row row;
        row.schedule = core::to_string(schedule);
        // Group-parallel support is derived from the schedule transformer:
        // natively lockstep-legal schedules plus those with a certified
        // rewrite (all five, as of the transform pass).
        row.has_group = analysis::ir::group_parallel_supported(schedule);
        row.scalar_mbps = time_engine(scalar, channels, iters, code.n());

        row.bit_exact = true;
        if (row.has_group) {
            core::SimdFixedDecoder simd(code, cfg, quant::kQuant6);
            row.simd_mbps = time_engine(simd, channels, iters, code.n());
            row.speedup = row.scalar_mbps > 0.0 ? row.simd_mbps / row.scalar_mbps : 0.0;
            // Both engines last decoded channels.back(); compare final
            // state, then re-check on the first vector for good measure.
            row.bit_exact = messages_equal(scalar, simd);
            if (row.bit_exact) {
                scalar.run_iterations(channels[0], iters);
                simd.run_iterations(channels[0], iters);
                row.bit_exact = messages_equal(scalar, simd);
            }
        }

        core::SimdBatchFixedDecoder batch(code, cfg, quant::kQuant6);
        row.batch_mbps = time_batch_engine(batch, flat, static_cast<std::size_t>(frames), n,
                                           iters, code.n());
        row.batch_speedup = row.scalar_mbps > 0.0 ? row.batch_mbps / row.scalar_mbps : 0.0;
        row.bit_exact =
            row.bit_exact && batch_lanes_exact(scalar, batch, flat, channels, n, iters);

        all_exact = all_exact && row.bit_exact;
        max_speedup = std::max(max_speedup, row.speedup);
        max_batch_speedup = std::max(max_batch_speedup, row.batch_speedup);
        rows.push_back(row);
        t.add_row({row.schedule, util::TextTable::num(row.scalar_mbps, 1),
                   row.has_group ? util::TextTable::num(row.simd_mbps, 1) : "-",
                   util::TextTable::num(row.batch_mbps, 1),
                   row.has_group ? util::TextTable::num(row.speedup, 2) : "-",
                   util::TextTable::num(row.batch_speedup, 2), row.bit_exact ? "yes" : "NO"});
    }
    t.print(std::cout);

    // ---- per-lane early termination + lane compaction on noisy frames ----
    // Realistic traffic: most frames converge in a handful of iterations at
    // the operating SNR, so a full-budget decode wastes most of its work.
    // The stream engine retires each lane at its own stopping iteration and
    // refills it with the next pending frame; the payoff is the ES column
    // divided by the fixed-budget column. Every ES result is gated against
    // the scalar early-stopping reference frame by frame.
    const auto es_channels = noisy_channels(code, snr_db, es_frames);
    std::vector<EsRow> es_rows;
    bool es_all_exact = true;
    double min_es_multiplier = 0.0;
    std::cout << "\nearly termination + lane compaction: " << es_frames
              << " noisy frames at Eb/N0 = " << snr_db << " dB, budget 30 iterations\n";
    util::TextTable et;
    et.set_header({"Schedule", "scalar-ES Mbit/s", "fixed Mbit/s", "ES Mbit/s", "ES x",
                   "mean iters", "conv %", "ES-exact"});
    for (const core::Schedule schedule :
         {core::Schedule::TwoPhase, core::Schedule::ZigzagForward,
          core::Schedule::ZigzagSegmented, core::Schedule::ZigzagMap, core::Schedule::Layered}) {
        core::DecoderConfig es_cfg;
        es_cfg.schedule = schedule;
        es_cfg.rule = core::CheckRule::Exact;
        es_cfg.early_stop = true;
        core::DecoderConfig fixed_cfg = es_cfg;
        fixed_cfg.early_stop = false;

        EsRow row;
        row.schedule = core::to_string(schedule);

        // Scalar early-stopping reference: the ground truth every SIMD
        // result must reproduce bit for bit.
        core::MpDecoder<core::FixedArith> scalar(
            code, es_cfg, core::FixedArith(es_cfg.rule, quant::kQuant6, &table,
                                           es_cfg.normalization, es_cfg.offset));
        std::vector<core::DecodeResult> ref(es_channels.size());
        scalar.decode_into(es_channels[0], ref[0]);  // warmup sizes all state
        {
            const auto t0 = std::chrono::steady_clock::now();
            for (std::size_t f = 0; f < es_channels.size(); ++f)
                scalar.decode_into(es_channels[f], ref[f]);
            const double s =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            row.scalar_es_mbps = s > 0.0 ? static_cast<double>(code.n()) *
                                               static_cast<double>(es_channels.size()) / s / 1e6
                                         : 0.0;
        }

        // Frame-per-lane stream, full budget (the pre-compaction baseline).
        core::SimdBatchFixedDecoder fixed_eng(code, fixed_cfg, quant::kQuant6);
        std::vector<core::DecodeResult> scratch(es_channels.size());
        stream_decode_all(fixed_eng, es_channels, scratch);  // warmup
        const double s_fixed = stream_decode_all(fixed_eng, es_channels, scratch);
        row.fixed_mbps = s_fixed > 0.0 ? static_cast<double>(code.n()) *
                                             static_cast<double>(es_channels.size()) / s_fixed /
                                             1e6
                                       : 0.0;

        // Frame-per-lane stream with per-lane early termination + compaction.
        core::SimdBatchFixedDecoder es_eng(code, es_cfg, quant::kQuant6);
        std::vector<core::DecodeResult> es_res(es_channels.size());
        stream_decode_all(es_eng, es_channels, es_res);  // warmup
        const double s_es = stream_decode_all(es_eng, es_channels, es_res);
        row.es_mbps = s_es > 0.0 ? static_cast<double>(code.n()) *
                                       static_cast<double>(es_channels.size()) / s_es / 1e6
                                 : 0.0;
        row.es_multiplier = row.fixed_mbps > 0.0 ? row.es_mbps / row.fixed_mbps : 0.0;

        row.es_exact = results_equal(ref, es_res);
        for (const core::DecodeResult& r : es_res) row.stats.record(r.iterations, r.converged);
        row.mean_iters = row.stats.mean_iterations();
        row.converged_frac = row.stats.convergence_rate();

        es_all_exact = es_all_exact && row.es_exact;
        min_es_multiplier = es_rows.empty() ? row.es_multiplier
                                            : std::min(min_es_multiplier, row.es_multiplier);
        es_rows.push_back(row);
        et.add_row({row.schedule, util::TextTable::num(row.scalar_es_mbps, 1),
                    util::TextTable::num(row.fixed_mbps, 1), util::TextTable::num(row.es_mbps, 1),
                    util::TextTable::num(row.es_multiplier, 2),
                    util::TextTable::num(row.mean_iters, 2),
                    util::TextTable::num(100.0 * row.converged_frac, 1),
                    row.es_exact ? "yes" : "NO"});
    }
    et.print(std::cout);
    all_exact = all_exact && es_all_exact;

    if (args.has("json")) {
        std::ofstream os(args.get("json", ""));
        os << "{\n  \"bench\": \"bench_simd_kernels\",\n"
           << "  \"backend\": \"" << core::simd_backend_name() << "\",\n"
           << "  \"width\": " << core::simd_backend_width() << ",\n"
           << "  \"lanes\": " << core::SimdBatchFixedDecoder::lanes() << ",\n"
           << "  \"rate\": \"" << code::to_string(rate) << "\",\n"
           << "  \"iters\": " << iters << ",\n  \"frames\": " << frames << ",\n"
           << "  \"results\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            // Schedules without a group-parallel backend report null rather
            // than a fake 0 Mbit/s measurement.
            os << "    {\"schedule\": \"" << r.schedule << "\", \"scalar_mbps\": " << r.scalar_mbps
               << ", \"simd_mbps\": ";
            if (r.has_group) os << r.simd_mbps;
            else os << "null";
            os << ", \"batch_mbps\": " << r.batch_mbps << ", \"speedup\": ";
            if (r.has_group) os << r.speedup;
            else os << "null";
            os << ", \"batch_speedup\": " << r.batch_speedup
               << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"early_stop\": {\n"
           << "    \"snr_db\": " << snr_db << ",\n    \"frames\": " << es_frames << ",\n"
           << "    \"budget_iterations\": 30,\n    \"results\": [\n";
        for (std::size_t i = 0; i < es_rows.size(); ++i) {
            const EsRow& r = es_rows[i];
            os << "      {\"schedule\": \"" << r.schedule
               << "\", \"scalar_es_mbps\": " << r.scalar_es_mbps
               << ", \"fixed_mbps\": " << r.fixed_mbps << ", \"effective_mbps\": " << r.es_mbps
               << ", \"es_multiplier\": " << r.es_multiplier
               << ", \"mean_iters\": " << r.mean_iters
               << ", \"converged_fraction\": " << r.converged_frac << ", \"histogram\": [";
            for (std::size_t h = 0; h < r.stats.histogram.size(); ++h)
                os << (h ? ", " : "") << r.stats.histogram[h];
            os << "], \"es_exact\": " << (r.es_exact ? "true" : "false") << "}"
               << (i + 1 < es_rows.size() ? "," : "") << "\n";
        }
        os << "    ],\n    \"min_es_multiplier\": " << min_es_multiplier << ",\n"
           << "    \"all_es_exact\": " << (es_all_exact ? "true" : "false") << "\n  },\n"
           << "  \"max_speedup\": " << max_speedup << ",\n"
           << "  \"max_batch_speedup\": " << max_batch_speedup << ",\n"
           << "  \"all_bit_exact\": " << (all_exact ? "true" : "false") << "\n}\n";
        std::cout << "\nwrote " << args.get("json", "") << "\n";
    }

    std::cout << (all_exact
                      ? "SIMD PASS: all lane mappings bit-exact with the scalar reference\n"
                      : "SIMD FAIL: divergence from the scalar reference (messages or "
                        "early-stop results)\n");
    return all_exact ? 0 : 1;
}
