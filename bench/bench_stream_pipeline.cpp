// Extension bench — Eq. 7's I/O overlap as a frame stream: per-rate
// steady-state throughput, first-frame latency and core utilization of the
// double-buffered pipeline ("reading a new codeword ... and writing the
// result of the prior processed block can be done in parallel").
#include <iostream>

#include "arch/mapping.hpp"
#include "arch/stream.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"

using namespace dvbs2;

int main() {
    bench::banner("Stream / Eq. 7", "double-buffered frame pipeline at 270 MHz, 30 iterations");

    util::TextTable t;
    t.set_header({"Rate", "steady info Mbit/s", "one-shot Eq.8 Mbit/s", "latency [us]",
                  "core idle [cyc]", "io stall [cyc]"});
    bool ok = true;
    for (auto rate : code::all_rates()) {
        const code::Dvbs2Code c(code::standard_params(rate));
        const arch::HardwareMapping map(c);
        arch::StreamConfig cfg;
        const auto rep = arch::simulate_stream(map, cfg, 8);
        // One-shot Eq. 8 reference: I/O paid serially.
        const auto iter = arch::simulate_iteration(map, cfg.memory);
        const long long one_shot_cycles =
            (c.n() + cfg.io_parallelism - 1) / cfg.io_parallelism +
            30LL * iter.cycles_per_iteration();
        const double one_shot =
            static_cast<double>(c.k()) * cfg.clock_hz / static_cast<double>(one_shot_cycles);
        // The pipeline must beat the serial figure (that is the point of
        // the overlap) and stay decode-bound at P_IO = 10.
        ok = ok && rep.steady_info_bps > one_shot && rep.core_idle_cycles == 0;
        t.add_row({code::to_string(rate), util::TextTable::num(rep.steady_info_bps / 1e6, 1),
                   util::TextTable::num(one_shot / 1e6, 1),
                   util::TextTable::num(rep.first_frame_latency_s * 1e6, 1),
                   util::TextTable::num(rep.core_idle_cycles),
                   util::TextTable::num(rep.io_stall_cycles)});
    }
    t.print(std::cout);
    std::cout << (ok ? "Stream PASS: overlap beats serial I/O at every rate, core never idles\n"
                     : "Stream FAIL\n");
    return ok ? 0 : 1;
}
