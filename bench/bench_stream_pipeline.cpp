// Extension bench — Eq. 7's I/O overlap as a frame stream: per-rate
// steady-state throughput, first-frame latency and core utilization of the
// double-buffered pipeline ("reading a new codeword ... and writing the
// result of the prior processed block can be done in parallel").
//
// The last column puts the *software* decoder next to the hardware model:
// single-thread throughput of the frame-per-lane SIMD batch engine
// (lane = frame, ZigzagSegmented, same 30 iterations) decoding one full
// W-frame block — the software counterpart of the pipeline's steady state.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "arch/mapping.hpp"
#include "arch/stream.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "core/simd/batch_decoder.hpp"
#include "core/simd/simd_decoder.hpp"
#include "quant/fixed.hpp"

using namespace dvbs2;

namespace {

/// Single-thread software info throughput (bit/s): one full batch block of
/// lanes() frames through the frame-per-lane engine at `iters` iterations.
double software_batch_info_bps(const code::Dvbs2Code& c, int iters) {
    core::DecoderConfig cfg;
    cfg.schedule = core::Schedule::ZigzagSegmented;  // the paper's schedule
    cfg.max_iterations = iters;
    core::SimdBatchFixedDecoder eng(c, cfg, quant::kQuant6);
    const auto lanes = static_cast<std::size_t>(core::SimdBatchFixedDecoder::lanes());
    const auto n = static_cast<std::size_t>(c.n());
    std::vector<quant::QLLR> flat(lanes * n);
    std::uint64_t s = 0x57AEA11;
    for (auto& v : flat) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        v = static_cast<quant::QLLR>(static_cast<std::int64_t>((s >> 33) %
                                                               (2 * quant::kQuant6.max_raw() + 1)) -
                                     quant::kQuant6.max_raw());
    }
    eng.run_iterations(flat, lanes, 1);  // warmup: touch all message state
    const auto t0 = std::chrono::steady_clock::now();
    eng.run_iterations(flat, lanes, iters);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return sec > 0.0
               ? static_cast<double>(c.k()) * static_cast<double>(lanes) / sec
               : 0.0;
}

}  // namespace

int main() {
    bench::banner("Stream / Eq. 7", "double-buffered frame pipeline at 270 MHz, 30 iterations");
    std::cout << "software column: frame-per-lane SIMD batch engine, backend="
              << core::simd_backend_name() << ", " << core::SimdBatchFixedDecoder::lanes()
              << " frames/block, 1 thread\n\n";

    util::TextTable t;
    t.set_header({"Rate", "steady info Mbit/s", "one-shot Eq.8 Mbit/s", "latency [us]",
                  "core idle [cyc]", "io stall [cyc]", "SW batch Mbit/s"});
    bool ok = true;
    for (auto rate : code::all_rates()) {
        const code::Dvbs2Code c(code::standard_params(rate));
        const arch::HardwareMapping map(c);
        arch::StreamConfig cfg;
        const auto rep = arch::simulate_stream(map, cfg, 8);
        // One-shot Eq. 8 reference: I/O paid serially.
        const auto iter = arch::simulate_iteration(map, cfg.memory);
        const long long one_shot_cycles =
            (c.n() + cfg.io_parallelism - 1) / cfg.io_parallelism +
            30LL * iter.cycles_per_iteration();
        const double one_shot =
            static_cast<double>(c.k()) * cfg.clock_hz / static_cast<double>(one_shot_cycles);
        const double sw_bps = software_batch_info_bps(c, cfg.iterations);
        // The pipeline must beat the serial figure (that is the point of
        // the overlap) and stay decode-bound at P_IO = 10.
        ok = ok && rep.steady_info_bps > one_shot && rep.core_idle_cycles == 0 && sw_bps > 0.0;
        t.add_row({code::to_string(rate), util::TextTable::num(rep.steady_info_bps / 1e6, 1),
                   util::TextTable::num(one_shot / 1e6, 1),
                   util::TextTable::num(rep.first_frame_latency_s * 1e6, 1),
                   util::TextTable::num(rep.core_idle_cycles),
                   util::TextTable::num(rep.io_stall_cycles),
                   util::TextTable::num(sw_bps / 1e6, 1)});
    }
    t.print(std::cout);
    std::cout << (ok ? "Stream PASS: overlap beats serial I/O at every rate, core never idles\n"
                     : "Stream FAIL\n");
    return ok ? 0 : 1;
}
