// Experiment E1 — paper Table 1: "Parameters describing the DVB-S2 LDPC
// Tanner graph for different coderates".
//
// Reproduces, for all 11 long-frame rates, the degree structure (number of
// degree-j and degree-3 information nodes, check degree k, K, N−K) two ways:
// from the closed-form parameter database and — independently — measured on
// the constructed Tanner graph, flagging any disagreement.
#include <iostream>

#include "bench_common.hpp"
#include "code/tanner.hpp"
#include "code/validate.hpp"

using namespace dvbs2;

int main() {
    bench::banner("E1 / Table 1", "Tanner-graph parameters per code rate");

    util::TextTable t;
    t.set_header({"Rate", "j", "N_j", "N_3", "k", "N-K", "K", "measured"});
    bool all_ok = true;
    for (auto rate : code::all_rates()) {
        const auto p = code::standard_params(rate);
        // Independent measurement from the expanded graph.
        const code::Dvbs2Code c(p);
        long long n_hi_meas = 0, n_lo_meas = 0;
        for (int v = 0; v < c.k(); ++v) {
            if (c.info_degree(v) == p.deg_hi)
                ++n_hi_meas;
            else if (c.info_degree(v) == p.deg_lo)
                ++n_lo_meas;
        }
        const auto hist = code::check_degree_histogram(c);
        const bool regular = hist[static_cast<std::size_t>(p.check_deg - 2)] == c.m();
        const bool ok = n_hi_meas == p.n_hi && n_lo_meas == p.n_lo() && regular;
        all_ok = all_ok && ok;
        t.add_row({code::to_string(rate), util::TextTable::num((long long)p.deg_hi),
                   util::TextTable::num((long long)p.n_hi),
                   util::TextTable::num((long long)p.n_lo()),
                   util::TextTable::num((long long)p.check_deg),
                   util::TextTable::num((long long)p.m()), util::TextTable::num((long long)p.k),
                   ok ? "ok" : "MISMATCH"});
    }
    t.print(std::cout);
    std::cout << "\npaper reference row (R=1/2): j=8, N_j=12960, N_3=19440, k=7, N-K=32400, "
                 "K=32400\n";
    std::cout << (all_ok ? "E1 PASS: all rates match the closed-form database\n"
                         : "E1 FAIL: see MISMATCH rows\n");
    return all_ok ? 0 : 1;
}
