// Experiment E2 — paper Table 2: "Code rate dependent parameters, with E the
// number of incident edges of IN and PN nodes and Addr the number of values
// required to store the code structure".
//
// Reproduces q, E_PN, E_IN and Addr for all rates and verifies the paper's
// Eq. 6 load-balance identity E_IN/360 = q·(k−2) on the generated codes.
#include <iostream>

#include "arch/mapping.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"

using namespace dvbs2;

int main() {
    bench::banner("E2 / Table 2", "q, E_PN, E_IN, Addr per code rate");

    util::TextTable t;
    t.set_header({"Rate", "q", "E_PN", "E_IN", "Addr", "Eq.6", "ROM measured"});
    bool all_ok = true;
    for (auto rate : code::all_rates()) {
        const auto p = code::standard_params(rate);
        const bool eq6 = p.e_in() == 360LL * p.q * (p.check_deg - 2);
        // Independent measurement: size of the extracted address/shuffle ROM.
        const code::Dvbs2Code c(p);
        const arch::HardwareMapping map(c);
        const bool rom_ok = map.ram_words() == p.addr_words();
        all_ok = all_ok && eq6 && rom_ok;
        t.add_row({code::to_string(rate), util::TextTable::num((long long)p.q),
                   util::TextTable::num(p.e_pn()), util::TextTable::num(p.e_in()),
                   util::TextTable::num(p.addr_words()), eq6 ? "ok" : "VIOLATED",
                   rom_ok ? "ok" : "MISMATCH"});
    }
    t.print(std::cout);
    std::cout << "\npaper reference row (R=1/2): q=90, E_IN=162000, Addr=450\n";
    std::cout << (all_ok ? "E2 PASS: Table 2 reproduced, Eq. 6 holds for every rate\n"
                         : "E2 FAIL\n");
    return all_ok ? 0 : 1;
}
