// Experiment E5 — paper Table 3: "Synthesis Results for the DVB-S2 LDPC code
// decoder" (ST 0.13 µm, 6-bit messages, 22.74 mm² total).
//
// Regenerates the area breakdown from first-principles bit/gate counting
// with globally calibrated 0.13 µm densities (see arch/area.hpp), prints it
// next to the paper's numbers, and reports which rate sizes each block —
// the paper's Sec. 5 discussion (R=1/4 → PN RAM, R=3/5 → IN RAM, R=2/3 and
// R=9/10 → FU degrees). Also shows the 5-bit ablation.
#include <cmath>
#include <iostream>

#include "arch/area.hpp"
#include "bench_common.hpp"

using namespace dvbs2;

int main() {
    bench::banner("E5 / Table 3", "synthesis-area reproduction (0.13 um)");

    std::vector<code::CodeParams> all;
    for (auto r : code::all_rates()) all.push_back(code::standard_params(r));

    struct PaperRow {
        const char* name;
        double mm2;
    };
    const PaperRow paper[] = {
        {"channel LLR RAMs", 2.00},  // inferred: total − published rows
        {"message RAMs", 9.12},
        {"address/shuffle RAM", 0.075},
        {"functional nodes", 10.8},
        {"control logic", 0.2},
        {"shuffling network", 0.55},
    };

    const auto br = arch::area_model(all, quant::kQuant6);
    util::TextTable t;
    t.set_header({"block", "model [mm^2]", "paper [mm^2]", "ratio", "sized by"});
    bool shape_ok = true;
    for (const auto& row : br.rows) {
        double ref = -1;
        for (const auto& pr : paper)
            if (row.name == pr.name) ref = pr.mm2;
        const double ratio = ref > 0 ? row.mm2 / ref : 0.0;
        if (ref > 0 && (ratio < 0.5 || ratio > 2.0)) shape_ok = false;
        t.add_row({row.name, util::TextTable::num(row.mm2, 3), util::TextTable::num(ref, 3),
                   util::TextTable::num(ratio, 2), row.sized_by});
    }
    t.print(std::cout);
    std::cout << "total: model " << util::TextTable::num(br.total_mm2, 2)
              << " mm^2 vs paper 22.74 mm^2 (ratio "
              << util::TextTable::num(br.total_mm2 / 22.74, 3) << ")\n";

    const auto br5 = arch::area_model(all, quant::kQuant5);
    std::cout << "\n5-bit ablation: total " << util::TextTable::num(br5.total_mm2, 2)
              << " mm^2 (message RAMs " << util::TextTable::num(br5.row("message RAMs"), 2)
              << " vs " << util::TextTable::num(br.row("message RAMs"), 2) << " at 6 bit)\n";

    const bool total_ok = std::fabs(br.total_mm2 - 22.74) / 22.74 < 0.10;
    std::cout << (shape_ok && total_ok
                      ? "E5 PASS: every block within 2x of the paper row, total within 10%\n"
                      : "E5 FAIL\n");
    return shape_ok && total_ok ? 0 : 1;
}
