// Experiment E6 — paper Eq. 7/8 and the 255 Mbit/s requirement: decoder
// cycle counts and throughput per rate at the paper's operating point
// (P = 360, P_IO = 10, 30 iterations, 270 MHz worst case).
//
// Two cycle estimates are printed: the analytic Eq. 8 value and the
// cycle-accurate count from the memory-conflict simulator over the real
// mapping (including write-back drain), which validates the latency term.
#include <iostream>

#include "arch/conflict.hpp"
#include "arch/mapping.hpp"
#include "arch/throughput.hpp"
#include "bench_common.hpp"
#include "code/tanner.hpp"

using namespace dvbs2;

int main() {
    bench::banner("E6 / Eq. 7-8", "decoder throughput at 270 MHz, 30 iterations");

    arch::ThroughputConfig cfg;  // paper operating point
    util::TextTable t;
    t.set_header({"Rate", "cyc/iter (Eq.8)", "cyc/iter (sim)", "total cyc", "info Mbit/s",
                  "coded Mbit/s", ">=255 coded"});
    bool all_meet = true;
    double min_info = 1e18;
    for (auto rate : code::all_rates()) {
        const auto p = code::standard_params(rate);
        const auto r = arch::throughput(p, cfg);
        const code::Dvbs2Code c(p);
        const arch::HardwareMapping map(c);
        const auto sim = arch::simulate_iteration(map, arch::MemoryConfig{});
        const bool meets = r.coded_throughput_bps >= 255e6;
        all_meet = all_meet && meets;
        min_info = std::min(min_info, r.info_throughput_bps);
        t.add_row({code::to_string(rate), util::TextTable::num(r.cycles_per_iter),
                   util::TextTable::num((long long)sim.cycles_per_iteration()),
                   util::TextTable::num(r.total_cycles),
                   util::TextTable::num(r.info_throughput_bps / 1e6, 1),
                   util::TextTable::num(r.coded_throughput_bps / 1e6, 1),
                   meets ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "\npaper: \"the required throughput of 255 Mbit/s... 30 iterations are "
                 "assumed\" — met for the coded stream at every rate;\n"
              << "information throughput at R=1/2 is "
              << util::TextTable::num(
                     arch::throughput(code::standard_params(code::CodeRate::R1_2), cfg)
                             .info_throughput_bps /
                         1e6,
                     1)
              << " Mbit/s.\n";
    std::cout << (all_meet ? "E6 PASS: 255 Mbit/s requirement met at all rates\n" : "E6 FAIL\n");
    return all_meet ? 0 : 1;
}
