file(REMOVE_RECURSE
  "../bench/bench_ablation_check_rules"
  "../bench/bench_ablation_check_rules.pdb"
  "CMakeFiles/bench_ablation_check_rules.dir/bench_ablation_check_rules.cpp.o"
  "CMakeFiles/bench_ablation_check_rules.dir/bench_ablation_check_rules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_check_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
