file(REMOVE_RECURSE
  "../bench/bench_ablation_girth"
  "../bench/bench_ablation_girth.pdb"
  "CMakeFiles/bench_ablation_girth.dir/bench_ablation_girth.cpp.o"
  "CMakeFiles/bench_ablation_girth.dir/bench_ablation_girth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_girth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
