# Empty dependencies file for bench_ablation_girth.
# This may be replaced when dependencies are built.
