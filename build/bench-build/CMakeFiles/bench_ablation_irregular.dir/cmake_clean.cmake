file(REMOVE_RECURSE
  "../bench/bench_ablation_irregular"
  "../bench/bench_ablation_irregular.pdb"
  "CMakeFiles/bench_ablation_irregular.dir/bench_ablation_irregular.cpp.o"
  "CMakeFiles/bench_ablation_irregular.dir/bench_ablation_irregular.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
