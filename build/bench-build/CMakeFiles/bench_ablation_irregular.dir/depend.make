# Empty dependencies file for bench_ablation_irregular.
# This may be replaced when dependencies are built.
