file(REMOVE_RECURSE
  "../bench/bench_baseline_parallel"
  "../bench/bench_baseline_parallel.pdb"
  "CMakeFiles/bench_baseline_parallel.dir/bench_baseline_parallel.cpp.o"
  "CMakeFiles/bench_baseline_parallel.dir/bench_baseline_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
