# Empty compiler generated dependencies file for bench_baseline_parallel.
# This may be replaced when dependencies are built.
