file(REMOVE_RECURSE
  "../bench/bench_density_evolution"
  "../bench/bench_density_evolution.pdb"
  "CMakeFiles/bench_density_evolution.dir/bench_density_evolution.cpp.o"
  "CMakeFiles/bench_density_evolution.dir/bench_density_evolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_density_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
