# Empty compiler generated dependencies file for bench_density_evolution.
# This may be replaced when dependencies are built.
