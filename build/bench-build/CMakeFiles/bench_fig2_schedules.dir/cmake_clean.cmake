file(REMOVE_RECURSE
  "../bench/bench_fig2_schedules"
  "../bench/bench_fig2_schedules.pdb"
  "CMakeFiles/bench_fig2_schedules.dir/bench_fig2_schedules.cpp.o"
  "CMakeFiles/bench_fig2_schedules.dir/bench_fig2_schedules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
