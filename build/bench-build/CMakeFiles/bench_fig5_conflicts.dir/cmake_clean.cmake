file(REMOVE_RECURSE
  "../bench/bench_fig5_conflicts"
  "../bench/bench_fig5_conflicts.pdb"
  "CMakeFiles/bench_fig5_conflicts.dir/bench_fig5_conflicts.cpp.o"
  "CMakeFiles/bench_fig5_conflicts.dir/bench_fig5_conflicts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
