# Empty dependencies file for bench_fig5_conflicts.
# This may be replaced when dependencies are built.
