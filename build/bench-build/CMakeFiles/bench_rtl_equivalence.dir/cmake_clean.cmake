file(REMOVE_RECURSE
  "../bench/bench_rtl_equivalence"
  "../bench/bench_rtl_equivalence.pdb"
  "CMakeFiles/bench_rtl_equivalence.dir/bench_rtl_equivalence.cpp.o"
  "CMakeFiles/bench_rtl_equivalence.dir/bench_rtl_equivalence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtl_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
