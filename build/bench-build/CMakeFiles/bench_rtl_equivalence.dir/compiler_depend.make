# Empty compiler generated dependencies file for bench_rtl_equivalence.
# This may be replaced when dependencies are built.
