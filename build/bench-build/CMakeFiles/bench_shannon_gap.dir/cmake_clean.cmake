file(REMOVE_RECURSE
  "../bench/bench_shannon_gap"
  "../bench/bench_shannon_gap.pdb"
  "CMakeFiles/bench_shannon_gap.dir/bench_shannon_gap.cpp.o"
  "CMakeFiles/bench_shannon_gap.dir/bench_shannon_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shannon_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
