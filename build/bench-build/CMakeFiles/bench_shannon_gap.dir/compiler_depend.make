# Empty compiler generated dependencies file for bench_shannon_gap.
# This may be replaced when dependencies are built.
