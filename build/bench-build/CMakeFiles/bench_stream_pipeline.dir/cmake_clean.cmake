file(REMOVE_RECURSE
  "../bench/bench_stream_pipeline"
  "../bench/bench_stream_pipeline.pdb"
  "CMakeFiles/bench_stream_pipeline.dir/bench_stream_pipeline.cpp.o"
  "CMakeFiles/bench_stream_pipeline.dir/bench_stream_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
