# Empty dependencies file for bench_stream_pipeline.
# This may be replaced when dependencies are built.
