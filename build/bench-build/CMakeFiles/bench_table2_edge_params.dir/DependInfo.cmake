
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_edge_params.cpp" "bench-build/CMakeFiles/bench_table2_edge_params.dir/bench_table2_edge_params.cpp.o" "gcc" "bench-build/CMakeFiles/bench_table2_edge_params.dir/bench_table2_edge_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/dvbs2_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dvbs2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dvbs2_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/enc/CMakeFiles/dvbs2_enc.dir/DependInfo.cmake"
  "/root/repo/build/src/code/CMakeFiles/dvbs2_code.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/dvbs2_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dvbs2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
