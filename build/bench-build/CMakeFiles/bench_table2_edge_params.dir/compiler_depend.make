# Empty compiler generated dependencies file for bench_table2_edge_params.
# This may be replaced when dependencies are built.
