file(REMOVE_RECURSE
  "../bench/bench_table3_area"
  "../bench/bench_table3_area.pdb"
  "CMakeFiles/bench_table3_area.dir/bench_table3_area.cpp.o"
  "CMakeFiles/bench_table3_area.dir/bench_table3_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
