file(REMOVE_RECURSE
  "CMakeFiles/ber_sweep.dir/ber_sweep.cpp.o"
  "CMakeFiles/ber_sweep.dir/ber_sweep.cpp.o.d"
  "ber_sweep"
  "ber_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ber_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
