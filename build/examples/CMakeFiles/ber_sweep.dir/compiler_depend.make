# Empty compiler generated dependencies file for ber_sweep.
# This may be replaced when dependencies are built.
