file(REMOVE_RECURSE
  "CMakeFiles/fec_chain.dir/fec_chain.cpp.o"
  "CMakeFiles/fec_chain.dir/fec_chain.cpp.o.d"
  "fec_chain"
  "fec_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
