# Empty dependencies file for fec_chain.
# This may be replaced when dependencies are built.
