file(REMOVE_RECURSE
  "CMakeFiles/ip_explorer.dir/ip_explorer.cpp.o"
  "CMakeFiles/ip_explorer.dir/ip_explorer.cpp.o.d"
  "ip_explorer"
  "ip_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
