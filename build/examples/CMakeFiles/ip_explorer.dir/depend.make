# Empty dependencies file for ip_explorer.
# This may be replaced when dependencies are built.
