# Empty compiler generated dependencies file for rate_explorer.
# This may be replaced when dependencies are built.
