# Empty compiler generated dependencies file for schedule_viz.
# This may be replaced when dependencies are built.
