# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("quant")
subdirs("code")
subdirs("enc")
subdirs("bch")
subdirs("comm")
subdirs("core")
subdirs("arch")
