
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/anneal.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/anneal.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/anneal.cpp.o.d"
  "/root/repo/src/arch/area.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/area.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/area.cpp.o.d"
  "/root/repo/src/arch/baselines.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/baselines.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/baselines.cpp.o.d"
  "/root/repo/src/arch/conflict.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/conflict.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/conflict.cpp.o.d"
  "/root/repo/src/arch/energy.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/energy.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/energy.cpp.o.d"
  "/root/repo/src/arch/ip_core.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/ip_core.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/ip_core.cpp.o.d"
  "/root/repo/src/arch/mapping.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/mapping.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/mapping.cpp.o.d"
  "/root/repo/src/arch/rom_image.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/rom_image.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/rom_image.cpp.o.d"
  "/root/repo/src/arch/rtl_model.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/rtl_model.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/rtl_model.cpp.o.d"
  "/root/repo/src/arch/stream.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/stream.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/stream.cpp.o.d"
  "/root/repo/src/arch/throughput.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/throughput.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/throughput.cpp.o.d"
  "/root/repo/src/arch/verilog.cpp" "src/arch/CMakeFiles/dvbs2_arch.dir/verilog.cpp.o" "gcc" "src/arch/CMakeFiles/dvbs2_arch.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dvbs2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/code/CMakeFiles/dvbs2_code.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/dvbs2_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dvbs2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
