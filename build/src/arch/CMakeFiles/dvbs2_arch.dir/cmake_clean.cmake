file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_arch.dir/anneal.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/anneal.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/area.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/area.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/baselines.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/baselines.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/conflict.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/conflict.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/energy.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/energy.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/ip_core.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/ip_core.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/mapping.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/mapping.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/rom_image.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/rom_image.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/rtl_model.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/rtl_model.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/stream.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/stream.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/throughput.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/throughput.cpp.o.d"
  "CMakeFiles/dvbs2_arch.dir/verilog.cpp.o"
  "CMakeFiles/dvbs2_arch.dir/verilog.cpp.o.d"
  "libdvbs2_arch.a"
  "libdvbs2_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
