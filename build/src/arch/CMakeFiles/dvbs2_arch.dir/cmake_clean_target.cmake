file(REMOVE_RECURSE
  "libdvbs2_arch.a"
)
