# Empty compiler generated dependencies file for dvbs2_arch.
# This may be replaced when dependencies are built.
