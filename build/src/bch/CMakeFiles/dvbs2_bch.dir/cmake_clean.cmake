file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_bch.dir/bch.cpp.o"
  "CMakeFiles/dvbs2_bch.dir/bch.cpp.o.d"
  "CMakeFiles/dvbs2_bch.dir/gf.cpp.o"
  "CMakeFiles/dvbs2_bch.dir/gf.cpp.o.d"
  "libdvbs2_bch.a"
  "libdvbs2_bch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_bch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
