file(REMOVE_RECURSE
  "libdvbs2_bch.a"
)
