# Empty dependencies file for dvbs2_bch.
# This may be replaced when dependencies are built.
