
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/code/girth.cpp" "src/code/CMakeFiles/dvbs2_code.dir/girth.cpp.o" "gcc" "src/code/CMakeFiles/dvbs2_code.dir/girth.cpp.o.d"
  "/root/repo/src/code/params.cpp" "src/code/CMakeFiles/dvbs2_code.dir/params.cpp.o" "gcc" "src/code/CMakeFiles/dvbs2_code.dir/params.cpp.o.d"
  "/root/repo/src/code/profile_solver.cpp" "src/code/CMakeFiles/dvbs2_code.dir/profile_solver.cpp.o" "gcc" "src/code/CMakeFiles/dvbs2_code.dir/profile_solver.cpp.o.d"
  "/root/repo/src/code/table_io.cpp" "src/code/CMakeFiles/dvbs2_code.dir/table_io.cpp.o" "gcc" "src/code/CMakeFiles/dvbs2_code.dir/table_io.cpp.o.d"
  "/root/repo/src/code/tables.cpp" "src/code/CMakeFiles/dvbs2_code.dir/tables.cpp.o" "gcc" "src/code/CMakeFiles/dvbs2_code.dir/tables.cpp.o.d"
  "/root/repo/src/code/tanner.cpp" "src/code/CMakeFiles/dvbs2_code.dir/tanner.cpp.o" "gcc" "src/code/CMakeFiles/dvbs2_code.dir/tanner.cpp.o.d"
  "/root/repo/src/code/validate.cpp" "src/code/CMakeFiles/dvbs2_code.dir/validate.cpp.o" "gcc" "src/code/CMakeFiles/dvbs2_code.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dvbs2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
