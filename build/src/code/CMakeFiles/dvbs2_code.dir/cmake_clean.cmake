file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_code.dir/girth.cpp.o"
  "CMakeFiles/dvbs2_code.dir/girth.cpp.o.d"
  "CMakeFiles/dvbs2_code.dir/params.cpp.o"
  "CMakeFiles/dvbs2_code.dir/params.cpp.o.d"
  "CMakeFiles/dvbs2_code.dir/profile_solver.cpp.o"
  "CMakeFiles/dvbs2_code.dir/profile_solver.cpp.o.d"
  "CMakeFiles/dvbs2_code.dir/table_io.cpp.o"
  "CMakeFiles/dvbs2_code.dir/table_io.cpp.o.d"
  "CMakeFiles/dvbs2_code.dir/tables.cpp.o"
  "CMakeFiles/dvbs2_code.dir/tables.cpp.o.d"
  "CMakeFiles/dvbs2_code.dir/tanner.cpp.o"
  "CMakeFiles/dvbs2_code.dir/tanner.cpp.o.d"
  "CMakeFiles/dvbs2_code.dir/validate.cpp.o"
  "CMakeFiles/dvbs2_code.dir/validate.cpp.o.d"
  "libdvbs2_code.a"
  "libdvbs2_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
