file(REMOVE_RECURSE
  "libdvbs2_code.a"
)
