# Empty dependencies file for dvbs2_code.
# This may be replaced when dependencies are built.
