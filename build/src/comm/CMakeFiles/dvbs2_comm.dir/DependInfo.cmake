
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/ber.cpp" "src/comm/CMakeFiles/dvbs2_comm.dir/ber.cpp.o" "gcc" "src/comm/CMakeFiles/dvbs2_comm.dir/ber.cpp.o.d"
  "/root/repo/src/comm/capacity.cpp" "src/comm/CMakeFiles/dvbs2_comm.dir/capacity.cpp.o" "gcc" "src/comm/CMakeFiles/dvbs2_comm.dir/capacity.cpp.o.d"
  "/root/repo/src/comm/constellation.cpp" "src/comm/CMakeFiles/dvbs2_comm.dir/constellation.cpp.o" "gcc" "src/comm/CMakeFiles/dvbs2_comm.dir/constellation.cpp.o.d"
  "/root/repo/src/comm/density_evolution.cpp" "src/comm/CMakeFiles/dvbs2_comm.dir/density_evolution.cpp.o" "gcc" "src/comm/CMakeFiles/dvbs2_comm.dir/density_evolution.cpp.o.d"
  "/root/repo/src/comm/interleaver.cpp" "src/comm/CMakeFiles/dvbs2_comm.dir/interleaver.cpp.o" "gcc" "src/comm/CMakeFiles/dvbs2_comm.dir/interleaver.cpp.o.d"
  "/root/repo/src/comm/modem.cpp" "src/comm/CMakeFiles/dvbs2_comm.dir/modem.cpp.o" "gcc" "src/comm/CMakeFiles/dvbs2_comm.dir/modem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/code/CMakeFiles/dvbs2_code.dir/DependInfo.cmake"
  "/root/repo/build/src/enc/CMakeFiles/dvbs2_enc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dvbs2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
