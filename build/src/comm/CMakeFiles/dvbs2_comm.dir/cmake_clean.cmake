file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_comm.dir/ber.cpp.o"
  "CMakeFiles/dvbs2_comm.dir/ber.cpp.o.d"
  "CMakeFiles/dvbs2_comm.dir/capacity.cpp.o"
  "CMakeFiles/dvbs2_comm.dir/capacity.cpp.o.d"
  "CMakeFiles/dvbs2_comm.dir/constellation.cpp.o"
  "CMakeFiles/dvbs2_comm.dir/constellation.cpp.o.d"
  "CMakeFiles/dvbs2_comm.dir/density_evolution.cpp.o"
  "CMakeFiles/dvbs2_comm.dir/density_evolution.cpp.o.d"
  "CMakeFiles/dvbs2_comm.dir/interleaver.cpp.o"
  "CMakeFiles/dvbs2_comm.dir/interleaver.cpp.o.d"
  "CMakeFiles/dvbs2_comm.dir/modem.cpp.o"
  "CMakeFiles/dvbs2_comm.dir/modem.cpp.o.d"
  "libdvbs2_comm.a"
  "libdvbs2_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
