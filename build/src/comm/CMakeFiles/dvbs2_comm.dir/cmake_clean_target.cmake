file(REMOVE_RECURSE
  "libdvbs2_comm.a"
)
