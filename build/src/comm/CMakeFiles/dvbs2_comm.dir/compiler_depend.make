# Empty compiler generated dependencies file for dvbs2_comm.
# This may be replaced when dependencies are built.
