file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_core.dir/decoder.cpp.o"
  "CMakeFiles/dvbs2_core.dir/decoder.cpp.o.d"
  "libdvbs2_core.a"
  "libdvbs2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
