file(REMOVE_RECURSE
  "libdvbs2_core.a"
)
