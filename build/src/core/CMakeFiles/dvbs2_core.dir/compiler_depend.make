# Empty compiler generated dependencies file for dvbs2_core.
# This may be replaced when dependencies are built.
