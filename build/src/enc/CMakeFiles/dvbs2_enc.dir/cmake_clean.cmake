file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_enc.dir/encoder.cpp.o"
  "CMakeFiles/dvbs2_enc.dir/encoder.cpp.o.d"
  "libdvbs2_enc.a"
  "libdvbs2_enc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_enc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
