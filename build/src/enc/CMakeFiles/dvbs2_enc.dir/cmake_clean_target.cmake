file(REMOVE_RECURSE
  "libdvbs2_enc.a"
)
