# Empty compiler generated dependencies file for dvbs2_enc.
# This may be replaced when dependencies are built.
