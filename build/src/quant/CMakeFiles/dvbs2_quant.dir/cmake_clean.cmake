file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_quant.dir/fixed.cpp.o"
  "CMakeFiles/dvbs2_quant.dir/fixed.cpp.o.d"
  "libdvbs2_quant.a"
  "libdvbs2_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
