file(REMOVE_RECURSE
  "libdvbs2_quant.a"
)
