# Empty compiler generated dependencies file for dvbs2_quant.
# This may be replaced when dependencies are built.
