file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_util.dir/bitvec.cpp.o"
  "CMakeFiles/dvbs2_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/dvbs2_util.dir/cli.cpp.o"
  "CMakeFiles/dvbs2_util.dir/cli.cpp.o.d"
  "CMakeFiles/dvbs2_util.dir/csv.cpp.o"
  "CMakeFiles/dvbs2_util.dir/csv.cpp.o.d"
  "CMakeFiles/dvbs2_util.dir/prng.cpp.o"
  "CMakeFiles/dvbs2_util.dir/prng.cpp.o.d"
  "CMakeFiles/dvbs2_util.dir/stats.cpp.o"
  "CMakeFiles/dvbs2_util.dir/stats.cpp.o.d"
  "CMakeFiles/dvbs2_util.dir/table.cpp.o"
  "CMakeFiles/dvbs2_util.dir/table.cpp.o.d"
  "libdvbs2_util.a"
  "libdvbs2_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
