file(REMOVE_RECURSE
  "libdvbs2_util.a"
)
