# Empty compiler generated dependencies file for dvbs2_util.
# This may be replaced when dependencies are built.
