file(REMOVE_RECURSE
  "CMakeFiles/test_arch_ext.dir/test_arch_ext.cpp.o"
  "CMakeFiles/test_arch_ext.dir/test_arch_ext.cpp.o.d"
  "test_arch_ext"
  "test_arch_ext.pdb"
  "test_arch_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
