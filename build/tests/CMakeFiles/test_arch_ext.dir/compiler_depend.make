# Empty compiler generated dependencies file for test_arch_ext.
# This may be replaced when dependencies are built.
