file(REMOVE_RECURSE
  "CMakeFiles/test_arch_stream.dir/test_arch_stream.cpp.o"
  "CMakeFiles/test_arch_stream.dir/test_arch_stream.cpp.o.d"
  "test_arch_stream"
  "test_arch_stream.pdb"
  "test_arch_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
