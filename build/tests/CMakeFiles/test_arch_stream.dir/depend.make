# Empty dependencies file for test_arch_stream.
# This may be replaced when dependencies are built.
