file(REMOVE_RECURSE
  "CMakeFiles/test_code.dir/test_code.cpp.o"
  "CMakeFiles/test_code.dir/test_code.cpp.o.d"
  "test_code"
  "test_code.pdb"
  "test_code[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
