file(REMOVE_RECURSE
  "CMakeFiles/test_comm_ext.dir/test_comm_ext.cpp.o"
  "CMakeFiles/test_comm_ext.dir/test_comm_ext.cpp.o.d"
  "test_comm_ext"
  "test_comm_ext.pdb"
  "test_comm_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
