# Empty compiler generated dependencies file for test_comm_ext.
# This may be replaced when dependencies are built.
