file(REMOVE_RECURSE
  "CMakeFiles/test_comm_threshold.dir/test_comm_threshold.cpp.o"
  "CMakeFiles/test_comm_threshold.dir/test_comm_threshold.cpp.o.d"
  "test_comm_threshold"
  "test_comm_threshold.pdb"
  "test_comm_threshold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
