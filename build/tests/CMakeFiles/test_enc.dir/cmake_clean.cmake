file(REMOVE_RECURSE
  "CMakeFiles/test_enc.dir/test_enc.cpp.o"
  "CMakeFiles/test_enc.dir/test_enc.cpp.o.d"
  "test_enc"
  "test_enc.pdb"
  "test_enc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
