# Empty compiler generated dependencies file for test_enc.
# This may be replaced when dependencies are built.
