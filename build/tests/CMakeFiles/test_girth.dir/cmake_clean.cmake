file(REMOVE_RECURSE
  "CMakeFiles/test_girth.dir/test_girth.cpp.o"
  "CMakeFiles/test_girth.dir/test_girth.cpp.o.d"
  "test_girth"
  "test_girth.pdb"
  "test_girth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_girth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
