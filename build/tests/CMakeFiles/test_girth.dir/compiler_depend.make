# Empty compiler generated dependencies file for test_girth.
# This may be replaced when dependencies are built.
