file(REMOVE_RECURSE
  "CMakeFiles/test_profile_solver.dir/test_profile_solver.cpp.o"
  "CMakeFiles/test_profile_solver.dir/test_profile_solver.cpp.o.d"
  "test_profile_solver"
  "test_profile_solver.pdb"
  "test_profile_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
