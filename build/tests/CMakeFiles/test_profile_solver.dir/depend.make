# Empty dependencies file for test_profile_solver.
# This may be replaced when dependencies are built.
