# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_code[1]_include.cmake")
include("/root/repo/build/tests/test_enc[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_bch[1]_include.cmake")
include("/root/repo/build/tests/test_comm_ext[1]_include.cmake")
include("/root/repo/build/tests/test_arch_ext[1]_include.cmake")
include("/root/repo/build/tests/test_arch_stream[1]_include.cmake")
include("/root/repo/build/tests/test_girth[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_core_properties[1]_include.cmake")
include("/root/repo/build/tests/test_profile_solver[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_verilog[1]_include.cmake")
include("/root/repo/build/tests/test_constellation[1]_include.cmake")
include("/root/repo/build/tests/test_comm_threshold[1]_include.cmake")
