// BER/FER waterfall sweep — the workload behind the paper's communications-
// performance claims (Sec. 1: "≈0.7 dB to Shannon", Sec. 2.1: quantization
// loss). Prints one row per Eb/N0 point and the Shannon limit of the rate.
//
//   ./ber_sweep [--rate=1/2] [--from=0.6] [--to=1.6] [--step=0.2]
//               [--frames=50] [--iters=30] [--fixed] [--bits=6]
//               [--algorithm=minsum|wbf|rhs-bp]
//               [--schedule=zigzag|twophase|segmented|map|layered]
//               [--backend=scalar|simd] [--lanes=auto|group|frame]
//               [--csv=out.csv] [--threads=N] [--progress]
//
// --algorithm selects the decoder family from the engine registry: "minsum"
// (default) is the message-passing family, "wbf" the improved weighted-bit-
// flipping decoder (flooding only: pair it with --schedule=twophase), and
// "rhs-bp" the relaxed half-stochastic BP decoder (float only; budget more
// --iters, relaxation converges slower).
//
// --backend=simd selects the SIMD fixed-point engine (requires --fixed).
// --lanes picks its lane mapping: "group" is the group-parallel engine
// (lane = functional unit; twophase/segmented only), "frame" the
// frame-per-lane batch engine (any schedule, one SIMD lane per frame),
// "auto" (default) uses group-parallel for single frames and frame-per-lane
// for batches. Results are bit-identical to the scalar backend either way
// (pinned by tests/test_simd.cpp and tests/test_engine.cpp).
//
// Runs on the frame-parallel Monte-Carlo engine with one decoder engine per
// worker, decoding in engine-preferred batch blocks: results are
// bit-identical for every --threads value (see comm/parallel.hpp).
#include <iostream>
#include <memory>

#include "util/csv.hpp"

#include "code/params.hpp"
#include "code/tanner.hpp"
#include "comm/capacity.hpp"
#include "comm/parallel.hpp"
#include "core/decoder.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace dvbs2;

namespace {

code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s);
}

core::Schedule parse_schedule(const std::string& s) {
    if (s == "zigzag") return core::Schedule::ZigzagForward;
    if (s == "twophase") return core::Schedule::TwoPhase;
    if (s == "segmented") return core::Schedule::ZigzagSegmented;
    if (s == "map") return core::Schedule::ZigzagMap;
    if (s == "layered") return core::Schedule::Layered;
    throw std::runtime_error("unknown schedule " + s);
}

core::DecoderBackend parse_backend(const std::string& s) {
    if (s == "scalar") return core::DecoderBackend::Scalar;
    if (s == "simd") return core::DecoderBackend::Simd;
    throw std::runtime_error("unknown backend " + s + " (scalar or simd)");
}

core::SimdLaneMode parse_lanes(const std::string& s) {
    if (s == "auto") return core::SimdLaneMode::Auto;
    if (s == "group") return core::SimdLaneMode::GroupParallel;
    if (s == "frame") return core::SimdLaneMode::FramePerLane;
    throw std::runtime_error("unknown lane mode " + s + " (auto, group, or frame)");
}

core::Algorithm parse_algorithm(const std::string& s) {
    if (s == "minsum" || s == "min-sum") return core::Algorithm::MinSum;
    if (s == "wbf") return core::Algorithm::Wbf;
    if (s == "rhs-bp" || s == "rhs") return core::Algorithm::RhsBp;
    throw std::runtime_error("unknown algorithm " + s + " (minsum, wbf, or rhs-bp)");
}

}  // namespace

int main(int argc, char** argv) try {
    const util::CliArgs args(argc, argv,
                             {"rate", "from", "to", "step", "frames", "iters", "fixed", "bits",
                              "algorithm", "schedule", "backend", "lanes", "csv", "threads",
                              "progress"});
    const auto rate = parse_rate(args.get("rate", "1/2"));
    const code::Dvbs2Code ldpc(code::standard_params(rate));

    core::DecoderConfig cfg;
    cfg.algorithm = parse_algorithm(args.get("algorithm", "minsum"));
    cfg.schedule = parse_schedule(args.get("schedule", "zigzag"));
    cfg.backend = parse_backend(args.get("backend", "scalar"));
    cfg.lane_mode = parse_lanes(args.get("lanes", "auto"));
    cfg.max_iterations = static_cast<int>(args.get_int("iters", 30));

    const bool fixed = args.has("fixed");
    if (cfg.backend == core::DecoderBackend::Simd && !fixed)
        throw std::runtime_error("--backend=simd models the fixed-point datapath; add --fixed");
    const int bits = static_cast<int>(args.get_int("bits", 6));

    // One engine per worker — engines own message memories and decode
    // workspaces, and the parallel engine never shares them across threads.
    // make_engine runs the central config validation up front, so an illegal
    // combination (e.g. --backend=simd --lanes=group --schedule=zigzag)
    // fails here with a diagnostic naming the offending option.
    core::EngineSpec spec;
    spec.arith = fixed ? core::Arithmetic::Fixed : core::Arithmetic::Float;
    spec.config = cfg;
    spec.quant = bits == 5 ? quant::kQuant5 : quant::kQuant6;
    core::validate_engine_spec(spec);

    comm::SimConfig sim;
    sim.limits.max_frames = static_cast<std::uint64_t>(args.get_int("frames", 50));
    sim.limits.target_frame_errors = 15;
    sim.limits.target_bit_errors = 500;
    sim.threads = util::resolve_thread_count(static_cast<unsigned>(args.get_int("threads", 0)));
    if (args.has("progress")) {
        sim.progress = [](const comm::SimProgress& p) {
            if (!p.finished) return;
            std::cerr << "[" << p.ebn0_db << " dB] " << p.frames << " frames in "
                      << p.elapsed_s << " s (" << p.frames_per_s << " frames/s, "
                      << p.threads << " threads)\n";
        };
    }

    std::vector<double> snrs;
    const double from = args.get_double("from", 0.6), to = args.get_double("to", 1.6),
                 step = args.get_double("step", 0.2);
    // Index stepping: no floating-point drift over long sweeps (each point's
    // RNG stream hashes the Eb/N0 bit pattern, so the grid must be exact).
    for (std::uint64_t i = 0;; ++i) {
        const double s = from + static_cast<double>(i) * step;
        if (s > to + 1e-9) break;
        snrs.push_back(s);
    }

    std::cout << ldpc.params().name << ", " << (fixed ? "fixed " + std::to_string(bits) + "-bit"
                                                      : std::string("float"))
              << ", " << core::to_string(cfg.algorithm) << ", " << core::to_string(cfg.schedule)
              << ", " << core::to_string(cfg.backend) << " backend";
    if (cfg.backend == core::DecoderBackend::Simd)
        std::cout << " (lanes=" << core::to_string(cfg.lane_mode) << ")";
    std::cout << ", " << cfg.max_iterations << " iterations\n";
    std::cout << "Shannon limit (BPSK-constrained): "
              << comm::shannon_limit_bpsk_db(ldpc.params().rate()) << " dB\n\n";

    std::unique_ptr<util::CsvWriter> csv;
    if (args.has("csv")) {
        csv = std::make_unique<util::CsvWriter>(args.get("csv", "ber.csv"));
        csv->write_row({"ebn0_db", "frames", "bit_errors", "frame_errors", "ber", "fer",
                        "avg_iterations"});
    }

    util::TextTable table;
    table.set_header({"Eb/N0 [dB]", "frames", "BER", "FER", "avg iters"});
    util::ThreadPool pool(sim.threads);
    for (double snr : snrs) {
        const auto pt = comm::simulate_point_engine(ldpc, spec, snr, sim, &pool);
        std::ostringstream ber;
        ber.precision(3);
        ber << std::scientific << pt.ber(static_cast<std::uint64_t>(ldpc.k()));
        table.add_row({util::TextTable::num(snr, 2), util::TextTable::num((long long)pt.frames),
                       ber.str(), util::TextTable::num(pt.fer(), 3),
                       util::TextTable::num(pt.avg_iterations, 1)});
        if (csv)
            csv->write_row({std::to_string(snr), std::to_string(pt.frames),
                            std::to_string(pt.bit_errors), std::to_string(pt.frame_errors),
                            ber.str(), std::to_string(pt.fer()),
                            std::to_string(pt.avg_iterations)});
    }
    table.print(std::cout);
    if (csv) std::cout << "(wrote " << args.get("csv", "") << ")\n";
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
}
