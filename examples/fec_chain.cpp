// Full DVB-S2 FEC chain: BCH outer code + LDPC inner code (EN 302 307
// FECFRAME). The DATE'05 paper decodes the LDPC part; this example shows
// the complete concatenation the IP core sits in: the BCH code cleans the
// residual errors of the LDPC decoder (the "error floor" remover).
//
//   ./fec_chain [--rate=1/2] [--ebn0=1.0] [--frames=4] [--seed=3]
#include <iostream>

#include "bch/bch.hpp"
#include "code/params.hpp"
#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/engine.hpp"
#include "enc/encoder.hpp"
#include "util/cli.hpp"

using namespace dvbs2;

namespace {

code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s);
}

}  // namespace

int main(int argc, char** argv) try {
    const util::CliArgs args(argc, argv, {"rate", "ebn0", "frames", "seed"});
    const auto rate = parse_rate(args.get("rate", "1/2"));
    const double ebn0 = args.get_double("ebn0", 1.0);
    const int frames = static_cast<int>(args.get_int("frames", 4));
    const auto seed0 = static_cast<std::uint64_t>(args.get_int("seed", 3));

    // Outer BCH: N_bch = K_ldpc (Table 5a).
    const auto bch_prm = bch::dvbs2_bch_params(rate);
    const bch::BchCode outer(16, bch_prm.t, bch_prm.n_bch);
    // Inner LDPC.
    const code::Dvbs2Code inner(code::standard_params(rate));
    const enc::Encoder ldpc_enc(inner);
    core::DecoderConfig cfg;
    cfg.max_iterations = 30;
    const auto ldpc_dec =
        core::make_engine(inner, {core::Arithmetic::Fixed, cfg, quant::kQuant6});

    std::cout << "DVB-S2 FEC frame, rate " << code::to_string(rate) << ":\n"
              << "  BCH(" << outer.n() << ", " << outer.k() << ", t=" << outer.t()
              << ") over GF(2^16)  ->  LDPC(" << inner.n() << ", " << inner.k() << ")\n"
              << "  payload " << outer.k() << " bits per " << inner.n() << "-bit frame\n\n";

    const double sigma = comm::noise_sigma(ebn0, inner.params().rate(), comm::Modulation::Bpsk);
    int clean_frames = 0;
    core::DecodeResult ldpc_out;  // reused by decode_into across frames
    for (int f = 0; f < frames; ++f) {
        const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(f);
        // TX: payload -> BCH -> LDPC -> BPSK/AWGN.
        const util::BitVec payload = enc::random_info_bits(outer.k(), seed);
        const util::BitVec bch_cw = outer.encode(payload);
        const util::BitVec ldpc_cw = ldpc_enc.encode(bch_cw);
        comm::AwgnModem modem(comm::Modulation::Bpsk, seed * 13 + 1);
        const auto llr = modem.transmit(ldpc_cw, sigma);

        // RX: LDPC decode (engine + result storage reused) -> BCH decode.
        ldpc_dec->decode_into(llr, ldpc_out);
        const std::size_t ldpc_errs = util::BitVec::hamming_distance(ldpc_out.info_bits, bch_cw);
        const auto bch_out = outer.decode(ldpc_out.info_bits);
        util::BitVec recovered(static_cast<std::size_t>(outer.k()));
        for (int i = 0; i < outer.k(); ++i)
            if (bch_out.codeword.get(static_cast<std::size_t>(i)))
                recovered.set(static_cast<std::size_t>(i), true);
        const std::size_t final_errs = util::BitVec::hamming_distance(recovered, payload);
        if (final_errs == 0) ++clean_frames;

        std::cout << "frame " << f << ": LDPC " << (ldpc_out.converged ? "converged" : "stuck")
                  << " (" << ldpc_out.iterations << " it, " << ldpc_errs
                  << " residual bit errors) -> BCH "
                  << (bch_out.success ? "corrected " + std::to_string(bch_out.errors_corrected) +
                                            " errors"
                                      : "FAILED")
                  << " -> " << final_errs << " payload errors\n";
    }
    std::cout << "\n" << clean_frames << "/" << frames << " frames delivered error-free\n";
    return clean_frames == frames ? 0 : 1;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
}
