// Hardware architecture walkthrough: builds the FU mapping for a rate,
// optimizes the RAM addressing with simulated annealing, runs the
// cycle-driven RTL model on a noisy frame, verifies bit-exactness against
// the algorithmic fixed-point decoder, and prints cycle/throughput/area
// figures — a compressed tour of paper Sections 3-5.
//
//   ./hardware_sim [--rate=1/2] [--ebn0=1.5] [--anneal-iters=2000] [--seed=5]
#include <iostream>

#include "arch/anneal.hpp"
#include "arch/area.hpp"
#include "arch/energy.hpp"
#include "arch/mapping.hpp"
#include "arch/rtl_model.hpp"
#include "arch/stream.hpp"
#include "arch/throughput.hpp"
#include "code/params.hpp"
#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/decoder.hpp"
#include "enc/encoder.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace dvbs2;

namespace {

code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s);
}

}  // namespace

int main(int argc, char** argv) try {
    const util::CliArgs args(argc, argv, {"rate", "ebn0", "anneal-iters", "seed"});
    const auto rate = parse_rate(args.get("rate", "1/2"));
    const double ebn0 = args.get_double("ebn0", 1.5);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

    const code::Dvbs2Code ldpc(code::standard_params(rate));
    arch::HardwareMapping mapping(ldpc);
    std::cout << "mapping: " << mapping.ram_words() << " address/shuffle words ("
              << mapping.slots_per_cn() << " per check node), FU load " << mapping.fu_load()
              << " edges per half-iteration\n";

    // Address-scheme optimization (paper Sec. 4).
    arch::AnnealConfig acfg;
    acfg.iterations = static_cast<int>(args.get_int("anneal-iters", 2000));
    const auto ares = arch::anneal_addressing(mapping, acfg);
    std::cout << "annealing: peak write buffer " << ares.before.peak_buffer << " -> "
              << ares.after.peak_buffer << " words (" << ares.moves_accepted << "/"
              << ares.moves_tried << " moves accepted)\n";

    // A noisy frame through the RTL model.
    const enc::Encoder encoder(ldpc);
    const util::BitVec info = enc::random_info_bits(ldpc.k(), seed);
    comm::AwgnModem modem(comm::Modulation::Bpsk, seed + 3);
    const double sigma = comm::noise_sigma(ebn0, ldpc.params().rate(), comm::Modulation::Bpsk);
    const auto llr = modem.transmit(encoder.encode(info), sigma);

    arch::RtlConfig rc;
    rc.decoder.max_iterations = 30;
    arch::RtlDecoder rtl(ldpc, mapping, rc);
    const auto res = rtl.decode(llr);
    std::cout << "RTL decode @ " << ebn0 << " dB: "
              << (res.converged ? "converged" : "NOT converged") << " after " << res.iterations
              << " iterations, "
              << util::BitVec::hamming_distance(res.info_bits, info) << " info errors\n";

    // Bit-exactness against the algorithmic fixed-point reference.
    core::DecoderConfig ref_cfg;
    ref_cfg.schedule = core::Schedule::ZigzagSegmented;
    ref_cfg.max_iterations = 30;
    core::FixedDecoder ref(ldpc, ref_cfg, rc.spec);
    ref.set_cn_order(mapping.extract_cn_order());
    const auto ref_res = ref.decode(llr);
    std::cout << "bit-exact vs fixed-point reference: "
              << (res.info_bits == ref_res.info_bits && res.iterations == ref_res.iterations
                      ? "YES"
                      : "NO")
              << "\n";

    // Cycle accounting and Eq. 8 throughput.
    const auto st = rtl.iteration_stats();
    std::cout << "cycles/iteration: " << st.cycles_per_iteration() << " (VN "
              << st.variable_phase.total_cycles << " + CN " << st.check_phase.total_cycles
              << "), peak buffer " << st.peak_buffer() << " words\n";
    const auto tp = arch::throughput(ldpc.params(), arch::ThroughputConfig{});
    std::cout << "Eq. 8 @ 270 MHz, 30 iters: " << tp.info_throughput_bps / 1e6
              << " Mbit/s info, " << tp.coded_throughput_bps / 1e6 << " Mbit/s coded\n";

    // Streamed operation (Eq. 7 I/O overlap) and energy.
    arch::StreamConfig scfg;
    const auto stream = arch::simulate_stream(mapping, scfg, 6);
    std::cout << "stream of 6 frames: steady " << stream.steady_info_bps / 1e6
              << " Mbit/s info, first-frame latency "
              << stream.first_frame_latency_s * 1e6 << " us, core idle "
              << stream.core_idle_cycles << " cycles\n";
    const auto energy = arch::energy_model(mapping, rc.spec, 30);
    std::cout << "energy/block: " << energy.total_nj() / 1e3 << " uJ ("
              << util::TextTable::num(100.0 * energy.memory_nj / energy.total_nj(), 0)
              << "% memory), " << energy.nj_per_info_bit << " nJ/info bit\n";

    // Area of the full multi-rate decoder.
    std::vector<code::CodeParams> all;
    for (auto r : code::all_rates()) all.push_back(code::standard_params(r));
    const auto area = arch::area_model(all, rc.spec);
    std::cout << "modeled total area (all 11 rates, 0.13um): " << area.total_mm2
              << " mm^2 (paper: 22.74)\n";
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
}
