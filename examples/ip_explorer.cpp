// IP integrator's tour: instantiate the multi-rate decoder IP, dump the
// per-rate address/shuffle configuration images (hex memory files), and
// print the integrator-facing datasheet: throughput, stream latency,
// conflict-buffer sizing, energy and area.
//
//   ./ip_explorer [--rates=1/2,3/5,9/10] [--dump-dir=.] [--iters=30] [--rtl]
//
// --rtl additionally emits synthesizable Verilog for the shuffle network,
// the boxplus functional-unit kernel and each rate's configuration ROM,
// plus self-checking testbenches with golden vectors from the C++ model.
#include <fstream>
#include <iostream>
#include <sstream>

#include "arch/energy.hpp"
#include "arch/ip_core.hpp"
#include "arch/rom_image.hpp"
#include "arch/stream.hpp"
#include "arch/verilog.hpp"
#include "code/params.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace dvbs2;

namespace {

code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s);
}

std::string fs_name(code::CodeRate r) {
    std::string s = code::to_string(r);
    for (auto& c : s)
        if (c == '/') c = '_';
    return s;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::CliArgs args(argc, argv, {"rates", "dump-dir", "iters", "rtl"});
    std::vector<code::CodeRate> rates;
    {
        std::stringstream ss(args.get("rates", "1/2,3/5,9/10"));
        std::string tok;
        while (std::getline(ss, tok, ',')) rates.push_back(parse_rate(tok));
    }
    const std::string dump_dir = args.get("dump-dir", ".");
    const int iters = static_cast<int>(args.get_int("iters", 30));

    arch::IpCoreConfig cfg;
    cfg.rtl.decoder.max_iterations = iters;
    cfg.anneal_iterations = 1200;
    arch::Dvbs2DecoderIp ip(cfg);

    util::TextTable t;
    t.set_header({"Rate", "ROM words", "ROM bits", "buffer", "cyc/iter", "info Mbit/s",
                  "stream Mbit/s", "latency [us]", "nJ/bit"});
    for (auto rate : rates) {
        const auto& ctx = ip.context(rate);
        const auto img = arch::build_rom_image(*ctx.mapping);
        if (!arch::verify_rom_image(img, *ctx.mapping))
            throw std::runtime_error("ROM image verification failed");
        const std::string path = dump_dir + "/rom_" + fs_name(rate) + ".hex";
        std::ofstream f(path);
        f << arch::to_hex(img);
        std::cout << "wrote " << path << " (" << img.words.size() << " x "
                  << img.bits_per_word() << " bit)\n";

        const auto tp = ip.throughput_of(rate);
        arch::StreamConfig scfg;
        scfg.iterations = iters;
        const auto stream = arch::simulate_stream(*ctx.mapping, scfg, 6);
        const auto energy = arch::energy_model(*ctx.mapping, cfg.rtl.spec, iters);
        const auto iterstats = arch::simulate_iteration(*ctx.mapping, cfg.rtl.memory);

        t.add_row({code::to_string(rate), util::TextTable::num((long long)img.words.size()),
                   util::TextTable::num(img.total_bits()),
                   util::TextTable::num((long long)ctx.check_phase_stats.peak_buffer),
                   util::TextTable::num((long long)iterstats.cycles_per_iteration()),
                   util::TextTable::num(tp.info_throughput_bps / 1e6, 1),
                   util::TextTable::num(stream.steady_info_bps / 1e6, 1),
                   util::TextTable::num(stream.first_frame_latency_s * 1e6, 1),
                   util::TextTable::num(energy.nj_per_info_bit, 2)});
    }
    std::cout << '\n';
    t.print(std::cout, "DVB-S2 LDPC decoder IP datasheet (" + std::to_string(iters) +
                           " iterations, 270 MHz, 6-bit)");
    std::cout << "\nshared conflict buffer across configured rates: " << ip.required_buffer_words()
              << " words\n";
    std::cout << "total modeled area: " << util::TextTable::num(ip.area().total_mm2, 2)
              << " mm^2 @ 0.13um\n";

    if (args.has("rtl")) {
        auto emit = [&](const arch::VerilogBundle& b) {
            std::ofstream(dump_dir + "/" + b.module_name + ".v") << b.module_source;
            std::ofstream(dump_dir + "/tb_" + b.module_name + ".v") << b.testbench_source;
            std::ofstream(dump_dir + "/" + b.vector_file_name) << b.vectors;
            std::cout << "wrote " << b.module_name << ".v + testbench + " << b.vector_count
                      << " golden vectors\n";
        };
        emit(arch::generate_barrel_shifter(360, cfg.rtl.spec.total_bits));
        emit(arch::generate_boxplus_unit(cfg.rtl.spec));
        for (auto rate : rates)
            emit(arch::generate_config_rom(*ip.context(rate).mapping, code::to_string(rate)));
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
}
