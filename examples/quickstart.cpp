// Quickstart: encode a frame, push it through an AWGN channel, decode it
// with the paper's operating point (zigzag schedule, 30 iterations), and
// print what happened.
//
//   ./quickstart [--rate=1/2] [--ebn0=1.5] [--seed=1] [--fixed]
#include <iostream>

#include "code/params.hpp"
#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/engine.hpp"
#include "enc/encoder.hpp"
#include "util/cli.hpp"

using namespace dvbs2;

namespace {

code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s + " (use e.g. 1/2, 3/4, 9/10)");
}

}  // namespace

int main(int argc, char** argv) try {
    const util::CliArgs args(argc, argv, {"rate", "ebn0", "seed", "fixed"});
    const auto rate = parse_rate(args.get("rate", "1/2"));
    const double ebn0 = args.get_double("ebn0", 1.5);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    // 1. Build the code (N = 64800, structural parameters of EN 302 307).
    const code::Dvbs2Code ldpc(code::standard_params(rate));
    std::cout << "code: " << ldpc.params().name << "  K=" << ldpc.k() << " N=" << ldpc.n()
              << " q=" << ldpc.params().q << " check_deg=" << ldpc.params().check_deg << "\n";

    // 2. Encode K random information bits (linear-time IRA encoding).
    const enc::Encoder encoder(ldpc);
    const util::BitVec info = enc::random_info_bits(ldpc.k(), seed);
    const util::BitVec cw = encoder.encode_checked(info);

    // 3. BPSK over AWGN at the requested Eb/N0.
    comm::AwgnModem modem(comm::Modulation::Bpsk, seed + 7);
    const double sigma = comm::noise_sigma(ebn0, ldpc.params().rate(), comm::Modulation::Bpsk);
    const auto llr = modem.transmit(cw, sigma);
    std::cout << "channel: BPSK/AWGN, Eb/N0 = " << ebn0 << " dB (sigma = " << sigma << ")\n";

    // 4. Decode: paper operating point (optimized zigzag update, 30 iters),
    //    via the unified engine layer. make_engine validates the config and
    //    builds the registered engine for (arithmetic, backend); decode_into
    //    reuses the result storage, so repeated decodes allocate nothing.
    core::EngineSpec spec;
    spec.arith = args.has("fixed") ? core::Arithmetic::Fixed : core::Arithmetic::Float;
    spec.config.schedule = core::Schedule::ZigzagForward;
    spec.config.max_iterations = 30;
    spec.quant = quant::kQuant6;  // 6-bit hardware datapath (fixed only)
    const std::unique_ptr<core::Engine> dec = core::make_engine(ldpc, spec);

    core::DecodeResult res;
    dec->decode_into(llr, res);
    std::cout << "decoder: " << dec->backend_name() << ", "
              << core::to_string(spec.config.schedule) << "\n";

    const std::size_t errors = util::BitVec::hamming_distance(res.info_bits, info);
    std::cout << "result: " << (res.converged ? "converged" : "NOT converged") << " after "
              << res.iterations << " iterations, " << errors << " info-bit errors\n";
    return errors == 0 ? 0 : 1;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
}
