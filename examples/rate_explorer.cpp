// Rate explorer: prints the structural parameters of every DVB-S2 code
// (long and short frames) together with the derived hardware quantities —
// an interactive rendition of the paper's Tables 1 and 2.
//
//   ./rate_explorer [--frame=long|short] [--audit] [--dvbs2x]
//
// --audit additionally runs the structural validator (group-shift property,
// check regularity, 4-cycle count) on each generated code. --dvbs2x lists
// the extension rates derived by the degree-profile solver instead of the
// DVB-S2 base set.
#include <iostream>

#include "code/params.hpp"
#include "code/profile_solver.hpp"
#include "code/tanner.hpp"
#include "code/validate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace dvbs2;

int main(int argc, char** argv) try {
    const util::CliArgs args(argc, argv, {"frame", "audit", "dvbs2x"});
    const auto frame =
        args.get("frame", "long") == "short" ? code::FrameSize::Short : code::FrameSize::Long;
    const bool audit = args.has("audit");

    util::TextTable table;
    if (audit)
        table.set_header({"rate", "K", "N-K", "q", "deg_hi", "n_hi", "check_deg", "E_IN", "E_PN",
                          "Addr", "structure"});
    else
        table.set_header(
            {"rate", "K", "N-K", "q", "deg_hi", "n_hi", "check_deg", "E_IN", "E_PN", "Addr"});

    std::vector<std::pair<std::string, code::CodeParams>> entries;
    if (args.has("dvbs2x")) {
        for (const auto& spec : code::dvbs2x_rates())
            entries.emplace_back(spec.label, code::dvbs2x_params(spec.label));
    } else {
        for (auto rate : code::rates_for(frame))
            entries.emplace_back(code::to_string(rate), code::standard_params(rate, frame));
    }

    for (const auto& [label, p] : entries) {
        std::vector<std::string> row = {
            label,
            util::TextTable::num((long long)p.k),
            util::TextTable::num((long long)p.m()),
            util::TextTable::num((long long)p.q),
            util::TextTable::num((long long)p.deg_hi),
            util::TextTable::num((long long)p.n_hi),
            util::TextTable::num((long long)p.check_deg),
            util::TextTable::num(p.e_in()),
            util::TextTable::num(p.e_pn()),
            util::TextTable::num(p.addr_words()),
        };
        if (audit) {
            const code::Dvbs2Code c(p);
            const auto rep = code::audit_structure(c);
            row.push_back(rep.all_ok() ? "ok" : rep.detail);
        }
        table.add_row(std::move(row));
    }
    const std::string title =
        args.has("dvbs2x") ? "DVB-S2X extension rates, N = 64800 (solver-derived profiles)"
        : frame == code::FrameSize::Long
            ? "DVB-S2 LDPC codes, N = 64800 (paper Tables 1 & 2)"
            : "DVB-S2 LDPC codes, N = 16200 (extension)";
    table.print(std::cout, title);
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
}
