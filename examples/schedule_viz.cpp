// Convergence visualization: decodes one noisy frame with each schedule and
// prints the per-iteration trace (unsatisfied checks, mean |posterior|) —
// the dynamics behind Fig. 2's "10 iterations saved".
//
//   ./schedule_viz [--rate=1/2] [--ebn0=1.1] [--seed=4] [--iters=40]
#include <iomanip>
#include <iostream>

#include "code/params.hpp"
#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/decoder.hpp"
#include "enc/encoder.hpp"
#include "util/cli.hpp"

using namespace dvbs2;

namespace {

code::CodeRate parse_rate(const std::string& s) {
    for (auto r : code::all_rates())
        if (code::to_string(r) == s) return r;
    throw std::runtime_error("unknown rate " + s);
}

}  // namespace

int main(int argc, char** argv) try {
    const util::CliArgs args(argc, argv, {"rate", "ebn0", "seed", "iters"});
    const auto rate = parse_rate(args.get("rate", "1/2"));
    const double ebn0 = args.get_double("ebn0", 1.1);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));
    const int iters = static_cast<int>(args.get_int("iters", 40));

    const code::Dvbs2Code ldpc(code::standard_params(rate));
    const enc::Encoder encoder(ldpc);
    const util::BitVec info = enc::random_info_bits(ldpc.k(), seed);
    comm::AwgnModem modem(comm::Modulation::Bpsk, seed + 1);
    const double sigma = comm::noise_sigma(ebn0, ldpc.params().rate(), comm::Modulation::Bpsk);
    const auto llr = modem.transmit(encoder.encode(info), sigma);

    std::cout << ldpc.params().name << " @ " << ebn0 << " dB, one frame, up to " << iters
              << " iterations\n\n";
    for (auto schedule : {core::Schedule::TwoPhase, core::Schedule::ZigzagForward,
                          core::Schedule::ZigzagMap, core::Schedule::Layered}) {
        core::DecoderConfig cfg;
        cfg.schedule = schedule;
        cfg.max_iterations = iters;
        core::Decoder dec(ldpc, cfg);
        std::vector<core::IterationTrace> traces;
        dec.set_observer([&](const core::IterationTrace& t) { traces.push_back(t); });
        const auto res = dec.decode(llr);

        std::cout << std::left << std::setw(18) << core::to_string(schedule)
                  << " unsatisfied checks per iteration:\n  ";
        for (const auto& t : traces) {
            std::cout << t.unsatisfied_checks;
            if (&t != &traces.back()) std::cout << " ";
        }
        std::cout << "\n  -> " << (res.converged ? "converged" : "did not converge") << " in "
                  << res.iterations << " iterations, final mean |posterior| = "
                  << std::fixed << std::setprecision(1)
                  << (traces.empty() ? 0.0 : traces.back().mean_abs_posterior) << "\n\n";
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
}
