#include "analysis/analyzer.hpp"

#include <exception>

#include "code/tanner.hpp"

namespace dvbs2::analysis {

Report lint_configuration(const code::CodeParams& params, const code::IraTables& tables,
                          const LintOptions& opts) {
    Report rep = lint_code_structure(params, tables);

    // Range analysis depends only on parameters and the decoder config, so
    // it runs even when the table itself is broken. The legacy min-sum
    // stage table first (cross-check tier), then the per-event IR
    // certification, which carries all three algorithm tiers.
    for (const quant::QuantSpec& spec : opts.quant_specs) {
        rep.merge(lint_fixed_point(params, opts.decoder, spec));
        rep.merge(lint_range_ir(params, opts.decoder, spec));
    }

    // Schedule and memory rules need the expanded graph; a structurally
    // broken table cannot be expanded, so stop here with the findings.
    if (!rep.clean()) return rep;

    try {
        const code::Dvbs2Code code(params, tables);
        arch::HardwareMapping mapping(code);
        if (opts.run_anneal) {
            arch::AnnealConfig acfg = opts.anneal;
            acfg.memory = opts.memory;
            arch::anneal_addressing(mapping, acfg);
        }
        rep.merge(lint_schedule(mapping));
        rep.merge(lint_memory(mapping, opts.memory, opts.buffer_depth));
        DataflowOptions dopts;
        dopts.memory = opts.memory;
        dopts.buffer_depth = opts.buffer_depth;
        dopts.schedule = opts.decoder.schedule;
        dopts.algorithm = opts.decoder.algorithm;
        rep.merge(lint_dataflow(code, mapping, dopts));
        rep.merge(lint_transform(opts.decoder.schedule));
    } catch (const std::exception& e) {
        // The lint rules above are meant to pre-empt every constructor
        // requirement; reaching this means a rule gap, so surface it loudly.
        rep.add("analysis.internal", Severity::Error, "expansion",
                std::string("artifact construction failed despite a clean code lint: ") +
                    e.what(),
                "report this as an analyzer rule gap");
    }
    return rep;
}

Report lint_configuration(const code::CodeParams& params, const LintOptions& opts) {
    return lint_configuration(params, code::generate_tables(params), opts);
}

}  // namespace dvbs2::analysis
