// Aggregating entry point of the static analyzer: runs every rule family
// over one (code table, decoder config, architecture config) triple in
// dependency order and returns one merged Report. This is the library API
// behind the `dvbs2_lint` CLI and the ctest lint tier.
#pragma once

#include <optional>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/lint_code.hpp"
#include "analysis/lint_dataflow.hpp"
#include "analysis/lint_memory.hpp"
#include "analysis/lint_range.hpp"
#include "analysis/lint_range_ir.hpp"
#include "analysis/lint_schedule.hpp"
#include "analysis/lint_transform.hpp"
#include "arch/anneal.hpp"
#include "core/types.hpp"

namespace dvbs2::analysis {

/// What to analyze a code against. Defaults pin the paper's design point:
/// 4-bank single-port RAM with 2 write ports, latency 4, the annealed
/// address assignment, a 4-word conflict buffer, and the 6- and 5-bit
/// message quantizers under the default decoder configuration.
struct LintOptions {
    arch::MemoryConfig memory;
    int buffer_depth = 4;           ///< conflict FIFO words the design provides
    bool run_anneal = true;         ///< lint the annealed addressing (the shipped flow)
    arch::AnnealConfig anneal;      ///< annealer settings when run_anneal
    core::DecoderConfig decoder;    ///< pinned decoder configuration
    std::vector<quant::QuantSpec> quant_specs{quant::kQuant6, quant::kQuant5};
};

/// Runs all four rule families over `params` with explicit `tables`.
/// Code-structure errors stop the dependent families (their inputs would be
/// unconstructible); range analysis always runs (it needs only parameters).
Report lint_configuration(const code::CodeParams& params, const code::IraTables& tables,
                          const LintOptions& opts);

/// Generates the tables for `params` first (the shipped/generated-table
/// path).
Report lint_configuration(const code::CodeParams& params, const LintOptions& opts);

}  // namespace dvbs2::analysis
