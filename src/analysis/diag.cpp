#include "analysis/diag.hpp"

#include <algorithm>
#include <ostream>

namespace dvbs2::analysis {

const char* to_string(Severity s) {
    switch (s) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

void Report::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void Report::add(std::string rule, Severity severity, std::string location, std::string message,
                 std::string fix_hint) {
    diags_.push_back({std::move(rule), severity, std::move(location), std::move(message),
                      std::move(fix_hint)});
}

void Report::merge(const Report& other) {
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::size_t Report::error_count() const noexcept {
    std::size_t n = 0;
    for (const auto& d : diags_)
        if (d.severity == Severity::Error) ++n;
    return n;
}

std::size_t Report::warning_count() const noexcept {
    std::size_t n = 0;
    for (const auto& d : diags_)
        if (d.severity == Severity::Warning) ++n;
    return n;
}

std::vector<Diagnostic> Report::by_rule(const std::string& rule) const {
    std::vector<Diagnostic> out;
    for (const auto& d : diags_)
        if (d.rule == rule) out.push_back(d);
    return out;
}

bool rule_in_family(const std::string& rule, const std::string& family) {
    if (family.empty() || rule.size() < family.size()) return false;
    if (rule.compare(0, family.size(), family) != 0) return false;
    return rule.size() == family.size() || rule[family.size()] == '.';
}

std::vector<Diagnostic> Report::by_family(const std::string& family) const {
    std::vector<Diagnostic> out;
    for (const auto& d : diags_)
        if (rule_in_family(d.rule, family)) out.push_back(d);
    return out;
}

bool Report::has(const std::string& rule) const {
    for (const auto& d : diags_)
        if (d.rule == rule) return true;
    return false;
}

namespace {

/// Deterministic render order: stable sort by (rule, location), so equal
/// keys keep their insertion order and output is byte-stable across runs.
std::vector<const Diagnostic*> render_order(const Report& report) {
    std::vector<const Diagnostic*> out;
    out.reserve(report.diagnostics().size());
    for (const auto& d : report.diagnostics()) out.push_back(&d);
    std::stable_sort(out.begin(), out.end(), [](const Diagnostic* a, const Diagnostic* b) {
        if (a->rule != b->rule) return a->rule < b->rule;
        return a->location < b->location;
    });
    return out;
}

}  // namespace

void render_text(std::ostream& os, const Report& report) {
    for (const Diagnostic* dp : render_order(report)) {
        const Diagnostic& d = *dp;
        os << to_string(d.severity) << ' ' << d.rule;
        if (!d.location.empty()) os << " [" << d.location << ']';
        os << ": " << d.message;
        if (!d.fix_hint.empty()) os << " (fix: " << d.fix_hint << ')';
        os << '\n';
    }
    os << report.error_count() << " error(s), " << report.warning_count() << " warning(s)\n";
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

}  // namespace

void render_json(std::ostream& os, const Report& report) {
    os << "{\n  \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic* dp : render_order(report)) {
        const Diagnostic& d = *dp;
        os << (first ? "\n" : ",\n") << "    {\"rule\": ";
        json_escape(os, d.rule);
        os << ", \"severity\": ";
        json_escape(os, to_string(d.severity));
        os << ", \"location\": ";
        json_escape(os, d.location);
        os << ", \"message\": ";
        json_escape(os, d.message);
        os << ", \"fix_hint\": ";
        json_escape(os, d.fix_hint);
        os << '}';
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n";
    os << "  \"errors\": " << report.error_count() << ",\n";
    os << "  \"warnings\": " << report.warning_count() << "\n}\n";
}

}  // namespace dvbs2::analysis
