// Diagnostic model of the static analyzer (`dvbs2_lint`).
//
// Every lint rule reports findings as machine-readable Diagnostic records:
// a stable rule id (e.g. "code.girth4-info"), a severity, a location inside
// the analyzed artifact (table row/entry, ROM slot, datapath stage, ...), a
// human-readable message, and a fix hint. A Report aggregates the findings
// of one analysis run; the CLI renders it as text or JSON and derives its
// exit status from Report::error_count().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dvbs2::analysis {

/// Finding severity. `Error` findings break a structural invariant the
/// architecture depends on (the configuration must be rejected); `Warning`
/// findings are legal but suspicious; `Note` carries proof context (e.g.
/// the computed static peak-conflict count) attached to a passing rule.
enum class Severity { Note, Warning, Error };

const char* to_string(Severity s);

/// One finding of one rule.
struct Diagnostic {
    std::string rule;      ///< stable rule id, "<family>.<name>"
    Severity severity = Severity::Error;
    std::string location;  ///< artifact coordinates, e.g. "row 3 entry 1"
    std::string message;   ///< what is wrong (or proven, for notes)
    std::string fix_hint;  ///< how to repair the configuration
};

/// Aggregated findings of one analysis run.
class Report {
public:
    /// Appends a finding.
    void add(Diagnostic d);
    /// Convenience: appends a finding built from its fields.
    void add(std::string rule, Severity severity, std::string location, std::string message,
             std::string fix_hint = "");
    /// Appends every finding of `other` (used by the aggregating analyzer).
    void merge(const Report& other);

    const std::vector<Diagnostic>& diagnostics() const noexcept { return diags_; }
    std::size_t error_count() const noexcept;
    std::size_t warning_count() const noexcept;
    bool clean() const noexcept { return error_count() == 0; }

    /// Findings whose rule id matches `rule` exactly.
    std::vector<Diagnostic> by_rule(const std::string& rule) const;
    /// Findings whose rule id is `family` or lives under it ("mem" matches
    /// "mem.config" but not "memory.config"); see rule_in_family.
    std::vector<Diagnostic> by_family(const std::string& family) const;
    /// True iff at least one finding has rule id `rule`.
    bool has(const std::string& rule) const;

private:
    std::vector<Diagnostic> diags_;
};

/// Segment-aware family-prefix match: true iff `rule` equals `family` or
/// starts with `family` followed by a '.' — so "sched" does not claim the
/// "schedule.dataflow.*" rules. Backs Report::by_family and the CLI's
/// --only= filter.
bool rule_in_family(const std::string& rule, const std::string& family);

/// Renders one finding per line: "severity rule [location] message (hint)".
/// Findings are ordered deterministically (stable sort by rule, then
/// location), so output is byte-stable regardless of rule execution order.
void render_text(std::ostream& os, const Report& report);

/// Renders the report as a JSON array of finding objects plus a summary
/// object — the machine-readable interface of the CLI. Same deterministic
/// ordering as render_text, making the JSON usable in golden tests.
void render_json(std::ostream& os, const Report& report);

}  // namespace dvbs2::analysis
