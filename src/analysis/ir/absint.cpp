// Abstract interpreter and independent certificate checker for per-event
// fixed-point range certification (see absint.hpp for the domain design).
//
// File layout: the interpreter (firing scanner, transfer functions,
// fixpoint driver, annotation pass) sits in the anonymous namespace up
// top; the checker at the bottom is a deliberately separate implementation
// that recomputes every transfer from the certificate's claims — the two
// halves share the trace format and nothing else, so a bug in one is
// caught by the other (the translation-validation discipline of
// transform.cpp).
#include "analysis/ir/absint.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <map>

#include "util/error.hpp"

namespace dvbs2::analysis::ir {

namespace {

/// All bound arithmetic is clamped here: large enough that no legal
/// configuration ever reaches it, small enough that sums of a full check
/// row (<= 41 terms) and the x16 normalization product cannot overflow a
/// long long. A word stuck at kTop reads as an overflow against any real
/// capacity, which is exactly what widening wants.
constexpr long long kTop = 1LL << 56;

long long cap_top(long long v) { return v > kTop ? kTop : v; }

long long wbf_alpha_term(const AbsintSpec& spec) {
    return static_cast<long long>(
        std::ceil(spec.wbf_alpha * static_cast<double>(spec.channel_clamp)));
}

/// Stage capacities, by stable stage name. The wide stages live in the
/// accumulator word; finalize-offset and wbf-weight land in a stored
/// message word; rhs-tracker is the unit-interval tracker itself.
long long stage_capacity(const std::string& stage, const AbsintSpec& spec) {
    if (stage == "channel-quantize" || stage == "finalize-offset" || stage == "wbf-weight")
        return spec.max_raw;
    if (stage == "rhs-tracker") return 1;
    return spec.wide_capacity;
}

// --------------------------------------------------------------------------
// Interpreter
// --------------------------------------------------------------------------

/// One firing: a maximal run of events sharing (iter, phase, unit, step).
struct Firing {
    std::size_t begin = 0;
    std::size_t end = 0;
};

std::vector<Firing> scan_firings(const Trace& t) {
    std::vector<Firing> out;
    const auto& ev = t.events;
    std::size_t i = 0;
    while (i < ev.size()) {
        std::size_t j = i + 1;
        while (j < ev.size() && ev[j].iter == ev[i].iter && ev[j].phase == ev[i].phase &&
               ev[j].unit == ev[i].unit && ev[j].step == ev[i].step)
            ++j;
        out.push_back({i, j});
        i = j;
    }
    return out;
}

/// Abstract state: per-word magnitude bound, plus — for the layered
/// sum-shape accumulator domain — the bound each contribution word last
/// folded into its posterior total (invariant: bound(post) = channel +
/// sum of folded contributions over the node's edges).
struct AbsState {
    std::array<std::vector<long long>, kSpaceCount> word;
    std::array<std::vector<long long>, kSpaceCount> folded;

    bool same_as(const AbsState& o) const { return word == o.word && folded == o.folded; }
};

/// Real decoder initial values, abstracted: message, zigzag, MAP and
/// snapshot words start at zero (no check or variable update has run), the
/// layered posterior totals start at the bare channel with no contribution
/// folded. The fixpoint S* dominates this state (messages are >= 0 bounds,
/// posterior bounds are channel + non-negative folded sums), which is what
/// makes annotating every iteration from S* sound for a run of any length.
AbsState initial_state(const Trace& t, const AbsintSpec& spec) {
    AbsState st;
    for (int s = 0; s < kSpaceCount; ++s) {
        const bool posterior = static_cast<Space>(s) == Space::PostInfo ||
                               static_cast<Space>(s) == Space::PostParity;
        st.word[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(t.space_size[static_cast<std::size_t>(s)]),
            posterior ? spec.channel_clamp : 0);
        st.folded[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(t.space_size[static_cast<std::size_t>(s)]), 0);
    }
    return st;
}

/// Named-stage accumulator: tracks the peak (with its event) and the first
/// event at which the stage exceeded its capacity.
struct StageAcc {
    const AbsintSpec* spec = nullptr;
    std::vector<StageBound> stages;
    std::int64_t first_bad_event = -1;
    std::string first_bad_stage;

    void see(const char* name, long long worst, std::int64_t event) {
        worst = cap_top(worst);
        const long long capacity = stage_capacity(name, *spec);
        if (worst > capacity && first_bad_event < 0) {
            first_bad_event = event;
            first_bad_stage = name;
        }
        for (StageBound& s : stages)
            if (s.stage == name) {
                if (worst > s.worst) {
                    s.worst = worst;
                    s.event = event;
                }
                return;
            }
        stages.push_back(StageBound{name, worst, capacity, event});
    }
};

/// Shared context of one interpretation pass. `annot` is null during
/// fixpointing and set during the annotation pass, where every event
/// records the bound it writes (Def) or observes (Use/Sink).
struct Interp {
    const Trace& trace;
    const AbsintSpec& spec;
    AbsState& st;
    StageAcc* stages = nullptr;
    std::vector<long long>* annot = nullptr;
    int parity_unit_base = 0;

    long long rd(std::size_t ei) const {
        const Event& e = trace.events[ei];
        return st.word[static_cast<std::size_t>(e.space)][static_cast<std::size_t>(e.index)];
    }
    void observe(std::size_t ei) {
        if (annot) (*annot)[ei] = rd(ei);
    }
    void wr(std::size_t ei, long long v) {
        v = cap_top(v);
        const Event& e = trace.events[ei];
        st.word[static_cast<std::size_t>(e.space)][static_cast<std::size_t>(e.index)] = v;
        if (annot) (*annot)[ei] = v;
    }
    void stage(const char* name, long long worst, std::size_t ei) {
        if (stages) stages->see(name, worst, static_cast<std::int64_t>(ei));
    }
};

long long second_smallest(const std::vector<long long>& v) {
    long long m1 = kTop, m2 = kTop;
    for (long long x : v) {
        if (x < m1) {
            m2 = m1;
            m1 = x;
        } else if (x < m2) {
            m2 = x;
        }
    }
    return m2;
}

/// Bound on a check node's strongest output: every output combines all
/// inputs but its own, so the worst case over outputs excludes the
/// smallest input — second_min for the min rules, plus the correction-LUT
/// peak (pre-saturation) for the exact rule. An empty combine is the
/// boxplus identity, which saturates.
long long combine_all_but_one(Interp& in, const std::vector<long long>& inputs,
                              std::size_t stage_event) {
    const AbsintSpec& spec = in.spec;
    long long presat;
    if (inputs.size() <= 1) {
        presat = spec.max_raw;
    } else {
        presat = second_smallest(inputs);
        if (spec.rule == core::CheckRule::Exact) presat = cap_top(presat + spec.corr_peak);
    }
    in.stage("cn-combine", presat, stage_event);
    return std::min(presat, spec.max_raw);
}

/// Finalize step of the min-sum tier (FixedArith::finalize). The offset
/// rule's result is deliberately NOT capped at max_raw: a negative offset
/// grows messages past the quantizer bound, and the stored-word capacity
/// check is what reports it.
long long finalize_bound(Interp& in, long long comb, std::size_t stage_event) {
    const AbsintSpec& spec = in.spec;
    switch (spec.rule) {
        case core::CheckRule::Exact:
        case core::CheckRule::MinSum: return comb;
        case core::CheckRule::NormalizedMinSum: {
            const long long pre = cap_top(comb * std::llabs(spec.norm_num) + 8);
            in.stage("finalize-normalize", pre, stage_event);
            return std::min(pre >> 4, spec.max_raw);
        }
        case core::CheckRule::OffsetMinSum: {
            const long long val = spec.offset_raw >= 0
                                      ? std::max(0LL, comb - spec.offset_raw)
                                      : cap_top(comb - spec.offset_raw);
            in.stage("finalize-offset", val, stage_event);
            return val;
        }
    }
    return comb;
}

void split_events(const Trace& t, const Firing& f, std::vector<std::size_t>& uses,
                  std::vector<std::size_t>& defs, std::vector<std::size_t>& sinks) {
    uses.clear();
    defs.clear();
    sinks.clear();
    for (std::size_t i = f.begin; i < f.end; ++i) {
        switch (t.events[i].access) {
            case Access::Use: uses.push_back(i); break;
            case Access::Def: defs.push_back(i); break;
            case Access::Sink: sinks.push_back(i); break;
        }
    }
}

/// Posterior hardening: the sinks of one firing, grouped by word index,
/// are the down/up (or fwd/up) pair of one parity bit; its posterior is
/// channel + the pair. For WBF the same pair is the parity bit's flip
/// metric contribution instead.
void sink_posteriors(Interp& in, const std::vector<std::size_t>& sinks) {
    std::map<std::int32_t, std::pair<long long, std::size_t>> groups;
    for (std::size_t ei : sinks) {
        in.observe(ei);
        const Event& e = in.trace.events[ei];
        auto [it, fresh] = groups.try_emplace(e.index, std::make_pair(0LL, ei));
        it->second.first = cap_top(it->second.first + in.rd(ei));
        if (fresh) it->second.second = ei;
    }
    for (const auto& [index, acc] : groups) {
        (void)index;
        if (in.spec.algorithm == core::Algorithm::Wbf)
            in.stage("wbf-flip-metric", acc.first + wbf_alpha_term(in.spec), acc.second);
        else
            in.stage("parity-posterior", cap_top(in.spec.channel_clamp + acc.first),
                     acc.second);
    }
}

/// Eq. 4 information-node update (or its WBF / RHS-BP reinterpretation).
void fire_variable(Interp& in, const std::vector<std::size_t>& uses,
                   const std::vector<std::size_t>& defs) {
    const AbsintSpec& spec = in.spec;
    long long sum = 0;
    for (std::size_t u : uses) {
        in.observe(u);
        sum = cap_top(sum + in.rd(u));
    }
    const std::size_t mark = defs.empty() ? (uses.empty() ? 0 : uses.front()) : defs.front();
    switch (spec.algorithm) {
        case core::Algorithm::MinSum: {
            in.stage("vn-accumulate", cap_top(spec.channel_clamp + sum), mark);
            for (std::size_t k = 0; k < defs.size(); ++k) {
                const long long excl = k < uses.size() ? in.rd(uses[k]) : 0;
                const long long pre = cap_top(spec.channel_clamp + sum - excl);
                in.stage("vn-extrinsic", pre, defs[k]);
                in.wr(defs[k], std::min(pre, spec.max_raw));
            }
            break;
        }
        case core::Algorithm::Wbf: {
            // flip metric E_v = sum of the node's check weights + alpha*|y|;
            // the write-back is the reliability |y| <= channel clamp.
            in.stage("wbf-flip-metric", cap_top(sum + wbf_alpha_term(spec)), mark);
            for (std::size_t d : defs) in.wr(d, spec.channel_clamp);
            break;
        }
        case core::Algorithm::RhsBp: {
            // posterior = channel + sum of tracker LLRs; the write-back is
            // the binarized stochastic symbol (one raw unit of sign).
            in.stage("vn-accumulate", cap_top(spec.channel_clamp + sum), mark);
            for (std::size_t d : defs) in.wr(d, 1);
            break;
        }
    }
}

/// Flooding parity-node firing: pn_a = sat(ch + up), pn_c = sat(ch + down).
void fire_parity_node(Interp& in, const std::vector<std::size_t>& uses,
                      const std::vector<std::size_t>& defs) {
    const AbsintSpec& spec = in.spec;
    long long up = 0, down = 0, sum = 0;
    for (std::size_t u : uses) {
        in.observe(u);
        const long long b = in.rd(u);
        sum = cap_top(sum + b);
        (in.trace.events[u].space == Space::ZigzagBwd ? up : down) = b;
    }
    for (std::size_t d : defs) {
        const Event& e = in.trace.events[d];
        const long long partner = e.space == Space::ZigzagFwd ? up : down;
        switch (spec.algorithm) {
            case core::Algorithm::MinSum: {
                const long long pre = cap_top(spec.channel_clamp + partner);
                in.stage("zigzag-chain-add", pre, d);
                in.wr(d, std::min(pre, spec.max_raw));
                break;
            }
            case core::Algorithm::Wbf:
                in.stage("wbf-flip-metric", cap_top(sum + wbf_alpha_term(spec)), d);
                in.wr(d, spec.channel_clamp);
                break;
            case core::Algorithm::RhsBp:
                in.wr(d, cap_top(spec.channel_clamp + partner));
                break;
        }
    }
}

/// Check-node firing of every non-layered schedule, including the MAP
/// forward sweep (whose only def is the recursion word). Parity-side
/// inputs are stored pn values under the flooding schedule and chain
/// wire-adds (sat(ch + stored)) under the zigzag family.
void fire_check(Interp& in, const std::vector<std::size_t>& uses,
                const std::vector<std::size_t>& defs) {
    const AbsintSpec& spec = in.spec;
    const std::size_t mark = defs.empty() ? (uses.empty() ? 0 : uses.front()) : defs.front();

    if (spec.algorithm == core::Algorithm::RhsBp) {
        for (std::size_t u : uses) in.observe(u);
        in.stage("rhs-atanh-clamp", spec.rhs_cmax_raw, mark);
        for (std::size_t d : defs) in.wr(d, spec.rhs_cmax_raw);
        return;
    }

    std::vector<long long> inputs;
    inputs.reserve(uses.size());
    for (std::size_t u : uses) {
        in.observe(u);
        const long long b = in.rd(u);
        if (in.trace.events[u].space == Space::MsgWord ||
            in.trace.schedule == core::Schedule::TwoPhase) {
            inputs.push_back(b);
        } else {
            const long long pre = cap_top(spec.channel_clamp + b);
            in.stage("zigzag-chain-add", pre, u);
            inputs.push_back(std::min(pre, spec.max_raw));
        }
    }

    if (spec.algorithm == core::Algorithm::Wbf) {
        // stored weight w is the check's min1 or min2 reliability; order
        // statistics are monotone in each input, so the second-smallest
        // input bound dominates both.
        const long long w =
            inputs.size() <= 1 ? (inputs.empty() ? spec.channel_clamp : inputs.front())
                               : std::min(second_smallest(inputs), spec.max_raw);
        in.stage("wbf-weight", w, mark);
        for (std::size_t d : defs) in.wr(d, w);
        return;
    }

    const long long comb = combine_all_but_one(in, inputs, mark);
    const long long fin = finalize_bound(in, comb, mark);
    for (std::size_t d : defs) in.wr(d, fin);
}

/// Layered firing: gathers are posterior-minus-contribution (bounded via
/// the sum-shape invariant), fresh extrinsics fold back as replacement of
/// the edge's previous contribution. Event pairing follows trace.cpp: a
/// posterior Use immediately precedes its contribution-word Use, a
/// posterior Def immediately follows its contribution-word Def.
void fire_layered(Interp& in, const std::vector<std::size_t>& uses,
                  const std::vector<std::size_t>& defs) {
    const AbsintSpec& spec = in.spec;
    auto is_post = [](Space s) { return s == Space::PostInfo || s == Space::PostParity; };

    std::vector<long long> inputs;
    for (std::size_t k = 0; k < uses.size(); ++k) {
        const Event& e = in.trace.events[uses[k]];
        in.observe(uses[k]);
        if (!is_post(e.space)) {
            // unpaired contribution word (canonical dims carry no PostInfo
            // words): the gathered input is still narrowed, so saturate.
            inputs.push_back(spec.max_raw);
            continue;
        }
        DVBS2_REQUIRE(k + 1 < uses.size(), "layered posterior use lacks its contribution");
        const Event& ce = in.trace.events[uses[k + 1]];
        in.observe(uses[k + 1]);
        const long long folded =
            in.st.folded[static_cast<std::size_t>(ce.space)][static_cast<std::size_t>(ce.index)];
        const long long pre = cap_top(in.rd(uses[k]) - folded);
        in.stage("layered-gather", pre, uses[k]);
        inputs.push_back(std::min(pre, spec.max_raw));
        ++k;  // the contribution use is consumed by this pair
    }

    long long fresh;
    if (spec.algorithm == core::Algorithm::RhsBp) {
        const std::size_t mark = defs.empty() ? uses.front() : defs.front();
        in.stage("rhs-atanh-clamp", spec.rhs_cmax_raw, mark);
        fresh = spec.rhs_cmax_raw;
    } else {
        const std::size_t mark = defs.empty() ? uses.front() : defs.front();
        const long long comb = combine_all_but_one(in, inputs, mark);
        fresh = finalize_bound(in, comb, mark);
    }

    for (std::size_t k = 0; k < defs.size(); ++k) {
        const Event& ce = in.trace.events[defs[k]];
        DVBS2_REQUIRE(!is_post(ce.space), "layered posterior def lacks its contribution");
        const bool paired =
            k + 1 < defs.size() && is_post(in.trace.events[defs[k + 1]].space);
        if (!paired) {  // unpaired contribution word (canonical dims)
            in.wr(defs[k], fresh);
            continue;
        }
        const Event& pe = in.trace.events[defs[k + 1]];
        long long& folded =
            in.st.folded[static_cast<std::size_t>(ce.space)][static_cast<std::size_t>(ce.index)];
        const long long post =
            in.st.word[static_cast<std::size_t>(pe.space)][static_cast<std::size_t>(pe.index)];
        in.wr(defs[k], fresh);
        const long long post_new = cap_top(post - folded + fresh);
        folded = fresh;
        in.wr(defs[k + 1], post_new);
        in.stage("layered-posterior", post_new, defs[k + 1]);
        ++k;
    }
}

void fire(Interp& in, const Firing& f) {
    const Trace& t = in.trace;
    const Event& head = t.events[f.begin];
    std::vector<std::size_t> uses, defs, sinks;
    split_events(t, f, uses, defs, sinks);

    if (t.schedule == core::Schedule::Layered) {
        fire_layered(in, uses, defs);
        return;
    }
    // Segmented boundary snapshot: a plain copy into the per-FU register.
    if (defs.size() == 1 && t.events[defs.front()].space == Space::UpSnapshot) {
        for (std::size_t u : uses) in.observe(u);
        in.wr(defs.front(), uses.empty() ? 0 : in.rd(uses.front()));
        return;
    }
    if (head.phase == 0) {
        if (head.unit >= in.parity_unit_base)
            fire_parity_node(in, uses, defs);
        else
            fire_variable(in, uses, defs);
    } else {
        fire_check(in, uses, defs);
    }
    sink_posteriors(in, sinks);
}

void interpret(Interp& in, const std::vector<Firing>& firings, std::size_t begin,
               std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fire(in, firings[i]);
}

int parity_unit_base_of(const Trace& t) {
    return t.dims.m() + (t.dims.edge_variable.empty() ? static_cast<int>(t.dims.e_in())
                                                      : t.dims.num_info_nodes);
}

}  // namespace

long long space_capacity(Space s, const AbsintSpec& spec) {
    if (s == Space::PostInfo || s == Space::PostParity) return spec.wide_capacity;
    // The registered RHS-BP engines store doubles; the stored-word capacity
    // only binds for the fixed message-passing tiers.
    if (spec.algorithm == core::Algorithm::RhsBp) return spec.wide_capacity;
    return spec.max_raw;
}

RangeCertificate certify_ranges(const Trace& trace, const AbsintSpec& spec) {
    DVBS2_REQUIRE(spec.max_raw >= 1 && spec.channel_clamp >= 0,
                  "absint spec needs channel_clamp >= 0 and max_raw >= 1");
    // the fixed tiers quantize the channel, so it cannot exceed the word
    // bound; the RHS-BP tier stores doubles and clamps at the LLR cap,
    // which in raw units is legitimately wider than the quantizer.
    DVBS2_REQUIRE(spec.algorithm == core::Algorithm::RhsBp ||
                      spec.channel_clamp <= spec.max_raw,
                  "fixed-tier channel clamp exceeds the quantizer bound");
    DVBS2_REQUIRE(spec.wide_capacity >= spec.max_raw, "wide capacity below message bound");
    DVBS2_REQUIRE(static_cast<int>(trace.space_size.size()) == kSpaceCount,
                  "trace space table malformed");

    RangeCertificate cert;
    cert.schedule = trace.schedule;
    cert.algorithm = spec.algorithm;
    cert.spec = spec;

    const std::vector<Firing> firings = scan_firings(trace);
    std::size_t block_end = firings.size();  // firings of iteration 0
    for (std::size_t i = 0; i < firings.size(); ++i)
        if (trace.events[firings[i].begin].iter != 0) {
            block_end = i;
            break;
        }

    // --- fixpoint over the first iteration block ---
    AbsState st = initial_state(trace, spec);
    Interp in{trace, spec, st, nullptr, nullptr, parity_unit_base_of(trace)};
    constexpr int kWidenAfter = 8;
    constexpr int kMaxRounds = 64;
    for (;;) {
        ++cert.fixpoint_rounds;
        AbsState prev = st;
        interpret(in, firings, 0, block_end);
        if (st.same_as(prev)) break;
        if (cert.fixpoint_rounds >= kWidenAfter) {
            // widen every still-moving word to top; kTop is absorbing under
            // all transfers, so the next round closes.
            for (int s = 0; s < kSpaceCount; ++s)
                for (std::size_t w = 0; w < st.word[static_cast<std::size_t>(s)].size(); ++w)
                    if (st.word[static_cast<std::size_t>(s)][w] !=
                        prev.word[static_cast<std::size_t>(s)][w]) {
                        st.word[static_cast<std::size_t>(s)][w] = kTop;
                        ++cert.widenings;
                    }
        }
        DVBS2_REQUIRE(cert.fixpoint_rounds < kMaxRounds,
                      "range fixpoint failed to close after widening");
    }

    // --- annotation pass over the whole trace from the fixpoint state ---
    // S* covers the real initial state, so the recorded bounds hold for
    // every iteration of any run length, and the final block's annotations
    // are stationary (what the checker's closure replay verifies).
    cert.event_bound.assign(trace.events.size(), 0);
    StageAcc acc;
    acc.spec = &spec;
    // channel-quantize binds the fixed tiers only; the RHS-BP channel is a
    // clamped double whose raw-unit scale legitimately exceeds the quantizer
    if (spec.algorithm != core::Algorithm::RhsBp)
        acc.see("channel-quantize", spec.channel_clamp, -1);
    if (spec.algorithm == core::Algorithm::Wbf)
        acc.see("wbf-surrender-count", trace.dims.m(), -1);
    if (spec.algorithm == core::Algorithm::RhsBp) {
        acc.see("rhs-tracker", 1, -1);
        acc.see("rhs-atanh-clamp", spec.rhs_cmax_raw, -1);
    }
    in.stages = &acc;
    in.annot = &cert.event_bound;
    interpret(in, firings, 0, firings.size());

    cert.space_bound.assign(kSpaceCount, 0);
    std::int64_t first_space_bad = -1;
    Space first_space_bad_space{};
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        const Event& e = trace.events[i];
        const int s = static_cast<int>(e.space);
        cert.space_bound[static_cast<std::size_t>(s)] =
            std::max(cert.space_bound[static_cast<std::size_t>(s)], cert.event_bound[i]);
        if (first_space_bad < 0 && cert.event_bound[i] > space_capacity(e.space, spec)) {
            first_space_bad = static_cast<std::int64_t>(i);
            first_space_bad_space = e.space;
        }
    }

    cert.stages = acc.stages;
    std::sort(cert.stages.begin(), cert.stages.end(),
              [](const StageBound& a, const StageBound& b) { return a.stage < b.stage; });

    cert.ok = first_space_bad < 0 && acc.first_bad_event < 0;
    for (const StageBound& s : cert.stages)
        if (!s.fits()) cert.ok = false;
    if (!cert.ok) {
        // the exact first offending event, in trace order; a static stage
        // violation (event -1) only wins when nothing dynamic fired first.
        const bool stage_first =
            acc.first_bad_event >= 0 &&
            (first_space_bad < 0 || acc.first_bad_event <= first_space_bad);
        if (stage_first || first_space_bad < 0) {
            cert.first_offender = acc.first_bad_event;
            cert.offender_stage = acc.first_bad_stage;
        } else {
            cert.first_offender = first_space_bad;
            cert.offender_stage = std::string("stored word of ") + to_string(first_space_bad_space);
        }
    }
    return cert;
}

// --------------------------------------------------------------------------
// Independent checker. Everything below re-derives the firing structure
// and transfer math from scratch against the certificate's CLAIMS: a def's
// claimed bound must contain the transfer output recomputed from the
// claimed bounds of its inputs, a use's claim must contain the claim the
// reaching def left in the word, capacities must hold, and replaying the
// final iteration block from the end state must keep every claim valid
// (post-fixpoint closure; transfers are monotone in their inputs, so
// closure at the final block extends the bounds to any iteration count).
// --------------------------------------------------------------------------

namespace {

struct Replay {
    const Trace& trace;
    const AbsintSpec& spec;
    const RangeCertificate& cert;
    std::array<std::vector<long long>, kSpaceCount> claim;    // current word claims
    std::array<std::vector<long long>, kSpaceCount> contrib;  // layered folded claims
    // the checker's own sum-shape model of the layered posterior totals
    // (channel + folded contribution claims); recomputing the fold from the
    // posterior's *claim* would double-count, because the fixpoint claim
    // already includes every contribution
    std::array<std::vector<long long>, kSpaceCount> post_model;
    std::map<std::string, long long> stage_peak;              // recomputed stage maxima
    std::int64_t first_violation = -1;                        // capacity, in trace order
    std::string first_violation_what;
    std::optional<RangeRejection> rejection;                  // claim inconsistency

    void reject(const std::string& reason, std::int64_t ev) {
        if (!rejection) rejection = RangeRejection{reason, ev};
    }
    void violation(const std::string& what, std::int64_t ev) {
        if (first_violation < 0) {
            first_violation = ev;
            first_violation_what = what;
        }
    }
    void stage_hit(const std::string& name, long long value, std::int64_t ev) {
        value = cap_top(value);
        auto [it, inserted] = stage_peak.try_emplace(name, value);
        if (!inserted) it->second = std::max(it->second, value);
        if (value > stage_capacity(name, spec)) violation("stage " + name, ev);
    }
};

long long replay_second_min(const std::vector<long long>& v) {
    if (v.size() < 2) return v.empty() ? kTop : v.front();
    std::vector<long long> c = v;
    std::nth_element(c.begin(), c.begin() + 1, c.end());
    return c[1];
}

long long replay_finalize(Replay& r, long long comb, std::int64_t ev) {
    switch (r.spec.rule) {
        case core::CheckRule::Exact:
        case core::CheckRule::MinSum: return comb;
        case core::CheckRule::NormalizedMinSum: {
            const long long pre = cap_top(comb * std::llabs(r.spec.norm_num) + 8);
            r.stage_hit("finalize-normalize", pre, ev);
            return std::min(pre >> 4, r.spec.max_raw);
        }
        case core::CheckRule::OffsetMinSum: {
            const long long val = r.spec.offset_raw >= 0
                                      ? std::max(0LL, comb - r.spec.offset_raw)
                                      : cap_top(comb - r.spec.offset_raw);
            r.stage_hit("finalize-offset", val, ev);
            return val;
        }
    }
    return comb;
}

/// Recomputes the def bounds of one firing from the claimed use bounds.
/// `claim_of(ei)` is the bound the replay charges event ei with (the
/// certificate's claim in the main walk, and again in the closure walk).
/// Returns per-def recomputed outputs aligned with `defs`.
std::vector<long long> replay_firing_defs(Replay& r, const std::vector<std::size_t>& uses,
                                          const std::vector<std::size_t>& defs,
                                          int parity_base) {
    const Trace& t = r.trace;
    const AbsintSpec& spec = r.spec;
    std::vector<long long> out(defs.size(), 0);
    if (defs.empty()) return out;
    const Event& head = t.events[defs.front()];
    auto uclaim = [&](std::size_t ei) {
        return r.claim[static_cast<std::size_t>(t.events[ei].space)]
                      [static_cast<std::size_t>(t.events[ei].index)];
    };
    const std::int64_t mark = static_cast<std::int64_t>(defs.front());

    // segmented boundary snapshot: plain copy
    if (defs.size() == 1 && head.space == Space::UpSnapshot) {
        out[0] = uses.empty() ? 0 : uclaim(uses.front());
        return out;
    }

    if (t.schedule == core::Schedule::Layered) {
        std::vector<long long> inputs;
        for (std::size_t k = 0; k < uses.size(); ++k) {
            const Event& e = t.events[uses[k]];
            if (e.space != Space::PostInfo && e.space != Space::PostParity) {
                inputs.push_back(spec.max_raw);  // unpaired word, narrowed input
                continue;
            }
            if (k + 1 >= uses.size()) {
                r.reject("layered posterior use without contribution",
                         static_cast<std::int64_t>(uses[k]));
                return out;
            }
            const Event& ce = t.events[uses[k + 1]];
            const long long folded = r.contrib[static_cast<std::size_t>(ce.space)]
                                              [static_cast<std::size_t>(ce.index)];
            // gather from the checker's own sum-shape model of the posterior:
            // the word's fixpoint claim already includes contributions this
            // walk has not folded yet, so claim - folded would over-count
            const long long model = r.post_model[static_cast<std::size_t>(e.space)]
                                                [static_cast<std::size_t>(e.index)];
            const long long pre = cap_top(model - folded);
            r.stage_hit("layered-gather", pre, static_cast<std::int64_t>(uses[k]));
            inputs.push_back(std::min(pre, spec.max_raw));
            ++k;
        }
        long long fresh;
        if (spec.algorithm == core::Algorithm::RhsBp) {
            fresh = spec.rhs_cmax_raw;
        } else {
            long long presat = inputs.size() <= 1 ? spec.max_raw : replay_second_min(inputs);
            if (inputs.size() > 1 && spec.rule == core::CheckRule::Exact)
                presat = cap_top(presat + spec.corr_peak);
            r.stage_hit("cn-combine", presat, mark);
            fresh = replay_finalize(r, std::min(presat, spec.max_raw), mark);
        }
        for (std::size_t k = 0; k < defs.size(); ++k) {
            const Event& ce = t.events[defs[k]];
            if (ce.space == Space::PostInfo || ce.space == Space::PostParity) {
                r.reject("layered def pairing malformed", static_cast<std::int64_t>(defs[k]));
                return out;
            }
            const bool post_next =
                k + 1 < defs.size() && (t.events[defs[k + 1]].space == Space::PostInfo ||
                                        t.events[defs[k + 1]].space == Space::PostParity);
            if (!post_next) {  // unpaired contribution word
                out[k] = fresh;
                continue;
            }
            const Event& pe = t.events[defs[k + 1]];
            long long& folded = r.contrib[static_cast<std::size_t>(ce.space)]
                                         [static_cast<std::size_t>(ce.index)];
            long long& model = r.post_model[static_cast<std::size_t>(pe.space)]
                                           [static_cast<std::size_t>(pe.index)];
            out[k] = fresh;
            // fold the contribution's CLAIM (already verified to contain
            // `fresh` by the caller) so the model stays sound end-to-end
            const long long folded_claim = r.cert.event_bound[defs[k]];
            model = cap_top(model - folded + folded_claim);
            folded = folded_claim;
            out[k + 1] = model;
            r.stage_hit("layered-posterior", model, static_cast<std::int64_t>(defs[k + 1]));
            ++k;
        }
        return out;
    }

    if (head.phase == 0 && head.unit >= parity_base) {  // flooding parity node
        long long up = 0, down = 0, sum = 0;
        for (std::size_t u : uses) {
            const long long b = uclaim(u);
            sum = cap_top(sum + b);
            (t.events[u].space == Space::ZigzagBwd ? up : down) = b;
        }
        for (std::size_t k = 0; k < defs.size(); ++k) {
            const long long partner = t.events[defs[k]].space == Space::ZigzagFwd ? up : down;
            switch (spec.algorithm) {
                case core::Algorithm::MinSum: {
                    const long long pre = cap_top(spec.channel_clamp + partner);
                    r.stage_hit("zigzag-chain-add", pre, static_cast<std::int64_t>(defs[k]));
                    out[k] = std::min(pre, spec.max_raw);
                    break;
                }
                case core::Algorithm::Wbf:
                    r.stage_hit("wbf-flip-metric", cap_top(sum + wbf_alpha_term(spec)),
                                static_cast<std::int64_t>(defs[k]));
                    out[k] = spec.channel_clamp;
                    break;
                case core::Algorithm::RhsBp:
                    out[k] = cap_top(spec.channel_clamp + partner);
                    break;
            }
        }
        return out;
    }

    if (head.phase == 0) {  // information-node update
        long long sum = 0;
        for (std::size_t u : uses) sum = cap_top(sum + uclaim(u));
        switch (spec.algorithm) {
            case core::Algorithm::MinSum: {
                r.stage_hit("vn-accumulate", cap_top(spec.channel_clamp + sum), mark);
                for (std::size_t k = 0; k < defs.size(); ++k) {
                    const long long excl = k < uses.size() ? uclaim(uses[k]) : 0;
                    const long long pre = cap_top(spec.channel_clamp + sum - excl);
                    r.stage_hit("vn-extrinsic", pre, static_cast<std::int64_t>(defs[k]));
                    out[k] = std::min(pre, spec.max_raw);
                }
                break;
            }
            case core::Algorithm::Wbf:
                r.stage_hit("wbf-flip-metric", cap_top(sum + wbf_alpha_term(spec)), mark);
                for (std::size_t k = 0; k < defs.size(); ++k) out[k] = spec.channel_clamp;
                break;
            case core::Algorithm::RhsBp:
                r.stage_hit("vn-accumulate", cap_top(spec.channel_clamp + sum), mark);
                for (std::size_t k = 0; k < defs.size(); ++k) out[k] = 1;
                break;
        }
        return out;
    }

    // check-node firing (incl. the MAP forward sweep)
    if (spec.algorithm == core::Algorithm::RhsBp) {
        for (std::size_t k = 0; k < defs.size(); ++k) out[k] = spec.rhs_cmax_raw;
        return out;
    }
    std::vector<long long> inputs;
    for (std::size_t u : uses) {
        const long long b = uclaim(u);
        if (t.events[u].space == Space::MsgWord || t.schedule == core::Schedule::TwoPhase) {
            inputs.push_back(b);
        } else {
            const long long pre = cap_top(spec.channel_clamp + b);
            r.stage_hit("zigzag-chain-add", pre, static_cast<std::int64_t>(u));
            inputs.push_back(std::min(pre, spec.max_raw));
        }
    }
    if (spec.algorithm == core::Algorithm::Wbf) {
        const long long w =
            inputs.size() <= 1 ? (inputs.empty() ? spec.channel_clamp : inputs.front())
                               : std::min(replay_second_min(inputs), spec.max_raw);
        r.stage_hit("wbf-weight", w, mark);
        for (std::size_t k = 0; k < defs.size(); ++k) out[k] = w;
        return out;
    }
    long long presat = inputs.size() <= 1 ? spec.max_raw : replay_second_min(inputs);
    if (inputs.size() > 1 && spec.rule == core::CheckRule::Exact)
        presat = cap_top(presat + spec.corr_peak);
    r.stage_hit("cn-combine", presat, mark);
    const long long fin = replay_finalize(r, std::min(presat, spec.max_raw), mark);
    for (std::size_t k = 0; k < defs.size(); ++k) out[k] = fin;
    return out;
}

/// Walks one firing in the main replay: verifies use/sink claims contain
/// the reaching-def claim, def claims contain the recomputed transfers,
/// tracks capacities, and commits def claims into the word state.
void replay_walk_firing(Replay& r, std::size_t fb, std::size_t fe, int parity_base) {
    const Trace& t = r.trace;
    std::vector<std::size_t> uses, defs, sinks;
    for (std::size_t i = fb; i < fe; ++i) {
        switch (t.events[i].access) {
            case Access::Use: uses.push_back(i); break;
            case Access::Def: defs.push_back(i); break;
            case Access::Sink: sinks.push_back(i); break;
        }
    }
    auto word_claim = [&](std::size_t ei) -> long long& {
        return r.claim[static_cast<std::size_t>(t.events[ei].space)]
                      [static_cast<std::size_t>(t.events[ei].index)];
    };
    for (std::size_t u : uses)
        if (r.cert.event_bound[u] < word_claim(u))
            r.reject("use claim below the reaching def's claim", static_cast<std::int64_t>(u));

    const std::vector<long long> recomputed = replay_firing_defs(r, uses, defs, parity_base);
    for (std::size_t k = 0; k < defs.size(); ++k) {
        const std::size_t d = defs[k];
        if (r.cert.event_bound[d] < recomputed[k])
            r.reject("def claim below the recomputed transfer bound",
                     static_cast<std::int64_t>(d));
        if (r.cert.event_bound[d] > space_capacity(t.events[d].space, r.spec))
            r.violation(std::string("stored word of ") + to_string(t.events[d].space),
                        static_cast<std::int64_t>(d));
        word_claim(d) = r.cert.event_bound[d];
    }

    // posterior-hardening sinks: claims must contain the word claim, and
    // the per-parity posterior (channel + sunk pair) must fit the wide word
    std::map<std::int32_t, long long> groups;
    for (std::size_t s : sinks) {
        if (r.cert.event_bound[s] < word_claim(s))
            r.reject("sink claim below the reaching def's claim", static_cast<std::int64_t>(s));
        groups[t.events[s].index] = cap_top(groups[t.events[s].index] + word_claim(s));
    }
    for (std::size_t s : sinks) {
        auto it = groups.find(t.events[s].index);
        if (it == groups.end()) continue;
        if (r.spec.algorithm == core::Algorithm::Wbf)
            r.stage_hit("wbf-flip-metric", cap_top(it->second + wbf_alpha_term(r.spec)),
                        static_cast<std::int64_t>(s));
        else if (r.spec.algorithm == core::Algorithm::MinSum)
            r.stage_hit("parity-posterior", cap_top(r.spec.channel_clamp + it->second),
                        static_cast<std::int64_t>(s));
        else
            r.stage_hit("parity-posterior", cap_top(r.spec.channel_clamp + it->second),
                        static_cast<std::int64_t>(s));
        groups.erase(it);
    }
}

}  // namespace

RangeCheck check_range_certificate(const Trace& trace, const AbsintSpec& spec,
                                   const RangeCertificate& cert) {
    auto fail = [](std::string reason, std::int64_t ev = -1) {
        return RangeCheck{false, RangeRejection{std::move(reason), ev}};
    };
    if (cert.schedule != trace.schedule) return fail("certificate is for another schedule");
    if (cert.algorithm != spec.algorithm) return fail("certificate is for another algorithm");
    if (cert.event_bound.size() != trace.events.size())
        return fail("event-bound table does not match the trace");
    if (cert.space_bound.size() != static_cast<std::size_t>(kSpaceCount))
        return fail("space-bound table malformed");

    Replay r{trace, spec, cert, {}, {}, {}, {}, -1, {}, std::nullopt};
    for (int s = 0; s < kSpaceCount; ++s) {
        // real inits: zero message/zigzag/recursion words, channel-valued
        // posterior totals (re-derived here, independent of the interpreter)
        const bool posterior = static_cast<Space>(s) == Space::PostInfo ||
                               static_cast<Space>(s) == Space::PostParity;
        r.claim[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(trace.space_size[static_cast<std::size_t>(s)]),
            posterior ? spec.channel_clamp : 0);
        r.contrib[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(trace.space_size[static_cast<std::size_t>(s)]), 0);
        r.post_model[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(trace.space_size[static_cast<std::size_t>(s)]),
            spec.channel_clamp);
    }
    const int parity_base =
        trace.dims.m() + (trace.dims.edge_variable.empty()
                              ? static_cast<int>(trace.dims.e_in())
                              : trace.dims.num_info_nodes);

    // main walk, firing by firing
    std::size_t i = 0;
    std::size_t last_block_begin = 0;
    const std::int16_t last_iter =
        trace.events.empty() ? 0 : trace.events[trace.events.size() - 1].iter;
    while (i < trace.events.size()) {
        std::size_t j = i + 1;
        while (j < trace.events.size() && trace.events[j].iter == trace.events[i].iter &&
               trace.events[j].phase == trace.events[i].phase &&
               trace.events[j].unit == trace.events[i].unit &&
               trace.events[j].step == trace.events[i].step)
            ++j;
        if (trace.events[i].iter == last_iter && last_block_begin == 0 && last_iter != 0)
            last_block_begin = i;
        replay_walk_firing(r, i, j, parity_base);
        if (r.rejection) return RangeCheck{false, r.rejection};
        i = j;
    }

    // per-space maxima must be claimed
    std::array<long long, kSpaceCount> seen{};
    for (std::size_t e = 0; e < trace.events.size(); ++e) {
        const int s = static_cast<int>(trace.events[e].space);
        seen[static_cast<std::size_t>(s)] =
            std::max(seen[static_cast<std::size_t>(s)], cert.event_bound[e]);
    }
    for (int s = 0; s < kSpaceCount; ++s)
        if (cert.space_bound[static_cast<std::size_t>(s)] < seen[static_cast<std::size_t>(s)])
            return fail(std::string("space bound below its events' claims: ") +
                        to_string(static_cast<Space>(s)));

    // recomputed stage peaks must be covered by the certificate's table
    for (const auto& [name, peak] : r.stage_peak) {
        const StageBound* found = nullptr;
        for (const StageBound& s : cert.stages)
            if (s.stage == name) found = &s;
        if (!found) return fail("certificate lacks stage " + name);
        if (found->worst < peak)
            return fail("stage " + name + " claim below the recomputed peak");
        if (found->capacity != stage_capacity(name, spec))
            return fail("stage " + name + " carries the wrong capacity");
    }

    // post-fixpoint closure: replay the final iteration block once more
    // from the end state; every claim must still contain the recomputed
    // bounds, which (transfers being monotone) extends the certificate to
    // any iteration count.
    i = last_block_begin;
    while (i < trace.events.size()) {
        std::size_t j = i + 1;
        while (j < trace.events.size() && trace.events[j].iter == trace.events[i].iter &&
               trace.events[j].phase == trace.events[i].phase &&
               trace.events[j].unit == trace.events[i].unit &&
               trace.events[j].step == trace.events[i].step)
            ++j;
        replay_walk_firing(r, i, j, parity_base);
        if (r.rejection)
            return fail("claims are not a post-fixpoint: " + r.rejection->reason,
                        r.rejection->event);
        i = j;
    }

    // verdict consistency
    if (cert.ok && r.first_violation >= 0)
        return fail("certificate claims ok but " + r.first_violation_what +
                        " exceeds its capacity",
                    r.first_violation);
    if (!cert.ok) {
        bool stage_overflow = false;
        for (const StageBound& s : cert.stages)
            if (!s.fits()) stage_overflow = true;
        if (r.first_violation < 0 && !stage_overflow)
            return fail("certificate claims overflow but the replay found none");
        // the interpreter annotates every iteration from S*, so its first
        // offender may be EARLIER than the replay's first violation (the
        // replay's iteration-0 inputs are the tighter real inits), but never
        // later, and it must itself violate a capacity at claim level
        if (r.first_violation >= 0 && cert.first_offender > r.first_violation)
            return fail("first offender is later than the replay's first violation",
                        r.first_violation);
        if (cert.first_offender >= 0) {
            const Event& oe = trace.events[static_cast<std::size_t>(cert.first_offender)];
            bool genuine = cert.event_bound[static_cast<std::size_t>(cert.first_offender)] >
                           space_capacity(oe.space, spec);
            for (const StageBound& s : cert.stages)
                if (s.stage == cert.offender_stage && !s.fits()) genuine = true;
            if (!genuine)
                return fail("named first offender does not violate any capacity",
                            cert.first_offender);
        }
    }
    return RangeCheck{true, std::nullopt};
}

// --------------------------------------------------------------------------
// Witness concretizer
// --------------------------------------------------------------------------

RangeWitness concretize_witness(const AbsintSpec& spec, const RangeCertificate& cert) {
    RangeWitness w;
    w.algorithm = spec.algorithm;
    w.peaks = cert.space_bound;
    switch (spec.algorithm) {
        case core::Algorithm::MinSum:
            // the all-zero codeword at saturating magnitude: every v2c and
            // c2v pins at the quantizer bound, posteriors at ch + deg*F.
            w.pattern = WitnessPattern::AllSaturate;
            w.channel_magnitude = 1e6;
            w.note = "decode; stored words reach finalize(max_raw), posteriors the vn sums";
            break;
        case core::Algorithm::Wbf:
            // one flipped bit keeps its checks unsatisfied so the flip pass
            // runs; reliabilities and weights pin at the channel clamp and
            // the distant bits reach the full-magnitude flip metric.
            w.pattern = WitnessPattern::SingleFlip;
            w.channel_magnitude = 1e6;
            w.note = "flip one max-degree info bit; run >= 1 flip pass and read the metrics";
            break;
        case core::Algorithm::RhsBp:
            // high-confidence channel plus one flipped bit with beta near 1
            // drives trackers to +-1, so messages reach the atanh clamp.
            w.pattern = WitnessPattern::SingleFlip;
            w.channel_magnitude = 30.0;
            w.note = "run with rhs_beta ~ 0.999; trackers reach the 2*atanh clamp";
            break;
    }
    return w;
}

std::vector<double> witness_llrs(const RangeWitness& witness, long long n,
                                 long long flip_index) {
    DVBS2_REQUIRE(n >= 0, "witness needs a non-negative length");
    std::vector<double> llrs(static_cast<std::size_t>(n), witness.channel_magnitude);
    if (witness.pattern == WitnessPattern::SingleFlip && flip_index >= 0 && flip_index < n)
        llrs[static_cast<std::size_t>(flip_index)] = -witness.channel_magnitude;
    return llrs;
}

}  // namespace dvbs2::analysis::ir
