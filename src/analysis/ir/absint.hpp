// Per-event fixed-point range certification: an interval-domain abstract
// interpreter over the schedule dataflow IR (ir.hpp), for all three
// algorithm tiers (min-sum message passing, weighted bit flipping, relaxed
// half-stochastic BP).
//
// The interpreter walks the compiled Def/Use/Sink event trace of a schedule
// and maintains, per storage word, a proven magnitude bound (a symmetric
// interval [-b, +b]; every transfer function in all three datapaths is odd,
// so symmetric intervals lose nothing). Each firing — a maximal run of
// events from one (iteration, phase, unit) — applies the algorithm's
// abstract transfer function:
//
//   * min-sum tier: Eq. 4 variable-node accumulation and per-edge
//     extrinsic subtraction, zigzag chain wire-adds, the check-node combine
//     (min for the min-sum rules, min + correction peak for the exact
//     boxplus LUT), and the finalize step (normalization's (v*n+8)>>4 or
//     the offset subtraction), with saturation at the quantizer bound;
//   * WBF tier: reliability write-back (|y| <= channel clamp), per-check
//     reliability weights (an order-statistic bound: the stored w is the
//     check's min1/min2, never above the second-smallest input bound), the
//     flip-metric accumulation E_v = sum w + alpha*|y|, and the surrender
//     gate's unsatisfied-check counter;
//   * RHS-BP tier: tracker relaxation keeps t in [-1, 1], so every stored
//     message obeys the 2*atanh clamp; posteriors accumulate channel +
//     degree * clamp.
//
// Layered posterior words are the one place plain interval iteration
// diverges (post += new - old grows without bound in the abstract), so they
// use a sum-shape accumulator domain: the bound is maintained as
// channel + sum of per-contribution bounds, and the paired def events of a
// layered firing (contribution word immediately followed by its posterior
// word, as trace.cpp emits them) are interpreted as *replacement* of that
// contribution. The independent checker re-verifies the pairing from the
// event stream.
//
// Iteration blocks are interpreted repeatedly, widening slow-moving words,
// until a fixpoint state S*; the whole trace is then annotated from S*, so
// every event carries a bound valid for ANY iteration count (S* covers the
// real initial state). The result is a RangeCertificate: per-space and
// per-named-stage proven bounds, a bound for every trace event, and the
// exact first offending event when a bound exceeds its capacity.
//
// Following the repo's search -> certificate -> independent-check pattern
// (transform.hpp), `check_range_certificate` shares no code with the
// interpreter: it replays the claimed bounds event-by-event (recomputing
// every transfer from the claims, enforcing capacities, re-deriving the
// layered pairing) and replays the final iteration block once more to
// confirm S* is closed. A witness concretizer turns the proven peaks into
// an adversarial LLR input that drives the real decoder to the bounds in
// tests (tightness), see tests/test_absint.cpp.
//
// Like the rest of dvbs2_ir this header is below core and quant: the word
// format is passed as plain numbers (AbsintSpec), and callers convert their
// quant::QuantSpec (see core/engine.cpp and analysis/lint_range_ir.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ir/ir.hpp"

namespace dvbs2::analysis::ir {

/// Plain-number description of the fixed-point datapath a trace is
/// certified against. Callers derive it from a quant::QuantSpec plus the
/// DecoderConfig knobs; keeping it numeric keeps dvbs2_ir below dvbs2_quant.
struct AbsintSpec {
    core::Algorithm algorithm = core::Algorithm::MinSum;
    core::CheckRule rule = core::CheckRule::Exact;  ///< min-sum tier combine rule
    long long max_raw = 31;         ///< R: message saturation bound of the quantizer
    long long channel_clamp = 31;   ///< bound on |quantized channel LLR| (<= max_raw)
    long long corr_peak = 0;        ///< exact-rule correction LUT peak, raw units
    long long wide_capacity = 2147483647;  ///< accumulator word capacity
    long long norm_num = 12;        ///< normalized-rule numerator (normalization * 16)
    long long offset_raw = 0;       ///< offset-rule subtrahend, raw units (sign kept)
    double wbf_alpha = 0.2;         ///< WBF reliability weight in the flip metric
    long long rhs_cmax_raw = 48;    ///< RHS-BP 2*atanh tracker clamp, raw units
};

/// One named wide-accumulator checkpoint of the abstract run. Stage names
/// are stable identifiers shared with the legacy range.* family where the
/// datapaths coincide (vn-accumulate, cn-combine, finalize-*, ...), plus
/// the per-algorithm stages (wbf-flip-metric, rhs-atanh-clamp, ...).
struct StageBound {
    std::string stage;
    long long worst = 0;
    long long capacity = 0;
    std::int64_t event = -1;  ///< trace event where the peak occurs (-1 = static)
    bool fits() const noexcept { return worst <= capacity; }
};

/// The interpreter's output: machine-checkable proven bounds for one
/// (trace, AbsintSpec) pair. `event_bound[i]` bounds the value event i
/// writes (Def) or observes (Use/Sink); `space_bound[s]` is the maximum
/// over the space's events; `stages` carries the named checkpoints.
/// On overflow, `first_offender` is the first event (in trace order) whose
/// bound exceeds its capacity and `offender_stage` names the violated
/// stage or storage space.
struct RangeCertificate {
    core::Schedule schedule{};
    core::Algorithm algorithm{};
    AbsintSpec spec;
    bool ok = false;
    std::vector<long long> space_bound;   ///< kSpaceCount entries
    std::vector<long long> event_bound;   ///< one entry per trace event
    std::vector<StageBound> stages;
    std::int64_t first_offender = -1;
    std::string offender_stage;
    int fixpoint_rounds = 0;  ///< abstract iterations until the state closed
    int widenings = 0;        ///< words widened to top during fixpointing
};

/// Storage capacity of a space under `spec` (the quantizer bound for the
/// fixed message words, the wide accumulator capacity for posterior totals
/// and for the RHS-BP tier, whose registered engines store doubles).
long long space_capacity(Space s, const AbsintSpec& spec);

/// Runs the abstract interpreter over `trace` and emits the certificate.
/// Never throws on overflow — an unsound configuration yields ok == false
/// with the offender named; throws only on malformed traces.
RangeCertificate certify_ranges(const Trace& trace, const AbsintSpec& spec);

struct RangeRejection {
    std::string reason;
    std::int64_t event = -1;  ///< offending trace event, -1 = certificate-level
};

struct RangeCheck {
    bool ok = false;
    std::optional<RangeRejection> rejection;
};

/// Independent certificate checker (shares no code with certify_ranges):
/// replays `cert` event-by-event against `trace`, recomputing every
/// transfer from the claimed bounds, enforcing space and stage capacities,
/// and re-running the final iteration block to prove the claimed state is
/// a post-fixpoint. Accepts ok certificates whose claims hold everywhere,
/// and overflow certificates whose named first offender matches the first
/// violation the replay finds.
RangeCheck check_range_certificate(const Trace& trace, const AbsintSpec& spec,
                                   const RangeCertificate& cert);

/// How a witness input drives the decoder to the proven peaks.
enum class WitnessPattern {
    AllSaturate,  ///< every channel LLR at the saturation bound, all-zero codeword
    SingleFlip,   ///< as AllSaturate, but one information bit's sign flipped
};

/// Adversarial input concretized from a certificate: a channel vector that
/// reaches the per-space proven peaks on the real decoder. `peaks` echoes
/// the certificate bounds the witness is expected to attain (raw units).
struct RangeWitness {
    core::Algorithm algorithm{};
    WitnessPattern pattern{};
    double channel_magnitude = 0;  ///< |LLR| every channel input is driven at
    std::vector<long long> peaks;  ///< kSpaceCount expected per-space bounds
    std::string note;              ///< how to run the decoder against it
};

/// Builds the witness recipe for `cert`. The expansion to a concrete LLR
/// vector is `witness_llrs`; tests pick the flip position (a maximum-degree
/// information bit keeps the witness adversarial for the flip metric).
RangeWitness concretize_witness(const AbsintSpec& spec, const RangeCertificate& cert);

/// Expands a witness to n channel LLRs (flip_index < 0 disables the flip).
std::vector<double> witness_llrs(const RangeWitness& witness, long long n,
                                 long long flip_index);

}  // namespace dvbs2::analysis::ir
