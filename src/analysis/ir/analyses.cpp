#include "analysis/ir/analyses.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/error.hpp"

namespace dvbs2::analysis::ir {

namespace {

/// Per-space word arrays sized from the trace (the declared space_size or
/// the largest index actually referenced, whichever is bigger — synthetic
/// test traces need not fill space_size).
std::array<std::size_t, kSpaceCount> space_extents(const Trace& trace) {
    std::array<std::size_t, kSpaceCount> n{};
    for (int s = 0; s < kSpaceCount; ++s)
        if (s < static_cast<int>(trace.space_size.size()) && trace.space_size[static_cast<std::size_t>(s)] > 0)
            n[static_cast<std::size_t>(s)] = static_cast<std::size_t>(trace.space_size[static_cast<std::size_t>(s)]);
    for (const Event& ev : trace.events) {
        auto& cur = n[static_cast<std::size_t>(ev.space)];
        const auto need = static_cast<std::size_t>(ev.index) + 1;
        if (need > cur) cur = need;
    }
    return n;
}

std::string phase_name_of(const Trace& trace, int phase) {
    if (phase >= 0 && phase < static_cast<int>(trace.phase_names.size()))
        return trace.phase_names[static_cast<std::size_t>(phase)];
    return "phase " + std::to_string(phase);
}

/// Iteration whose statistics represent the steady state: the middle one,
/// so values flowing in from the previous iteration and out to the next are
/// both present.
int measured_iteration(const Trace& trace) {
    return trace.dims.iterations >= 2 ? trace.dims.iterations - 2 : 0;
}

/// All current spaces hold per-frame decoder state; a future space modelling
/// cross-frame sharing would return false here and void the frame-per-lane
/// verdict for traces that touch it.
bool space_is_frame_local(Space s) {
    switch (s) {
        case Space::MsgWord:
        case Space::ZigzagFwd:
        case Space::ZigzagBwd:
        case Space::MapFwd:
        case Space::UpSnapshot:
        case Space::PostInfo:
        case Space::PostParity: return true;
    }
    return false;
}

}  // namespace

std::string LockstepViolation::describe() const {
    std::string reason;
    if (use_lane < 0 || def_lane < 0)
        reason = "a unit outside the lane mapping participates in the dependence";
    else if (def_lane != use_lane)
        reason = "the dependence crosses lanes inside one lockstep sweep";
    else
        reason = "the value is produced at a later lockstep step than its use";
    return "phase " + phase_name + ": " + std::string(to_string(space)) + "[" +
           std::to_string(index) + "] is written by unit " + std::to_string(def_unit) +
           " (lane " + std::to_string(def_lane) + ", step " + std::to_string(def_step) +
           ") and read by unit " + std::to_string(use_unit) + " (lane " +
           std::to_string(use_lane) + ", step " + std::to_string(use_step) + "): " + reason;
}

ParallelismReport analyze_parallelism(const Trace& trace) {
    ParallelismReport rep;
    const auto extents = space_extents(trace);
    std::array<std::vector<std::int64_t>, kSpaceCount> last_def;
    for (int s = 0; s < kSpaceCount; ++s)
        last_def[static_cast<std::size_t>(s)].assign(extents[static_cast<std::size_t>(s)], -1);

    const int measured = measured_iteration(trace);
    int cur_iter = -1, cur_phase = -1;
    bool phase_open = false;
    std::unordered_map<std::int32_t, int> level;  // unit -> dependence level

    const auto flush = [&]() {
        if (phase_open && cur_iter == measured && !level.empty()) {
            PhaseParallelism pp;
            pp.phase = cur_phase;
            pp.name = phase_name_of(trace, cur_phase);
            pp.units = static_cast<int>(level.size());
            int max_level = 0;
            for (const auto& [unit, lv] : level) max_level = std::max(max_level, lv);
            pp.levels = max_level + 1;
            std::vector<int> group(static_cast<std::size_t>(max_level) + 1, 0);
            for (const auto& [unit, lv] : level) ++group[static_cast<std::size_t>(lv)];
            pp.max_group = *std::max_element(group.begin(), group.end());
            rep.phases.push_back(std::move(pp));
        }
        level.clear();
        phase_open = false;
    };

    for (std::size_t t = 0; t < trace.events.size(); ++t) {
        const Event& ev = trace.events[t];
        if (ev.iter != cur_iter || ev.phase != cur_phase) {
            flush();
            cur_iter = ev.iter;
            cur_phase = ev.phase;
            phase_open = true;
        }
        const bool track_levels = cur_iter == measured && ev.access != Access::Sink;
        if (track_levels) level.emplace(ev.unit, 0);

        auto& ld = last_def[static_cast<std::size_t>(ev.space)][static_cast<std::size_t>(ev.index)];
        if (ev.access == Access::Def) {
            ld = static_cast<std::int64_t>(t);
            continue;
        }
        if (ld < 0) continue;  // reads the all-zero initial state
        const Event& d = trace.events[static_cast<std::size_t>(ld)];
        if (d.iter != ev.iter || d.phase != ev.phase) continue;  // phase barrier in between
        if (ev.access == Access::Sink) continue;  // hardening read, not FU work

        if (track_levels && d.unit != ev.unit) {
            const int dl = level[d.unit];
            auto& ul = level[ev.unit];
            ul = std::max(ul, dl + 1);
        }

        const bool lockstep_ok = ev.lane >= 0 && d.lane == ev.lane &&
                                 (d.step < ev.step || (d.step == ev.step && d.unit == ev.unit));
        if (!lockstep_ok && rep.lockstep_legal) {
            rep.lockstep_legal = false;
            LockstepViolation v;
            v.space = ev.space;
            v.index = ev.index;
            v.phase_name = phase_name_of(trace, ev.phase);
            v.def_unit = d.unit;
            v.use_unit = ev.unit;
            v.def_lane = d.lane;
            v.use_lane = ev.lane;
            v.def_step = d.step;
            v.use_step = ev.step;
            rep.violation = std::move(v);
        }
    }
    flush();
    return rep;
}

LivenessReport analyze_liveness(const Trace& trace) {
    LivenessReport rep;
    const auto extents = space_extents(trace);
    std::array<std::vector<std::int64_t>, kSpaceCount> def_t, use_t;
    for (int s = 0; s < kSpaceCount; ++s) {
        def_t[static_cast<std::size_t>(s)].assign(extents[static_cast<std::size_t>(s)], -1);
        use_t[static_cast<std::size_t>(s)].assign(extents[static_cast<std::size_t>(s)], -1);
    }
    // Value intervals [def time, last read time], per space.
    std::array<std::vector<std::pair<std::int64_t, std::int64_t>>, kSpaceCount> intervals;

    const int measured = measured_iteration(trace);
    std::int64_t win_lo = -1, win_hi = -1;

    for (std::size_t t = 0; t < trace.events.size(); ++t) {
        const Event& ev = trace.events[t];
        if (ev.iter == measured) {
            if (win_lo < 0) win_lo = static_cast<std::int64_t>(t);
            win_hi = static_cast<std::int64_t>(t);
        }
        const auto s = static_cast<std::size_t>(ev.space);
        const auto i = static_cast<std::size_t>(ev.index);
        if (ev.access == Access::Def) {
            if (def_t[s][i] >= 0) intervals[s].emplace_back(def_t[s][i], use_t[s][i]);
            def_t[s][i] = static_cast<std::int64_t>(t);
            use_t[s][i] = static_cast<std::int64_t>(t);
        } else if (def_t[s][i] >= 0) {
            use_t[s][i] = static_cast<std::int64_t>(t);
        }
    }
    for (int s = 0; s < kSpaceCount; ++s)
        for (std::size_t i = 0; i < extents[static_cast<std::size_t>(s)]; ++i)
            if (def_t[static_cast<std::size_t>(s)][i] >= 0)
                intervals[static_cast<std::size_t>(s)].emplace_back(
                    def_t[static_cast<std::size_t>(s)][i], use_t[static_cast<std::size_t>(s)][i]);

    if (win_lo < 0) return rep;  // empty trace
    for (int s = 0; s < kSpaceCount; ++s) {
        std::vector<std::pair<std::int64_t, int>> delta;
        for (const auto& [a, b] : intervals[static_cast<std::size_t>(s)]) {
            if (b < win_lo || a > win_hi) continue;
            delta.emplace_back(std::max(a, win_lo), +1);
            delta.emplace_back(std::min(b, win_hi) + 1, -1);
        }
        std::sort(delta.begin(), delta.end());
        int live = 0, peak = 0;
        for (const auto& [time, d] : delta) {
            live += d;
            peak = std::max(peak, live);
        }
        rep.peak_live[static_cast<std::size_t>(s)] = peak;
    }
    return rep;
}

namespace {

ScheduleClass classify_one(core::Schedule s) {
    const Trace trace = build_schedule_trace(s, TraceDims{});
    const ParallelismReport par = analyze_parallelism(trace);
    ScheduleClass c;
    c.schedule = s;
    c.group_parallel_legal = par.lockstep_legal;
    if (par.violation) c.group_parallel_obstruction = par.violation->describe();
    c.frame_per_lane_legal = std::all_of(trace.events.begin(), trace.events.end(),
                                         [](const Event& ev) { return space_is_frame_local(ev.space); });
    for (const PhaseParallelism& pp : par.phases) {
        if (pp.name == "variable") continue;
        if (pp.levels >= c.check_levels) {
            c.check_levels = pp.levels;
            c.check_max_group = pp.max_group;
        }
    }
    return c;
}

}  // namespace

const ScheduleClass& classify_schedule(core::Schedule schedule) {
    static const std::array<ScheduleClass, 5> table = [] {
        std::array<ScheduleClass, 5> t{};
        for (core::Schedule s :
             {core::Schedule::TwoPhase, core::Schedule::ZigzagForward,
              core::Schedule::ZigzagSegmented, core::Schedule::ZigzagMap,
              core::Schedule::Layered})
            t[static_cast<std::size_t>(s)] = classify_one(s);
        return t;
    }();
    const auto i = static_cast<std::size_t>(schedule);
    DVBS2_REQUIRE(i < table.size(), "unknown schedule value " + std::to_string(i));
    return table[i];
}

namespace {

constexpr std::array<core::Schedule, kScheduleCount> kAllSchedules = {
    core::Schedule::TwoPhase, core::Schedule::ZigzagForward, core::Schedule::ZigzagSegmented,
    core::Schedule::ZigzagMap, core::Schedule::Layered};

AlgorithmClass classify_algorithm_one(core::Algorithm a) {
    AlgorithmClass c;
    c.algorithm = a;
    switch (a) {
        case core::Algorithm::MinSum:
            // The traced MP family itself: every classified schedule runs,
            // and both SIMD lane mappings are implemented (the per-schedule
            // lane-mode verdicts stay with classify_schedule).
            for (core::Schedule s : kAllSchedules)
                c.schedule_supported[static_cast<std::size_t>(s)] = true;
            c.simd_supported = true;
            break;
        case core::Algorithm::Wbf:
            // The flip metric consumes one whole iteration's syndrome, so
            // WBF only has an analogue on schedules whose check phase is a
            // single dependence level (flooding). Derived from the same
            // trace analysis classify_schedule caches.
            for (core::Schedule s : kAllSchedules) {
                const ScheduleClass& sc = classify_schedule(s);
                const auto i = static_cast<std::size_t>(s);
                if (sc.check_levels <= 1) {
                    c.schedule_supported[i] = true;
                } else {
                    c.schedule_obstruction[i] =
                        std::string("schedule ") + core::to_string(s) + " has " +
                        std::to_string(sc.check_levels) +
                        " check dependence levels; the WBF flip metric needs the whole "
                        "iteration's syndrome at once (single-level check phase)";
                }
            }
            c.simd_obstruction =
                "the SIMD datapath implements the fixed-point min-sum message kernels; "
                "WBF's syndrome/flip-metric passes have no lane mapping there";
            break;
        case core::Algorithm::RhsBp:
            // Binarized-v2c / tracker-c2v transform over the same def/use
            // trace shape: inherits the MP per-schedule verdicts wholesale.
            for (core::Schedule s : kAllSchedules)
                c.schedule_supported[static_cast<std::size_t>(s)] = true;
            c.simd_obstruction =
                "the SIMD datapath implements the fixed-point min-sum message kernels; "
                "RHS-BP's stochastic binarization and tracker relaxation have no lane "
                "mapping there";
            break;
    }
    return c;
}

}  // namespace

const AlgorithmClass& classify_algorithm(core::Algorithm algorithm) {
    static const std::array<AlgorithmClass, 3> table = [] {
        std::array<AlgorithmClass, 3> t{};
        for (core::Algorithm a :
             {core::Algorithm::MinSum, core::Algorithm::Wbf, core::Algorithm::RhsBp})
            t[static_cast<std::size_t>(a)] = classify_algorithm_one(a);
        return t;
    }();
    const auto i = static_cast<std::size_t>(algorithm);
    DVBS2_REQUIRE(i < table.size(), "unknown algorithm value " + std::to_string(i));
    return table[i];
}

std::vector<SlotIssue> verify_slot_stream(const std::vector<SlotOp>& ops,
                                          const SlotStreamDims& dims,
                                          std::size_t max_issues) {
    std::vector<SlotIssue> issues;
    const auto report = [&](SlotIssue si) {
        if (issues.size() < max_issues) issues.push_back(si);
    };
    if (dims.q <= 0 || dims.ram_words <= 0) {
        report(SlotIssue{SlotIssueKind::UnitRange, -1, dims.ram_words, dims.q, -1, 0});
        return issues;
    }

    std::vector<int> reads(static_cast<std::size_t>(dims.ram_words), 0);
    std::vector<int> last(static_cast<std::size_t>(dims.q), -1);
    std::vector<char> in_range(ops.size(), 0);
    for (std::size_t t = 0; t < ops.size(); ++t) {
        const SlotOp& op = ops[t];
        bool ok = true;
        if (op.addr < 0 || op.addr >= dims.ram_words) {
            report(SlotIssue{SlotIssueKind::AddrRange, static_cast<int>(t), op.addr, op.unit, -1, 0});
            ok = false;
        }
        if (op.unit < 0 || op.unit >= dims.q) {
            report(SlotIssue{SlotIssueKind::UnitRange, static_cast<int>(t), op.addr, op.unit, -1, 0});
            ok = false;
        }
        if (!ok) continue;
        in_range[t] = 1;
        ++reads[static_cast<std::size_t>(op.addr)];
        last[static_cast<std::size_t>(op.unit)] = static_cast<int>(t);
    }

    // Read-once: every RAM word is consumed exactly once per check phase —
    // the in-place c2v/v2c discipline breaks under any other count.
    for (int a = 0; a < dims.ram_words; ++a)
        if (reads[static_cast<std::size_t>(a)] != 1)
            report(SlotIssue{SlotIssueKind::ReadCount, -1, a, -1, -1,
                             reads[static_cast<std::size_t>(a)]});

    // Chain def-use order: CN r's forward input is defined when CN r-1
    // completes, so completion times must ascend along the zigzag chain.
    for (int r = 1; r < dims.q; ++r)
        if (last[static_cast<std::size_t>(r)] >= 0 && last[static_cast<std::size_t>(r - 1)] >= 0 &&
            last[static_cast<std::size_t>(r)] < last[static_cast<std::size_t>(r - 1)])
            report(SlotIssue{SlotIssueKind::UseBeforeDef, last[static_cast<std::size_t>(r)], -1, r,
                             r - 1, 0});

    // Serial-FU windows: a functional unit accumulates one CN at a time, so
    // no other CN's slots may appear before the active CN's last slot.
    int active = -1;
    for (std::size_t t = 0; t < ops.size(); ++t) {
        if (!in_range[t]) continue;
        const int u = ops[t].unit;
        if (u != active) {
            if (active >= 0 && static_cast<int>(t) <= last[static_cast<std::size_t>(active)])
                report(SlotIssue{SlotIssueKind::SerialOverlap, static_cast<int>(t), ops[t].addr, u,
                                 active, 0});
            active = u;
        }
    }
    return issues;
}

RamDrainStats drain_ram(const RamPhasePlan& plan, int num_banks, int max_writes_per_cycle) {
    DVBS2_REQUIRE(num_banks >= 2, "drain_ram needs at least two banks");
    DVBS2_REQUIRE(max_writes_per_cycle >= 1, "drain_ram needs at least one write port");

    RamDrainStats st;
    st.read_cycles = static_cast<int>(plan.read_addr.size());
    std::deque<std::int32_t> pending;
    std::size_t cycle = 0;
    const auto bank_of = [&](std::int32_t addr) { return addr % num_banks; };

    // One cycle of the paper's buffer policy, identical to
    // arch::simulate_phase: enqueue newly ready write-backs, then issue up
    // to max_writes_per_cycle of them to free banks, scanning the FIFO from
    // the head with lookahead (each skipped entry is one blocked event).
    const auto step = [&](bool has_read, int read_bank) {
        if (cycle < plan.write_ready.size())
            for (std::int32_t a : plan.write_ready[cycle]) pending.push_back(a);
        if (static_cast<int>(pending.size()) > st.peak_pending)
            st.peak_pending = static_cast<int>(pending.size());

        int issued = 0;
        std::vector<char> busy(static_cast<std::size_t>(num_banks), 0);
        if (has_read) busy[static_cast<std::size_t>(read_bank)] = 1;
        for (auto it = pending.begin(); it != pending.end() && issued < max_writes_per_cycle;) {
            const int b = bank_of(*it);
            if (!busy[static_cast<std::size_t>(b)]) {
                busy[static_cast<std::size_t>(b)] = 1;
                it = pending.erase(it);
                ++issued;
            } else {
                ++st.blocked_events;
                ++it;
            }
        }
        st.pending_word_cycles += static_cast<long long>(pending.size());
        ++cycle;
    };

    for (std::int32_t addr : plan.read_addr) step(/*has_read=*/true, bank_of(addr));
    while (cycle < plan.write_ready.size() || !pending.empty()) step(/*has_read=*/false, 0);
    st.cycles = static_cast<int>(cycle);
    return st;
}

}  // namespace dvbs2::analysis::ir
