// Generic dataflow analyses over schedule traces (ir.hpp) and over the
// RAM-port event streams the hardware mapping induces.
//
// Trace analyses (dimension-independent dependence patterns):
//   analyze_parallelism  reaching-def chains -> per-phase dependence levels
//                        (maximal lockstep groups) and the group-parallel
//                        legality verdict with the first obstruction
//   analyze_liveness     value intervals -> exact peak word footprint per
//                        storage space over the steady-state iteration
//   classify_schedule    cached verdict per core::Schedule, consulted by
//                        core::validate_engine_spec instead of a hardcoded
//                        schedule set
//
// Port/slot-stream analyses (drive the schedule.dataflow.* lint rules):
//   verify_slot_stream   read-once, chain use-before-def, and serial-FU
//                        window checks over one check phase's slot ops
//   drain_ram            deterministic FIFO-with-lookahead port drain over a
//                        statically enumerated access plan; pinned bit-equal
//                        to arch::simulate_phase by test
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ir/ir.hpp"

namespace dvbs2::analysis::ir {

// ------------------------------------------------------ trace: parallelism

/// Dependence-level structure of one phase of the measured iteration.
struct PhaseParallelism {
    int phase = 0;
    std::string name;
    int units = 0;      ///< units active in the phase
    int levels = 0;     ///< longest same-phase dependence chain (lockstep steps)
    int max_group = 0;  ///< widest level: units provably updatable in parallel
};

/// A same-phase dependence that breaks the lockstep (group-parallel)
/// execution model: the value is produced in a different lane, or at a
/// lockstep step that has not executed yet.
struct LockstepViolation {
    Space space{};
    std::int32_t index = 0;
    std::string phase_name;
    std::int32_t def_unit = 0, use_unit = 0;
    std::int16_t def_lane = 0, use_lane = 0;
    std::int32_t def_step = 0, use_step = 0;

    /// One-sentence human-readable account of the dependence.
    std::string describe() const;
};

struct ParallelismReport {
    std::vector<PhaseParallelism> phases;  ///< measured (steady-state) iteration
    bool lockstep_legal = true;            ///< no violation in any iteration
    std::optional<LockstepViolation> violation;  ///< first one found
};

/// Walks the trace once, chaining every use to its reaching def. Same-phase
/// dependences between different units build the level structure; a
/// dependence that crosses lanes (or runs against the step order) is the
/// proof that the schedule cannot run as P lockstep functional units.
/// Sink events never constrain the verdict or the levels.
ParallelismReport analyze_parallelism(const Trace& trace);

// --------------------------------------------------------- trace: liveness

/// Exact peak number of simultaneously live values per storage space over
/// the steady-state (middle) iteration — the minimal word count a RAM for
/// that space must provide.
struct LivenessReport {
    std::array<int, kSpaceCount> peak_live{};

    int peak(Space s) const { return peak_live[static_cast<int>(s)]; }
    /// Parity-chain message storage: the paper's Sec. 4 comparison target
    /// (zigzag edge words + MAP forward storage + segmented snapshots).
    int parity_words() const {
        return peak(Space::ZigzagFwd) + peak(Space::ZigzagBwd) + peak(Space::MapFwd) +
               peak(Space::UpSnapshot);
    }
    int message_words() const { return peak(Space::MsgWord); }
    int posterior_words() const { return peak(Space::PostInfo) + peak(Space::PostParity); }
};

/// Computes value lifetimes [def, last use] per word and sweeps the middle
/// iteration's window for the peak overlap. Uses preceding any def (the
/// all-zero initial state) do not create values.
LivenessReport analyze_liveness(const Trace& trace);

// ------------------------------------------------ schedule classification

/// Derived engine-facing verdicts for one schedule, computed from canonical-
/// dimension traces (TraceDims defaults). The dependence patterns repeat per
/// unit, so the verdicts are dimension-independent.
struct ScheduleClass {
    core::Schedule schedule{};
    /// Legal as P lockstep functional units (one SIMD lane per FU, Eq. 2).
    bool group_parallel_legal = false;
    /// Why not, when illegal (LockstepViolation::describe of the first
    /// obstruction).
    std::string group_parallel_obstruction;
    /// Legal with one frame per lane. Derived from the space inventory:
    /// every space is frame-local, so lanes never exchange data.
    bool frame_per_lane_legal = false;
    /// Level structure of the deepest non-variable phase at canonical dims.
    int check_levels = 0;
    int check_max_group = 0;
};

/// Cached classification of `schedule` (thread-safe, computed once).
const ScheduleClass& classify_schedule(core::Schedule schedule);

// ------------------------------------------------ algorithm classification

/// Number of schedules classify_* covers (the core::Schedule enumerators).
inline constexpr int kScheduleCount = 5;

/// Derived engine-facing verdicts for one decoding algorithm: which
/// schedules it runs and whether the SIMD backend implements it. Like
/// ScheduleClass, the verdicts are derived from the trace analyses, not
/// hardcoded per-combination:
///   * Algorithm::MinSum is the traced message-passing family itself — it
///     supports every classified schedule and both SIMD lane mappings.
///   * Algorithm::Wbf computes its flip metric from one whole iteration's
///     syndrome, so it only has an analogue on schedules whose check phase
///     is a single dependence level (ScheduleClass::check_levels == 1, i.e.
///     flooding); a deeper level structure means the schedule's freshness
///     (values consumed mid-sweep) has no WBF counterpart.
///   * Algorithm::RhsBp is a message-passing transform (binarized v2c,
///     tracker-relaxed c2v) over the same def/use trace shape, so it
///     inherits the MP schedule verdicts; the SIMD datapath implements the
///     fixed-point min-sum arithmetic only, so neither new family runs on
///     DecoderBackend::Simd.
struct AlgorithmClass {
    core::Algorithm algorithm{};
    /// Indexed by static_cast<int>(core::Schedule).
    std::array<bool, kScheduleCount> schedule_supported{};
    /// Why not, per unsupported schedule (empty when supported).
    std::array<std::string, kScheduleCount> schedule_obstruction{};
    bool simd_supported = false;
    std::string simd_obstruction;  ///< why not, when unsupported

    bool supports(core::Schedule s) const {
        return schedule_supported[static_cast<std::size_t>(s)];
    }
    const std::string& obstruction(core::Schedule s) const {
        return schedule_obstruction[static_cast<std::size_t>(s)];
    }
};

/// Cached classification of `algorithm` (thread-safe, computed once).
/// Consulted by core::validate_engine_spec for the (algorithm, schedule,
/// backend) legality decision and surfaced by the schedule.dataflow.*
/// lint family.
const AlgorithmClass& classify_algorithm(core::Algorithm algorithm);

// ------------------------------------------------- model: slot-stream rules

/// One check-phase read cycle at the model level: which RAM word is read
/// and which local check node consumes it.
struct SlotOp {
    int addr = 0;
    int unit = 0;  ///< local CN index r in [0, q)
};

struct SlotStreamDims {
    int q = 0;             ///< local check nodes per FU
    int slots_per_cn = 0;  ///< check_deg - 2
    int ram_words = 0;     ///< IN-message RAM words
};

enum class SlotIssueKind {
    AddrRange,      ///< read address outside [0, ram_words)
    UnitRange,      ///< local CN outside [0, q)
    ReadCount,      ///< RAM word read != exactly once in the phase
    UseBeforeDef,   ///< CN r completes before CN r-1: its forward-chain
                    ///< input is used before the producing unit defines it
    SerialOverlap,  ///< two CNs' accumulation windows interleave on one
                    ///< serial functional unit
};

struct SlotIssue {
    SlotIssueKind kind{};
    int position = -1;  ///< slot index the issue was detected at (-1: n/a)
    int addr = -1;      ///< offending address (AddrRange/ReadCount)
    int unit = -1;      ///< offending local CN (UnitRange/UseBeforeDef/SerialOverlap)
    int other = -1;     ///< the conflicting CN (SerialOverlap)
    int count = 0;      ///< observed reads (ReadCount)
};

/// Verifies one check phase's slot stream; returns at most `max_issues`
/// findings (empty = proven clean). Subsumes the hand-coded sched.read-once
/// and strict-zigzag-order rules with generic def/use reasoning over the
/// completion order of the serial units.
std::vector<SlotIssue> verify_slot_stream(const std::vector<SlotOp>& ops,
                                          const SlotStreamDims& dims,
                                          std::size_t max_issues = 16);

// ------------------------------------------------------- model: port drain

/// Statically enumerated port traffic of one phase: cycle t reads
/// read_addr[t]; write_ready[t] lists write-backs leaving the FU pipelines
/// at cycle t (trailing cycles form the drain epilogue).
struct RamPhasePlan {
    std::vector<std::int32_t> read_addr;
    std::vector<std::vector<std::int32_t>> write_ready;
};

/// Outcome of draining a plan through the conflict buffer. Field-for-field
/// comparable with arch::ConflictStats (the pin tests assert equality of
/// all five numbers).
struct RamDrainStats {
    int read_cycles = 0;
    int cycles = 0;                      ///< reads + drain epilogue
    int peak_pending = 0;                ///< peak FIFO occupancy (words)
    long long pending_word_cycles = 0;   ///< total buffer residency
    long long blocked_events = 0;        ///< write attempts deferred by a busy bank
};

/// Runs the deterministic drain recurrence: per cycle the read consumes its
/// bank (bank = addr mod num_banks), then at most max_writes_per_cycle
/// pending writes issue to free, mutually distinct banks, scanned FIFO from
/// the head with lookahead (the paper's small-CAM buffer policy).
RamDrainStats drain_ram(const RamPhasePlan& plan, int num_banks, int max_writes_per_cycle);

}  // namespace dvbs2::analysis::ir
