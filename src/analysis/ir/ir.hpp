// Schedule dataflow IR (paper Secs. 2.2-4): a finite trace of message
// def/use events that makes every schedule's data movement explicit, so
// generic analyses can *derive* the properties the paper argues by hand —
// sequential legality of the zigzag update, the halved parity-message
// storage of Fig. 2b, and the P-way lockstep independence that Eq. 2
// guarantees.
//
// The trace models storage the way the hardware provides it: one word per
// message *location*, with both travel directions of an edge alternating in
// place (the same in-place discipline the IN-message RAM uses for c2v/v2c).
// A def writes a word, a use reads the value the latest def left there, and
// a sink is a posterior-hardening read (it extends a value's lifetime but is
// not functional-unit work, so it constrains liveness and not the lockstep
// schedule). Every event carries hardware coordinates: the iteration, the
// phase, the producing/consuming unit, the SIMD lane the unit maps to, and
// the lockstep step within the phase.
//
// Traces are built from dimensions only (P, q, check_in_degree) or, when the
// per-edge variable map is supplied, from the full (code, schedule) pair —
// the analyses in analyses.hpp are independent of which.
//
// This library is deliberately self-contained (links only dvbs2_util): it
// sits *below* core so that the engine registry can consult its schedule
// classification (core/engine.cpp) without a dependency cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dvbs2::analysis::ir {

/// What an event does to its storage word.
enum class Access : std::uint8_t {
    Def,   ///< writes a new value into the word
    Use,   ///< reads the latest value as a message-update input
    Sink,  ///< reads the latest value for posterior hardening (liveness
           ///< only — excluded from lockstep-legality and level analysis)
};

/// Storage spaces of the message state. Each space is an array of words
/// indexed independently; all spaces are frame-local (no state is shared
/// between frames, which is what makes frame-per-lane batching legal for
/// every schedule).
enum class Space : std::uint8_t {
    MsgWord,     ///< information-edge words (E_IN; c2v/v2c alternate in place)
    ZigzagFwd,   ///< word of edge (p_j, CN_j): down_j, and pn_a_j in flooding
    ZigzagBwd,   ///< word of edge (p_j, CN_{j+1}): up_j, and pn_c_j in flooding
    MapFwd,      ///< MAP forward recursion storage (fwd_d_)
    UpSnapshot,  ///< segmented-schedule per-FU boundary registers for up
    PostInfo,    ///< layered running posterior totals, information nodes
    PostParity,  ///< layered running posterior totals, parity nodes
};
inline constexpr int kSpaceCount = 7;

const char* to_string(Space s);

/// One def/use/sink with full hardware coordinates. Trace position is the
/// event's time; defs dominate later uses of the same (space, index) until
/// the next def.
struct Event {
    Access access{};
    Space space{};
    std::int32_t index = 0;  ///< word index within the space
    std::int16_t iter = 0;   ///< decoding iteration
    std::int16_t phase = 0;  ///< phase within the iteration (see Trace::phase_names)
    std::int32_t unit = 0;   ///< producing/consuming unit (CN c -> c; others above m)
    std::int16_t lane = -1;  ///< SIMD lane of the unit under the Eq. 2 group-
                             ///< parallel mapping; -1 = not lane-mapped
    std::int32_t step = 0;   ///< lockstep step within the phase; -1 = prologue
};

/// Dimensions a schedule trace is built from. The defaults are the smallest
/// dimensions that exhibit every dependence class (>= 2 segment boundaries,
/// >= 3 chain steps per segment); classification results are dimension-
/// independent because every dependence in the builders is a fixed pattern
/// repeated per unit.
struct TraceDims {
    int parallelism = 4;     ///< P functional units / lanes
    int q = 3;               ///< local check nodes per FU (m = P*q)
    int check_in_degree = 2; ///< information edges per CN (check_deg - 2)
    int iterations = 3;      ///< >= 3 so the middle iteration has live-in and
                             ///< live-out values on both sides
    /// Optional: information-bit index of every check-major edge (size
    /// m*check_in_degree). When present, variable-phase events group by
    /// information node and layered traces carry PostInfo dependences.
    std::vector<std::int32_t> edge_variable;
    int num_info_nodes = 0;  ///< K; required when edge_variable is set

    int m() const noexcept { return parallelism * q; }
    long long e_in() const noexcept {
        return static_cast<long long>(m()) * check_in_degree;
    }
};

/// A compiled schedule: the event sequence plus its shape metadata.
struct Trace {
    core::Schedule schedule{};
    TraceDims dims;
    std::vector<std::string> phase_names;     ///< phase id -> display name
    std::vector<std::int32_t> space_size;     ///< words per space (kSpaceCount)
    std::vector<Event> events;
};

/// Compiles `schedule` into its def/use trace over `dims.iterations`
/// iterations. Event order is execution order: the segmented schedule is
/// emitted in lockstep (step-major) order, the MAP backward sweep in
/// descending CN order, everything else in ascending CN order — so reaching
/// definitions fall out of trace position alone, with no special cases.
Trace build_schedule_trace(core::Schedule schedule, const TraceDims& dims);

}  // namespace dvbs2::analysis::ir
