// Schedule-trace builders: compile each core::Schedule into its def/use
// event sequence. The emission mirrors core/mp_decoder.hpp statement by
// statement, with storage collapsed onto hardware words: both travel
// directions of a zigzag edge share one word (down/pn_a on the (p_j, CN_j)
// edge, up/pn_c on the (p_j, CN_{j+1}) edge), exactly as the flooding
// hardware stores them — which is what lets liveness *derive* the paper's
// 2m-1 (flooding) vs m+1 (zigzag) parity-word footprints instead of
// assuming them.
#include "analysis/ir/ir.hpp"

#include "util/error.hpp"

namespace dvbs2::analysis::ir {

const char* to_string(Space s) {
    switch (s) {
        case Space::MsgWord: return "msg-word";
        case Space::ZigzagFwd: return "zigzag-fwd";
        case Space::ZigzagBwd: return "zigzag-bwd";
        case Space::MapFwd: return "map-fwd";
        case Space::UpSnapshot: return "up-snapshot";
        case Space::PostInfo: return "post-info";
        case Space::PostParity: return "post-parity";
    }
    return "?";
}

namespace {

/// Emission context: current event coordinates plus the output vector.
struct Builder {
    Trace trace;
    std::int16_t iter = 0;
    std::int16_t phase = 0;
    std::int32_t unit = 0;
    std::int16_t lane = -1;
    std::int32_t step = 0;

    void at(std::int32_t u, std::int16_t l, std::int32_t s) {
        unit = u;
        lane = l;
        step = s;
    }
    void emit(Access a, Space sp, long long index) {
        trace.events.push_back(Event{a, sp, static_cast<std::int32_t>(index), iter, phase, unit,
                                     lane, step});
    }
    void def(Space sp, long long i) { emit(Access::Def, sp, i); }
    void use(Space sp, long long i) { emit(Access::Use, sp, i); }
    void sink(Space sp, long long i) { emit(Access::Sink, sp, i); }
};

/// Information-node update (Eq. 4): every message word of the node is read,
/// then every one is written back — the in-place v2c refresh. Without an
/// edge-variable map each word is its own degree-1 node, which preserves
/// every cross-phase dependence the analyses consume.
void emit_variable_phase(Builder& b, const TraceDims& d,
                         const std::vector<std::vector<long long>>& vedges) {
    const int m = d.m();
    const long long e = d.e_in();
    if (!vedges.empty()) {
        for (int v = 0; v < d.num_info_nodes; ++v) {
            b.at(m + v, static_cast<std::int16_t>(v % d.parallelism), v / d.parallelism);
            for (long long ed : vedges[static_cast<std::size_t>(v)]) b.use(Space::MsgWord, ed);
            for (long long ed : vedges[static_cast<std::size_t>(v)]) b.def(Space::MsgWord, ed);
        }
    } else {
        for (long long w = 0; w < e; ++w) {
            b.at(static_cast<std::int32_t>(m + w), -1, static_cast<std::int32_t>(w));
            b.use(Space::MsgWord, w);
            b.def(Space::MsgWord, w);
        }
    }
}

/// Flooding parity-node update: parity node j reads the c2v values of its
/// two edge words (up_j, down_j) and overwrites them with its v2c replies
/// (pn_a_j = ch+up into the forward word, pn_c_j = ch+down into the
/// backward word). Keeping both directions in one word per edge is legal
/// here because each word is read exactly once before its in-place rewrite.
void emit_two_phase_parity_nodes(Builder& b, const TraceDims& d, int unit_base) {
    const int m = d.m();
    for (int j = 0; j < m; ++j) {
        b.at(unit_base + j, -1, j);
        if (j < m - 1) {
            b.use(Space::ZigzagBwd, j);  // up_j feeds pn_a_j
            b.use(Space::ZigzagFwd, j);  // down_j feeds pn_c_j
        }
        b.def(Space::ZigzagFwd, j);      // pn_a_j (ch only at j = m-1)
        if (j < m - 1) b.def(Space::ZigzagBwd, j);  // pn_c_j
    }
}

void emit_msg_uses(Builder& b, const TraceDims& d, int c) {
    const long long base = static_cast<long long>(c) * d.check_in_degree;
    for (int t = 0; t < d.check_in_degree; ++t) b.use(Space::MsgWord, base + t);
}

void emit_msg_defs(Builder& b, const TraceDims& d, int c) {
    const long long base = static_cast<long long>(c) * d.check_in_degree;
    for (int t = 0; t < d.check_in_degree; ++t) b.def(Space::MsgWord, base + t);
}

/// Flooding check phase (Fig. 2a): every parity input was materialized by
/// the variable phase, so check nodes have no intra-sweep dependences — the
/// whole sweep is one lockstep level (the derivation target).
void emit_check_two_phase(Builder& b, const TraceDims& d) {
    const int m = d.m();
    for (int c = 0; c < m; ++c) {
        b.at(c, static_cast<std::int16_t>(c / d.q), c % d.q);
        emit_msg_uses(b, d, c);
        if (c > 0) b.use(Space::ZigzagBwd, c - 1);  // left input pn_c_{c-1}
        b.use(Space::ZigzagFwd, c);                 // right input pn_a_c
        emit_msg_defs(b, d, c);
        b.def(Space::ZigzagFwd, c);                 // down_c
        if (c > 0) b.def(Space::ZigzagBwd, c - 1);  // up_{c-1}
        // Posterior of p_{c-1} = ch + down_{c-1} + up_{c-1} hardens on the
        // fly, one step after down_{c-1} was produced.
        if (c > 0) {
            b.sink(Space::ZigzagFwd, c - 1);
            b.sink(Space::ZigzagBwd, c - 1);
        }
        if (c == m - 1) b.sink(Space::ZigzagFwd, m - 1);
    }
}

/// Sequential zigzag sweep (Fig. 2b): the forward message is a wire
/// (ch + down_{c-1}, read straight from the word CN c-1 just wrote), so no
/// v2c parity message is ever stored — the storage halving falls out of the
/// liveness analysis over exactly these events.
void emit_check_zigzag_forward(Builder& b, const TraceDims& d) {
    const int m = d.m();
    for (int c = 0; c < m; ++c) {
        b.at(c, static_cast<std::int16_t>(c / d.q), c % d.q);
        emit_msg_uses(b, d, c);
        if (c > 0) b.use(Space::ZigzagFwd, c - 1);      // fresh down_{c-1} (this sweep)
        if (c < m - 1) b.use(Space::ZigzagBwd, c);      // up_c from the previous iteration
        emit_msg_defs(b, d, c);
        b.def(Space::ZigzagFwd, c);
        if (c > 0) b.def(Space::ZigzagBwd, c - 1);
        if (c > 0) {
            b.sink(Space::ZigzagFwd, c - 1);
            b.sink(Space::ZigzagBwd, c - 1);
        }
        if (c == m - 1) b.sink(Space::ZigzagFwd, m - 1);
    }
}

/// Hardware realization of Fig. 2b: P functional units sweep their q-CN
/// segments in lockstep (step-major emission). FU f restarts its forward
/// recursion from the previous iteration's boundary value (the trace order
/// makes that the reaching def — no snapshot needed for down), but the
/// previous iteration's up at a segment boundary *is* snapshotted into a
/// per-FU register at step -1, because the neighbouring FU overwrites the
/// word at step 0 while the owner only consumes it at step q-1.
void emit_check_zigzag_segmented(Builder& b, const TraceDims& d) {
    const int m = d.m();
    const int q = d.q;
    const int p = d.parallelism;
    for (int f = 0; f + 1 < p; ++f) {
        const int boundary = (f + 1) * q - 1;  // last CN of FU f
        b.at(boundary, static_cast<std::int16_t>(f), -1);
        b.use(Space::ZigzagBwd, boundary);
        b.def(Space::UpSnapshot, f);
    }
    for (int s = 0; s < q; ++s) {
        for (int f = 0; f < p; ++f) {
            const int c = f * q + s;
            b.at(c, static_cast<std::int16_t>(f), s);
            emit_msg_uses(b, d, c);
            if (c > 0) b.use(Space::ZigzagFwd, c - 1);
            if (c < m - 1) {
                if (s == q - 1)
                    b.use(Space::UpSnapshot, f);   // neighbour overwrote the word at step 0
                else
                    b.use(Space::ZigzagBwd, c);    // previous iteration's up_c
            }
            emit_msg_defs(b, d, c);
            b.def(Space::ZigzagFwd, c);
            if (c > 0) b.def(Space::ZigzagBwd, c - 1);
            // Posterior of p_j hardens at the first step where both down_j
            // and up_j of this iteration exist: p_{c-1} at step s > 0, and
            // the FU's own last parity p_c at step q-1 (its up was written
            // by the neighbouring FU at step 0).
            if (s > 0) {
                b.sink(Space::ZigzagFwd, c - 1);
                b.sink(Space::ZigzagBwd, c - 1);
            }
            if (s == q - 1) {
                b.sink(Space::ZigzagFwd, c);
                if (c < m - 1) b.sink(Space::ZigzagBwd, c);
            }
        }
    }
}

/// MAP variant: a forward sweep stores the whole recursion (MapFwd), then a
/// backward sweep produces fresh up messages and the c2v outputs. Message
/// words are read twice per iteration (once per sweep) and all m forward
/// words are simultaneously live at the turn-around — both facts surface in
/// the analyses as the cost of the MAP schedule.
void emit_check_zigzag_map(Builder& b, const TraceDims& d) {
    const int m = d.m();
    b.phase = 1;  // "check-forward"
    for (int c = 0; c < m; ++c) {
        b.at(c, static_cast<std::int16_t>(c / d.q), c % d.q);
        emit_msg_uses(b, d, c);
        if (c > 0) b.use(Space::MapFwd, c - 1);
        if (c < m - 1) b.use(Space::ZigzagBwd, c);  // previous iteration's up_c
        b.def(Space::MapFwd, c);
    }
    b.phase = 2;  // "check-backward"
    for (int c = m - 1; c >= 0; --c) {
        b.at(c, static_cast<std::int16_t>(c / d.q), c % d.q);
        emit_msg_uses(b, d, c);
        if (c > 0) b.use(Space::MapFwd, c - 1);
        if (c < m - 1) b.use(Space::ZigzagBwd, c);  // fresh up_c (written by CN c+1)
        emit_msg_defs(b, d, c);
        if (c > 0) b.def(Space::ZigzagBwd, c - 1);
        b.sink(Space::MapFwd, c);                   // posterior down_c = fwd_d_c
        if (c < m - 1) b.sink(Space::ZigzagBwd, c);
    }
}

/// Row-layered sweep: check nodes subtract their previous contribution from
/// the running totals and fold the fresh extrinsics back immediately. The
/// PostParity chain (CN c reads the total CN c-1 just updated) is the
/// sequential dependence that makes the sweep lockstep-illegal.
void emit_layered(Builder& b, const TraceDims& d,
                  const std::vector<std::int32_t>& edge_variable) {
    const int m = d.m();
    const bool grouped = !edge_variable.empty();
    for (int c = 0; c < m; ++c) {
        const long long base = static_cast<long long>(c) * d.check_in_degree;
        b.at(c, static_cast<std::int16_t>(c / d.q), c % d.q);
        for (int t = 0; t < d.check_in_degree; ++t) {
            if (grouped) b.use(Space::PostInfo, edge_variable[static_cast<std::size_t>(base + t)]);
            b.use(Space::MsgWord, base + t);
        }
        if (c > 0) {
            b.use(Space::PostParity, c - 1);
            b.use(Space::ZigzagBwd, c - 1);
        }
        b.use(Space::PostParity, c);
        b.use(Space::ZigzagFwd, c);
        for (int t = 0; t < d.check_in_degree; ++t) {
            b.def(Space::MsgWord, base + t);
            if (grouped) b.def(Space::PostInfo, edge_variable[static_cast<std::size_t>(base + t)]);
        }
        if (c > 0) {
            b.def(Space::ZigzagBwd, c - 1);
            b.def(Space::PostParity, c - 1);
        }
        b.def(Space::ZigzagFwd, c);
        b.def(Space::PostParity, c);
    }
}

}  // namespace

Trace build_schedule_trace(core::Schedule schedule, const TraceDims& dims) {
    DVBS2_REQUIRE(dims.parallelism >= 1 && dims.q >= 1 && dims.check_in_degree >= 1,
                  "trace dims need parallelism, q, check_in_degree >= 1");
    DVBS2_REQUIRE(dims.iterations >= 1, "trace needs at least one iteration");
    const int m = dims.m();
    const long long e = dims.e_in();
    std::vector<std::vector<long long>> vedges;
    if (!dims.edge_variable.empty()) {
        DVBS2_REQUIRE(static_cast<long long>(dims.edge_variable.size()) == e,
                      "edge_variable must have one entry per information edge");
        DVBS2_REQUIRE(dims.num_info_nodes >= 1, "edge_variable needs num_info_nodes");
        vedges.resize(static_cast<std::size_t>(dims.num_info_nodes));
        for (long long ed = 0; ed < e; ++ed) {
            const std::int32_t v = dims.edge_variable[static_cast<std::size_t>(ed)];
            DVBS2_REQUIRE(v >= 0 && v < dims.num_info_nodes,
                          "edge_variable entry out of range");
            vedges[static_cast<std::size_t>(v)].push_back(ed);
        }
    }

    Builder b;
    b.trace.schedule = schedule;
    b.trace.dims = dims;
    b.trace.space_size.assign(kSpaceCount, 0);
    b.trace.space_size[static_cast<int>(Space::MsgWord)] = static_cast<std::int32_t>(e);
    b.trace.space_size[static_cast<int>(Space::ZigzagFwd)] = m;
    b.trace.space_size[static_cast<int>(Space::ZigzagBwd)] = m > 0 ? m - 1 : 0;
    b.trace.space_size[static_cast<int>(Space::MapFwd)] =
        schedule == core::Schedule::ZigzagMap ? m : 0;
    b.trace.space_size[static_cast<int>(Space::UpSnapshot)] =
        schedule == core::Schedule::ZigzagSegmented ? dims.parallelism : 0;
    b.trace.space_size[static_cast<int>(Space::PostInfo)] =
        schedule == core::Schedule::Layered ? dims.num_info_nodes : 0;
    b.trace.space_size[static_cast<int>(Space::PostParity)] =
        schedule == core::Schedule::Layered ? m : 0;

    switch (schedule) {
        case core::Schedule::ZigzagMap:
            b.trace.phase_names = {"variable", "check-forward", "check-backward"};
            break;
        case core::Schedule::Layered: b.trace.phase_names = {"layered"}; break;
        default: b.trace.phase_names = {"variable", "check"}; break;
    }

    const int parity_unit_base =
        m + (vedges.empty() ? static_cast<int>(e) : dims.num_info_nodes);
    for (int it = 0; it < dims.iterations; ++it) {
        b.iter = static_cast<std::int16_t>(it);
        if (schedule == core::Schedule::Layered) {
            b.phase = 0;
            emit_layered(b, dims, dims.edge_variable);
            continue;
        }
        b.phase = 0;
        emit_variable_phase(b, dims, vedges);
        if (schedule == core::Schedule::TwoPhase)
            emit_two_phase_parity_nodes(b, dims, parity_unit_base);
        b.phase = 1;
        switch (schedule) {
            case core::Schedule::TwoPhase: emit_check_two_phase(b, dims); break;
            case core::Schedule::ZigzagForward: emit_check_zigzag_forward(b, dims); break;
            case core::Schedule::ZigzagSegmented: emit_check_zigzag_segmented(b, dims); break;
            case core::Schedule::ZigzagMap: emit_check_zigzag_map(b, dims); break;
            case core::Schedule::Layered: break;  // handled above
        }
    }
    return b.trace;
}

}  // namespace dvbs2::analysis::ir
