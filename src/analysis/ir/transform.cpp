#include "analysis/ir/transform.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/error.hpp"

namespace dvbs2::analysis::ir {

namespace {

/// Local schedule-name helper: this library sits below core in the link
/// order (core/types.hpp is used header-only), so it cannot call the
/// core::to_string definition from dvbs2_core.
const char* schedule_name(core::Schedule s) {
    switch (s) {
        case core::Schedule::TwoPhase: return "two-phase";
        case core::Schedule::ZigzagForward: return "zigzag-forward";
        case core::Schedule::ZigzagSegmented: return "zigzag-segmented";
        case core::Schedule::ZigzagMap: return "zigzag-map";
        case core::Schedule::Layered: return "layered";
    }
    return "?";
}

const char* access_name(Access a) {
    switch (a) {
        case Access::Def: return "def";
        case Access::Use: return "use";
        case Access::Sink: return "sink";
    }
    return "?";
}

/// Key of one (iteration, phase, unit) serial functional-unit instance.
std::uint64_t unit_key(const Event& ev) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(ev.iter)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(ev.phase)) << 32) |
           static_cast<std::uint32_t>(ev.unit);
}

/// Key of one storage word.
std::uint64_t word_key(const Event& ev) {
    return (static_cast<std::uint64_t>(static_cast<std::uint8_t>(ev.space)) << 32) |
           static_cast<std::uint32_t>(ev.index);
}

/// Lexicographic (iteration, phase) rank used for the barrier check.
std::int64_t phase_rank(const Event& ev) {
    return (static_cast<std::int64_t>(ev.iter) << 16) | static_cast<std::uint16_t>(ev.phase);
}

/// Reaching definition per Use/Sink (original event index of the def, -1 for
/// the all-zero initial state) and final definition per word, for one event
/// order. The comparison of these maps between the original and permuted
/// orders is the semantic-preservation proof.
struct DefFlow {
    std::vector<std::int64_t> reaching;                    // per event, -1 for defs
    std::unordered_map<std::uint64_t, std::int64_t> last;  // word -> final def event
};

/// `order[p]` = original event index executed p-th.
DefFlow def_flow(const Trace& trace, const std::vector<std::int64_t>& order) {
    DefFlow flow;
    flow.reaching.assign(trace.events.size(), -1);
    for (const std::int64_t e : order) {
        const Event& ev = trace.events[static_cast<std::size_t>(e)];
        auto [it, inserted] = flow.last.try_emplace(word_key(ev), -1);
        if (ev.access == Access::Def)
            it->second = e;
        else
            flow.reaching[static_cast<std::size_t>(e)] = it->second;
    }
    return flow;
}

RewriteCheck rejected(std::string reason, std::int64_t event) {
    RewriteCheck out;
    out.rejection = RewriteRejection{std::move(reason), event};
    return out;
}

// ------------------------------------------------------------------ search

/// Deterministic splitmix64 stream (the search must be reproducible: the
/// certificate cache and the golden pins depend on it).
struct Rng {
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed) {}
    std::uint64_t next() {
        s += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
    std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

/// A maximal run of consecutive events by one unit: the unit of work the
/// searcher reorders (events inside an atom keep their order, so the
/// serial-FU constraint holds by construction).
struct Atom {
    std::int32_t unit = 0;
    std::size_t first = 0, last = 0;  // event range [first, last)
    std::size_t size() const { return last - first; }
};

struct UnionFind {
    std::vector<int> parent;
    explicit UnionFind(std::size_t n) : parent(n) {
        for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
    }
    int find(int x) {
        while (parent[static_cast<std::size_t>(x)] != x) {
            parent[static_cast<std::size_t>(x)] =
                parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
            x = parent[static_cast<std::size_t>(x)];
        }
        return x;
    }
    void unite(int a, int b) {
        a = find(a);
        b = find(b);
        if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
    }
};

/// Schedules one (iteration, phase) block: atoms -> dependence components
/// -> lane packing -> per-lane step serialization -> step-major emission.
void schedule_block(const Trace& trace, std::size_t b, std::size_t e, int P,
                    const TransformOptions& opts, Rng& rng, ScheduleRewrite& rw) {
    // Atoms: contiguous per-unit runs.
    std::vector<Atom> atoms;
    for (std::size_t t = b; t < e; ++t) {
        if (atoms.empty() || atoms.back().unit != trace.events[t].unit ||
            atoms.back().last != t)
            atoms.push_back(Atom{trace.events[t].unit, t, t + 1});
        else
            atoms.back().last = t + 1;
    }

    // Dependence components: a same-phase RAW/WAR/WAW hazard between two
    // atoms forces them into one lane (the lockstep rule only admits
    // same-lane dependences), so weakly connected atoms merge.
    UnionFind uf(atoms.size());
    {
        struct WordState {
            int last_def = -1;
            std::vector<int> readers;  // since the last def
        };
        std::unordered_map<std::uint64_t, WordState> words;
        std::size_t a = 0;
        for (std::size_t t = b; t < e; ++t) {
            while (t >= atoms[a].last) ++a;
            const Event& ev = trace.events[t];
            WordState& w = words[word_key(ev)];
            const int ai = static_cast<int>(a);
            if (ev.access == Access::Def) {
                if (w.last_def >= 0 && w.last_def != ai) uf.unite(w.last_def, ai);  // WAW
                for (const int r : w.readers)
                    if (r != ai) uf.unite(r, ai);  // WAR
                w.readers.clear();
                w.last_def = ai;
            } else {
                if (w.last_def >= 0 && w.last_def != ai) uf.unite(w.last_def, ai);  // RAW
                w.readers.push_back(ai);
            }
        }
    }
    std::vector<std::vector<int>> comps;  // component -> atoms in program order
    {
        std::unordered_map<int, std::size_t> root_comp;
        for (std::size_t a = 0; a < atoms.size(); ++a) {
            const int r = uf.find(static_cast<int>(a));
            auto [it, inserted] = root_comp.try_emplace(r, comps.size());
            if (inserted) comps.emplace_back();
            comps[it->second].push_back(static_cast<int>(a));
        }
    }

    // Greedy LPT: biggest component first onto the least-loaded lane. Load
    // is the atom count — a lane's atoms serialize into consecutive steps,
    // so the phase's level count is the heaviest lane's load.
    std::vector<std::size_t> by_size(comps.size());
    for (std::size_t c = 0; c < comps.size(); ++c) by_size[c] = c;
    std::stable_sort(by_size.begin(), by_size.end(), [&](std::size_t x, std::size_t y) {
        return comps[x].size() > comps[y].size();
    });
    std::vector<int> comp_lane(comps.size(), 0);
    std::vector<long long> load(static_cast<std::size_t>(P), 0);
    for (const std::size_t c : by_size) {
        const auto l = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        comp_lane[c] = static_cast<int>(l);
        load[l] += static_cast<long long>(comps[c].size());
    }

    // Annealing over the packing: minimize sum of squared lane loads (its
    // minimum is the balanced packing, hence the minimal makespan). LPT can
    // be up to 4/3 off on adversarial chain-size mixes; the walk keeps the
    // best assignment ever seen, so it never regresses below greedy.
    if (opts.anneal_rounds > 0 && comps.size() > 1 && P > 1) {
        const auto cost_of = [&](const std::vector<long long>& ld) {
            long long c = 0;
            for (const long long l : ld) c += l * l;
            return c;
        };
        long long cost = cost_of(load);
        std::vector<int> best_lane = comp_lane;
        long long best_cost = cost;
        double temp = std::max<double>(1.0, static_cast<double>(b == e ? 1 : e - b));
        const double decay =
            std::pow(1e-3 / temp, 1.0 / static_cast<double>(opts.anneal_rounds));
        for (int round = 0; round < opts.anneal_rounds; ++round, temp *= decay) {
            const std::size_t c = rng.below(comps.size());
            const auto from = static_cast<std::size_t>(comp_lane[c]);
            const auto to = rng.below(static_cast<std::size_t>(P));
            if (to == from) continue;
            const auto sz = static_cast<long long>(comps[c].size());
            const long long delta = (load[to] + sz) * (load[to] + sz) - load[to] * load[to] +
                                    (load[from] - sz) * (load[from] - sz) -
                                    load[from] * load[from];
            if (delta > 0 && rng.uniform() >= std::exp(-static_cast<double>(delta) / temp))
                continue;
            comp_lane[c] = static_cast<int>(to);
            load[from] -= sz;
            load[to] += sz;
            cost += delta;
            if (cost < best_cost) {
                best_cost = cost;
                best_lane = comp_lane;
            }
        }
        comp_lane = best_lane;
    }

    // Per-lane step serialization: a lane runs its atoms in program order
    // (program order is a topological order of every component, so all
    // intra-component dependences point forward in step).
    std::vector<std::vector<int>> lane_atoms(static_cast<std::size_t>(P));
    for (std::size_t c = 0; c < comps.size(); ++c)
        for (const int a : comps[c])
            lane_atoms[static_cast<std::size_t>(comp_lane[c])].push_back(a);
    std::size_t max_steps = 0;
    std::vector<std::int16_t> atom_lane(atoms.size(), 0);
    std::vector<std::int32_t> atom_step(atoms.size(), 0);
    for (std::size_t l = 0; l < lane_atoms.size(); ++l) {
        std::sort(lane_atoms[l].begin(), lane_atoms[l].end());
        for (std::size_t s = 0; s < lane_atoms[l].size(); ++s) {
            atom_lane[static_cast<std::size_t>(lane_atoms[l][s])] = static_cast<std::int16_t>(l);
            atom_step[static_cast<std::size_t>(lane_atoms[l][s])] = static_cast<std::int32_t>(s);
        }
        max_steps = std::max(max_steps, lane_atoms[l].size());
    }

    // Step-major emission (lane-minor within a step): reaching definitions
    // of the permuted trace fall out of trace position, matching the
    // lockstep hardware order the certificate claims.
    for (std::size_t s = 0; s < max_steps; ++s) {
        for (std::size_t l = 0; l < lane_atoms.size(); ++l) {
            if (s >= lane_atoms[l].size()) continue;
            const Atom& at = atoms[static_cast<std::size_t>(lane_atoms[l][s])];
            for (std::size_t t = at.first; t < at.last; ++t) {
                rw.perm.push_back(static_cast<std::int64_t>(t));
                rw.lane[t] = atom_lane[static_cast<std::size_t>(lane_atoms[l][s])];
                rw.step[t] = atom_step[static_cast<std::size_t>(lane_atoms[l][s])];
            }
        }
    }
}

TransformVerdict compute_verdict(core::Schedule s) {
    TransformVerdict v;
    v.schedule = s;
    const ScheduleClass& cls = classify_schedule(s);
    v.native_group_parallel = cls.group_parallel_legal;
    v.obstruction = cls.group_parallel_obstruction;
    const Trace trace = build_schedule_trace(s, TraceDims{});
    if (v.native_group_parallel) {
        const ParallelismReport rep = analyze_parallelism(trace);
        for (const PhaseParallelism& pp : rep.phases)
            v.phases.push_back(TransformPhase{pp.name, pp.levels, pp.max_group});
        return v;
    }
    std::optional<ScheduleRewrite> rw = search_lockstep_rewrite(trace);
    if (!rw) return v;  // search budget exhausted: stay on frame-per-lane
    const RewriteCheck chk = check_rewrite(trace, *rw);
    if (!chk.ok) return v;  // certifier refused the candidate: same fallback
    v.certified = true;
    v.rewrite = std::move(rw);
    for (const PhaseParallelism& pp : chk.transformed.phases)
        v.phases.push_back(TransformPhase{pp.name, pp.levels, pp.max_group});
    return v;
}

}  // namespace

std::string describe_event(const Event& ev) {
    return std::string(access_name(ev.access)) + " of " + to_string(ev.space) + "[" +
           std::to_string(ev.index) + "] by unit " + std::to_string(ev.unit) + " (iter " +
           std::to_string(ev.iter) + ", phase " + std::to_string(ev.phase) + ")";
}

Trace apply_rewrite(const Trace& trace, const ScheduleRewrite& rw) {
    Trace out;
    out.schedule = trace.schedule;
    out.dims = trace.dims;
    out.phase_names = trace.phase_names;
    out.space_size = trace.space_size;
    out.events.reserve(rw.perm.size());
    for (const std::int64_t e : rw.perm) {
        Event ev = trace.events[static_cast<std::size_t>(e)];
        ev.lane = rw.lane[static_cast<std::size_t>(e)];
        ev.step = rw.step[static_cast<std::size_t>(e)];
        out.events.push_back(ev);
    }
    return out;
}

RewriteCheck check_rewrite(const Trace& trace, const ScheduleRewrite& rw) {
    const std::size_t n = trace.events.size();

    // 1. Bijection: every original event appears exactly once.
    if (rw.lane.size() != n || rw.step.size() != n)
        return rejected("certificate coordinate arrays do not cover the trace (" +
                            std::to_string(rw.lane.size()) + "/" + std::to_string(rw.step.size()) +
                            " entries for " + std::to_string(n) + " events)",
                        -1);
    std::vector<char> seen(n, 0);
    for (const std::int64_t e : rw.perm) {
        if (e < 0 || e >= static_cast<std::int64_t>(n))
            return rejected("permutation references nonexistent event index " + std::to_string(e),
                            e);
        if (seen[static_cast<std::size_t>(e)])
            return rejected("event emitted twice: " +
                                describe_event(trace.events[static_cast<std::size_t>(e)]),
                            e);
        seen[static_cast<std::size_t>(e)] = 1;
    }
    for (std::size_t i = 0; i < n; ++i)
        if (!seen[i])
            return rejected("event dropped from the rewrite: " + describe_event(trace.events[i]),
                            static_cast<std::int64_t>(i));

    // 2-5. Structural walk over the permuted order: phase barriers, serial
    // functional-unit order, one lane per unit instance, step-major
    // emission.
    std::int64_t prev_rank = std::numeric_limits<std::int64_t>::min();
    std::int32_t prev_step = 0;
    std::unordered_map<std::uint64_t, std::int64_t> unit_last;   // unit instance -> last event
    std::unordered_map<std::uint64_t, std::int16_t> unit_lanes;  // unit instance -> lane
    for (const std::int64_t e : rw.perm) {
        const Event& ev = trace.events[static_cast<std::size_t>(e)];
        const std::int64_t rank = phase_rank(ev);
        if (rank < prev_rank)
            return rejected("event crosses an iteration/phase barrier: " + describe_event(ev), e);
        if (rank > prev_rank) prev_step = std::numeric_limits<std::int32_t>::min();
        prev_rank = rank;

        const std::int16_t lane = rw.lane[static_cast<std::size_t>(e)];
        const std::int32_t step = rw.step[static_cast<std::size_t>(e)];
        if (lane < 0 || lane >= trace.dims.parallelism || step < 0)
            return rejected("event is assigned outside the P-lane lockstep grid (lane " +
                                std::to_string(lane) + ", step " + std::to_string(step) + "): " +
                                describe_event(ev),
                            e);
        if (step < prev_step)
            return rejected("emission order runs against the lockstep step order: " +
                                describe_event(ev),
                            e);
        prev_step = step;

        auto [lit, lane_new] = unit_lanes.try_emplace(unit_key(ev), lane);
        if (!lane_new && lit->second != lane)
            return rejected("unit " + std::to_string(ev.unit) +
                                " is split across lanes within one phase: " + describe_event(ev),
                            e);
        auto [uit, unit_new] = unit_last.try_emplace(unit_key(ev), e);
        if (!unit_new) {
            if (e < uit->second)
                return rejected(
                    "events of a serial functional unit are reordered against program order: " +
                        describe_event(ev),
                    e);
            uit->second = e;
        }
    }

    // 6. Semantic preservation: identical reaching definition for every
    // read, identical final definition for every word. Only provably
    // independent events may commute, so this is the bit-exactness proof.
    std::vector<std::int64_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = static_cast<std::int64_t>(i);
    const DefFlow orig = def_flow(trace, identity);
    const DefFlow perm = def_flow(trace, rw.perm);
    for (const std::int64_t e : rw.perm) {
        const Event& ev = trace.events[static_cast<std::size_t>(e)];
        if (ev.access == Access::Def) continue;
        if (orig.reaching[static_cast<std::size_t>(e)] != perm.reaching[static_cast<std::size_t>(e)])
            return rejected("violated def-use edge: " + describe_event(ev) +
                                " reads a different reaching definition after the rewrite",
                            e);
    }
    for (const auto& [word, final_def] : orig.last) {
        const auto it = perm.last.find(word);
        if (it == perm.last.end() || it->second != final_def)
            return rejected("final definition of a word changes: " +
                                describe_event(trace.events[static_cast<std::size_t>(final_def)]),
                            final_def);
    }

    // 7. Translation validation: replay the permuted, re-coordinated trace
    // through the independent lockstep checker.
    RewriteCheck out;
    out.transformed = analyze_parallelism(apply_rewrite(trace, rw));
    if (!out.transformed.lockstep_legal) {
        std::string reason = "transformed trace fails the lockstep replay";
        if (out.transformed.violation)
            reason += ": " + out.transformed.violation->describe();
        out.rejection = RewriteRejection{std::move(reason), -1};
        return out;
    }
    out.ok = true;
    return out;
}

std::optional<ScheduleRewrite> search_lockstep_rewrite(const Trace& trace,
                                                       const TransformOptions& opts) {
    const std::size_t n = trace.events.size();
    if (n > opts.max_events) return std::nullopt;  // budget: degrade, don't guess
    const int P = std::max(1, trace.dims.parallelism);
    ScheduleRewrite rw;
    rw.schedule = trace.schedule;
    rw.dims = trace.dims;
    rw.perm.reserve(n);
    rw.lane.assign(n, 0);
    rw.step.assign(n, 0);
    Rng rng(opts.seed);
    std::size_t b = 0;
    while (b < n) {
        std::size_t e = b;
        while (e < n && trace.events[e].iter == trace.events[b].iter &&
               trace.events[e].phase == trace.events[b].phase)
            ++e;
        schedule_block(trace, b, e, P, opts, rng, rw);
        b = e;
    }
    return rw;
}

std::string TransformVerdict::summary() const {
    std::string out(schedule_name(schedule));
    if (native_group_parallel)
        out += ": group-parallel natively legal";
    else if (certified)
        out += ": group-parallel via certified rewrite (was: " + obstruction + ")";
    else if (obstruction.empty())
        out += ": frame-per-lane only (search found no certifiable rewrite)";
    else
        out += ": frame-per-lane only (" + obstruction + "; no certified rewrite)";
    if (group_parallel() && !phases.empty()) {
        out += " [";
        for (std::size_t i = 0; i < phases.size(); ++i) {
            if (i) out += "; ";
            out += phases[i].name + ": " + std::to_string(phases[i].steps) + " steps x " +
                   std::to_string(phases[i].max_group) + " wide";
        }
        out += "]";
    }
    return out;
}

const TransformVerdict& transform_schedule(core::Schedule schedule) {
    static const std::array<TransformVerdict, 5> table = [] {
        std::array<TransformVerdict, 5> t;
        for (core::Schedule s :
             {core::Schedule::TwoPhase, core::Schedule::ZigzagForward,
              core::Schedule::ZigzagSegmented, core::Schedule::ZigzagMap,
              core::Schedule::Layered})
            t[static_cast<std::size_t>(s)] = compute_verdict(s);
        return t;
    }();
    const auto i = static_cast<std::size_t>(schedule);
    DVBS2_REQUIRE(i < table.size(), "unknown schedule value " + std::to_string(i));
    return table[i];
}

bool group_parallel_supported(core::Schedule schedule) {
    return transform_schedule(schedule).group_parallel();
}

}  // namespace dvbs2::analysis::ir
