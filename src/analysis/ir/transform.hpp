// Certified schedule transformer (ROADMAP item 3): turns the dataflow IR
// from a verifier into an optimizer.
//
// `classify_schedule` proves that layered, zigzag-forward, and zigzag-map
// cannot run as P lockstep functional units *as emitted* and names the
// first obstruction. This pass searches for a dependence-preserving
// reassignment of every event's (lane, step) coordinates — greedy level
// compaction of independent work plus simulated annealing over the
// packing of dependence components onto lanes — that eliminates the
// obstruction.
//
// The searcher is untrusted. Every candidate comes out as an explicit
// `ScheduleRewrite` certificate: a permutation of the event trace plus the
// rewritten lane/step of every original event. `check_rewrite` re-checks a
// certificate from scratch (translation validation): it shares no state or
// heuristics with the search, and its final word is a replay of the
// permuted, re-coordinated trace through the *existing* independent
// checkers (`analyze_parallelism`, and `verify_slot_stream` semantics via
// the per-unit order rule). A certificate is accepted only if
//   1. the permutation is a bijection (no event dropped or duplicated),
//   2. no event crosses an iteration or phase barrier,
//   3. every serial functional unit keeps its internal event order,
//   4. all events of a unit within a phase stay on one lane,
//   5. the emission order is lockstep (step-major) within each phase,
//   6. every Use/Sink reads the same reaching definition as in the
//      original trace and every word's final definition is unchanged
//      (this is the proof that the transformed scalar decode is
//      bit-identical to the original scalar decode), and
//   7. the replayed trace is lockstep-legal under `analyze_parallelism`.
// Each rejection names the offending event.
//
// `transform_schedule` caches one verdict per core::Schedule at canonical
// trace dimensions (like `classify_schedule`, the dependence patterns
// repeat per unit, so the verdicts are dimension-independent); the engine
// layer (core/engine.cpp) consults it to admit (fixed, simd-group) specs
// for certified schedules. A search that exceeds its budget — or a
// certificate the checker rejects — degrades to the frame-per-lane
// verdict, never to an uncertified group-parallel claim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ir/analyses.hpp"
#include "analysis/ir/ir.hpp"

namespace dvbs2::analysis::ir {

/// An explicit, independently checkable rewrite of one schedule trace.
/// `perm[p]` is the original event index emitted at position p of the
/// transformed trace; `lane[i]` / `step[i]` are the rewritten hardware
/// coordinates of original event i. Nothing else: the certificate carries
/// the entire claim, so the checker needs no access to the search.
struct ScheduleRewrite {
    core::Schedule schedule{};
    TraceDims dims;
    std::vector<std::int64_t> perm;
    std::vector<std::int16_t> lane;
    std::vector<std::int32_t> step;
};

/// Why a certificate was rejected, naming the offending event.
struct RewriteRejection {
    std::string reason;       ///< human-readable, includes the event description
    std::int64_t event = -1;  ///< original event index (-1: not event-specific)
};

struct RewriteCheck {
    bool ok = false;
    std::optional<RewriteRejection> rejection;  ///< first failure, when !ok
    /// Parallelism report of the transformed trace (valid when the
    /// structural checks passed, i.e. always when ok).
    ParallelismReport transformed;
};

/// Mechanical application of a certificate: the permuted event sequence
/// with rewritten lane/step coordinates. Used by the certifier's replay and
/// exposed for tests; it interprets the certificate, it does not search.
Trace apply_rewrite(const Trace& trace, const ScheduleRewrite& rw);

/// Independent certifier (translation validation). See file header for the
/// seven checks; rejections name the offending event.
RewriteCheck check_rewrite(const Trace& trace, const ScheduleRewrite& rw);

/// One-line description of an event for diagnostics ("use of msg-word[5]
/// by unit 7 (iter 1, phase 0)").
std::string describe_event(const Event& ev);

struct TransformOptions {
    /// Search budget: traces above this size are not searched (the caller
    /// degrades to frame-per-lane).
    std::size_t max_events = 1 << 20;
    /// Simulated-annealing rounds over the component-to-lane packing per
    /// phase block (0 = greedy LPT only). Deterministic for a fixed seed.
    int anneal_rounds = 4000;
    std::uint64_t seed = 0x5eed5eed5eedULL;
};

/// Untrusted searcher. Collapses each (iteration, phase) block into
/// per-unit atoms, builds the RAW/WAR/WAW dependence DAG over the atoms,
/// groups them into connected components (a same-phase dependence is only
/// lockstep-legal inside one lane, so a component must not straddle
/// lanes), packs components onto the P lanes with greedy LPT plus
/// annealing, and serializes each lane's atoms into consecutive lockstep
/// steps. Returns std::nullopt when the trace exceeds the search budget.
/// The result is a *candidate*: callers must pass it through
/// check_rewrite before trusting it.
std::optional<ScheduleRewrite> search_lockstep_rewrite(const Trace& trace,
                                                       const TransformOptions& opts = {});

/// Shape of one phase of the transformed measured iteration.
struct TransformPhase {
    std::string name;
    int steps = 0;      ///< lockstep steps (levels) after the rewrite
    int max_group = 0;  ///< widest level: units running in parallel
};

/// Cached per-schedule verdict: how (if at all) the schedule reaches
/// group-parallel legality.
struct TransformVerdict {
    core::Schedule schedule{};
    /// Lockstep-legal as emitted (classify_schedule's native verdict);
    /// no rewrite is needed or stored.
    bool native_group_parallel = false;
    /// A rewrite was found by the search and accepted by check_rewrite.
    bool certified = false;
    /// classify_schedule's obstruction text for the original trace (empty
    /// when natively legal).
    std::string obstruction;
    /// Level structure of the (possibly transformed) measured iteration.
    std::vector<TransformPhase> phases;
    /// The certificate, when certified (canonical dimensions).
    std::optional<ScheduleRewrite> rewrite;

    /// True when the engine layer may accept a group-parallel lane mapping.
    bool group_parallel() const noexcept { return native_group_parallel || certified; }
    /// One-sentence account for engine errors and lint findings.
    std::string summary() const;
};

/// Thread-safe cached verdict for `schedule` (canonical TraceDims). Search
/// failure or certificate rejection yields group_parallel() == false — the
/// frame-per-lane verdict from classify_schedule is unaffected.
const TransformVerdict& transform_schedule(core::Schedule schedule);

/// Convenience for the engine layer and bench: native or certified.
bool group_parallel_supported(core::Schedule schedule);

}  // namespace dvbs2::analysis::ir
