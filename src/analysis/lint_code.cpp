#include "analysis/lint_code.hpp"

#include <set>
#include <string>
#include <vector>

namespace dvbs2::analysis {

namespace {

std::string row_loc(std::size_t g) { return "row " + std::to_string(g); }

std::string entry_loc(std::size_t g, std::size_t l, std::uint32_t x) {
    return "row " + std::to_string(g) + " entry " + std::to_string(l) + " (x=" +
           std::to_string(x) + ")";
}

/// Basic parameter algebra; returns false when later table rules cannot run.
bool lint_params(const code::CodeParams& cp, Report& rep) {
    bool usable = true;
    auto fail = [&](const std::string& msg, const std::string& hint) {
        rep.add("code.params", Severity::Error, "params " + cp.name, msg, hint);
    };
    if (cp.n <= 0 || cp.k <= 0 || cp.k >= cp.n) {
        fail("need 0 < K < N (N=" + std::to_string(cp.n) + ", K=" + std::to_string(cp.k) + ")",
             "use a parameter set from standard_params()/toy_params()");
        return false;
    }
    if (cp.parallelism <= 0 || cp.q <= 0) {
        fail("parallelism and q must be positive", "P=360 and q=(N-K)/P for DVB-S2 codes");
        return false;
    }
    if (cp.q * cp.parallelism != cp.m()) {
        fail("q*P != N-K (" + std::to_string(cp.q) + "*" + std::to_string(cp.parallelism) +
                 " != " + std::to_string(cp.m()) + ")",
             "set q = (N-K)/P with P dividing N-K (Eq. 2)");
        usable = false;
    }
    if (cp.k % cp.parallelism != 0) {
        fail("K not divisible by P, information bits do not form whole groups",
             "choose K as a multiple of the parallelism");
        usable = false;
    }
    if (cp.n_hi < 0 || cp.n_hi > cp.k || cp.n_hi % cp.parallelism != 0) {
        fail("n_hi must be a group-aligned count in [0, K]",
             "align the degree boundary to a multiple of P");
        usable = false;
    }
    if (cp.deg_hi < 2 || cp.deg_lo < 2) {
        fail("information-node degrees must be >= 2", "DVB-S2 uses deg_lo=3");
        usable = false;
    }
    if (cp.check_deg < 3) {
        fail("check degree must be >= 3 (two zigzag edges + information edges)",
             "use the per-rate check degree of paper Table 1");
        usable = false;
    }
    // Eq. 6: E_IN = P*q*(check_deg-2) is what balances the per-FU load.
    if (usable && cp.e_in() != static_cast<long long>(cp.parallelism) * cp.q * (cp.check_deg - 2)) {
        fail("degree profile violates Eq. 6: E_IN=" + std::to_string(cp.e_in()) +
                 " but P*q*(check_deg-2)=" +
                 std::to_string(static_cast<long long>(cp.parallelism) * cp.q * (cp.check_deg - 2)),
             "adjust n_hi/deg_hi so the edge total matches the check-node capacity");
        usable = false;
    }
    return usable;
}

}  // namespace

Report lint_code_structure(const code::CodeParams& cp, const code::IraTables& tables) {
    Report rep;
    if (!lint_params(cp, rep)) return rep;

    const int m = cp.m();
    const int q = cp.q;
    const int p = cp.parallelism;

    // Row count and per-row degrees against the declared profile.
    const auto groups = static_cast<std::size_t>(cp.groups());
    if (tables.rows.size() != groups)
        rep.add("code.row-count", Severity::Error, "table",
                "table has " + std::to_string(tables.rows.size()) + " rows, expected K/P=" +
                    std::to_string(groups),
                "one row per group of P information bits");
    const auto groups_hi = static_cast<std::size_t>(cp.groups_hi());
    for (std::size_t g = 0; g < tables.rows.size(); ++g) {
        const std::size_t want =
            g < groups_hi ? static_cast<std::size_t>(cp.deg_hi) : static_cast<std::size_t>(cp.deg_lo);
        if (g < groups && tables.rows[g].size() != want)
            rep.add("code.degree-profile", Severity::Error, row_loc(g),
                    "row degree " + std::to_string(tables.rows[g].size()) + " != declared " +
                        std::to_string(want),
                    "high-degree groups come first (n_hi/P rows of deg_hi, then deg_lo)");
    }

    // Entry range and duplicates; out-of-range entries are excluded from the
    // arithmetic rules below so one corruption does not cascade.
    bool ranges_ok = true;
    for (std::size_t g = 0; g < tables.rows.size(); ++g) {
        std::set<std::uint32_t> seen;
        for (std::size_t l = 0; l < tables.rows[g].size(); ++l) {
            const std::uint32_t x = tables.rows[g][l];
            if (x >= static_cast<std::uint32_t>(m)) {
                rep.add("code.entry-range", Severity::Error, entry_loc(g, l, x),
                        "address beyond N-K=" + std::to_string(m),
                        "accumulator addresses live in [0, N-K)");
                ranges_ok = false;
                continue;
            }
            if (!seen.insert(x).second)
                rep.add("code.duplicate-entry", Severity::Error, entry_loc(g, l, x),
                        "address repeated within the row — a double edge between one "
                        "information group and one check-node group",
                        "every address in a row must be distinct");
        }
    }
    if (!ranges_ok) return rep;

    // Check regularity: residue class r must hold exactly check_deg-2
    // entries, which is what turns the slot schedule into q uniform runs.
    std::vector<long long> residue_count(static_cast<std::size_t>(q), 0);
    for (const auto& row : tables.rows)
        for (std::uint32_t x : row) ++residue_count[static_cast<std::size_t>(x % static_cast<std::uint32_t>(q))];
    const long long kc = cp.check_deg - 2;
    for (int r = 0; r < q; ++r) {
        if (residue_count[static_cast<std::size_t>(r)] != kc)
            rep.add("code.check-regularity", Severity::Error, "residue " + std::to_string(r),
                    "class holds " + std::to_string(residue_count[static_cast<std::size_t>(r)]) +
                        " entries, expected check_deg-2=" + std::to_string(kc),
                    "rebalance entries across residue classes mod q");
    }

    // Group-shift legality (Eq. 2): expanding entry x over the P lanes must
    // visit check nodes of one common residue, one per functional unit.
    for (std::size_t g = 0; g < tables.rows.size(); ++g) {
        for (std::size_t l = 0; l < tables.rows[g].size(); ++l) {
            const auto x = static_cast<long long>(tables.rows[g][l]);
            const long long r = x % q;
            std::vector<char> fu_seen(static_cast<std::size_t>(p), 0);
            bool ok = true;
            for (int i = 0; i < p && ok; ++i) {
                const long long c = (x + static_cast<long long>(i) * q) % m;
                if (c % q != r) ok = false;
                else fu_seen[static_cast<std::size_t>(c / q)] = 1;
            }
            for (int f = 0; f < p && ok; ++f)
                if (!fu_seen[static_cast<std::size_t>(f)]) ok = false;
            if (!ok)
                rep.add("code.group-shift", Severity::Error,
                        entry_loc(g, l, tables.rows[g][l]),
                        "the P expanded edges are not one cyclic shift over the functional "
                        "units (Eq. 2 broken)",
                        "requires q*P = N-K so that +q steps enumerate the FUs");
        }
    }

    // Girth-4 inside the information part (collision-key count shared with
    // the generator) ...
    const long long cycles = code::count_information_4cycles(cp, tables);
    if (cycles != 0)
        rep.add("code.girth4-info", Severity::Error, "table",
                std::to_string(cycles) + " length-4 cycle(s) in the information part",
                "regenerate with the constrained generator or repair the colliding rows");

    // ... and through the zigzag chain: x and x+1 (mod N-K) in one row puts
    // an information bit on two chain-adjacent check nodes, closing a
    // 4-cycle with the parity bit between them.
    for (std::size_t g = 0; g < tables.rows.size(); ++g) {
        const auto& row = tables.rows[g];
        for (std::size_t a = 0; a < row.size(); ++a) {
            for (std::size_t b = a + 1; b < row.size(); ++b) {
                const auto d = static_cast<long long>(row[a]) - static_cast<long long>(row[b]);
                const long long dm = ((d % m) + m) % m;
                if (dm == 1 || dm == m - 1)
                    rep.add("code.girth4-zigzag", Severity::Error,
                            entry_loc(g, b, row[b]),
                            "chain-adjacent to entry " + std::to_string(a) + " (x=" +
                                std::to_string(row[a]) + "): 4-cycle through parity bit",
                            "keep per-row addresses at chain distance >= 2");
            }
        }
    }

    return rep;
}

Report lint_code_structure(const code::CodeParams& params) {
    return lint_code_structure(params, code::generate_tables(params));
}

}  // namespace dvbs2::analysis
