// Rule family `code.*`: structural lint of an IRA code table against its
// declared parameters — the invariants of paper Sec. 2/3 that the whole
// architecture is built on, provable from the (params, tables) pair alone,
// BEFORE a Dvbs2Code is constructed (construction throws on violations; the
// lint explains them instead).
//
// Rules:
//   code.params           N/K/P/q consistency and Eq. 6 edge balance
//   code.row-count        number of table rows != K/P groups
//   code.degree-profile   row degrees disagree with the (deg_hi, deg_lo)
//                         profile of the standard's parameter set
//   code.entry-range      accumulator address outside [0, N-K)
//   code.duplicate-entry  repeated address in one row (a double edge)
//   code.check-regularity residue class r mod q does not hold exactly
//                         check_deg-2 entries (breaks the slot schedule)
//   code.group-shift      a group's P expanded edges are not one cyclic
//                         shift of a base edge (Eq. 2 legality)
//   code.girth4-info      4-cycle inside the information part
//   code.girth4-zigzag    row contains chain-adjacent addresses x, x±1
//                         (a 4-cycle through the zigzag chain)
#pragma once

#include "analysis/diag.hpp"
#include "code/params.hpp"
#include "code/tables.hpp"

namespace dvbs2::analysis {

/// Lints `tables` against `params`. Never throws on bad input — every
/// violation becomes a Diagnostic. Rules that would be meaningless under an
/// earlier failure (e.g. girth counting with q <= 0) are skipped.
Report lint_code_structure(const code::CodeParams& params, const code::IraTables& tables);

/// Convenience: generates the tables for `params` first (the shipped-table
/// path used by the CLI).
Report lint_code_structure(const code::CodeParams& params);

}  // namespace dvbs2::analysis
