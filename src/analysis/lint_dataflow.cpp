#include "analysis/lint_dataflow.hpp"

#include <string>

#include "analysis/ir/analyses.hpp"
#include "analysis/lint_memory.hpp"

namespace dvbs2::analysis {

namespace {

std::string slot_location(int position) {
    return position >= 0 ? "slot " + std::to_string(position) : "check phase";
}

void report_slot_issues(Report& rep, const std::vector<ir::SlotIssue>& issues) {
    using ir::SlotIssueKind;
    for (const ir::SlotIssue& si : issues) {
        switch (si.kind) {
            case SlotIssueKind::AddrRange:
                rep.add("schedule.dataflow.range", Severity::Error, slot_location(si.position),
                        "read address " + std::to_string(si.addr) + " outside the message RAM",
                        "rebuild the model from a valid mapping");
                break;
            case SlotIssueKind::UnitRange:
                rep.add("schedule.dataflow.range", Severity::Error, slot_location(si.position),
                        "local check node " + std::to_string(si.unit) + " outside [0, q)",
                        "rebuild the model from a valid mapping");
                break;
            case SlotIssueKind::ReadCount:
                rep.add("schedule.dataflow.read-once", Severity::Error,
                        "address " + std::to_string(si.addr),
                        "RAM word read " + std::to_string(si.count) +
                            " times in one check phase (in-place c2v/v2c needs exactly one)",
                        "every address must appear in exactly one ROM slot");
                break;
            case SlotIssueKind::UseBeforeDef:
                rep.add("schedule.dataflow.order", Severity::Error, slot_location(si.position),
                        "local CN " + std::to_string(si.unit) + " completes before CN " +
                            std::to_string(si.other) +
                            ": its zigzag forward input is used before it is defined",
                        "slot runs must sweep local CNs 0..q-1 in order");
                break;
            case SlotIssueKind::SerialOverlap:
                rep.add("schedule.dataflow.fu-serial", Severity::Error, slot_location(si.position),
                        "slots of local CN " + std::to_string(si.unit) +
                            " interleave with the open accumulation window of CN " +
                            std::to_string(si.other),
                        "a serial functional unit accumulates one CN at a time");
                break;
        }
    }
}

ir::RamPhasePlan to_ram_plan(const AccessPlan& plan) {
    ir::RamPhasePlan out;
    out.read_addr.assign(plan.read_addr.begin(), plan.read_addr.end());
    out.write_ready.reserve(plan.ready_writes.size());
    for (const auto& cycle : plan.ready_writes)
        out.write_ready.emplace_back(cycle.begin(), cycle.end());
    return out;
}

void report_drain(Report& rep, const char* phase, const ir::RamDrainStats& st, int buffer_depth) {
    const std::string loc = std::string(phase) + " phase";
    if (st.peak_pending > buffer_depth)
        rep.add("schedule.dataflow.ports-overflow", Severity::Error, loc,
                "drained access plan needs " + std::to_string(st.peak_pending) +
                    " buffer words but the design provides " + std::to_string(buffer_depth),
                "deepen the buffer or re-anneal the address assignment");
    else
        rep.add("schedule.dataflow.ports", Severity::Note, loc,
                "port drain: peak " + std::to_string(st.peak_pending) + " of " +
                    std::to_string(buffer_depth) + " buffer words, " +
                    std::to_string(st.blocked_events) + " deferred writes, " +
                    std::to_string(st.cycles) + " cycles (" + std::to_string(st.read_cycles) +
                    " reads)");
}

std::string schedule_location(core::Schedule s) {
    return "schedule " + std::string(core::to_string(s));
}

}  // namespace

Report lint_dataflow(const ScheduleModel& model, const DataflowOptions& opts) {
    Report rep;
    if (model.q <= 0 || model.slots_per_cn <= 0 || model.ram_words <= 0 || model.slots.empty() ||
        opts.memory.num_banks < 2 || opts.memory.max_writes_per_cycle < 1 ||
        opts.memory.pipeline_latency < 0 || opts.buffer_depth < 0) {
        rep.add("schedule.dataflow.config", Severity::Error, "schedule model",
                "degenerate model or memory configuration — nothing to prove",
                "build the model from a valid mapping");
        return rep;
    }

    std::vector<ir::SlotOp> ops;
    ops.reserve(model.slots.size());
    for (const arch::RomSlot& s : model.slots) ops.push_back(ir::SlotOp{s.addr, s.local_cn});
    const ir::SlotStreamDims dims{model.q, model.slots_per_cn, model.ram_words};
    const auto issues = ir::verify_slot_stream(ops, dims);
    report_slot_issues(rep, issues);
    if (issues.empty())
        rep.add("schedule.dataflow.read-once", Severity::Note, "check phase",
                "all " + std::to_string(model.ram_words) +
                    " RAM words read exactly once; chain order and serial-FU windows verified");

    const ir::RamDrainStats check =
        ir::drain_ram(to_ram_plan(enumerate_check_phase(model, opts.memory)),
                      opts.memory.num_banks, opts.memory.max_writes_per_cycle);
    const ir::RamDrainStats variable =
        ir::drain_ram(to_ram_plan(enumerate_variable_phase(model, opts.memory)),
                      opts.memory.num_banks, opts.memory.max_writes_per_cycle);
    report_drain(rep, "check", check, opts.buffer_depth);
    report_drain(rep, "variable", variable, opts.buffer_depth);
    return rep;
}

Report lint_dataflow(const code::Dvbs2Code& code, const arch::HardwareMapping& mapping,
                     const DataflowOptions& opts) {
    Report rep = lint_dataflow(make_schedule_model(mapping), opts);

    ir::TraceDims dims;
    dims.parallelism = code.params().parallelism;
    dims.q = code.params().q;
    dims.check_in_degree = code.check_in_degree();
    dims.iterations = 3;  // enough for a steady-state middle iteration
    dims.num_info_nodes = code.k();
    dims.edge_variable.resize(static_cast<std::size_t>(code.e_in()));
    for (long long e = 0; e < code.e_in(); ++e)
        dims.edge_variable[static_cast<std::size_t>(e)] = code.edge_variable(e);

    const ir::Trace trace = ir::build_schedule_trace(opts.schedule, dims);
    const ir::ParallelismReport par = ir::analyze_parallelism(trace);
    for (const ir::PhaseParallelism& pp : par.phases)
        rep.add("schedule.dataflow.parallelism", Severity::Note,
                schedule_location(opts.schedule) + ", " + pp.name + " phase",
                std::to_string(pp.units) + " units in " + std::to_string(pp.levels) +
                    " dependence levels; widest provably parallel group " +
                    std::to_string(pp.max_group) + " units");

    const ir::ScheduleClass& cls = ir::classify_schedule(opts.schedule);
    rep.add("schedule.dataflow.simd-legal", Severity::Note, schedule_location(opts.schedule),
            cls.group_parallel_legal
                ? std::string("proven legal for the group-parallel SIMD backend (lockstep "
                              "lanes); frame-per-lane batching ") +
                      (cls.frame_per_lane_legal ? "legal (all state frame-local)" : "illegal")
                : "group-parallel SIMD illegal: " + cls.group_parallel_obstruction +
                      "; frame-per-lane batching " +
                      (cls.frame_per_lane_legal ? "legal (all state frame-local)" : "illegal"));

    const ir::LivenessReport live = ir::analyze_liveness(trace);
    const ir::LivenessReport flood =
        ir::analyze_liveness(ir::build_schedule_trace(core::Schedule::TwoPhase, dims));
    std::string msg = "peak live words: parity " + std::to_string(live.parity_words()) +
                      " (fwd " + std::to_string(live.peak(ir::Space::ZigzagFwd)) + ", bwd " +
                      std::to_string(live.peak(ir::Space::ZigzagBwd)) + ", map " +
                      std::to_string(live.peak(ir::Space::MapFwd)) + ", snapshot " +
                      std::to_string(live.peak(ir::Space::UpSnapshot)) + "), messages " +
                      std::to_string(live.message_words()) + "; two-phase flooding reference " +
                      std::to_string(flood.parity_words());
    // ZigzagForward keeps m+1 words against flooding's 2m-1: the Sec. 4
    // halving, stated only when the derived numbers actually show it.
    if (2 * live.parity_words() <= flood.parity_words() + 3)
        msg += " — zigzag halving verified (" + std::to_string(live.parity_words()) + " vs " +
               std::to_string(flood.parity_words()) + ")";
    rep.add("schedule.dataflow.liveness", Severity::Note, schedule_location(opts.schedule), msg);

    // The trace rules above are schedule properties; whether the configured
    // algorithm can consume this schedule is a separate derived verdict
    // (classify_algorithm), so the family never silently assumes min-sum.
    const ir::AlgorithmClass& alg = ir::classify_algorithm(opts.algorithm);
    const std::string alg_loc =
        std::string("algorithm=") + core::to_string(opts.algorithm) + ", " +
        schedule_location(opts.schedule);
    if (alg.supports(opts.schedule)) {
        rep.add("schedule.dataflow.algorithm", Severity::Note, alg_loc,
                std::string("algorithm ") + core::to_string(opts.algorithm) +
                    " runs this schedule; SIMD backend " +
                    (alg.simd_supported ? "implemented (lane-mode verdicts above apply)"
                                        : "unavailable: " + alg.simd_obstruction));
    } else {
        rep.add("schedule.dataflow.algorithm", Severity::Error, alg_loc,
                std::string("algorithm ") + core::to_string(opts.algorithm) +
                    " cannot run this schedule: " + alg.obstruction(opts.schedule),
                "choose a schedule classify_algorithm marks supported for this algorithm "
                "(e.g. two-phase flooding for wbf)");
    }
    return rep;
}

}  // namespace dvbs2::analysis
