// Rule family `schedule.dataflow.*`: generic dataflow proofs over the
// schedule IR (src/analysis/ir/) instead of hand-coded per-rule logic.
//
// Two layers:
//   - Slot-stream rules run over the ScheduleModel's ROM slot order and
//     subsume the hand-coded sched.read-once / sched.zigzag-order checks
//     with def-use reasoning (verify_slot_stream).
//   - Trace rules compile the configured (code, schedule) pair into a
//     def/use trace and report the derived parallelism structure, the SIMD
//     legality verdicts the engine registry consults, and the exact peak
//     message-RAM liveness — including the paper's Sec. 4 claim that the
//     zigzag schedule halves parity-message storage, stated with word
//     counts against the two-phase flooding reference.
//
// Rules:
//   schedule.dataflow.range          slot address or local CN out of range
//   schedule.dataflow.read-once      RAM word read != exactly once per check
//                                    phase (error), or the proof note
//   schedule.dataflow.order          zigzag chain value consumed before the
//                                    producing CN completes
//   schedule.dataflow.fu-serial     two CNs' accumulation windows interleave
//                                    on one serial functional unit
//   schedule.dataflow.ports          (note) per-phase port-drain numbers,
//                                    pinned bit-equal to arch/conflict
//   schedule.dataflow.ports-overflow drain peak exceeds the buffer depth
//   schedule.dataflow.parallelism    (note) per-phase dependence levels and
//                                    maximal parallel groups
//   schedule.dataflow.simd-legal     (note) derived group-parallel and
//                                    frame-per-lane verdicts
//   schedule.dataflow.liveness       (note) exact peak live words per space,
//                                    with the halving comparison
//   schedule.dataflow.algorithm      derived (algorithm, schedule) verdict:
//                                    note when the configured algorithm runs
//                                    the schedule (naming its SIMD verdict
//                                    too), error with the obstruction when it
//                                    cannot — the rule family does not assume
//                                    the min-sum MP family
#pragma once

#include "analysis/diag.hpp"
#include "analysis/lint_schedule.hpp"
#include "arch/conflict.hpp"
#include "code/tanner.hpp"
#include "core/types.hpp"

namespace dvbs2::analysis {

struct DataflowOptions {
    arch::MemoryConfig memory;
    int buffer_depth = 4;  ///< conflict FIFO words the design provides
    core::Schedule schedule = core::Schedule::ZigzagForward;
    /// Decoding algorithm the (schedule, backend) is checked against: the
    /// trace rules above are schedule properties, but the legality verdict
    /// (schedule.dataflow.algorithm) depends on which family consumes them.
    core::Algorithm algorithm = core::Algorithm::MinSum;
};

/// Slot-stream and port-drain rules over a plain-data schedule model
/// (testable with corrupted models, like lint_schedule).
Report lint_dataflow(const ScheduleModel& model, const DataflowOptions& opts);

/// Full pass: model rules plus the trace analyses of the configured
/// schedule built from the real code dimensions.
Report lint_dataflow(const code::Dvbs2Code& code, const arch::HardwareMapping& mapping,
                     const DataflowOptions& opts);

}  // namespace dvbs2::analysis
