#include "analysis/lint_memory.hpp"

#include <deque>
#include <string>

namespace dvbs2::analysis {

AccessPlan enumerate_check_phase(const ScheduleModel& model, const arch::MemoryConfig& cfg) {
    AccessPlan plan;
    plan.read_addr.reserve(model.slots.size());
    for (const auto& s : model.slots) plan.read_addr.push_back(s.addr);

    const int kc = model.slots_per_cn;
    const std::size_t horizon =
        model.slots.size() + static_cast<std::size_t>(cfg.pipeline_latency + kc) + 1;
    plan.ready_writes.assign(horizon, {});
    for (int r = 0; r < model.q; ++r) {
        // The serial FU emits one updated message per cycle; the first one
        // appears pipeline_latency cycles after the run's last read.
        const std::size_t first =
            static_cast<std::size_t>((r + 1) * kc - 1 + cfg.pipeline_latency);
        for (int t = 0; t < kc; ++t) {
            const std::size_t slot = static_cast<std::size_t>(r) * static_cast<std::size_t>(kc) +
                                     static_cast<std::size_t>(t);
            if (slot >= model.slots.size()) break;
            plan.ready_writes[first + static_cast<std::size_t>(t)].push_back(
                model.slots[slot].addr);
        }
    }
    return plan;
}

AccessPlan enumerate_variable_phase(const ScheduleModel& model, const arch::MemoryConfig& cfg) {
    AccessPlan plan;
    plan.read_addr.reserve(static_cast<std::size_t>(model.ram_words));
    for (int a = 0; a < model.ram_words; ++a) plan.read_addr.push_back(a);

    int max_deg = 0;
    for (int d : model.row_degree) max_deg = d > max_deg ? d : max_deg;
    const std::size_t horizon =
        static_cast<std::size_t>(model.ram_words + cfg.pipeline_latency + max_deg + 1);
    plan.ready_writes.assign(horizon, {});
    for (std::size_t g = 0; g < model.row_base.size(); ++g) {
        const int base = model.row_base[g];
        const int deg = model.row_degree[g];
        const std::size_t first = static_cast<std::size_t>(base + deg - 1 + cfg.pipeline_latency);
        for (int l = 0; l < deg; ++l)
            plan.ready_writes[first + static_cast<std::size_t>(l)].push_back(base + l);
    }
    return plan;
}

ConflictProof prove_plan(const AccessPlan& plan, const arch::MemoryConfig& cfg) {
    ConflictProof proof;
    std::deque<int> pending;
    std::size_t cycle = 0;
    const auto bank_of = [&](int addr) { return addr % cfg.num_banks; };

    const auto step = [&](bool has_read, int read_bank) {
        if (cycle < plan.ready_writes.size())
            for (int a : plan.ready_writes[cycle]) pending.push_back(a);
        if (static_cast<int>(pending.size()) > proof.peak_pending)
            proof.peak_pending = static_cast<int>(pending.size());

        int issued = 0;
        std::vector<char> busy(static_cast<std::size_t>(cfg.num_banks), 0);
        if (has_read) busy[static_cast<std::size_t>(read_bank)] = 1;
        for (auto it = pending.begin();
             it != pending.end() && issued < cfg.max_writes_per_cycle;) {
            const int b = bank_of(*it);
            if (!busy[static_cast<std::size_t>(b)]) {
                busy[static_cast<std::size_t>(b)] = 1;
                it = pending.erase(it);
                ++issued;
            } else {
                ++proof.blocked_events;
                ++it;
            }
        }
        ++cycle;
    };

    for (int addr : plan.read_addr) step(/*has_read=*/true, bank_of(addr));
    while (cycle < plan.ready_writes.size() || !pending.empty()) step(/*has_read=*/false, 0);
    proof.cycles = static_cast<int>(cycle);
    return proof;
}

Report lint_memory(const ScheduleModel& model, const arch::MemoryConfig& cfg, int buffer_depth) {
    Report rep;
    if (cfg.num_banks < 2 || cfg.max_writes_per_cycle < 1 || cfg.pipeline_latency < 0 ||
        buffer_depth < 0) {
        rep.add("mem.config", Severity::Error, "memory config",
                "need num_banks >= 2, max_writes_per_cycle >= 1, pipeline_latency >= 0, "
                "buffer_depth >= 0",
                "the paper's design point is 4 banks, 2 write ports");
        return rep;
    }
    if (model.ram_words <= 0 || model.slots.empty()) {
        rep.add("mem.config", Severity::Error, "schedule model",
                "empty schedule — nothing to prove", "build the model from a valid mapping");
        return rep;
    }

    const ConflictProof check = prove_plan(enumerate_check_phase(model, cfg), cfg);
    const ConflictProof variable = prove_plan(enumerate_variable_phase(model, cfg), cfg);

    const auto judge = [&](const char* phase, const ConflictProof& proof) {
        if (proof.peak_pending > buffer_depth)
            rep.add("mem.conflict-overflow", Severity::Error, std::string(phase) + " phase",
                    "static peak conflict count " + std::to_string(proof.peak_pending) +
                        " exceeds the configured buffer depth " + std::to_string(buffer_depth),
                    "deepen the buffer or re-anneal the address assignment");
        else
            rep.add("mem.conflict-proof", Severity::Note, std::string(phase) + " phase",
                    "peak " + std::to_string(proof.peak_pending) + " of " +
                        std::to_string(buffer_depth) + " buffer words (" +
                        std::to_string(proof.blocked_events) + " deferred writes over " +
                        std::to_string(proof.cycles) + " cycles)");
    };
    judge("check", check);
    judge("variable", variable);
    return rep;
}

Report lint_memory(const arch::HardwareMapping& mapping, const arch::MemoryConfig& cfg,
                   int buffer_depth) {
    return lint_memory(make_schedule_model(mapping), cfg, buffer_depth);
}

}  // namespace dvbs2::analysis
