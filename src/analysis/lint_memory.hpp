// Rule family `mem.*`: static single-port RAM conflict proof (paper Sec. 4,
// Fig. 5).
//
// The message RAM is partitioned into num_banks single-port RAMs by the low
// address bits. The analyzer enumerates, purely from the address assignment
// and the fixed phase schedules, every cycle's port demands: the one read
// (whose bank is busy that cycle) and the write-backs that become ready
// (one per cycle per serial functional unit, pipeline_latency cycles after
// a node's last read). Running the deterministic FIFO-with-lookahead drain
// policy over that enumeration yields the exact peak number of words that
// must wait in the conflict buffer — the same number the dynamic simulator
// (arch/conflict.hpp) measures, but derived without decoding a single
// frame. The proof obligation is peak <= buffer_depth for both phases.
//
// Rules:
//   mem.config             degenerate memory configuration
//   mem.conflict-overflow  static peak conflict count exceeds the
//                          configured buffer depth
//   mem.conflict-proof     (note) the proven per-phase peaks and margins
#pragma once

#include <vector>

#include "analysis/diag.hpp"
#include "analysis/lint_schedule.hpp"
#include "arch/conflict.hpp"

namespace dvbs2::analysis {

/// Statically enumerated memory traffic of one phase.
struct AccessPlan {
    std::vector<int> read_addr;                  ///< cycle t reads read_addr[t]
    std::vector<std::vector<int>> ready_writes;  ///< per cycle, write addresses
                                                 ///< leaving the FU pipelines
};

/// Check-phase traffic: reads follow the ROM slot order; the check_deg-2
/// write-backs of local CN r leave the pipeline one per cycle starting
/// pipeline_latency cycles after the run's last read.
AccessPlan enumerate_check_phase(const ScheduleModel& model, const arch::MemoryConfig& cfg);

/// Variable-phase traffic: reads sweep addresses 0..W-1; a group's
/// write-backs start pipeline_latency cycles after its last address was
/// read, one per cycle.
AccessPlan enumerate_variable_phase(const ScheduleModel& model, const arch::MemoryConfig& cfg);

/// Exact outcome of draining an access plan through the conflict buffer.
struct ConflictProof {
    int peak_pending = 0;          ///< words simultaneously waiting (buffer depth needed)
    long long blocked_events = 0;  ///< write attempts deferred by a busy bank
    int cycles = 0;                ///< cycles until the buffer drains empty
};

/// Runs the deterministic drain recurrence: per cycle at most one access per
/// bank (the read's bank is consumed by the read) and at most
/// max_writes_per_cycle writes, taken FIFO-with-lookahead from the pending
/// queue — the paper's small-CAM buffer policy.
ConflictProof prove_plan(const AccessPlan& plan, const arch::MemoryConfig& cfg);

/// Lints both phases of `model` against `cfg` and the configured
/// `buffer_depth`; attaches the proof numbers as notes.
Report lint_memory(const ScheduleModel& model, const arch::MemoryConfig& cfg, int buffer_depth);

/// Convenience for the real artifact.
Report lint_memory(const arch::HardwareMapping& mapping, const arch::MemoryConfig& cfg,
                   int buffer_depth);

}  // namespace dvbs2::analysis
