#include "analysis/lint_range.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/mp_decoder.hpp"  // kMaxCheckDegree, the datapath buffer bound
#include "util/math.hpp"

namespace dvbs2::analysis {

namespace {

constexpr long long kWideCapacity = std::numeric_limits<std::int32_t>::max();

/// Magnitude of the correction LUT at index 0 — its maximum, since
/// log1p(exp(-x)) is decreasing. Mirrors BoxplusTable's construction.
long long corr_peak(const quant::QuantSpec& spec) {
    return static_cast<long long>(
        std::nearbyint(std::log1p(1.0) / spec.step()));
}

}  // namespace

RangeAnalysis analyze_fixed_point_range(const code::CodeParams& cp,
                                        const core::DecoderConfig& cfg,
                                        const quant::QuantSpec& spec) {
    RangeAnalysis out;
    Report& rep = out.report;
    const std::string qloc = "quantizer " + std::to_string(spec.total_bits) + "." +
                             std::to_string(spec.frac_bits);

    // --- quantizer legality (everything below divides by step or shifts by
    // total_bits, so these are hard gates) ---
    if (spec.total_bits < 2 || spec.total_bits > 31) {
        rep.add("range.quantizer-degenerate", Severity::Error, qloc,
                "total width must be in [2, 31] (sign + magnitude inside a 32-bit lane)",
                "the paper's design points are 6 and 5 bits");
        return out;
    }
    if (spec.frac_bits < 0 || spec.frac_bits >= spec.total_bits) {
        rep.add("range.quantizer-degenerate", Severity::Error, qloc,
                "fractional bits must be in [0, total_bits)",
                "kQuant6 uses 2 fractional bits");
        return out;
    }
    if (cfg.rule == core::CheckRule::Exact && spec.total_bits > 16)
        rep.add("range.quantizer-degenerate", Severity::Error, qloc,
                "the correction-LUT boxplus supports at most 16-bit messages "
                "(table of 2^(w+1) entries)",
                "use a min-sum rule for wider messages");
    if (spec.max_value() < 1.0)
        rep.add("range.quantizer-degenerate", Severity::Warning, qloc,
                "largest representable LLR is below 1.0 — every moderately confident "
                "channel value saturates immediately",
                "reserve more integer bits");
    if (spec.max_value() > util::kLlrClamp)
        rep.add("range.clamp-mismatch", Severity::Warning, qloc,
                "representable range exceeds the float reference clamp of ±30: the "
                "fixed-point decoder can hold beliefs the reference cannot",
                "keep max_value() <= 30 for bit-exactness studies against the float model");

    if (cp.check_deg > core::kMaxCheckDegree)
        rep.add("range.check-degree-cap", Severity::Error, "params " + cp.name,
                "check degree " + std::to_string(cp.check_deg) +
                    " exceeds the datapath buffer bound " +
                    std::to_string(core::kMaxCheckDegree),
                "raise core::kMaxCheckDegree with the hardware FU depth");

    // --- algorithm scope gate ---
    // The stage table below hand-models the MIN-SUM datapath (Eq. 4 sums,
    // zigzag adds, the check combine/finalize). Running it for another
    // algorithm would report a clean bill for stages that decoder does not
    // even have; route those configs to the IR-level certifier instead of
    // silently assuming min-sum.
    if (cfg.algorithm != core::Algorithm::MinSum) {
        rep.add("range.algorithm-scope", Severity::Note, qloc,
                std::string("the legacy stage table models the min-sum datapath only; "
                            "algorithm=") +
                    core::to_string(cfg.algorithm) +
                    " is certified per-event by the range.ir.* family",
                "see range.ir.certificate / range.ir.overflow for the verdict");
        return out;
    }

    // --- worst-case interval propagation ---
    // Every exchanged message and channel value is saturated to R = max_raw,
    // so R is the interval bound entering each stage; stages then grow it by
    // the stage's arithmetic before the next saturation point.
    const long long R = spec.max_raw();
    int deg_max = cp.deg_hi > cp.deg_lo ? cp.deg_hi : cp.deg_lo;
    if (deg_max < 2) deg_max = 2;

    const auto stage = [&](std::string name, long long worst, long long cap) {
        out.stages.push_back({std::move(name), worst, cap});
    };
    stage("channel-quantize", R, R);
    // Eq. 4: total = ch + sum of deg c2v messages in the wide accumulator.
    stage("vn-accumulate", (static_cast<long long>(deg_max) + 1) * R, kWideCapacity);
    // Extrinsic extraction subtracts one message from the total.
    stage("vn-extrinsic", (static_cast<long long>(deg_max) + 2) * R, kWideCapacity);
    // Zigzag chain input ch_p + d_{j-1} (and the two-phase parity update).
    stage("zigzag-chain-add", 2 * R, kWideCapacity);
    // Posterior of a parity bit: ch + down + up.
    stage("parity-posterior", 3 * R, kWideCapacity);
    if (cfg.schedule == core::Schedule::Layered) {
        // Layered totals carry ch + deg messages; gathering subtracts one.
        stage("layered-posterior", (static_cast<long long>(deg_max) + 1) * R, kWideCapacity);
        stage("layered-gather", (static_cast<long long>(deg_max) + 2) * R, kWideCapacity);
    }
    // Check-node pairwise combine before its saturation: min(|a|,|b|) plus
    // the correction terms for the exact rule, plain min for min-sum.
    const bool exact = cfg.rule == core::CheckRule::Exact;
    stage("cn-combine", exact ? R + corr_peak(spec) : R, kWideCapacity);

    const long long norm_num = std::lround(cfg.normalization * 16.0);
    if (cfg.rule == core::CheckRule::NormalizedMinSum) {
        // finalize: (v*norm_num + 8) >> 4, saturated afterwards.
        stage("finalize-normalize", R * (norm_num < 0 ? -norm_num : norm_num) + 8,
              kWideCapacity);
        if (norm_num <= 0)
            rep.add("range.norm-degenerate", Severity::Error, "normalization",
                    "factor " + std::to_string(cfg.normalization) +
                        " quantizes to norm_num=" + std::to_string(norm_num) +
                        ": every check message becomes 0 (or flips sign)",
                    "use a factor in [1/16, 1], e.g. the paper-typical 0.75");
        else if (norm_num > 16)
            rep.add("range.norm-degenerate", Severity::Warning, "normalization",
                    "factor > 1 amplifies messages into permanent saturation",
                    "normalized min-sum uses factors <= 1");
    }
    if (cfg.rule == core::CheckRule::OffsetMinSum) {
        const quant::QLLR off = quant::quantize(cfg.offset, spec);
        // finalize: |v| - off, NOT saturated on the way out — a negative
        // offset grows magnitudes beyond the message range.
        stage("finalize-offset", R - static_cast<long long>(off), R);
        if (off >= spec.max_raw())
            rep.add("range.offset-saturation", Severity::Error, "offset",
                    "offset " + std::to_string(cfg.offset) + " quantizes to " +
                        std::to_string(off) + " >= max_raw=" + std::to_string(spec.max_raw()) +
                        ": every check message is zeroed, the decoder cannot correct",
                    "choose an offset well below the representable maximum " +
                        std::to_string(spec.max_value()));
    }

    for (const RangeStage& s : out.stages) {
        if (!s.fits())
            rep.add("range.accumulator-overflow", Severity::Error, "stage " + s.stage,
                    "worst-case magnitude " + std::to_string(s.worst_magnitude) +
                        " exceeds the stage capacity " + std::to_string(s.capacity),
                    "narrow the message quantizer or lower the maximum node degree");
    }
    return out;
}

Report lint_fixed_point(const code::CodeParams& params, const core::DecoderConfig& cfg,
                        const quant::QuantSpec& spec) {
    return analyze_fixed_point_range(params, cfg, spec).report;
}

}  // namespace dvbs2::analysis
