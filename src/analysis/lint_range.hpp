// Rule family `range.*`: worst-case fixed-point range analysis of the
// MIN-SUM decoder datapath (paper Sec. 2.1, the 5/6-bit message
// quantization), kept as the hand-maintained cross-check tier behind the
// per-event IR certifier (lint_range_ir.hpp, rule family `range.ir.*`).
//
// The analyzer propagates worst-case magnitude intervals through every
// datapath stage the min-sum decoder executes — channel quantization, the
// wide variable-node accumulation of Eq. 4, the zigzag chain adds, the
// layered posterior totals, the check-node combine and the finalize step of
// the selected check rule — and proves that no stage can exceed its
// hardware register capacity for ANY input, and that no rule parameter
// silently saturates the datapath to zero ("saturation ambiguity": a
// decoder that only ever emits 0 still halts, but corrects nothing).
// Configurations whose static worst case exceeds the representable range
// are rejected.
//
// Algorithm scope: the stage table models min-sum only. For algorithm=wbf
// or rhs-bp the family emits the `range.algorithm-scope` note and defers
// the verdict to `range.ir.*`, whose abstract interpreter carries the
// per-algorithm transfer functions — it never silently assumes min-sum.
// The quantizer legality gates (`range.quantizer-degenerate`,
// `range.clamp-mismatch`, `range.check-degree-cap`) run for every
// algorithm; they constrain the word format, not the datapath.
//
// Rules:
//   range.quantizer-degenerate  width/fraction outside the supported space
//   range.accumulator-overflow  a stage's worst case exceeds its capacity
//   range.offset-saturation     offset-min-sum offset zeroes every message
//   range.norm-degenerate       normalization factor quantizes to 0 (or
//                               amplifies, as a warning)
//   range.check-degree-cap      check degree exceeds the datapath buffers
//   range.clamp-mismatch        (warning) quantizer range exceeds the ±30
//                               reference clamp, fixed/float divergence
//   range.algorithm-scope       (note) non-min-sum config routed to the
//                               range.ir.* certifier
#pragma once

#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "code/params.hpp"
#include "core/types.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::analysis {

/// One propagated datapath stage: the proven worst-case raw magnitude and
/// the capacity of the register/accumulator that holds it.
struct RangeStage {
    std::string stage;            ///< datapath point, e.g. "vn-accumulate"
    long long worst_magnitude = 0;
    long long capacity = 0;
    bool fits() const noexcept { return worst_magnitude <= capacity; }
};

/// Full result: the stage table (for reporting/inspection) plus diagnostics.
struct RangeAnalysis {
    std::vector<RangeStage> stages;
    Report report;
};

/// Propagates worst-case intervals for `params` decoded under `cfg` with
/// messages quantized by `spec`. Pure static computation; never throws.
RangeAnalysis analyze_fixed_point_range(const code::CodeParams& params,
                                        const core::DecoderConfig& cfg,
                                        const quant::QuantSpec& spec);

/// Report-only convenience.
Report lint_fixed_point(const code::CodeParams& params, const core::DecoderConfig& cfg,
                        const quant::QuantSpec& spec);

}  // namespace dvbs2::analysis
