#include "analysis/lint_range_ir.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <string>

#include "analysis/ir/analyses.hpp"
#include "analysis/ir/transform.hpp"
#include "analysis/lint_range.hpp"
#include "core/rhs_decoder.hpp"  // kRhsCmax
#include "util/math.hpp"         // kLlrClamp

namespace dvbs2::analysis {

ir::AbsintSpec absint_spec_for(const core::DecoderConfig& cfg, const quant::QuantSpec& spec) {
    // Mirrors core/engine.cpp's absint_spec_of exactly (pinned against
    // core::engine_range_certificate by tests/test_absint.cpp), so a lint
    // verdict and an engine-construction verdict can never diverge.
    ir::AbsintSpec a;
    a.algorithm = cfg.algorithm;
    a.rule = cfg.rule;
    a.max_raw = spec.max_raw();
    a.channel_clamp = cfg.algorithm == core::Algorithm::RhsBp
                          ? std::llround(std::ceil(util::kLlrClamp / spec.step()))
                          : a.max_raw;
    a.corr_peak = cfg.rule == core::CheckRule::Exact
                      ? std::llround(std::nearbyint(std::log1p(1.0) / spec.step()))
                      : 0;
    a.wide_capacity = std::numeric_limits<std::int32_t>::max();
    a.norm_num = std::llround(cfg.normalization * 16.0);
    a.offset_raw = cfg.rule == core::CheckRule::OffsetMinSum
                       ? std::llround(cfg.offset / spec.step())
                       : 0;
    a.wbf_alpha = cfg.wbf_alpha;
    a.rhs_cmax_raw = std::llround(std::ceil(core::kRhsCmax / spec.step()));
    return a;
}

ir::TraceDims range_trace_dims(const code::CodeParams& cp) {
    // The scaled model dims every IR analysis runs at (P=4, q=3), carrying
    // this code's worst-case fan-ins: its check in-degree and one
    // information node of its highest degree. The abstract bounds grow only
    // with per-firing fan-in, never with m or N, so the model covers the
    // full-size code.
    ir::TraceDims d;
    d.check_in_degree = cp.check_deg > 3 ? cp.check_deg - 2 : 1;
    const long long e = d.e_in();
    const long long deg = std::max(cp.deg_hi, cp.deg_lo);
    d.edge_variable.assign(static_cast<std::size_t>(e), 0);
    std::int32_t next = 1;
    for (long long ed = std::min(deg, e); ed < e; ++ed)
        d.edge_variable[static_cast<std::size_t>(ed)] = next++;
    d.num_info_nodes = next;
    return d;
}

namespace {

std::string bounds_summary(const ir::RangeCertificate& cert) {
    std::string s;
    for (int sp = 0; sp < ir::kSpaceCount; ++sp) {
        if (cert.space_bound[static_cast<std::size_t>(sp)] == 0) continue;
        if (!s.empty()) s += ", ";
        s += std::string(ir::to_string(static_cast<ir::Space>(sp))) + "<=" +
             std::to_string(cert.space_bound[static_cast<std::size_t>(sp)]);
    }
    return s.empty() ? std::string("all spaces unused") : s;
}

}  // namespace

RangeIrAnalysis analyze_range_ir(const code::CodeParams& cp, const core::DecoderConfig& cfg,
                                 const quant::QuantSpec& spec) {
    RangeIrAnalysis out;
    Report& rep = out.report;
    const std::string loc = "quantizer " + std::to_string(spec.total_bits) + "." +
                            std::to_string(spec.frac_bits) + " schedule=" +
                            core::to_string(cfg.schedule) + " algorithm=" +
                            core::to_string(cfg.algorithm);

    // Outside the certifiable space the step()/max_raw() arithmetic below
    // is meaningless; range.quantizer-degenerate already carries the error.
    if (spec.total_bits < 2 || spec.total_bits > 31 || spec.frac_bits < 0 ||
        spec.frac_bits >= spec.total_bits) {
        rep.add("range.ir.quantizer", Severity::Note, loc,
                "quantizer is outside the certifiable space; no certificate produced",
                "see range.quantizer-degenerate for the hard error");
        return out;
    }

    // No datapath exists for an algorithm x schedule combination the IR
    // layer rejects; engine validation refuses it with the same obstruction.
    const ir::AlgorithmClass& alg = ir::classify_algorithm(cfg.algorithm);
    if (!alg.supports(cfg.schedule)) {
        rep.add("range.ir.schedule", Severity::Note, loc,
                "algorithm cannot run this schedule (" + alg.obstruction(cfg.schedule) +
                    "); nothing to certify",
                "validate_engine_spec rejects the combination with the same obstruction");
        return out;
    }

    const ir::AbsintSpec aspec = absint_spec_for(cfg, spec);
    const ir::Trace trace = ir::build_schedule_trace(cfg.schedule, range_trace_dims(cp));
    out.certificate = ir::certify_ranges(trace, aspec);
    const ir::RangeCertificate& cert = *out.certificate;
    const ir::RangeCheck chk = ir::check_range_certificate(trace, aspec, cert);
    out.checker_ok = chk.ok;

    if (!chk.ok) {
        // An interpreter/checker disagreement is an analyzer defect: the
        // certificate must never be trusted unchecked.
        std::string what = "independent checker rejected the certificate: " +
                           (chk.rejection ? chk.rejection->reason : std::string("?"));
        if (chk.rejection && chk.rejection->event >= 0)
            what += " at " + ir::describe_event(
                                 trace.events[static_cast<std::size_t>(chk.rejection->event)]);
        rep.add("range.ir.checker", Severity::Error, loc, what,
                "report this as an analyzer defect; the config cannot be certified");
        return out;
    }

    if (!cert.ok) {
        std::string what = "proven bound exceeds capacity: " + cert.offender_stage;
        if (cert.first_offender >= 0)
            what += ", first at " +
                    ir::describe_event(
                        trace.events[static_cast<std::size_t>(cert.first_offender)]);
        rep.add("range.ir.overflow", Severity::Error, loc, what,
                "narrow the message quantizer or lower the maximum node degree");
    } else {
        rep.add("range.ir.certificate", Severity::Note, loc,
                "checker-accepted certificate: " + bounds_summary(cert) + " (fixpoint in " +
                    std::to_string(cert.fixpoint_rounds) + " rounds, " +
                    std::to_string(cert.widenings) + " widenings)",
                "");
    }

    // Cross-check tier: the legacy hand-maintained stage table. For min-sum
    // it must agree with the certificate (subsumption contract); for the
    // other tiers it is algorithm-blind by design and defers to this family.
    if (cfg.algorithm == core::Algorithm::MinSum) {
        const RangeAnalysis legacy = analyze_fixed_point_range(cp, cfg, spec);
        const bool legacy_overflow = !legacy.report.by_rule("range.accumulator-overflow").empty();
        if (legacy_overflow == !cert.ok) {
            rep.add("range.ir.legacy", Severity::Note, loc,
                    std::string("legacy range.* stage table agrees: ") +
                        (cert.ok ? "both clean" : "both overflow"),
                    "");
        } else {
            rep.add("range.ir.legacy", Severity::Error, loc,
                    std::string("verdict diverges from the legacy stage table: certificate ") +
                        (cert.ok ? "clean" : "overflow") + " but legacy " +
                        (legacy_overflow ? "overflow" : "clean"),
                    "report this as an analyzer defect; the two families must agree on "
                    "the min-sum datapath");
        }
    } else {
        rep.add("range.ir.legacy", Severity::Note, loc,
                std::string("legacy range.* family is algorithm-blind for ") +
                    core::to_string(cfg.algorithm) + "; this certificate is the sole verdict",
                "");
    }
    return out;
}

Report lint_range_ir(const code::CodeParams& cp, const core::DecoderConfig& cfg,
                     const quant::QuantSpec& spec) {
    return analyze_range_ir(cp, cfg, spec).report;
}

void render_certificate_json(std::ostream& os, const std::string& target,
                             const core::DecoderConfig& cfg, const quant::QuantSpec& spec,
                             const RangeIrAnalysis& analysis) {
    os << "{\"target\": \"" << target << "\", \"schedule\": \"" << core::to_string(cfg.schedule)
       << "\", \"algorithm\": \"" << core::to_string(cfg.algorithm) << "\", \"quant\": \""
       << spec.total_bits << "." << spec.frac_bits << "\"";
    if (!analysis.certificate) {
        os << ", \"certified\": false}";
        return;
    }
    const ir::RangeCertificate& cert = *analysis.certificate;
    os << ", \"certified\": true, \"ok\": " << (cert.ok ? "true" : "false")
       << ", \"checker_ok\": " << (analysis.checker_ok ? "true" : "false")
       << ", \"fixpoint_rounds\": " << cert.fixpoint_rounds
       << ", \"widenings\": " << cert.widenings << ", \"space_bounds\": {";
    for (int sp = 0; sp < ir::kSpaceCount; ++sp) {
        if (sp != 0) os << ", ";
        os << "\"" << ir::to_string(static_cast<ir::Space>(sp))
           << "\": " << cert.space_bound[static_cast<std::size_t>(sp)];
    }
    os << "}, \"stages\": [";
    for (std::size_t i = 0; i < cert.stages.size(); ++i) {
        const ir::StageBound& s = cert.stages[i];
        if (i != 0) os << ", ";
        os << "{\"stage\": \"" << s.stage << "\", \"worst\": " << s.worst
           << ", \"capacity\": " << s.capacity << ", \"fits\": " << (s.fits() ? "true" : "false")
           << "}";
    }
    os << "], \"first_offender\": " << cert.first_offender << ", \"offender_stage\": \""
       << cert.offender_stage << "\"}";
}

}  // namespace dvbs2::analysis
