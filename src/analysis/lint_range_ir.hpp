// Rule family `range.ir.*`: per-event fixed-point range certification over
// the schedule dataflow IR (analysis/ir/absint.hpp), for all three
// algorithm tiers.
//
// Where the legacy `range.*` family checks a hand-maintained min-sum stage
// table, this family compiles the configured schedule to its Def/Use/Sink
// event trace, runs the interval-domain abstract interpreter over it with
// the algorithm's transfer functions, and reports the machine-checked
// RangeCertificate: per-storage-space and per-stage proven bounds, verified
// independently by check_range_certificate before any verdict is derived.
// The trace dims carry the linted code's worst-case degrees (its check
// in-degree and one information node of its deg_hi), so the certificate
// covers the concrete code; the quantizer and decoder knobs translate to
// the AbsintSpec exactly as core::engine_range_certificate translates them,
// keeping lint verdicts and engine-construction verdicts aligned.
//
// Rules:
//   range.ir.certificate   (note) checker-accepted certificate: the proven
//                          per-space peaks, fixpoint rounds, widenings
//   range.ir.overflow      (error) a proven bound exceeds its capacity; the
//                          message quotes the first offending trace event
//   range.ir.checker       (error) the independent checker rejected the
//                          interpreter's certificate (analyzer defect —
//                          surfaced loudly, never silently trusted)
//   range.ir.schedule      (note) the algorithm cannot run the configured
//                          schedule, so no datapath exists to certify
//   range.ir.quantizer     (note) quantizer outside the certifiable space;
//                          see range.quantizer-degenerate for the error
//   range.ir.legacy        (note/error) cross-check against the legacy
//                          min-sum stage table: note when subsumed, error
//                          on a verdict divergence
#pragma once

#include <iosfwd>
#include <optional>

#include "analysis/diag.hpp"
#include "analysis/ir/absint.hpp"
#include "code/params.hpp"
#include "core/types.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::analysis {

/// Full result: the certificate (when one was produced), the checker
/// verdict, and the derived diagnostics.
struct RangeIrAnalysis {
    std::optional<ir::RangeCertificate> certificate;
    bool checker_ok = false;
    Report report;
};

/// The AbsintSpec this family (and core::engine_range_certificate) derives
/// from a decoder config and quantizer — exposed so tests can pin the two
/// paths against each other.
ir::AbsintSpec absint_spec_for(const core::DecoderConfig& cfg, const quant::QuantSpec& spec);

/// The scaled-model trace dims carrying `params`' worst-case degrees.
ir::TraceDims range_trace_dims(const code::CodeParams& params);

/// Certifies `params` decoded under `cfg` with messages quantized by
/// `spec`. Pure static computation; never throws on overflow (the
/// certificate names the offender), only on malformed inputs the
/// quantizer gate did not cover.
RangeIrAnalysis analyze_range_ir(const code::CodeParams& params, const core::DecoderConfig& cfg,
                                 const quant::QuantSpec& spec);

/// Report-only convenience.
Report lint_range_ir(const code::CodeParams& params, const core::DecoderConfig& cfg,
                     const quant::QuantSpec& spec);

/// Renders one analysis as a JSON object (schedule, algorithm, quantizer,
/// verdicts, space bounds, stage table, offender) — the payload behind
/// `dvbs2_lint --range-cert-json`.
void render_certificate_json(std::ostream& os, const std::string& target,
                             const core::DecoderConfig& cfg, const quant::QuantSpec& spec,
                             const RangeIrAnalysis& analysis);

}  // namespace dvbs2::analysis
