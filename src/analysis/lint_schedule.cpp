#include "analysis/lint_schedule.hpp"

#include <set>
#include <string>
#include <utility>

namespace dvbs2::analysis {

ScheduleModel make_schedule_model(const arch::HardwareMapping& mapping) {
    const auto& cp = mapping.code().params();
    ScheduleModel m;
    m.parallelism = cp.parallelism;
    m.q = cp.q;
    m.slots_per_cn = mapping.slots_per_cn();
    m.ram_words = mapping.ram_words();
    m.slots = mapping.slots();
    m.row_base.reserve(static_cast<std::size_t>(cp.groups()));
    m.row_degree.reserve(static_cast<std::size_t>(cp.groups()));
    for (int g = 0; g < cp.groups(); ++g) {
        m.row_base.push_back(mapping.row_base(g));
        m.row_degree.push_back(g < cp.groups_hi() ? cp.deg_hi : cp.deg_lo);
    }
    return m;
}

Report lint_schedule(const arch::HardwareMapping& mapping) {
    return lint_schedule(make_schedule_model(mapping));
}

namespace {

std::string slot_loc(std::size_t t) { return "slot " + std::to_string(t); }

}  // namespace

Report lint_schedule(const ScheduleModel& m) {
    Report rep;
    if (m.parallelism <= 0 || m.q <= 0 || m.slots_per_cn <= 0 || m.ram_words <= 0) {
        rep.add("sched.slot-count", Severity::Error, "model",
                "degenerate schedule dimensions (P=" + std::to_string(m.parallelism) + ", q=" +
                    std::to_string(m.q) + ", kc=" + std::to_string(m.slots_per_cn) + ", words=" +
                    std::to_string(m.ram_words) + ")",
                "build the model from a valid HardwareMapping");
        return rep;
    }

    const auto expected =
        static_cast<std::size_t>(m.q) * static_cast<std::size_t>(m.slots_per_cn);
    if (m.slots.size() != expected || static_cast<std::size_t>(m.ram_words) != expected)
        rep.add("sched.slot-count", Severity::Error, "rom",
                "schedule has " + std::to_string(m.slots.size()) + " slots over " +
                    std::to_string(m.ram_words) + " RAM words, expected q*(check_deg-2)=" +
                    std::to_string(expected) + " of each",
                "one read cycle per information edge group per check phase (Eq. 6)");

    // Per-slot field legality: realizable shuffle offsets, in-RAM addresses
    // consistent with the row layout.
    const auto groups = static_cast<int>(m.row_base.size());
    for (std::size_t t = 0; t < m.slots.size(); ++t) {
        const arch::RomSlot& s = m.slots[t];
        if (s.shift < 0 || s.shift >= m.parallelism)
            rep.add("sched.shuffle-range", Severity::Error, slot_loc(t),
                    "cyclic shift " + std::to_string(s.shift) + " outside [0, P=" +
                        std::to_string(m.parallelism) + ")",
                    "shift = floor(x/q) of an address x in [0, N-K)");
        if (s.local_cn < 0 || s.local_cn >= m.q)
            rep.add("sched.shuffle-range", Severity::Error, slot_loc(t),
                    "local check index " + std::to_string(s.local_cn) + " outside [0, q=" +
                        std::to_string(m.q) + ")",
                    "local index = x mod q");
        if (s.group < 0 || s.group >= groups || s.entry < 0 ||
            (s.group >= 0 && s.group < groups &&
             s.entry >= m.row_degree[static_cast<std::size_t>(s.group)])) {
            rep.add("sched.addr-consistency", Severity::Error, slot_loc(t),
                    "slot references group " + std::to_string(s.group) + " entry " +
                        std::to_string(s.entry) + " outside the row layout",
                    "group in [0, K/P), entry below the group's degree");
            continue;
        }
        const int want = m.row_base[static_cast<std::size_t>(s.group)] + s.entry;
        if (s.addr != want || s.addr < 0 || s.addr >= m.ram_words)
            rep.add("sched.addr-consistency", Severity::Error, slot_loc(t),
                    "address " + std::to_string(s.addr) + " != row_base+entry=" +
                        std::to_string(want),
                    "addresses are assigned contiguously per group (Fig. 3)");
    }

    // Read-exactly-once: the check phase must consume every RAM word once.
    // The write side follows: each updated word is written back to the
    // address it was read from, so read coverage == write coverage.
    std::vector<int> read_count(static_cast<std::size_t>(m.ram_words), 0);
    for (const auto& s : m.slots)
        if (s.addr >= 0 && s.addr < m.ram_words) ++read_count[static_cast<std::size_t>(s.addr)];
    for (int a = 0; a < m.ram_words; ++a) {
        if (read_count[static_cast<std::size_t>(a)] != 1)
            rep.add("sched.read-once", Severity::Error, "addr " + std::to_string(a),
                    "read " + std::to_string(read_count[static_cast<std::size_t>(a)]) +
                        " times per check phase, must be exactly once",
                    "slot addresses must form a permutation of the RAM");
    }

    // Zigzag sequentiality: slots must sweep local CNs 0,0,..,1,..,q-1 in
    // uniform runs — FU f then processes CNs f*q..(f+1)*q-1 strictly in
    // chain order, which is what legalizes the forward-recursion schedule
    // of paper Fig. 2b.
    if (m.slots.size() == expected) {
        for (std::size_t t = 0; t < m.slots.size(); ++t) {
            const int want_run = static_cast<int>(t) / m.slots_per_cn;
            if (m.slots[t].local_cn != want_run) {
                rep.add("sched.zigzag-order", Severity::Error, slot_loc(t),
                        "serves local CN " + std::to_string(m.slots[t].local_cn) +
                            " inside the run of CN " + std::to_string(want_run),
                        "schedule runs of check_deg-2 slots in ascending local CN order");
                break;  // one finding per sweep; later slots are all shifted
            }
        }

        // Edge coverage inside each run: two slots with the same (group,
        // shift) deliver the same variable to every FU — one edge combined
        // twice, another starved.
        for (int r = 0; r < m.q; ++r) {
            std::set<std::pair<int, int>> seen;
            for (int u = 0; u < m.slots_per_cn; ++u) {
                const std::size_t t = static_cast<std::size_t>(r) *
                                          static_cast<std::size_t>(m.slots_per_cn) +
                                      static_cast<std::size_t>(u);
                if (t >= m.slots.size()) break;
                const arch::RomSlot& s = m.slots[t];
                if (!seen.insert({s.group, s.shift}).second)
                    rep.add("sched.edge-coverage", Severity::Error, slot_loc(t),
                            "run " + std::to_string(r) + " already serves (group=" +
                                std::to_string(s.group) + ", shift=" + std::to_string(s.shift) +
                                "): same message for every FU",
                            "each run must carry check_deg-2 distinct (group, shift) pairs");
            }
        }
    }

    return rep;
}

}  // namespace dvbs2::analysis
