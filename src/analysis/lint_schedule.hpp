// Rule family `sched.*`: legality of the hardware slot schedule and node
// mapping (paper Sec. 3, Fig. 3) — proves that one check phase of the ROM
// schedule reads and writes every message exactly once, keeps the zigzag
// chain strictly sequential per functional unit, and only uses realizable
// shuffle-network offsets.
//
// Rules:
//   sched.slot-count       ROM has != q*(check_deg-2) slots
//   sched.shuffle-range    cyclic-shift offset outside [0, P) or local CN
//                          index outside [0, q)
//   sched.addr-consistency slot address disagrees with row_base+entry or
//                          leaves the RAM
//   sched.read-once        a RAM address read never or more than once per
//                          check phase
//   sched.zigzag-order     slot runs do not sweep local CNs 0..q-1 in
//                          strictly sequential order
//   sched.edge-coverage    two slots of one run carry the same (group,
//                          shift): some edge served twice, another never
//
// The rules operate on a ScheduleModel — a plain-data snapshot of a
// HardwareMapping — so tests can corrupt individual fields and assert the
// exact rule that trips.
#pragma once

#include <vector>

#include "analysis/diag.hpp"
#include "arch/mapping.hpp"

namespace dvbs2::analysis {

/// Plain-data view of a hardware mapping's schedule, sufficient for all
/// sched.* and mem.* rules.
struct ScheduleModel {
    int parallelism = 0;            ///< P functional units / lanes
    int q = 0;                      ///< local check nodes per FU
    int slots_per_cn = 0;           ///< check_deg - 2
    int ram_words = 0;              ///< IN-message RAM words (E_IN / P)
    std::vector<arch::RomSlot> slots;
    std::vector<int> row_base;      ///< RAM base address per group
    std::vector<int> row_degree;    ///< messages (addresses) per group
};

/// Snapshots `mapping` into the plain-data model.
ScheduleModel make_schedule_model(const arch::HardwareMapping& mapping);

/// Lints a schedule model; never throws on bad input.
Report lint_schedule(const ScheduleModel& model);

/// Convenience for the real artifact.
Report lint_schedule(const arch::HardwareMapping& mapping);

}  // namespace dvbs2::analysis
