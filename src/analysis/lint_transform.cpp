#include "analysis/lint_transform.hpp"

#include <string>

#include "analysis/ir/transform.hpp"

namespace dvbs2::analysis {

namespace {

std::string schedule_location(core::Schedule s) {
    return std::string("schedule ") + core::to_string(s);
}

std::string phase_shape(const std::vector<ir::TransformPhase>& phases) {
    std::string out;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (i) out += ", ";
        out += phases[i].name + " " + std::to_string(phases[i].steps) + " steps x " +
               std::to_string(phases[i].max_group) + " wide";
    }
    return out;
}

}  // namespace

Report lint_transform(core::Schedule schedule) {
    Report rep;
    const ir::TransformVerdict& verdict = ir::transform_schedule(schedule);
    const std::string loc = schedule_location(schedule);

    if (verdict.native_group_parallel) {
        rep.add("schedule.transform.verdict", Severity::Note, loc,
                "group-parallel natively legal, no rewrite needed (" +
                    phase_shape(verdict.phases) + ")");
        return rep;
    }
    if (!verdict.certified) {
        rep.add("schedule.transform.verdict", Severity::Note, loc,
                "no certified lockstep rewrite (" +
                    (verdict.obstruction.empty() ? std::string("search found no candidate")
                                                 : verdict.obstruction) +
                    "); SIMD backend degrades to frame-per-lane");
        return rep;
    }

    rep.add("schedule.transform.verdict", Severity::Note, loc,
            "lockstep-illegal as emitted (" + verdict.obstruction +
                "); a certified dependence-preserving rewrite restores the group-parallel "
                "mapping");

    // Proof perimeter: re-run the independent certifier on the stored
    // certificate instead of trusting the cached verdict.
    const ir::Trace trace = ir::build_schedule_trace(schedule, verdict.rewrite->dims);
    const ir::RewriteCheck chk = ir::check_rewrite(trace, *verdict.rewrite);
    if (!chk.ok) {
        rep.add("schedule.transform.check", Severity::Error, loc,
                "stored rewrite certificate failed re-verification: " +
                    (chk.rejection ? chk.rejection->reason : std::string("unknown rejection")),
                "regenerate the certificate; do not run this schedule group-parallel");
        return rep;
    }
    rep.add("schedule.transform.certificate", Severity::Note, loc,
            "certificate re-verified: permutation of " +
                std::to_string(verdict.rewrite->perm.size()) +
                " events replayed lockstep-legal (" + phase_shape(verdict.phases) + ")");
    return rep;
}

}  // namespace dvbs2::analysis
