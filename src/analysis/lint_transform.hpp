// Rule family `schedule.transform.*`: surfaces the certified schedule
// transformer (src/analysis/ir/transform.hpp) as machine-checked findings.
//
// The transformer searches dependence-preserving (lane, step) reorderings
// that make a lockstep-illegal schedule legal, emits each candidate as an
// explicit ScheduleRewrite certificate, and has the certificate re-checked
// by replaying the permuted trace through the independent analyses. This
// family repeats that replay inside the lint run — the proof perimeter
// checks the stored certificate, it does not trust the cache.
//
// Rules:
//   schedule.transform.verdict      (note) how the schedule reaches the
//                                   group-parallel mapping: natively legal,
//                                   via certified rewrite (with the original
//                                   obstruction), or frame-per-lane only
//   schedule.transform.certificate  (note) re-verified certificate shape:
//                                   permuted event count and the per-phase
//                                   lockstep steps x width after the rewrite
//   schedule.transform.check        (error) the stored certificate failed
//                                   re-verification, naming the offending
//                                   event — this means the cached verdict
//                                   must not be trusted
#pragma once

#include "analysis/diag.hpp"
#include "core/types.hpp"

namespace dvbs2::analysis {

/// Transform verdict + certificate re-verification for one schedule.
Report lint_transform(core::Schedule schedule);

}  // namespace dvbs2::analysis
