#include "arch/anneal.hpp"

#include <cmath>

#include "util/prng.hpp"

namespace dvbs2::arch {

namespace {

/// Scalar cost: peak buffer dominates; residency breaks plateau ties.
double cost_of(const ConflictStats& st) {
    return 1000.0 * st.peak_buffer + 1e-3 * static_cast<double>(st.buffer_word_cycles);
}

}  // namespace

AnnealResult anneal_addressing(HardwareMapping& mapping, const AnnealConfig& cfg) {
    util::Xoshiro256pp rng(cfg.seed);
    const auto& cp = mapping.code().params();
    const int kc = mapping.slots_per_cn();
    const int q = cp.q;
    const int groups = cp.groups();

    AnnealResult result;
    result.before = simulate_phase(make_check_phase_schedule(mapping, cfg.memory), cfg.memory);

    double temp = cfg.initial_temperature;
    double current = cost_of(result.before);
    ConflictStats current_stats = result.before;

    // Track the best state seen: replay the accepted move list is overkill —
    // instead keep best stats and, at the end, re-anneal greedily from the
    // current state if it regressed (it cannot: we only accept uphill with
    // temperature, and we record the best cost to report).
    ConflictStats best_stats = result.before;

    for (int it = 0; it < cfg.iterations; ++it, temp *= cfg.cooling) {
        ++result.moves_tried;
        // Choose a move; remember how to undo it.
        const bool row_move = (rng() & 1u) != 0;
        int g = 0, a = 0, b = 0, r = 0;
        if (row_move) {
            g = static_cast<int>(rng.below(static_cast<std::uint64_t>(groups)));
            const int deg = g < cp.groups_hi() ? cp.deg_hi : cp.deg_lo;
            a = static_cast<int>(rng.below(static_cast<std::uint64_t>(deg)));
            b = static_cast<int>(rng.below(static_cast<std::uint64_t>(deg)));
            if (a == b) continue;
            mapping.swap_row_entries(g, a, b);
        } else {
            if (kc < 2) continue;
            r = static_cast<int>(rng.below(static_cast<std::uint64_t>(q)));
            a = static_cast<int>(rng.below(static_cast<std::uint64_t>(kc)));
            b = static_cast<int>(rng.below(static_cast<std::uint64_t>(kc)));
            if (a == b) continue;
            mapping.swap_slots_in_run(r, a, b);
        }

        const ConflictStats trial =
            simulate_phase(make_check_phase_schedule(mapping, cfg.memory), cfg.memory);
        const double trial_cost = cost_of(trial);
        const double delta = trial_cost - current;
        const bool accept = delta <= 0.0 || rng.uniform() < std::exp(-delta / (temp * 100.0));
        if (accept) {
            current = trial_cost;
            current_stats = trial;
            ++result.moves_accepted;
            if (cost_of(trial) < cost_of(best_stats)) best_stats = trial;
        } else {
            // Undo.
            if (row_move)
                mapping.swap_row_entries(g, a, b);
            else
                mapping.swap_slots_in_run(r, a, b);
        }
    }

    result.after = current_stats;
    // If the walk ended above the best state it visited, report the final
    // (reachable) state — the mapping object reflects it. best_stats is only
    // used to sanity-check monotonicity in tests via `after`.
    return result;
}

}  // namespace dvbs2::arch
