// Simulated-annealing optimizer for the RAM addressing scheme (paper Sec. 4:
// "We use simulated annealing to find the best addressing scheme to reduce
// RAM access conflicts and hence to minimize the buffer overhead").
//
// Search space (both legal by construction):
//   * the position of each table value inside its group's address range
//     (which address a message occupies, hence which bank its writes hit),
//   * the order in which each check node's messages are read (commutative
//     combining, exploited by the paper).
// Cost: peak conflict-buffer occupancy, with total buffer residency as a
// tie-breaker so the search keeps moving on plateaus.
#pragma once

#include <cstdint>

#include "arch/conflict.hpp"
#include "arch/mapping.hpp"

namespace dvbs2::arch {

/// Annealing hyper-parameters. Defaults converge in well under a second per
/// code rate (the cost evaluation is a few hundred simulated cycles).
struct AnnealConfig {
    int iterations = 4000;
    double initial_temperature = 4.0;
    double cooling = 0.9985;       ///< geometric factor per move
    std::uint64_t seed = 2024;
    MemoryConfig memory;           ///< memory model to optimize against
};

/// Outcome of one optimization run.
struct AnnealResult {
    ConflictStats before;  ///< check-phase stats of the canonical mapping
    ConflictStats after;   ///< check-phase stats of the optimized mapping
    int moves_accepted = 0;
    int moves_tried = 0;
};

/// Optimizes `mapping` in place; returns before/after statistics.
/// Deterministic in cfg.seed.
AnnealResult anneal_addressing(HardwareMapping& mapping, const AnnealConfig& cfg);

}  // namespace dvbs2::arch
