#include "arch/area.hpp"

#include <algorithm>
#include <cmath>

#include "arch/shuffle.hpp"
#include "util/error.hpp"

namespace dvbs2::arch {

namespace {

// Gate-count building blocks (NAND2 equivalents, standard synthesis rules
// of thumb for 0.13 µm standard-cell libraries).
constexpr long long kFlopGates = 6;        // per storage bit
constexpr long long kAdderGatesPerBit = 11;// ripple/carry-select average
constexpr long long kMux2Gates = 4;        // 2:1 mux incl. buffering share
constexpr long long kCorrLutGates = 250;   // boxplus correction ROM + add
constexpr long long kFuControlGates = 400; // per-FU FSM, counters, flags
constexpr long long kGlobalControlGates = 28000;  // sequencer, rate config,
                                                  // address counters, I/O

int ceil_log2(long long v) {
    int b = 0;
    while ((1LL << b) < v) ++b;
    return b;
}

}  // namespace

double AreaBreakdown::row(const std::string& name) const {
    for (const auto& r : rows)
        if (r.name == name) return r.mm2;
    throw std::runtime_error("unknown area row: " + name);
}

long long functional_unit_gates(int max_vn_deg, int max_cn_deg, int width) {
    DVBS2_REQUIRE(max_vn_deg >= 2 && max_cn_deg >= 3 && width >= 2, "bad FU dimensions");
    // Serial functional unit (paper Sec. 3: one message in, one out per
    // cycle), time-shared between variable- and check-node modes:
    //  * incoming-message buffer: the serial extrinsic computation must hold
    //    all messages of the node being processed (max_cn_deg dominates),
    //  * prefix storage for the forward/backward combine,
    //  * two combine units (boxplus with correction LUT; reused as compare/
    //    select for min-sum),
    //  * variable-node accumulator (width+4 bits) and the per-output
    //    subtract-and-saturate stage,
    //  * local control and mode multiplexing.
    const long long msg_buffer = static_cast<long long>(max_cn_deg) * width * kFlopGates;
    const long long prefix_store = static_cast<long long>(max_cn_deg) * width * kFlopGates;
    const long long combine_units =
        2 * (3LL * (width + 1) * kAdderGatesPerBit + kCorrLutGates);
    const long long vn_accumulator = static_cast<long long>(width + 4) * kAdderGatesPerBit;
    const long long vn_output = 2LL * (width + 4) * kAdderGatesPerBit;
    const long long mode_mux = 10LL * width * kMux2Gates;
    (void)max_vn_deg;  // VN degree ≤ CN degree for every DVB-S2 rate; the
                       // buffer above already covers it.
    return msg_buffer + prefix_store + combine_units + vn_accumulator + vn_output + mode_mux +
           kFuControlGates;
}

AreaBreakdown area_model(const std::vector<code::CodeParams>& supported,
                         const quant::QuantSpec& spec, const AreaConstants& constants) {
    DVBS2_REQUIRE(!supported.empty(), "need at least one supported code");
    const int p = supported.front().parallelism;
    long long max_n = 0, max_e_in = 0, max_m = 0, max_addr = 0;
    int max_vn_deg = 0, max_cn_deg = 0;
    for (const auto& cp : supported) {
        DVBS2_REQUIRE(cp.parallelism == p, "mixed parallelism in supported set");
        max_n = std::max<long long>(max_n, cp.n);
        max_e_in = std::max(max_e_in, cp.e_in());
        max_m = std::max<long long>(max_m, cp.m());
        max_addr = std::max(max_addr, cp.addr_words());
        max_vn_deg = std::max(max_vn_deg, cp.deg_hi);
        max_cn_deg = std::max(max_cn_deg, cp.check_deg);
    }
    const int w = spec.total_bits;
    const double logic_um2 = constants.gate_um2 * constants.synthesis_overhead;

    AreaBreakdown out;
    auto add = [&](std::string name, double mm2, std::string sized_by) {
        out.rows.push_back({std::move(name), mm2, std::move(sized_by)});
        out.total_mm2 += mm2;
    };

    // Channel LLR RAMs: one quantized LLR per codeword bit.
    const long long ch_bits = max_n * w;
    add("channel LLR RAMs", ch_bits * constants.sram_um2_per_bit * 1e-6,
        "N=64800 at " + std::to_string(w) + " bit");

    // Message RAMs: IN edges (worst rate), PN backward messages E_PN/2 ≈ N−K
    // (worst rate), plus the conflict write buffer.
    const long long in_bits = max_e_in * w;
    const long long pn_bits = max_m * w;
    const long long buf_bits =
        static_cast<long long>(constants.conflict_buffer_words) * p * w;
    add("message RAMs", (in_bits + pn_bits + buf_bits) * constants.sram_um2_per_bit * 1e-6,
        "E_IN(R=3/5), E_PN/2(R=1/4)");

    // Address/shuffle storage: one (address, shift) word per check-phase
    // cycle, sized for the largest table (R=3/5: 648 words); the paper's
    // 0.075 mm² corresponds to this single-configuration store (tables for
    // other rates are loaded at configuration time).
    const int addr_bits = ceil_log2(max_addr) + ceil_log2(p);
    add("address/shuffle RAM", max_addr * addr_bits * constants.sram_um2_per_bit * 1e-6,
        std::to_string(max_addr) + " words x " + std::to_string(addr_bits) + " bit");

    // Functional-unit logic: P serial processors sized by the worst-case
    // degrees (R=2/3 info degree 13, R=9/10 check degree 30).
    const long long fu_gates = functional_unit_gates(max_vn_deg, max_cn_deg + 2, w);
    add("functional nodes", static_cast<double>(fu_gates) * p * logic_um2 * 1e-6,
        "deg_hi=" + std::to_string(max_vn_deg) + ", check_deg=" + std::to_string(max_cn_deg));

    // Global control.
    add("control logic", static_cast<double>(kGlobalControlGates) * logic_um2 * 1e-6,
        "sequencer + rate configuration");

    // Shuffle network: logarithmic barrel shifter.
    const auto net = shuffle_network_stats(p, w);
    add("shuffling network", static_cast<double>(net.mux2_count) * kMux2Gates * logic_um2 * 1e-6,
        std::to_string(net.stages) + " stages x " + std::to_string(p) + " lanes");

    return out;
}

}  // namespace dvbs2::arch
