// Silicon area model for the decoder (paper Table 3, ST 0.13 µm CMOS).
//
// The paper's synthesis breakdown is reproduced from first principles:
// every memory is sized by the worst-case rate that dimensions it (R=1/4
// for the parity-message RAM, R=3/5 for the IN-message RAM, R=2/3 and
// R=9/10 for the functional-unit degrees), converted to mm² with a
// *single* pair of calibrated 0.13 µm densities:
//
//   * kSramArea  — µm² per single-port SRAM bit. Calibrated once against
//     the paper's channel-RAM row (388 800 bits ↔ ~2.0 mm² ⇒ 5.3 µm²/bit;
//     consistent with the message-RAM row at 5.4 µm²/bit).
//   * kGateArea · kSynthesisOverhead — µm² per NAND2-equivalent gate
//     including wiring/flexibility overhead; 3.6 µm² raw with a 2.0×
//     overhead reproduces the shuffle-network and FU rows.
//
// Each row is *derived* (bit and gate counts from the code parameters and
// datapath structure); only the two densities are fitted, so relative sizes
// are a genuine model prediction.
#pragma once

#include <string>
#include <vector>

#include "code/params.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::arch {

/// Technology/calibration constants (0.13 µm, see header comment).
struct AreaConstants {
    double sram_um2_per_bit = 5.3;
    double gate_um2 = 3.6;          ///< NAND2-equivalent cell area
    double synthesis_overhead = 2.0;///< wiring / flexibility / DFT factor
    int conflict_buffer_words = 32; ///< P-lane words of write buffer
};

/// One row of the Table-3 reproduction.
struct AreaRow {
    std::string name;
    double mm2 = 0.0;
    std::string sized_by;  ///< which rate/parameter dimensions this block
};

struct AreaBreakdown {
    std::vector<AreaRow> rows;
    double total_mm2 = 0.0;

    double row(const std::string& name) const;
};

/// Computes the breakdown for a decoder supporting all codes in `supported`
/// (the paper: all 11 long-frame rates), with message/channel quantization
/// `spec` (the paper: 6 bits) and P parallel functional units.
AreaBreakdown area_model(const std::vector<code::CodeParams>& supported,
                         const quant::QuantSpec& spec, const AreaConstants& constants = {});

/// Gate count estimate of one functional unit (exposed for tests/ablation):
/// serial variable/check node processor for maximum info degree `max_vn_deg`
/// and maximum check degree `max_cn_deg` at message width `width` bits.
long long functional_unit_gates(int max_vn_deg, int max_cn_deg, int width);

}  // namespace dvbs2::arch
