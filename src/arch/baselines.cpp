#include "arch/baselines.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dvbs2::arch {

FullyParallelEstimate fully_parallel_estimate(const code::CodeParams& params,
                                              const quant::QuantSpec& spec,
                                              const FullyParallelConstants& constants) {
    const int w = spec.total_bits;
    FullyParallelEstimate est;

    // Variable nodes: parallel adder tree over (degree+1) inputs of w+2
    // bits plus output registers. Parity nodes are degree 2.
    auto vn_gates = [&](int degree) {
        return static_cast<long long>(degree + 1) * (w + 2) * 11 + 2LL * w * 6;
    };
    long long vn_total = 0;
    vn_total += static_cast<long long>(params.n_hi) * vn_gates(params.deg_hi);
    vn_total += static_cast<long long>(params.n_lo()) * vn_gates(params.deg_lo);
    vn_total += static_cast<long long>(params.m()) * vn_gates(2);
    est.vn_gates = vn_total;

    // Check nodes: min-sum comparator trees (the simplification fully
    // parallel designs use — Blanksby/Howland): ~2(d−1) compare-select
    // stages of w bits plus sign logic and registers.
    const int cn_deg = params.check_deg;
    const long long cn_one =
        2LL * (cn_deg - 1) * (w * 11) + cn_deg * 4 + 2LL * w * 6;
    est.cn_gates = static_cast<long long>(params.m()) * cn_one;

    // Hardwired message nets: both directions of every edge, w bits each.
    const long long edges = params.e_in() + params.e_pn();
    est.wires = 2 * edges * w;

    const double logic_um2 = constants.gate_um2 * constants.synthesis_overhead;
    est.logic_mm2 = static_cast<double>(est.vn_gates + est.cn_gates) * logic_um2 * 1e-6;

    // Routing: each net needs ~avg_wire_mm of track at wire_pitch_um, and
    // congestion inflates the effective area superlinearly in the net count
    // (normalized to 10^6 nets so the 1024-bit reference is mildly affected
    // and N = 64800 strongly — matching the paper's "severe routing
    // congestion problems exist" already at 1024).
    const double avg_wire_mm = constants.avg_wire_mm > 0.0
                                   ? constants.avg_wire_mm
                                   : 0.1 * std::sqrt(est.logic_mm2);
    const double congestion =
        std::pow(std::max(1.0, static_cast<double>(est.wires) / 1e6),
                 constants.congestion_exponent - 1.0);
    est.routing_mm2 = static_cast<double>(est.wires) * avg_wire_mm *
                      (constants.wire_pitch_um * 1e-3) * congestion;
    est.total_mm2 = est.logic_mm2 + est.routing_mm2;

    // Throughput: a full iteration every two cycles (VN + CN phase), one
    // codeword in flight.
    DVBS2_REQUIRE(constants.iterations > 0, "iterations must be positive");
    est.info_throughput_bps = static_cast<double>(params.k) * constants.clock_hz /
                              (2.0 * constants.iterations);
    return est;
}

}  // namespace dvbs2::arch
