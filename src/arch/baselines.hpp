// Architecture baselines the paper argues against (Sec. 1).
//
//  * Fully parallel decoding (Blanksby & Howland, the paper's [4]): every
//    node instantiated, every Tanner-graph edge hardwired. Worked for a
//    1024-bit code ("but even for this relatively short block length severe
//    routing congestion problems exist"); this model quantifies why it is
//    infeasible at N = 64800: logic for N + (N−K) node processors plus
//    E dedicated wire pairs whose routing area grows superlinearly with the
//    cut width.
//
// The partly-parallel figures come from the Table-3 model; the comparison
// bench (bench_baseline_parallel) prints both.
#pragma once

#include "arch/area.hpp"
#include "code/params.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::arch {

/// Sizing of a hypothetical fully parallel decoder for one code.
struct FullyParallelEstimate {
    long long vn_gates = 0;        ///< all variable-node processors
    long long cn_gates = 0;        ///< all check-node processors
    long long wires = 0;           ///< hardwired message nets (2 per edge)
    double logic_mm2 = 0.0;
    double routing_mm2 = 0.0;      ///< congestion-scaled wiring estimate
    double total_mm2 = 0.0;
    /// Throughput: one iteration per cycle pair, whole codeword per decode.
    double info_throughput_bps = 0.0;
};

/// Routing/technology knobs. The congestion exponent models the
/// superlinear growth of wiring area with the bisection cut: Rent-style
/// area ≈ wires^exponent · pitch² (exponent 1 would be ideal spreading;
/// Blanksby/Howland report the interconnect already dominating at 1024).
struct FullyParallelConstants {
    double gate_um2 = 3.6;
    double synthesis_overhead = 2.0;
    double wire_pitch_um = 0.6;       ///< routed track pitch incl. spacing
    double avg_wire_mm = 0.0;         ///< 0 → derived from die edge estimate
    double congestion_exponent = 1.25;
    double clock_hz = 100e6;          ///< fully parallel designs clock slower
    int iterations = 30;
};

/// Estimates the fully parallel realization of `params` with message width
/// from `spec` (uses the same per-node gate models as the Table-3 FU).
FullyParallelEstimate fully_parallel_estimate(const code::CodeParams& params,
                                              const quant::QuantSpec& spec,
                                              const FullyParallelConstants& constants = {});

}  // namespace dvbs2::arch
