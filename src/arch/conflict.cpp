#include "arch/conflict.hpp"

#include <deque>

#include "util/error.hpp"

namespace dvbs2::arch {

ConflictStats simulate_phase(const PhaseSchedule& sched, const MemoryConfig& cfg) {
    DVBS2_REQUIRE(cfg.num_banks >= 2, "need at least two banks");
    DVBS2_REQUIRE(sched.ready_at.size() >= sched.read_addr.size(),
                  "ready_at must cover all read cycles");

    ConflictStats stats;
    stats.read_cycles = static_cast<int>(sched.read_addr.size());

    std::deque<int> buffer;  // pending write addresses, FIFO order
    std::size_t cycle = 0;
    auto bank_of = [&](int addr) { return addr % cfg.num_banks; };

    auto step = [&](bool has_read, int read_bank) {
        // Enqueue writes that became ready this cycle.
        if (cycle < sched.ready_at.size())
            for (int a : sched.ready_at[cycle]) buffer.push_back(a);
        if (static_cast<int>(buffer.size()) > stats.peak_buffer)
            stats.peak_buffer = static_cast<int>(buffer.size());

        // Issue up to max_writes_per_cycle writes to banks that are free
        // (not the read bank, not already written this cycle). FIFO with
        // lookahead: scan from the head, take the first eligible entries —
        // hardware realizes this with a small CAM over the buffer.
        int issued = 0;
        std::vector<char> bank_busy(static_cast<std::size_t>(cfg.num_banks), 0);
        if (has_read) bank_busy[static_cast<std::size_t>(read_bank)] = 1;
        for (auto it = buffer.begin(); it != buffer.end() && issued < cfg.max_writes_per_cycle;) {
            const int b = bank_of(*it);
            if (!bank_busy[static_cast<std::size_t>(b)]) {
                bank_busy[static_cast<std::size_t>(b)] = 1;
                it = buffer.erase(it);
                ++issued;
            } else {
                ++stats.blocked_write_events;
                ++it;
            }
        }
        stats.buffer_word_cycles += static_cast<long long>(buffer.size());
        ++cycle;
    };

    for (std::size_t t = 0; t < sched.read_addr.size(); ++t)
        step(/*has_read=*/true, bank_of(sched.read_addr[t]));
    // Remaining ready events (latency tail) and buffer drain: no reads, all
    // banks available for writes.
    while (cycle < sched.ready_at.size() || !buffer.empty()) step(/*has_read=*/false, 0);

    stats.total_cycles = static_cast<int>(cycle);
    return stats;
}

PhaseSchedule make_check_phase_schedule(const HardwareMapping& mapping, const MemoryConfig& cfg) {
    const auto& slots = mapping.slots();
    const int kc = mapping.slots_per_cn();
    PhaseSchedule sched;
    sched.read_addr.reserve(slots.size());
    for (const auto& s : slots) sched.read_addr.push_back(s.addr);

    // A serial functional unit "produces at most one updated message per
    // clock cycle" (paper Sec. 3): the kc write-backs of local CN r emerge
    // one per cycle, starting pipeline_latency cycles after its last read
    // (slot (r+1)·kc − 1).
    const int q = mapping.code().params().q;
    const std::size_t horizon =
        slots.size() + static_cast<std::size_t>(cfg.pipeline_latency + kc) + 1;
    sched.ready_at.assign(horizon, {});
    for (int r = 0; r < q; ++r) {
        const std::size_t first_ready =
            static_cast<std::size_t>((r + 1) * kc - 1 + cfg.pipeline_latency);
        for (int t = 0; t < kc; ++t)
            sched.ready_at[first_ready + static_cast<std::size_t>(t)].push_back(
                slots[static_cast<std::size_t>(r * kc + t)].addr);
    }
    return sched;
}

PhaseSchedule make_variable_phase_schedule(const HardwareMapping& mapping,
                                           const MemoryConfig& cfg) {
    const auto& code = mapping.code();
    const auto& cp = code.params();
    PhaseSchedule sched;
    const int words = mapping.ram_words();
    sched.read_addr.reserve(static_cast<std::size_t>(words));
    for (int a = 0; a < words; ++a) sched.read_addr.push_back(a);

    const std::size_t horizon =
        static_cast<std::size_t>(words + cfg.pipeline_latency + cp.deg_hi + 1);
    sched.ready_at.assign(horizon, {});
    // Node group g's messages live at row_base[g] .. row_base[g]+deg−1 and
    // are all read by cycle row_base[g]+deg−1; the updated messages emerge
    // from the serial FU one per cycle and go back to the same addresses.
    for (int g = 0; g < cp.groups(); ++g) {
        const int base = mapping.row_base(g);
        const int deg = g < cp.groups_hi() ? cp.deg_hi : cp.deg_lo;
        const std::size_t first_ready =
            static_cast<std::size_t>(base + deg - 1 + cfg.pipeline_latency);
        for (int l = 0; l < deg; ++l)
            sched.ready_at[first_ready + static_cast<std::size_t>(l)].push_back(base + l);
    }
    return sched;
}

IterationStats simulate_iteration(const HardwareMapping& mapping, const MemoryConfig& cfg) {
    IterationStats st;
    st.variable_phase = simulate_phase(make_variable_phase_schedule(mapping, cfg), cfg);
    st.check_phase = simulate_phase(make_check_phase_schedule(mapping, cfg), cfg);
    return st;
}

}  // namespace dvbs2::arch
