// Single-port RAM partition and write-conflict model (paper Sec. 4, Fig. 5).
//
// The IN message memory is one P-lane-wide word per address, partitioned
// into `num_banks` single-port RAMs by the low address bits. Every cycle the
// decoder reads one word (the port of that bank is consumed) and may write
// back at most `max_writes_per_cycle` words to *other*, mutually distinct
// banks. Updated words that cannot be written immediately wait in a FIFO
// buffer — the paper minimizes this buffer with simulated annealing and
// reports that a single small buffer suffices for all code rates.
#pragma once

#include <vector>

#include "arch/mapping.hpp"

namespace dvbs2::arch {

/// Hardware parameters of the memory subsystem.
struct MemoryConfig {
    int num_banks = 4;             ///< partitions (2 LSBs of the address)
    int max_writes_per_cycle = 2;  ///< write ports across the other banks
    int pipeline_latency = 4;      ///< cycles from last read of a node to its
                                   ///< write-back data being ready
};

/// One phase's memory traffic: reads happen one per cycle in order; writes
/// become ready in groups (one group per completed node) and drain through
/// the buffer.
struct PhaseSchedule {
    std::vector<int> read_addr;                 ///< cycle t reads read_addr[t]
    std::vector<std::vector<int>> ready_at;     ///< per cycle, write addresses
                                                ///< becoming ready (size ≥ reads;
                                                ///< trailing cycles = epilogue)
};

/// Result of simulating one phase.
struct ConflictStats {
    int read_cycles = 0;       ///< cycles with a read
    int total_cycles = 0;      ///< reads + drain epilogue
    int peak_buffer = 0;       ///< maximum FIFO occupancy (words)
    long long buffer_word_cycles = 0;  ///< total residency (pressure metric)
    long long blocked_write_events = 0;  ///< write attempts deferred by bank conflicts
};

/// Simulates the phase cycle by cycle.
ConflictStats simulate_phase(const PhaseSchedule& sched, const MemoryConfig& cfg);

/// Builds the check-phase schedule from a mapping: reads follow the ROM slot
/// order; the k−2 write-backs of each local CN become ready
/// `cfg.pipeline_latency` cycles after its last read.
PhaseSchedule make_check_phase_schedule(const HardwareMapping& mapping, const MemoryConfig& cfg);

/// Builds the variable-phase schedule: reads sweep addresses 0..W−1; a
/// node-group's write-backs (its row's addresses) become ready after its last
/// message was read.
PhaseSchedule make_variable_phase_schedule(const HardwareMapping& mapping,
                                           const MemoryConfig& cfg);

/// Convenience: both phases of one iteration simulated with `cfg`.
struct IterationStats {
    ConflictStats variable_phase;
    ConflictStats check_phase;
    int cycles_per_iteration() const {
        return variable_phase.total_cycles + check_phase.total_cycles;
    }
    int peak_buffer() const {
        return variable_phase.peak_buffer > check_phase.peak_buffer
                   ? variable_phase.peak_buffer
                   : check_phase.peak_buffer;
    }
};

IterationStats simulate_iteration(const HardwareMapping& mapping, const MemoryConfig& cfg);

}  // namespace dvbs2::arch
