#include "arch/energy.hpp"

namespace dvbs2::arch {

EnergyReport energy_model(const HardwareMapping& mapping, const quant::QuantSpec& spec,
                          int iterations, const EnergyConstants& constants) {
    const auto& cp = mapping.code().params();
    const double w = spec.total_bits;
    const double p = cp.parallelism;
    const double it = iterations;

    EnergyReport rep;

    // Memory traffic per iteration:
    //  * IN message RAM: each of the E_IN/P words (P lanes wide) is read
    //    once and written once in each phase → 4 accesses per word per
    //    iteration (VN read+write, CN read+write);
    //  * PN message RAM: E_PN/2 backward messages read+written per CN phase;
    //  * channel RAMs: every IN message read needs its channel value once
    //    per phase (K values) and every CN needs the two parity channel
    //    values (≈2·M per iteration).
    const double in_ram_bits = 4.0 * static_cast<double>(cp.addr_words()) * p * w;
    const double pn_ram_bits = 2.0 * static_cast<double>(cp.m()) * w;
    const double ch_ram_bits = (static_cast<double>(cp.k) + 2.0 * cp.m()) * w;
    rep.memory_nj = it * (in_ram_bits + pn_ram_bits + ch_ram_bits) *
                    constants.sram_pj_per_bit_access * 1e-3;

    // Functional-unit work: every edge message is processed once per phase
    // (VN serial sum + CN serial combine), plus the zigzag messages.
    const double messages =
        2.0 * static_cast<double>(cp.e_in()) + 2.0 * static_cast<double>(cp.m());
    rep.logic_nj = it * messages * constants.fu_pj_per_message * 1e-3;

    // Shuffle network: the CN phase moves each IN word through the shifter
    // twice (read-aligned and write-back).
    const double net_bits = 2.0 * static_cast<double>(cp.addr_words()) * p * w;
    rep.network_nj = it * net_bits * constants.shuffle_pj_per_bit * 1e-3;

    // Leakage over the block's decode time (Eq. 8 cycles).
    const auto iter_stats = simulate_iteration(mapping, MemoryConfig{});
    const double cycles = it * iter_stats.cycles_per_iteration();
    rep.leakage_nj = constants.leakage_mw * 1e-3 * (cycles / constants.clock_hz) * 1e9;

    rep.nj_per_info_bit = rep.total_nj() / static_cast<double>(cp.k);
    return rep;
}

}  // namespace dvbs2::arch
