// Activity-based energy model of the decoder.
//
// A companion estimate to the Table-3 area model (the authors' follow-up
// work analyzed channel-decoder energy; the DATE'05 paper itself reports
// area/throughput only, so this module is an *extension*, not a
// reproduction target). Energy per decoded block is counted from switching
// activity: every memory access (word width × access energy per bit) and
// every functional-unit message operation, at calibrated 0.13 µm energies.
// Absolute joules are order-of-magnitude; the value of the model is the
// *split* (memory vs. logic vs. network) and the per-rate/per-iteration
// scaling, which are structure-determined.
#pragma once

#include "arch/conflict.hpp"
#include "arch/mapping.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::arch {

/// Calibrated 0.13 µm access/operation energies.
struct EnergyConstants {
    double sram_pj_per_bit_access = 0.45;  ///< single-port SRAM read or write
    double fu_pj_per_message = 6.0;        ///< one serial message through a FU
    double shuffle_pj_per_bit = 0.08;      ///< one bit through the barrel shifter
    double leakage_mw = 35.0;              ///< static power of the whole core
    double clock_hz = 270e6;
};

/// Per-block energy split.
struct EnergyReport {
    double memory_nj = 0.0;
    double logic_nj = 0.0;
    double network_nj = 0.0;
    double leakage_nj = 0.0;
    double total_nj() const { return memory_nj + logic_nj + network_nj + leakage_nj; }
    /// Energy efficiency in nJ per decoded information bit.
    double nj_per_info_bit = 0.0;
};

/// Estimates the energy to decode one block at `iterations` iterations with
/// message width from `spec`.
EnergyReport energy_model(const HardwareMapping& mapping, const quant::QuantSpec& spec,
                          int iterations, const EnergyConstants& constants = {});

}  // namespace dvbs2::arch
