#include "arch/ip_core.hpp"

#include "util/error.hpp"

namespace dvbs2::arch {

Dvbs2DecoderIp::Dvbs2DecoderIp(IpCoreConfig cfg) : cfg_(std::move(cfg)) {}

std::vector<code::CodeRate> Dvbs2DecoderIp::supported_rates() const {
    return code::rates_for(cfg_.frame);
}

RateContext& Dvbs2DecoderIp::get_or_build(code::CodeRate rate) {
    auto it = contexts_.find(rate);
    if (it != contexts_.end()) return it->second;

    DVBS2_REQUIRE(!(cfg_.frame == code::FrameSize::Short && rate == code::CodeRate::R9_10),
                  "rate 9/10 is not defined for short frames");
    RateContext ctx;
    ctx.code = std::make_unique<code::Dvbs2Code>(code::standard_params(rate, cfg_.frame));
    ctx.mapping = std::make_unique<HardwareMapping>(*ctx.code);
    if (cfg_.anneal) {
        AnnealConfig acfg;
        acfg.iterations = cfg_.anneal_iterations;
        acfg.memory = cfg_.rtl.memory;
        ctx.check_phase_stats = anneal_addressing(*ctx.mapping, acfg).after;
    } else {
        ctx.check_phase_stats = simulate_phase(
            make_check_phase_schedule(*ctx.mapping, cfg_.rtl.memory), cfg_.rtl.memory);
    }
    ctx.decoder = std::make_unique<RtlDecoder>(*ctx.code, *ctx.mapping, cfg_.rtl);
    return contexts_.emplace(rate, std::move(ctx)).first->second;
}

const RateContext& Dvbs2DecoderIp::context(code::CodeRate rate) { return get_or_build(rate); }

core::DecodeResult Dvbs2DecoderIp::decode(code::CodeRate rate, const std::vector<double>& llr) {
    return get_or_build(rate).decoder->decode(llr);
}

core::DecodeResult Dvbs2DecoderIp::decode_raw(code::CodeRate rate,
                                              const std::vector<quant::QLLR>& ch) {
    return get_or_build(rate).decoder->decode_raw(ch);
}

ThroughputReport Dvbs2DecoderIp::throughput_of(code::CodeRate rate) const {
    ThroughputConfig tcfg = cfg_.throughput;
    tcfg.iterations = cfg_.rtl.decoder.max_iterations;
    return throughput(code::standard_params(rate, cfg_.frame), tcfg);
}

int Dvbs2DecoderIp::required_buffer_words() const {
    int worst = 0;
    for (const auto& [rate, ctx] : contexts_) {
        (void)rate;
        worst = std::max(worst, ctx.check_phase_stats.peak_buffer);
    }
    return worst;
}

AreaBreakdown Dvbs2DecoderIp::area() const {
    std::vector<code::CodeParams> supported;
    for (auto rate : code::rates_for(cfg_.frame))
        supported.push_back(code::standard_params(rate, cfg_.frame));
    return area_model(supported, cfg_.rtl.spec);
}

}  // namespace dvbs2::arch
