// The multi-rate decoder IP — the paper's headline deliverable: "the first
// IP core capable to process all specified code rates in the DVB-S2
// standard".
//
// Wraps one decoder instance per rate behind a single run-time-switchable
// facade, the way the silicon works: the functional units, shuffle network
// and memories are shared (sized by the worst-case rate, see the area
// model); switching rate loads a different address/shuffle configuration.
// Construction of per-rate structures (code expansion, mapping, optional
// annealing) is lazy and cached, mirroring the configuration-download step.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "arch/anneal.hpp"
#include "arch/area.hpp"
#include "arch/mapping.hpp"
#include "arch/rtl_model.hpp"
#include "arch/throughput.hpp"
#include "code/params.hpp"

namespace dvbs2::arch {

/// Configuration of the IP instance.
struct IpCoreConfig {
    code::FrameSize frame = code::FrameSize::Long;
    RtlConfig rtl;             ///< datapath (rule, iterations, quantization)
    bool anneal = true;        ///< optimize each rate's addressing on first use
    int anneal_iterations = 1500;
    ThroughputConfig throughput;  ///< clock/IO operating point
};

/// One configured "rate slot" of the IP (exposed for inspection).
struct RateContext {
    std::unique_ptr<code::Dvbs2Code> code;
    std::unique_ptr<HardwareMapping> mapping;
    std::unique_ptr<RtlDecoder> decoder;
    ConflictStats check_phase_stats;  ///< after optional annealing
};

/// The decoder IP. Thread-compatible (external synchronization); per-rate
/// contexts are built on first use and cached for the lifetime of the core.
class Dvbs2DecoderIp {
public:
    explicit Dvbs2DecoderIp(IpCoreConfig cfg = {});

    /// Rates this instance supports (all standard rates of the frame size).
    std::vector<code::CodeRate> supported_rates() const;

    /// Decodes one frame at `rate` from float channel LLRs (quantized by
    /// the input stage, like the silicon's channel interface).
    core::DecodeResult decode(code::CodeRate rate, const std::vector<double>& llr);

    /// Decodes from pre-quantized channel values.
    core::DecodeResult decode_raw(code::CodeRate rate, const std::vector<quant::QLLR>& ch);

    /// Access the cached context of a rate (builds it if needed).
    const RateContext& context(code::CodeRate rate);

    /// Eq. 8 throughput of a rate at this instance's operating point.
    ThroughputReport throughput_of(code::CodeRate rate) const;

    /// Worst-case conflict-buffer words across all *configured* rates — the
    /// single shared buffer the silicon must provision.
    int required_buffer_words() const;

    /// Area of the full multi-rate instance (Table-3 model).
    AreaBreakdown area() const;

    const IpCoreConfig& config() const noexcept { return cfg_; }

private:
    RateContext& get_or_build(code::CodeRate rate);

    IpCoreConfig cfg_;
    std::map<code::CodeRate, RateContext> contexts_;
};

}  // namespace dvbs2::arch
