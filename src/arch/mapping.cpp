#include "arch/mapping.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dvbs2::arch {

HardwareMapping::HardwareMapping(const code::Dvbs2Code& code) : code_(&code) {
    const auto& cp = code.params();
    rows_ = code.tables().rows;

    row_base_.resize(rows_.size());
    int base = 0;
    for (std::size_t g = 0; g < rows_.size(); ++g) {
        row_base_[g] = base;
        base += static_cast<int>(rows_[g].size());
    }
    DVBS2_REQUIRE(base == cp.addr_words(), "address layout size mismatch");

    // Canonical slot schedule: ascending local CN index (residue), entries
    // in (group, position) scan order within each run.
    const int q = cp.q;
    slots_.reserve(static_cast<std::size_t>(base));
    for (int r = 0; r < q; ++r) {
        for (std::size_t g = 0; g < rows_.size(); ++g) {
            for (std::size_t l = 0; l < rows_[g].size(); ++l) {
                const auto x = static_cast<int>(rows_[g][l]);
                if (x % q != r) continue;
                RomSlot s;
                s.group = static_cast<int>(g);
                s.entry = static_cast<int>(l);
                s.addr = row_base_[g] + static_cast<int>(l);
                s.shift = x / q;
                s.local_cn = r;
                slots_.push_back(s);
            }
        }
        DVBS2_REQUIRE(static_cast<int>(slots_.size()) == (r + 1) * slots_per_cn(),
                      "residue run " + std::to_string(r) + " is not check-regular");
    }
}

int HardwareMapping::fu_load() const noexcept {
    return code_->params().q * slots_per_cn();
}

void HardwareMapping::swap_row_entries(int g, int a, int b) {
    if (a == b) return;
    auto& row = rows_[static_cast<std::size_t>(g)];
    DVBS2_ASSERT(a >= 0 && b >= 0 && a < static_cast<int>(row.size()) &&
                 b < static_cast<int>(row.size()));
    std::swap(row[static_cast<std::size_t>(a)], row[static_cast<std::size_t>(b)]);
    // Patch the two affected slots: x values swap addresses; residues,
    // shifts and run positions are untouched.
    RomSlot* sa = nullptr;
    RomSlot* sb = nullptr;
    for (auto& s : slots_) {
        if (s.group != g) continue;
        if (s.entry == a) sa = &s;
        if (s.entry == b) sb = &s;
    }
    DVBS2_REQUIRE(sa != nullptr && sb != nullptr, "slot lookup failed in swap_row_entries");
    std::swap(sa->entry, sb->entry);
    std::swap(sa->addr, sb->addr);
}

void HardwareMapping::swap_slots_in_run(int r, int a, int b) {
    const int kc = slots_per_cn();
    DVBS2_ASSERT(a >= 0 && a < kc && b >= 0 && b < kc);
    std::swap(slots_[static_cast<std::size_t>(r * kc + a)],
              slots_[static_cast<std::size_t>(r * kc + b)]);
}

int HardwareMapping::variable_of(const RomSlot& slot, int f) const {
    const int p = code_->params().parallelism;
    const int i = ((f - slot.shift) % p + p) % p;
    return slot.group * p + i;
}

long long HardwareMapping::edge_of(const RomSlot& slot, int f) const {
    const int kc = slots_per_cn();
    const int c = code_->params().q * f + slot.local_cn;
    const int v = variable_of(slot, f);
    // CN c's slots hold variables in ascending order: binary search for v.
    long long lo = static_cast<long long>(c) * kc;
    long long hi = lo + kc;
    while (lo < hi) {
        const long long mid = (lo + hi) / 2;
        if (code_->edge_variable(mid) < v)
            lo = mid + 1;
        else
            hi = mid;
    }
    DVBS2_REQUIRE(lo < static_cast<long long>(c + 1) * kc && code_->edge_variable(lo) == v,
                  "edge lookup failed: graph/mapping inconsistency");
    return lo;
}

std::vector<int> HardwareMapping::extract_cn_order() const {
    const auto& cp = code_->params();
    const int kc = slots_per_cn();
    const int p = cp.parallelism;
    const int q = cp.q;
    std::vector<int> order(static_cast<std::size_t>(cp.e_in()), -1);
    for (int r = 0; r < q; ++r) {
        for (int pos = 0; pos < kc; ++pos) {
            const RomSlot& s = slots_[static_cast<std::size_t>(r * kc + pos)];
            for (int f = 0; f < p; ++f) {
                const int c = q * f + r;
                const long long e = edge_of(s, f);
                const int canonical = static_cast<int>(e - static_cast<long long>(c) * kc);
                order[static_cast<std::size_t>(c) * kc + static_cast<std::size_t>(pos)] =
                    canonical;
            }
        }
    }
    for (int v : order) DVBS2_REQUIRE(v >= 0, "incomplete cn order extraction");
    return order;
}

}  // namespace dvbs2::arch
