// Hardware mapping of the Tanner graph onto P functional units (paper
// Sec. 3, Fig. 3).
//
// Information nodes: node g·P + i → FU i; the messages (edges) of group g
// occupy one RAM address per table entry, the same address in all P lane
// RAMs: address row_base[g] + l for entry l. Lane i of that address holds
// the message of information node (g, i).
//
// Check nodes: CN c → FU ⌊c/q⌋ at local index c mod q. Because a table
// entry x = r + q·s connects lane i to CN r + q·((s+i) mod P), the edge for
// *every* FU f sits in lane (f − s) mod P of the common address: one cyclic
// shift by s aligns the whole word, and the local CN index is the residue r
// for all lanes. The check-node phase therefore reads one (address, shift)
// pair per cycle — these pairs are the address/shuffle ROM of paper Table 2
// ("Addr" column, E_IN/360 words).
//
// Check-regularity of the code (each residue class holds exactly
// check_deg−2 entries) means the slot schedule is q runs of check_deg−2
// slots, one run per local CN index, processed in ascending residue order —
// which is exactly the sequential CN order the zigzag schedule needs.
#pragma once

#include <cstdint>
#include <vector>

#include "code/tanner.hpp"

namespace dvbs2::arch {

/// One word of the address/shuffle ROM: what the decoder does in one
/// check-phase read cycle.
struct RomSlot {
    int group = 0;     ///< table row g of the entry served
    int entry = 0;     ///< position l within the row (RAM address offset)
    int addr = 0;      ///< IN-message RAM address (row_base[g] + l)
    int shift = 0;     ///< cyclic shift s = ⌊x/q⌋ applied by the network
    int local_cn = 0;  ///< local check index r = x mod q (same for all FUs)
};

/// The complete node/message-to-hardware mapping for one code.
class HardwareMapping {
public:
    /// Builds the canonical mapping (entries in table order within rows and
    /// within residue runs). The code must outlive the mapping.
    explicit HardwareMapping(const code::Dvbs2Code& code);

    const code::Dvbs2Code& code() const noexcept { return *code_; }

    /// Total IN-message RAM words (= E_IN / P = Table 2 "Addr").
    int ram_words() const noexcept { return static_cast<int>(slots_.size()); }

    /// RAM base address of group g's messages.
    int row_base(int g) const noexcept { return row_base_[static_cast<std::size_t>(g)]; }

    /// The check-phase ROM: ram_words() slots, grouped in runs of
    /// check_deg−2 per local CN index, ascending local index.
    const std::vector<RomSlot>& slots() const noexcept { return slots_; }

    /// Slots of local CN r occupy positions [r·kc, (r+1)·kc).
    int slots_per_cn() const noexcept { return code_->check_in_degree(); }

    /// Edges per FU per check phase = q·(check_deg−2); Eq. 6 guarantees this
    /// equals ram_words().
    int fu_load() const noexcept;

    // --- mutation hooks for the simulated-annealing optimizer ---

    /// Swaps entries a and b of row g (changes the RAM addresses of the two
    /// affected slots). Both indices must be < row degree.
    void swap_row_entries(int g, int a, int b);

    /// Swaps two slot positions within the run of local CN r (changes the
    /// order in which that CN's messages are read — legal because check-node
    /// combining is commutative, which the paper exploits for scheduling).
    void swap_slots_in_run(int r, int a, int b);

    /// Extracts the per-check-node information-edge processing order induced
    /// by the slot schedule, in the format MpDecoder::set_cn_order expects
    /// (E_IN entries; per CN a permutation of its canonical slot indices).
    /// This is what makes the reference fixed-point decoder bit-exact with
    /// the cycle-driven architecture model.
    std::vector<int> extract_cn_order() const;

    /// Graph edge id (check-major) served by slot t for functional unit f.
    long long edge_of(const RomSlot& slot, int f) const;

    /// Variable (information bit) whose message slot t carries in lane f
    /// *after* the shift, i.e. the bit feeding FU f's check node.
    int variable_of(const RomSlot& slot, int f) const;

private:
    void rebuild_slot_addresses();

    const code::Dvbs2Code* code_;
    std::vector<int> row_base_;
    // rows_[g][l] = table value x at RAM offset l of group g (may be a
    // permutation of the canonical sorted row after SA moves).
    std::vector<std::vector<std::uint32_t>> rows_;
    std::vector<RomSlot> slots_;
};

}  // namespace dvbs2::arch
