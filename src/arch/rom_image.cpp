#include "arch/rom_image.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dvbs2::arch {

namespace {

int ceil_log2(int v) {
    int b = 0;
    while ((1 << b) < v) ++b;
    return b;
}

}  // namespace

RomImage build_rom_image(const HardwareMapping& mapping) {
    RomImage img;
    img.addr_bits = ceil_log2(mapping.ram_words());
    img.shift_bits = ceil_log2(mapping.code().params().parallelism);
    DVBS2_REQUIRE(img.bits_per_word() <= 32, "ROM word exceeds 32 bits");
    const int kc = mapping.slots_per_cn();
    img.words.reserve(mapping.slots().size());
    for (std::size_t t = 0; t < mapping.slots().size(); ++t) {
        const RomSlot& s = mapping.slots()[t];
        const bool last = (static_cast<int>(t) % kc) == kc - 1;
        std::uint32_t w = static_cast<std::uint32_t>(s.addr);
        w |= static_cast<std::uint32_t>(s.shift) << img.addr_bits;
        if (last) w |= 1u << (img.addr_bits + img.shift_bits);
        img.words.push_back(w);
    }
    return img;
}

bool verify_rom_image(const RomImage& image, const HardwareMapping& mapping) {
    if (image.words.size() != mapping.slots().size()) return false;
    const int kc = mapping.slots_per_cn();
    for (std::size_t t = 0; t < image.words.size(); ++t) {
        const std::uint32_t w = image.words[t];
        const RomSlot& s = mapping.slots()[t];
        if (image.addr_of(w) != s.addr) return false;
        if (image.shift_of(w) != s.shift % mapping.code().params().parallelism) return false;
        if (image.last_of(w) != ((static_cast<int>(t) % kc) == kc - 1)) return false;
    }
    return true;
}

std::string to_hex(const RomImage& image) {
    std::ostringstream os;
    os << std::hex;
    const int digits = (image.bits_per_word() + 3) / 4;
    for (std::uint32_t w : image.words) {
        std::string h;
        for (int d = 0; d < digits; ++d) {
            h = "0123456789abcdef"[(w >> (4 * d)) & 0xF] + h;
        }
        os << h << '\n';
    }
    return os.str();
}

}  // namespace dvbs2::arch
