// Address/shuffle configuration image — the deliverable a hardware
// integrator loads into the IP's configuration RAM for one code rate
// (paper Sec. 4: "The address and shuffling RAM together with the shuffling
// network provides the connectivity of the Tanner graph"; Sec. 5: 0.075 mm²
// suffices to store it).
//
// Word layout (LSB first):  [ addr | shift | last_of_cn ]
//   addr        ⌈log2(ram_words)⌉ bits — IN message RAM address
//   shift       ⌈log2(P)⌉ bits        — cyclic rotation of the network
//   last_of_cn  1 bit                  — marks a check node's final message
//                                        (starts the FU output stage)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/mapping.hpp"

namespace dvbs2::arch {

/// A packed configuration image for one rate.
struct RomImage {
    std::vector<std::uint32_t> words;  ///< one per check-phase cycle
    int addr_bits = 0;
    int shift_bits = 0;

    int bits_per_word() const noexcept { return addr_bits + shift_bits + 1; }
    long long total_bits() const noexcept {
        return static_cast<long long>(words.size()) * bits_per_word();
    }

    /// Unpacks word w back into its fields.
    int addr_of(std::uint32_t w) const noexcept {
        return static_cast<int>(w & ((1u << addr_bits) - 1u));
    }
    int shift_of(std::uint32_t w) const noexcept {
        return static_cast<int>((w >> addr_bits) & ((1u << shift_bits) - 1u));
    }
    bool last_of(std::uint32_t w) const noexcept {
        return ((w >> (addr_bits + shift_bits)) & 1u) != 0;
    }
};

/// Packs the mapping's slot schedule into a ROM image.
RomImage build_rom_image(const HardwareMapping& mapping);

/// Reconstructs a slot schedule from an image and verifies it against the
/// mapping (address, shift and CN-boundary agreement). Returns true iff the
/// image decodes losslessly — the integrator's acceptance check.
bool verify_rom_image(const RomImage& image, const HardwareMapping& mapping);

/// Renders the image as a hex memory file (one word per line, like a
/// Verilog $readmemh input).
std::string to_hex(const RomImage& image);

}  // namespace dvbs2::arch
