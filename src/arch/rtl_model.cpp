#include "arch/rtl_model.hpp"

#include "core/arith.hpp"
#include "core/kernels.hpp"
#include "core/mp_decoder.hpp"
#include "util/error.hpp"

namespace dvbs2::arch {

using quant::QLLR;

struct RtlDecoder::Impl {
    Impl(const code::Dvbs2Code& code_in, const HardwareMapping& mapping_in, const RtlConfig& cfg_in)
        : code(&code_in),
          mapping(&mapping_in),
          cfg(cfg_in),
          table(cfg_in.spec),
          arith(cfg_in.decoder.rule, cfg_in.spec,
                cfg_in.decoder.rule == core::CheckRule::Exact ? &table : nullptr,
                cfg_in.decoder.normalization, cfg_in.decoder.offset) {
        const auto& cp = code->params();
        DVBS2_REQUIRE(&mapping->code() == code, "mapping belongs to a different code");
        const auto words = static_cast<std::size_t>(mapping->ram_words());
        const auto p = static_cast<std::size_t>(cp.parallelism);
        ram.assign(words, std::vector<QLLR>(p, 0));
        ch_in.assign(static_cast<std::size_t>(cp.k), 0);
        ch_p.assign(static_cast<std::size_t>(cp.m()), 0);
        up.assign(static_cast<std::size_t>(cp.m()), 0);
        down.assign(static_cast<std::size_t>(cp.m()), 0);
        boundary.assign(p, 0);
        post_in.assign(static_cast<std::size_t>(cp.k), 0);
        post_p.assign(static_cast<std::size_t>(cp.m()), 0);
        fu_inputs.assign(p, std::vector<QLLR>(static_cast<std::size_t>(cp.check_deg), 0));
    }

    void load_channel(const std::vector<QLLR>& ch) {
        const auto& cp = code->params();
        DVBS2_REQUIRE(ch.size() == static_cast<std::size_t>(cp.n), "channel length mismatch");
        for (int v = 0; v < cp.k; ++v) ch_in[static_cast<std::size_t>(v)] = ch[static_cast<std::size_t>(v)];
        for (int j = 0; j < cp.m(); ++j)
            ch_p[static_cast<std::size_t>(j)] = ch[static_cast<std::size_t>(cp.k + j)];
    }

    void reset() {
        for (auto& word : ram) std::fill(word.begin(), word.end(), 0);
        std::fill(up.begin(), up.end(), 0);
        std::fill(down.begin(), down.end(), 0);
        std::fill(boundary.begin(), boundary.end(), 0);
    }

    /// Variable-node phase: sequential address sweep; FU i serially
    /// accumulates the messages of node (g, i) and writes the extrinsic sums
    /// back to the same addresses (no shuffle needed in this phase — the
    /// storage is information-node aligned).
    void variable_phase() {
        const auto& cp = code->params();
        const int p = cp.parallelism;
        for (int g = 0; g < cp.groups(); ++g) {
            const int base = mapping->row_base(g);
            const int deg = g < cp.groups_hi() ? cp.deg_hi : cp.deg_lo;
            for (int lane = 0; lane < p; ++lane) {
                const int v = g * p + lane;
                QLLR total = ch_in[static_cast<std::size_t>(v)];
                for (int l = 0; l < deg; ++l)
                    total += ram[static_cast<std::size_t>(base + l)][static_cast<std::size_t>(lane)];
                for (int l = 0; l < deg; ++l) {
                    auto& cell = ram[static_cast<std::size_t>(base + l)][static_cast<std::size_t>(lane)];
                    cell = quant::saturate(total - cell, cfg.spec);
                }
            }
        }
    }

    /// Check-node phase: the ROM slot sweep. Runs of kc slots feed each FU's
    /// current local check node; at the end of a run, every FU combines its
    /// serial inputs with the forward register and the stored backward
    /// message, then the outputs are written back through the inverse
    /// shuffle. The forward value crosses into the next local CN inside the
    /// FU; the backward output to the previous CN crosses FU boundaries for
    /// local index 0 (neighbour link, one message per FU).
    void check_phase() {
        const auto& cp = code->params();
        const int p = cp.parallelism;
        const int q = cp.q;
        const int m = cp.m();
        const int kc = mapping->slots_per_cn();
        const auto& slots = mapping->slots();

        // Posterior accumulators restart each check phase.
        for (int v = 0; v < cp.k; ++v)
            post_in[static_cast<std::size_t>(v)] = ch_in[static_cast<std::size_t>(v)];

        // Per-FU forward registers: at local CN 0 they hold the boundary
        // value handed over from the previous iteration.
        std::vector<QLLR> fwd(boundary);

        // Backward boundary latch: FU f's last local CN (c = f·q+q−1) reads
        // up[c], which FU f+1 *rewrites* in its first run of this very
        // phase. The hardware (and the sequential reference schedule) uses
        // the previous iteration's value, so latch it before the sweep.
        std::vector<QLLR> up_boundary_old(static_cast<std::size_t>(p), 0);
        for (int f = 0; f + 1 < p; ++f)
            up_boundary_old[static_cast<std::size_t>(f)] =
                up[static_cast<std::size_t>(q * f + q - 1)];

        QLLR ins[core::kMaxCheckDegree];
        QLLR outs[core::kMaxCheckDegree];
        QLLR pre[core::kMaxCheckDegree];
        QLLR suf[core::kMaxCheckDegree];

        for (int r = 0; r < q; ++r) {
            // kc read cycles: shuffle-aligned words accumulate in the FUs.
            for (int t = 0; t < kc; ++t) {
                const RomSlot& s = slots[static_cast<std::size_t>(r * kc + t)];
                const auto& word = ram[static_cast<std::size_t>(s.addr)];
                for (int f = 0; f < p; ++f) {
                    const int lane = ((f - s.shift) % p + p) % p;
                    fu_inputs[static_cast<std::size_t>(f)][static_cast<std::size_t>(t)] =
                        word[static_cast<std::size_t>(lane)];
                }
            }
            // Output stage per FU.
            for (int f = 0; f < p; ++f) {
                const int c = q * f + r;
                int d = 0;
                for (int t = 0; t < kc; ++t)
                    ins[d++] = fu_inputs[static_cast<std::size_t>(f)][static_cast<std::size_t>(t)];
                int left_pos = -1;
                if (c > 0) {
                    left_pos = d;
                    ins[d++] = quant::saturate(
                        ch_p[static_cast<std::size_t>(c - 1)] + fwd[static_cast<std::size_t>(f)],
                        cfg.spec);
                }
                const int right_pos = d;
                const QLLR up_in = (r == q - 1 && c < m - 1)
                                       ? up_boundary_old[static_cast<std::size_t>(f)]
                                       : up[static_cast<std::size_t>(c)];
                ins[d++] = c < m - 1
                               ? quant::saturate(ch_p[static_cast<std::size_t>(c)] + up_in,
                                                 cfg.spec)
                               : quant::saturate(ch_p[static_cast<std::size_t>(c)], cfg.spec);
                core::compute_extrinsics(arith, ins, d, outs, pre, suf);
                for (int t = 0; t < kc; ++t)
                    fu_inputs[static_cast<std::size_t>(f)][static_cast<std::size_t>(t)] =
                        arith.finalize(outs[t]);
                const QLLR d_out = arith.finalize(outs[right_pos]);
                down[static_cast<std::size_t>(c)] = d_out;
                fwd[static_cast<std::size_t>(f)] = d_out;
                if (c > 0) up[static_cast<std::size_t>(c - 1)] = arith.finalize(outs[left_pos]);
            }
            // Write-back cycles: inverse shuffle to the original lanes.
            for (int t = 0; t < kc; ++t) {
                const RomSlot& s = slots[static_cast<std::size_t>(r * kc + t)];
                auto& word = ram[static_cast<std::size_t>(s.addr)];
                for (int f = 0; f < p; ++f) {
                    const int lane = ((f - s.shift) % p + p) % p;
                    const QLLR msg =
                        fu_inputs[static_cast<std::size_t>(f)][static_cast<std::size_t>(t)];
                    word[static_cast<std::size_t>(lane)] = msg;
                    post_in[static_cast<std::size_t>(mapping->variable_of(s, f))] += msg;
                }
            }
        }

        // Boundary hand-off for the next iteration: FU f starts at CN f·q,
        // whose forward input is the last forward output of FU f−1.
        for (int f = p - 1; f >= 1; --f) boundary[static_cast<std::size_t>(f)] = fwd[static_cast<std::size_t>(f - 1)];
        boundary[0] = 0;  // CN 0 has no left parity input

        // Parity posteriors.
        for (int j = 0; j < m; ++j) {
            QLLR t = ch_p[static_cast<std::size_t>(j)] + down[static_cast<std::size_t>(j)];
            if (j < m - 1) t += up[static_cast<std::size_t>(j)];
            post_p[static_cast<std::size_t>(j)] = t;
        }
    }

    void harden(util::BitVec& cw) const {
        const auto& cp = code->params();
        cw = util::BitVec(static_cast<std::size_t>(cp.n));
        for (int v = 0; v < cp.k; ++v)
            if (post_in[static_cast<std::size_t>(v)] < 0) cw.set(static_cast<std::size_t>(v), true);
        for (int j = 0; j < cp.m(); ++j)
            if (post_p[static_cast<std::size_t>(j)] < 0)
                cw.set(static_cast<std::size_t>(cp.k + j), true);
    }

    const code::Dvbs2Code* code;
    const HardwareMapping* mapping;
    RtlConfig cfg;
    quant::BoxplusTable table;
    core::FixedArith arith;

    std::vector<std::vector<QLLR>> ram;  // [address][lane]
    std::vector<QLLR> ch_in, ch_p;       // channel RAMs
    std::vector<QLLR> up, down;          // PN message RAM + posterior support
    std::vector<QLLR> boundary;          // per-FU forward boundary registers
    std::vector<QLLR> post_in, post_p;
    std::vector<std::vector<QLLR>> fu_inputs;
};

RtlDecoder::RtlDecoder(const code::Dvbs2Code& code, const HardwareMapping& mapping,
                       const RtlConfig& cfg)
    : impl_(std::make_unique<Impl>(code, mapping, cfg)) {}
RtlDecoder::~RtlDecoder() = default;
RtlDecoder::RtlDecoder(RtlDecoder&&) noexcept = default;
RtlDecoder& RtlDecoder::operator=(RtlDecoder&&) noexcept = default;

core::DecodeResult RtlDecoder::decode_raw(const std::vector<QLLR>& ch) {
    auto& im = *impl_;
    const auto& cp = im.code->params();
    im.load_channel(ch);
    im.reset();

    core::DecodeResult result;
    int it = 0;
    bool converged = false;
    const auto& dc = im.cfg.decoder;
    while (it < dc.max_iterations && !converged) {
        im.variable_phase();
        im.check_phase();
        ++it;
        if (dc.early_stop || it == dc.max_iterations) {
            im.harden(result.codeword);
            converged = dc.early_stop && im.code->is_codeword(result.codeword);
        }
    }
    if (dc.max_iterations == 0) im.harden(result.codeword);
    if (!dc.early_stop && dc.max_iterations > 0)
        converged = im.code->is_codeword(result.codeword);
    result.iterations = it;
    result.converged = converged;
    result.info_bits = util::BitVec(static_cast<std::size_t>(cp.k));
    for (int v = 0; v < cp.k; ++v)
        if (result.codeword.get(static_cast<std::size_t>(v)))
            result.info_bits.set(static_cast<std::size_t>(v), true);
    return result;
}

core::DecodeResult RtlDecoder::decode(const std::vector<double>& llr) {
    std::vector<QLLR> q(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i) q[i] = quant::quantize(llr[i], impl_->cfg.spec);
    return decode_raw(q);
}

void RtlDecoder::run_iterations(const std::vector<QLLR>& ch, int iters) {
    auto& im = *impl_;
    im.load_channel(ch);
    im.reset();
    for (int i = 0; i < iters; ++i) {
        im.variable_phase();
        im.check_phase();
    }
}

std::vector<QLLR> RtlDecoder::dump_c2v_canonical() const {
    const auto& im = *impl_;
    const auto& cp = im.code->params();
    const int p = cp.parallelism;
    std::vector<QLLR> c2v(static_cast<std::size_t>(cp.e_in()), 0);
    for (const auto& s : im.mapping->slots()) {
        const auto& word = im.ram[static_cast<std::size_t>(s.addr)];
        for (int f = 0; f < p; ++f) {
            const int lane = ((f - s.shift) % p + p) % p;
            c2v[static_cast<std::size_t>(im.mapping->edge_of(s, f))] =
                word[static_cast<std::size_t>(lane)];
        }
    }
    return c2v;
}

IterationStats RtlDecoder::iteration_stats() const {
    return simulate_iteration(*impl_->mapping, impl_->cfg.memory);
}

long long RtlDecoder::total_cycles(int iterations, int io_parallelism) const {
    const auto st = iteration_stats();
    const auto& cp = impl_->code->params();
    const long long io = (cp.n + io_parallelism - 1) / io_parallelism;
    return io + static_cast<long long>(iterations) * st.cycles_per_iteration();
}

}  // namespace dvbs2::arch
