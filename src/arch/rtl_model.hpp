// Cycle-driven behavioural model of the synthesizable IP core (paper
// Sec. 4, Fig. 4/5).
//
// This is the structural twin of the VHDL design: P functional units, the
// P-lane-wide IN message RAM addressed through the address/shuffle ROM, the
// cyclic shuffle network (read direction: rotate by s; write-back: rotate
// by −s, "shuffled back to their original position"), the parity-message
// RAM holding only the backward zigzag messages, per-FU forward registers
// with the segment-boundary hand-off between neighbouring FUs, and the
// channel RAMs.
//
// Functional correctness: bit-exact with
//   core::FixedDecoder{Schedule::ZigzagSegmented, cn_order =
//   mapping.extract_cn_order()}
// because both compute through core::compute_extrinsics over the same input
// sequences with the same saturating integer arithmetic (experiment E10).
//
// Timing: cycle counts come from the conflict simulator over the same
// mapping (reads, write-back bank conflicts, buffer drain).
#pragma once

#include <memory>
#include <vector>

#include "arch/conflict.hpp"
#include "arch/mapping.hpp"
#include "core/decoder.hpp"

namespace dvbs2::arch {

/// Configuration of the RTL model. The schedule is inherently the segmented
/// zigzag (that *is* the hardware); DecoderConfig::schedule is ignored.
struct RtlConfig {
    core::DecoderConfig decoder;        ///< rule, iterations, early stop
    quant::QuantSpec spec = quant::kQuant6;
    MemoryConfig memory;                ///< banks/latency for cycle accounting
};

/// The decoder IP model.
class RtlDecoder {
public:
    /// `code` and `mapping` must outlive the decoder; `mapping` must belong
    /// to `code`.
    RtlDecoder(const code::Dvbs2Code& code, const HardwareMapping& mapping,
               const RtlConfig& cfg);
    ~RtlDecoder();
    RtlDecoder(RtlDecoder&&) noexcept;
    RtlDecoder& operator=(RtlDecoder&&) noexcept;

    /// Full decode from quantized channel values (size N).
    core::DecodeResult decode_raw(const std::vector<quant::QLLR>& ch);

    /// Decode from float LLRs (quantized internally, like the input stage).
    core::DecodeResult decode(const std::vector<double>& llr);

    /// Runs exactly `iters` iterations without early stop (for message-level
    /// equivalence checks).
    void run_iterations(const std::vector<quant::QLLR>& ch, int iters);

    /// RAM state translated to the canonical check-major edge order of the
    /// algorithmic decoder (valid after a check phase: CN→VN messages).
    std::vector<quant::QLLR> dump_c2v_canonical() const;

    /// Memory-conflict/cycle statistics of one iteration on this mapping.
    IterationStats iteration_stats() const;

    /// Total decode cycles for `iterations` iterations including the I/O
    /// share (C/P_IO with io_parallelism values per cycle).
    long long total_cycles(int iterations, int io_parallelism = 10) const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace dvbs2::arch
