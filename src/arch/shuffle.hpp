// Cyclic shuffle network model (paper Sec. 3/4, "shuffling network Π").
//
// The node mapping reduces the arbitrary permutation Π of the Tanner graph
// to cyclic rotations of a P-lane word — realizable as a logarithmic barrel
// shifter instead of a full crossbar, which is why the paper reports only
// 0.55 mm² and no routing congestion for it.
#pragma once

#include <vector>

#include "util/error.hpp"

namespace dvbs2::arch {

/// Rotates `word` left by `shift` lanes: out[(i + shift) mod P] = in[i].
/// This is the forward (check-phase read) direction; rotating by −shift
/// restores the original lane order (write-back direction).
template <typename T>
std::vector<T> rotate_lanes(const std::vector<T>& word, int shift) {
    const int p = static_cast<int>(word.size());
    DVBS2_REQUIRE(p > 0, "empty word");
    std::vector<T> out(word.size());
    const int s = ((shift % p) + p) % p;
    for (int i = 0; i < p; ++i) out[static_cast<std::size_t>((i + s) % p)] = word[static_cast<std::size_t>(i)];
    return out;
}

/// Structural statistics of a barrel shifter for P lanes of `width` bits:
/// ⌈log2(P)⌉ stages of 2:1 multiplexers per bit-lane.
struct ShuffleNetworkStats {
    int lanes = 0;
    int width = 0;
    int stages = 0;
    long long mux2_count = 0;  ///< total 2:1 mux positions (lanes·width·stages)
};

inline ShuffleNetworkStats shuffle_network_stats(int lanes, int width) {
    DVBS2_REQUIRE(lanes > 0 && width > 0, "bad network dimensions");
    int stages = 0;
    while ((1 << stages) < lanes) ++stages;
    return {lanes, width, stages,
            static_cast<long long>(lanes) * width * stages};
}

}  // namespace dvbs2::arch
