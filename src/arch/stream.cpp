#include "arch/stream.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dvbs2::arch {

StreamReport simulate_stream(const HardwareMapping& mapping, const StreamConfig& cfg,
                             int num_frames) {
    DVBS2_REQUIRE(num_frames >= 1, "need at least one frame");
    DVBS2_REQUIRE(cfg.io_parallelism > 0 && cfg.iterations >= 1, "bad stream config");
    DVBS2_REQUIRE(cfg.clock_hz > 0.0, "clock_hz must be positive");

    const auto& cp = mapping.code().params();
    const long long io_cycles = (cp.n + cfg.io_parallelism - 1) / cfg.io_parallelism;
    const auto iter = simulate_iteration(mapping, cfg.memory);
    const long long decode_cycles =
        static_cast<long long>(cfg.iterations) * iter.cycles_per_iteration();

    StreamReport rep;
    rep.frames.resize(static_cast<std::size_t>(num_frames));
    for (int n = 0; n < num_frames; ++n) {
        FrameTiming& f = rep.frames[static_cast<std::size_t>(n)];
        // Double-buffered channel RAM: frame n reuses the buffer frame n−2
        // decoded from; its input can only start once that decode finished.
        const long long prev_in_done =
            n >= 1 ? rep.frames[static_cast<std::size_t>(n - 1)].input_done : 0;
        const long long buffer_free =
            n >= 2 ? rep.frames[static_cast<std::size_t>(n - 2)].decode_done : 0;
        f.input_start = std::max(prev_in_done, buffer_free);
        if (n >= 1) rep.io_stall_cycles += f.input_start - prev_in_done;
        f.input_done = f.input_start + io_cycles;

        const long long core_free =
            n >= 1 ? rep.frames[static_cast<std::size_t>(n - 1)].decode_done : 0;
        f.decode_start = std::max(f.input_done, core_free);
        if (n >= 1) rep.core_idle_cycles += f.decode_start - core_free;
        f.decode_done = f.decode_start + decode_cycles;

        // Result streaming overlaps the next frame's input (paper Eq. 7).
        const long long out_port_free =
            n >= 1 ? rep.frames[static_cast<std::size_t>(n - 1)].output_done : 0;
        f.output_done = std::max(f.decode_done, out_port_free) + io_cycles;
    }
    rep.total_cycles = rep.frames.back().output_done;
    rep.first_frame_latency_s =
        static_cast<double>(rep.frames.front().latency()) / cfg.clock_hz;
    const long long span =
        num_frames >= 2 ? rep.frames.back().decode_done - rep.frames.front().decode_done : 0;
    if (span > 0) {
        rep.steady_info_bps = static_cast<double>(cp.k) * (num_frames - 1) /
                              (static_cast<double>(span) / cfg.clock_hz);
    } else {
        // One frame, or a degenerate mapping whose decode phase costs zero
        // cycles (span == 0): no steady state exists, so report the whole-run
        // rate instead of dividing by zero. total_cycles >= io_cycles >= 1.
        rep.steady_info_bps = static_cast<double>(cp.k) * num_frames /
                              (static_cast<double>(rep.total_cycles) / cfg.clock_hz);
    }
    return rep;
}

}  // namespace dvbs2::arch
