// Frame-stream timing model — paper Eq. 7's I/O overlap:
//
//   "The decoder is capable to receive 10 channel values per clock cycle.
//    Reading a new codeword of size C and writing the result of the prior
//    processed block can be done in parallel with reading/writing P_IO data
//    concurrently."
//
// The channel RAM is double-buffered: while block n is decoded (It
// iterations of the core), block n+1 streams in and block n−1 streams out.
// Per-frame latency and steady-state throughput therefore differ: the
// stream simulator tracks both over a sequence of frames, including the
// stall case where decode time is shorter than the I/O time (high P_IO
// pressure at low iteration counts).
#pragma once

#include <vector>

#include "arch/conflict.hpp"
#include "arch/mapping.hpp"

namespace dvbs2::arch {

/// Operating point of the stream simulation.
struct StreamConfig {
    int iterations = 30;
    int io_parallelism = 10;
    double clock_hz = 270e6;
    MemoryConfig memory;  ///< per-iteration cycle model
};

/// Timing of one frame in the stream.
struct FrameTiming {
    long long input_start = 0;   ///< cycle the first channel value arrives
    long long input_done = 0;    ///< input buffer filled
    long long decode_start = 0;  ///< core starts (input done AND core free)
    long long decode_done = 0;
    long long output_done = 0;   ///< result fully streamed out
    long long latency() const { return output_done - input_start; }
};

/// Aggregate result of streaming `frames` codewords back to back.
struct StreamReport {
    std::vector<FrameTiming> frames;
    long long total_cycles = 0;          ///< first input to last output
    double steady_info_bps = 0.0;        ///< K·(n−1)/(time between frame 1 and n); for a
                                         ///< single frame (or a degenerate zero-span
                                         ///< mapping) the whole-run rate K·n/total time
    double first_frame_latency_s = 0.0;
    long long core_idle_cycles = 0;      ///< decode engine stalls waiting for input
    long long io_stall_cycles = 0;       ///< input waits for the decode buffer
};

/// Simulates `num_frames` frames through the double-buffered pipeline.
StreamReport simulate_stream(const HardwareMapping& mapping, const StreamConfig& cfg,
                             int num_frames);

}  // namespace dvbs2::arch
