#include "arch/throughput.hpp"

#include "util/error.hpp"

namespace dvbs2::arch {

ThroughputReport throughput(const code::CodeParams& params, const ThroughputConfig& cfg) {
    DVBS2_REQUIRE(cfg.io_parallelism > 0 && cfg.iterations >= 0, "bad throughput config");
    ThroughputReport r;
    r.io_cycles = (params.n + cfg.io_parallelism - 1) / cfg.io_parallelism;
    r.cycles_per_iter = 2 * params.addr_words() + cfg.latency_per_iteration;
    r.total_cycles = r.io_cycles + static_cast<long long>(cfg.iterations) * r.cycles_per_iter;
    const double block_time = static_cast<double>(r.total_cycles) / cfg.clock_hz;
    r.info_throughput_bps = static_cast<double>(params.k) / block_time;
    r.coded_throughput_bps = static_cast<double>(params.n) / block_time;
    return r;
}

int max_iterations_at(const code::CodeParams& params, const ThroughputConfig& cfg,
                      double target_info_bps) {
    DVBS2_REQUIRE(target_info_bps > 0.0, "target must be positive");
    // total_cycles ≤ K·f/target  ⇒  It ≤ (budget − io) / per_iter.
    const double budget = static_cast<double>(params.k) * cfg.clock_hz / target_info_bps;
    const long long io = (params.n + cfg.io_parallelism - 1) / cfg.io_parallelism;
    const long long per_iter = 2 * params.addr_words() + cfg.latency_per_iteration;
    const double it = (budget - static_cast<double>(io)) / static_cast<double>(per_iter);
    return it < 0.0 ? 0 : static_cast<int>(it);
}

}  // namespace dvbs2::arch
