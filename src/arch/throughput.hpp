// Decoder throughput model (paper Eq. 7/8).
//
//   T = I / ( C/P_IO + It · (2·E_IN/P + T_latency) ) · f_cycle
//
// C/P_IO is the I/O share (reading a new codeword of C channel values and
// writing the previous result overlap, P_IO values per cycle); each of the
// It iterations needs E_IN/P read cycles per phase (two phases) plus the
// pipeline/network latency. The paper's operating point: P = 360,
// P_IO = 10, It = 30, f = 270 MHz (ST 0.13 µm worst case), which meets the
// 255 Mbit/s DVB-S2 base-station requirement.
#pragma once

#include <vector>

#include "code/params.hpp"

namespace dvbs2::arch {

/// Operating point of the throughput model.
struct ThroughputConfig {
    double clock_hz = 270e6;  ///< paper Sec. 5: 270 MHz worst case
    int io_parallelism = 10;  ///< P_IO channel values accepted per cycle
    int iterations = 30;      ///< paper Sec. 5: 30 iterations assumed
    int latency_per_iteration = 24;  ///< T_latency: FU pipeline + shuffle + drain
};

/// Cycle/throughput figures for one code.
struct ThroughputReport {
    long long io_cycles = 0;        ///< C / P_IO
    long long cycles_per_iter = 0;  ///< 2·E_IN/P + T_latency
    long long total_cycles = 0;     ///< io + It·per_iter
    double info_throughput_bps = 0.0;   ///< K bits per block
    double coded_throughput_bps = 0.0;  ///< N bits per block
};

/// Evaluates Eq. 8 for one parameter set.
ThroughputReport throughput(const code::CodeParams& params, const ThroughputConfig& cfg);

/// Iterations sustainable at a target information throughput (inverse of
/// Eq. 8) — how the paper's "30 iterations at 255 Mbit/s" trade-off is read.
int max_iterations_at(const code::CodeParams& params, const ThroughputConfig& cfg,
                      double target_info_bps);

}  // namespace dvbs2::arch
