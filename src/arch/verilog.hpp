// Synthesizable-Verilog generation for the IP's structural blocks.
//
// The paper's deliverable is a synthesizable VHDL model; this module emits
// the equivalent RTL for the blocks whose structure this library computes:
//   * the logarithmic barrel shifter (the "shuffling network Π"),
//   * the boxplus functional-unit kernel with its correction ROM (the
//     check-node datapath of Sec. 3, bit-exact with quant::BoxplusTable),
//   * the per-rate address/shuffle configuration ROM (Sec. 4).
// Each generator also produces a self-checking testbench plus golden
// stimulus/response vectors computed by the C++ model, so an integrator
// can verify the RTL in any simulator against exactly the behaviour the
// bit-accurate decoder was validated with (experiment E10).
//
// No simulator is invoked here; the C++ tests validate the generators
// structurally (ports, widths, vector counts, ROM contents) and the
// semantics via the shared C++ reference functions.
#pragma once

#include <string>

#include "arch/mapping.hpp"
#include "arch/rom_image.hpp"
#include "arch/shuffle.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::arch {

/// A generated RTL block: the module source, a self-checking testbench and
/// a golden vector file (testbench reads it with $readmemh).
struct VerilogBundle {
    std::string module_name;
    std::string module_source;
    std::string testbench_source;
    std::string vector_file_name;
    std::string vectors;  ///< hex lines, one concatenated vector per line
    int vector_count = 0;
};

/// Logarithmic barrel shifter: `lanes` lanes of `width` bits, rotate-left
/// by the `shift` input (⌈log2 lanes⌉ stages of 2:1 muxes — the Table-3
/// "shuffling network"). `vectors` random rotations are generated with
/// rotate_lanes as the golden model.
VerilogBundle generate_barrel_shifter(int lanes, int width, int vectors = 32,
                                      std::uint64_t seed = 1);

/// Boxplus kernel: two signed `spec.total_bits`-bit messages in, one out;
/// sign·min datapath plus the correction ROM of quant::BoxplusTable,
/// saturating — the core of the check-node functional unit. The golden
/// vectors exhaustively cover the input space for widths ≤ 6 bits.
VerilogBundle generate_boxplus_unit(const quant::QuantSpec& spec);

/// Address/shuffle configuration ROM for one rate: a synchronous ROM
/// initialized from the packed RomImage (words addressed by the check-phase
/// cycle counter). Vectors replay the full schedule.
VerilogBundle generate_config_rom(const HardwareMapping& mapping, const std::string& rate_label);

}  // namespace dvbs2::arch
