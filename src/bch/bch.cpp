#include "bch/bch.hpp"

#include <algorithm>

namespace dvbs2::bch {

namespace {

/// Dense binary polynomial, coefficient of x^i at bit i of words[i/64].
using BitPoly = std::vector<std::uint64_t>;

bool bit_of(const BitPoly& p, int i) { return (p[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1u; }

void set_bit(BitPoly& p, int i) { p[static_cast<std::size_t>(i >> 6)] |= std::uint64_t{1} << (i & 63); }

}  // namespace

struct BchCode::Impl {
    Impl(int m_in, int t_in, int n_in) : gf(m_in), t(t_in), n(n_in) {
        DVBS2_REQUIRE(t >= 1, "t must be at least 1");
        DVBS2_REQUIRE(n <= static_cast<int>(gf.order()), "n exceeds 2^m - 1");

        // Generator polynomial: product of the minimal polynomials of
        // alpha^i for i = 1, 3, ..., 2t-1 (one per cyclotomic coset).
        std::vector<char> in_coset(gf.order() + 1, 0);
        // Coefficients of g over GF(2^m) during construction (they are all
        // 0/1 at the end because each factor is a complete coset product).
        std::vector<std::uint32_t> g = {1};
        for (int i = 1; i <= 2 * t - 1; i += 2) {
            if (in_coset[static_cast<std::size_t>(i)]) continue;
            // Walk the coset {i·2^j mod order}.
            std::uint64_t e = static_cast<std::uint64_t>(i);
            do {
                in_coset[static_cast<std::size_t>(e)] = 1;
                // Multiply g by (x + alpha^e).
                const std::uint32_t root = gf.exp(e);
                g.push_back(0);
                for (std::size_t d = g.size() - 1; d > 0; --d)
                    g[d] = g[d - 1] ^ gf.mul(g[d], root);
                g[0] = gf.mul(g[0], root);
                e = (e * 2) % gf.order();
            } while (e != static_cast<std::uint64_t>(i));
        }
        for (std::uint32_t c : g)
            DVBS2_REQUIRE(c <= 1, "generator polynomial has a non-binary coefficient");
        parity = static_cast<int>(g.size()) - 1;
        DVBS2_REQUIRE(n > parity, "codeword too short for the parity bits");

        gen.assign(static_cast<std::size_t>((parity + 64) / 64), 0);
        for (int d = 0; d < parity; ++d)  // store g without the leading term
            if (g[static_cast<std::size_t>(d)]) set_bit(gen, d);
    }

    /// LFSR division: remainder of x^parity · info(x) by g(x). Info bit 0 is
    /// the highest-degree coefficient (transmission order).
    std::vector<std::uint64_t> remainder(const util::BitVec& info) const {
        BitPoly rem(gen.size(), 0);
        const int words = static_cast<int>(gen.size());
        const int top = parity - 1;
        for (std::size_t j = 0; j < info.size(); ++j) {
            const bool fb = bit_of(rem, top) ^ info.get(j);
            // Shift left by one across words.
            for (int w = words - 1; w > 0; --w)
                rem[static_cast<std::size_t>(w)] = (rem[static_cast<std::size_t>(w)] << 1) |
                                                   (rem[static_cast<std::size_t>(w - 1)] >> 63);
            rem[0] <<= 1;
            if (fb)
                for (int w = 0; w < words; ++w) rem[static_cast<std::size_t>(w)] ^= gen[static_cast<std::size_t>(w)];
            // Mask above the top bit to keep the invariant deg < parity.
            const int top_word = top >> 6;
            const int top_bit = top & 63;
            if (top_bit != 63)
                rem[static_cast<std::size_t>(top_word)] &= (std::uint64_t{1} << (top_bit + 1)) - 1;
        }
        return rem;
    }

    /// Syndromes S_1..S_2t of a received word (bit j = coefficient of
    /// x^(n-1-j)). All zero iff the word is a codeword.
    std::vector<std::uint32_t> syndromes(const util::BitVec& word) const {
        std::vector<std::uint32_t> s(static_cast<std::size_t>(2 * t), 0);
        for (int i = 1; i <= 2 * t; ++i) {
            // Horner: val = ((b_0 α^i + b_1) α^i + b_2) ...
            std::uint32_t val = 0;
            const std::uint32_t ai = gf.exp(static_cast<std::uint64_t>(i));
            for (std::size_t j = 0; j < word.size(); ++j) {
                val = gf.mul(val, ai);
                if (word.get(j)) val ^= 1u;
            }
            s[static_cast<std::size_t>(i - 1)] = val;
        }
        return s;
    }

    GaloisField gf;
    int t;
    int n;
    int parity = 0;
    BitPoly gen;  // g(x) without the leading x^parity term
};

BchCode::BchCode(int m, int t, int n) : impl_(std::make_unique<Impl>(m, t, n)) {}
BchCode::~BchCode() = default;
BchCode::BchCode(BchCode&&) noexcept = default;
BchCode& BchCode::operator=(BchCode&&) noexcept = default;

int BchCode::n() const noexcept { return impl_->n; }
int BchCode::k() const noexcept { return impl_->n - impl_->parity; }
int BchCode::t() const noexcept { return impl_->t; }
int BchCode::parity_bits() const noexcept { return impl_->parity; }

util::BitVec BchCode::encode(const util::BitVec& info) const {
    DVBS2_REQUIRE(info.size() == static_cast<std::size_t>(k()), "info length mismatch");
    util::BitVec cw(static_cast<std::size_t>(n()));
    for (std::size_t j = 0; j < info.size(); ++j)
        if (info.get(j)) cw.set(j, true);
    const auto rem = impl_->remainder(info);
    // Parity bits follow, highest-degree remainder coefficient first.
    for (int d = impl_->parity - 1; d >= 0; --d)
        if (bit_of(rem, d))
            cw.set(info.size() + static_cast<std::size_t>(impl_->parity - 1 - d), true);
    return cw;
}

bool BchCode::is_codeword(const util::BitVec& word) const {
    DVBS2_REQUIRE(word.size() == static_cast<std::size_t>(n()), "length mismatch");
    const auto s = impl_->syndromes(word);
    return std::all_of(s.begin(), s.end(), [](std::uint32_t v) { return v == 0; });
}

BchDecodeResult BchCode::decode(const util::BitVec& word) const {
    DVBS2_REQUIRE(word.size() == static_cast<std::size_t>(n()), "length mismatch");
    const auto& gf = impl_->gf;
    const int t = impl_->t;

    BchDecodeResult out;
    out.codeword = word;

    const auto s = impl_->syndromes(word);
    if (std::all_of(s.begin(), s.end(), [](std::uint32_t v) { return v == 0; })) {
        out.success = true;
        return out;
    }

    // Berlekamp–Massey: find the shortest LFSR (error locator sigma) that
    // generates the syndrome sequence.
    std::vector<std::uint32_t> sigma = {1}, prev = {1};
    int L = 0, shift = 1;
    std::uint32_t prev_disc = 1;
    for (int step = 0; step < 2 * t; ++step) {
        std::uint32_t disc = s[static_cast<std::size_t>(step)];
        for (int i = 1; i <= L && i < static_cast<int>(sigma.size()); ++i)
            disc ^= gf.mul(sigma[static_cast<std::size_t>(i)], s[static_cast<std::size_t>(step - i)]);
        if (disc == 0) {
            ++shift;
            continue;
        }
        const std::uint32_t factor = gf.div(disc, prev_disc);
        std::vector<std::uint32_t> next = sigma;
        if (next.size() < prev.size() + static_cast<std::size_t>(shift))
            next.resize(prev.size() + static_cast<std::size_t>(shift), 0);
        for (std::size_t i = 0; i < prev.size(); ++i)
            next[i + static_cast<std::size_t>(shift)] ^= gf.mul(factor, prev[i]);
        if (2 * L <= step) {
            prev = sigma;
            prev_disc = disc;
            L = step + 1 - L;
            shift = 1;
        } else {
            ++shift;
        }
        sigma = std::move(next);
    }
    while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
    const int deg = static_cast<int>(sigma.size()) - 1;
    if (L > t || deg != L) return out;  // uncorrectable

    // Chien search: position j (coefficient of x^(n-1-j)) is in error iff
    // sigma(alpha^{-(n-1-j)}) = 0.
    int found = 0;
    for (int j = 0; j < impl_->n && found < L; ++j) {
        const std::uint64_t e = static_cast<std::uint64_t>(impl_->n - 1 - j) % gf.order();
        const std::uint32_t x = gf.exp(gf.order() - static_cast<std::uint32_t>(e % gf.order()));
        // Evaluate sigma at x (Horner).
        std::uint32_t val = sigma.back();
        for (int d = deg - 1; d >= 0; --d)
            val = gf.mul(val, x) ^ sigma[static_cast<std::size_t>(d)];
        if (val == 0) {
            out.codeword.flip(static_cast<std::size_t>(j));
            ++found;
        }
    }
    if (found != L) return out;  // roots outside the shortened range
    out.errors_corrected = found;
    out.success = true;
    return out;
}

Dvbs2BchParams dvbs2_bch_params(code::CodeRate rate) {
    // EN 302 307 Table 5a (long frames): N_bch = K_ldpc, t per rate.
    const auto p = code::standard_params(rate, code::FrameSize::Long);
    int t = 12;
    if (rate == code::CodeRate::R2_3 || rate == code::CodeRate::R5_6) t = 10;
    if (rate == code::CodeRate::R8_9 || rate == code::CodeRate::R9_10) t = 8;
    return {t, p.k, p.k - 16 * t};
}

}  // namespace dvbs2::bch
