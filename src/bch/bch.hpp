// Binary BCH codec — the outer code of the DVB-S2 FEC frame.
//
// DVB-S2 concatenates a t-error-correcting BCH code (t ∈ {8, 10, 12},
// GF(2^16)) with the LDPC inner code: BCHFEC output length equals K_ldpc.
// The DATE'05 paper covers only the LDPC decoder; this module completes the
// FEC chain so the repository is usable as a full DVB-S2 FEC stack (see
// examples/fec_chain.cpp).
//
// Generic construction: g(x) = lcm of the minimal polynomials of
// α, α³, …, α^(2t−1); systematic encoding by LFSR division; decoding by
// syndrome computation, Berlekamp–Massey, and Chien search (binary code:
// error magnitudes are all 1). Shortening is implicit: any k ≤ k_max is
// encoded as if the leading information bits were zero.
#pragma once

#include <memory>
#include <optional>

#include "bch/gf.hpp"
#include "code/params.hpp"
#include "util/bitvec.hpp"

namespace dvbs2::bch {

/// Outcome of a BCH decode.
struct BchDecodeResult {
    util::BitVec codeword;     ///< corrected codeword (same length as input)
    int errors_corrected = 0;  ///< number of bit flips applied
    bool success = false;      ///< false → more than t errors detected
};

/// A t-error-correcting binary BCH code over GF(2^m), shortened to length
/// `n` (information length n − parity_bits()).
class BchCode {
public:
    /// Builds the code. `n` ≤ 2^m − 1 is the (shortened) codeword length;
    /// it must leave at least one information bit after the m·t-ish parity.
    BchCode(int m, int t, int n);
    ~BchCode();
    BchCode(BchCode&&) noexcept;
    BchCode& operator=(BchCode&&) noexcept;

    int n() const noexcept;            ///< codeword length
    int k() const noexcept;            ///< information length
    int t() const noexcept;            ///< correctable errors
    int parity_bits() const noexcept;  ///< deg g(x)

    /// Systematic encode: information bits first, then parity.
    util::BitVec encode(const util::BitVec& info) const;

    /// True iff all syndromes vanish.
    bool is_codeword(const util::BitVec& word) const;

    /// Decodes (corrects up to t bit errors in place of a copy).
    BchDecodeResult decode(const util::BitVec& word) const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// The DVB-S2 outer-code parameters for a long-frame LDPC rate:
/// N_bch = K_ldpc, with t and K_bch per EN 302 307 Table 5a.
struct Dvbs2BchParams {
    int t = 0;
    int n_bch = 0;  ///< = K_ldpc
    int k_bch = 0;  ///< = N_bch − 16·t
};

Dvbs2BchParams dvbs2_bch_params(code::CodeRate rate);

}  // namespace dvbs2::bch
