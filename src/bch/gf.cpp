#include "bch/gf.hpp"

namespace dvbs2::bch {

std::uint32_t GaloisField::default_primitive_poly(int m) {
    // Standard primitive polynomials (Lin & Costello, Appendix A).
    switch (m) {
        case 2: return 0x7;        // x^2+x+1
        case 3: return 0xB;        // x^3+x+1
        case 4: return 0x13;       // x^4+x+1
        case 5: return 0x25;       // x^5+x^2+1
        case 6: return 0x43;       // x^6+x+1
        case 7: return 0x89;       // x^7+x^3+1
        case 8: return 0x11D;      // x^8+x^4+x^3+x^2+1
        case 9: return 0x211;      // x^9+x^4+1
        case 10: return 0x409;     // x^10+x^3+1
        case 11: return 0x805;     // x^11+x^2+1
        case 12: return 0x1053;    // x^12+x^6+x^4+x+1
        case 13: return 0x201B;    // x^13+x^4+x^3+x+1
        case 14: return 0x4443;    // x^14+x^10+x^6+x+1
        case 15: return 0x8003;    // x^15+x+1
        case 16: return 0x1100B;   // x^16+x^12+x^3+x+1
        default: throw std::runtime_error("GF(2^m) supported for 2 <= m <= 16");
    }
}

GaloisField::GaloisField(int m, std::uint32_t prim_poly) : m_(m) {
    DVBS2_REQUIRE(m >= 2 && m <= 16, "GF(2^m) supported for 2 <= m <= 16");
    if (prim_poly == 0) prim_poly = default_primitive_poly(m);
    order_ = (1u << m) - 1u;
    exp_.assign(order_, 0);
    log_.assign(order_ + 1u, 0);

    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < order_; ++i) {
        DVBS2_REQUIRE(!(i > 0 && x == 1),
                      "polynomial is not primitive: alpha has order " + std::to_string(i));
        exp_[i] = x;
        log_[x] = i;
        x <<= 1;
        if (x > order_) x ^= prim_poly;
    }
    DVBS2_REQUIRE((exp_[order_ - 1] << 1 > order_
                       ? ((exp_[order_ - 1] << 1) ^ prim_poly)
                       : exp_[order_ - 1] << 1) == 1,
                  "polynomial does not generate the full multiplicative group");
}

}  // namespace dvbs2::bch
