// Galois-field arithmetic GF(2^m) for the BCH outer code.
//
// The DVB-S2 FEC frame is BCH ⊕ LDPC: the standard protects each LDPC
// information block with a t-error-correcting binary BCH code over
// GF(2^16). This module provides exp/log-table arithmetic for 2 ≤ m ≤ 16
// with verified-primitive default polynomials.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace dvbs2::bch {

/// GF(2^m) with exp/log tables. Elements are integers in [0, 2^m);
/// 0 is the additive zero, alpha = 2 (the polynomial "x") is primitive.
class GaloisField {
public:
    /// Constructs GF(2^m) from `prim_poly` (bit i = coefficient of x^i,
    /// including the leading x^m term). Pass 0 to use the built-in
    /// primitive polynomial for m. Throws if the polynomial is not
    /// primitive (verified during table construction).
    explicit GaloisField(int m, std::uint32_t prim_poly = 0);

    int m() const noexcept { return m_; }
    /// Field size minus one: the multiplicative order 2^m − 1.
    std::uint32_t order() const noexcept { return order_; }

    /// alpha^i for any non-negative i (reduced mod order).
    std::uint32_t exp(std::uint64_t i) const noexcept { return exp_[i % order_]; }

    /// Discrete log base alpha; x must be non-zero.
    std::uint32_t log(std::uint32_t x) const noexcept {
        DVBS2_ASSERT(x != 0 && x <= order_);
        return log_[x];
    }

    std::uint32_t mul(std::uint32_t a, std::uint32_t b) const noexcept {
        if (a == 0 || b == 0) return 0;
        return exp_[(static_cast<std::uint64_t>(log_[a]) + log_[b]) % order_];
    }

    /// Multiplicative inverse; x must be non-zero.
    std::uint32_t inv(std::uint32_t x) const noexcept {
        DVBS2_ASSERT(x != 0);
        return exp_[(order_ - log_[x]) % order_];
    }

    std::uint32_t div(std::uint32_t a, std::uint32_t b) const noexcept {
        DVBS2_ASSERT(b != 0);
        if (a == 0) return 0;
        return exp_[(static_cast<std::uint64_t>(log_[a]) + order_ - log_[b]) % order_];
    }

    /// Default primitive polynomial for GF(2^m), 2 ≤ m ≤ 16.
    static std::uint32_t default_primitive_poly(int m);

private:
    int m_;
    std::uint32_t order_;
    std::vector<std::uint32_t> exp_;  // size order_ (indices 0..order_-1)
    std::vector<std::uint32_t> log_;  // size order_+1 (log_[0] unused)
};

}  // namespace dvbs2::bch
