#include "code/girth.hpp"

#include <queue>
#include <unordered_map>

#include "util/error.hpp"

namespace dvbs2::code {

namespace {

/// Node encoding for the bipartite BFS: variables are [0, N), checks are
/// N + c.
struct Visit {
    int dist;
    int branch;  ///< which neighbor-of-start subtree this node belongs to
};

/// Enumerates the neighbors of a node, invoking fn(neighbor).
template <typename Fn>
void for_neighbors(const Dvbs2Code& code, int node, Fn&& fn) {
    const int n = code.n();
    const int k = code.k();
    const int m = code.m();
    const int kc = code.check_in_degree();
    if (node < n) {
        if (node < k) {
            const long long* edges = code.info_edges(node);
            for (int d = 0; d < code.info_degree(node); ++d)
                fn(n + code.edge_check(edges[d]));
        } else {
            const int j = node - k;
            fn(n + j);
            if (j + 1 < m) fn(n + j + 1);
        }
    } else {
        const int c = node - n;
        const long long base = static_cast<long long>(c) * kc;
        for (int d = 0; d < kc; ++d) fn(static_cast<int>(code.edge_variable(base + d)));
        fn(k + c);
        if (c > 0) fn(k + c - 1);
    }
}

}  // namespace

int local_girth(const Dvbs2Code& code, int v, int cap) {
    DVBS2_REQUIRE(v >= 0 && v < code.n(), "variable index out of range");
    DVBS2_REQUIRE(cap >= 4 && cap % 2 == 0, "cap must be an even length >= 4");

    // Branch-labeled BFS: a cycle through v corresponds to two BFS paths
    // from v that diverge immediately (different first-hop branches) and
    // meet at an edge (u, w). Its length is dist(u) + dist(w) + 1.
    std::unordered_map<int, Visit> seen;
    std::queue<int> frontier;
    seen.emplace(v, Visit{0, -1});
    int branch_id = 0;
    for_neighbors(code, v, [&](int nb) {
        // Parallel edges would be a 2-cycle; the graph has none (enforced by
        // construction), so each first-hop neighbor is distinct.
        if (!seen.emplace(nb, Visit{1, branch_id}).second) return;
        frontier.push(nb);
        ++branch_id;
    });

    int best = cap;
    const int max_depth = cap / 2;
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        const Visit vu = seen.at(u);
        if (vu.dist >= max_depth) continue;
        for_neighbors(code, u, [&](int w) {
            if (w == v) return;
            auto it = seen.find(w);
            if (it == seen.end()) {
                seen.emplace(w, Visit{vu.dist + 1, vu.branch});
                frontier.push(w);
            } else if (it->second.branch != vu.branch && it->second.branch != -1) {
                const int len = vu.dist + it->second.dist + 1;
                if (len < best) best = len;
            }
        });
    }
    return best;
}

std::vector<int> girth_histogram(const Dvbs2Code& code, int samples, int cap) {
    DVBS2_REQUIRE(samples >= 1, "need at least one sample");
    std::vector<int> hist(static_cast<std::size_t>(cap) + 1, 0);
    const int stride = std::max(1, code.n() / samples);
    for (int v = 0; v < code.n(); v += stride)
        ++hist[static_cast<std::size_t>(local_girth(code, v, cap))];
    return hist;
}

}  // namespace dvbs2::code
