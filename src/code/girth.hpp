// Girth analysis of the Tanner graph.
//
// The table generator guarantees no 4-cycles in the information part by
// construction (residue-class pair keys); this module measures the actual
// local girth by breadth-first search from variable nodes over the full
// graph (information + zigzag edges), giving the stronger, construction-
// independent check and the girth histogram reported by E3.
#pragma once

#include <vector>

#include "code/tanner.hpp"

namespace dvbs2::code {

/// Shortest cycle through variable node `v` (information or parity index in
/// [0, N)), or `cap` if none within radius cap/2. BFS over the bipartite
/// graph; cycles have even length ≥ 4.
int local_girth(const Dvbs2Code& code, int v, int cap = 12);

/// Samples `samples` variable nodes (deterministic stride) and returns a
/// histogram: hist[g] = number of sampled nodes with local girth g (index
/// cap means "≥ cap").
std::vector<int> girth_histogram(const Dvbs2Code& code, int samples, int cap = 12);

}  // namespace dvbs2::code
