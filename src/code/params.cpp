#include "code/params.hpp"

#include <array>

#include "util/error.hpp"

namespace dvbs2::code {

const std::vector<CodeRate>& all_rates() {
    static const std::vector<CodeRate> rates = {
        CodeRate::R1_4, CodeRate::R1_3, CodeRate::R2_5, CodeRate::R1_2,
        CodeRate::R3_5, CodeRate::R2_3, CodeRate::R3_4, CodeRate::R4_5,
        CodeRate::R5_6, CodeRate::R8_9, CodeRate::R9_10,
    };
    return rates;
}

std::vector<CodeRate> rates_for(FrameSize frame) {
    std::vector<CodeRate> rates = all_rates();
    if (frame == FrameSize::Short) rates.pop_back();  // no 9/10 short frame
    return rates;
}

std::string to_string(CodeRate rate) {
    switch (rate) {
        case CodeRate::R1_4: return "1/4";
        case CodeRate::R1_3: return "1/3";
        case CodeRate::R2_5: return "2/5";
        case CodeRate::R1_2: return "1/2";
        case CodeRate::R3_5: return "3/5";
        case CodeRate::R2_3: return "2/3";
        case CodeRate::R3_4: return "3/4";
        case CodeRate::R4_5: return "4/5";
        case CodeRate::R5_6: return "5/6";
        case CodeRate::R8_9: return "8/9";
        case CodeRate::R9_10: return "9/10";
    }
    return "?";
}

double rate_value(CodeRate rate) {
    switch (rate) {
        case CodeRate::R1_4: return 1.0 / 4.0;
        case CodeRate::R1_3: return 1.0 / 3.0;
        case CodeRate::R2_5: return 2.0 / 5.0;
        case CodeRate::R1_2: return 1.0 / 2.0;
        case CodeRate::R3_5: return 3.0 / 5.0;
        case CodeRate::R2_3: return 2.0 / 3.0;
        case CodeRate::R3_4: return 3.0 / 4.0;
        case CodeRate::R4_5: return 4.0 / 5.0;
        case CodeRate::R5_6: return 5.0 / 6.0;
        case CodeRate::R8_9: return 8.0 / 9.0;
        case CodeRate::R9_10: return 9.0 / 10.0;
    }
    return 0.0;
}

void CodeParams::validate() const {
    DVBS2_REQUIRE(n > 0 && k > 0 && k < n, "need 0 < K < N");
    DVBS2_REQUIRE(parallelism > 0, "parallelism must be positive");
    DVBS2_REQUIRE(k % parallelism == 0, "K must be a multiple of the parallelism");
    DVBS2_REQUIRE(m() % parallelism == 0, "N-K must be a multiple of the parallelism");
    DVBS2_REQUIRE(q == m() / parallelism, "q must equal (N-K)/P (Eq. 2)");
    DVBS2_REQUIRE(q >= 1, "q must be at least 1");
    DVBS2_REQUIRE(n_hi >= 0 && n_hi <= k, "n_hi out of range");
    DVBS2_REQUIRE(n_hi % parallelism == 0, "degree boundary must be group-aligned");
    DVBS2_REQUIRE(deg_lo >= 2, "low degree must be at least 2");
    DVBS2_REQUIRE(n_hi == 0 || deg_hi > deg_lo, "deg_hi must exceed deg_lo");
    DVBS2_REQUIRE(check_deg >= 3, "check degree must be at least 3");
    // Eq. 6 of the paper: E_IN / P = q (k − 2), which both balances the
    // functional-unit load and makes the check nodes regular.
    DVBS2_REQUIRE(e_in() == static_cast<long long>(parallelism) * q * (check_deg - 2),
                  "E_IN must equal P*q*(check_deg-2) (Eq. 6)");
}

namespace {

struct RateSpec {
    CodeRate rate;
    int k_long;
    int deg_hi_long;
    int n_hi_long;
    int k_short;
    int deg_hi_short;
    int n_hi_short;
};

// Long-frame values are exactly the standard's (paper Table 1 / Table 2);
// short-frame degree profiles are structure-compatible synthetic choices
// (the standard's short-frame K values with group-aligned distributions
// satisfying Eq. 6) — see DESIGN.md substitution table.
constexpr std::array<RateSpec, 11> kSpecs = {{
    {CodeRate::R1_4, 16200, 12, 5400, 3240, 12, 1800},
    {CodeRate::R1_3, 21600, 12, 7200, 5400, 12, 1800},
    {CodeRate::R2_5, 25920, 12, 8640, 6480, 12, 2160},
    {CodeRate::R1_2, 32400, 8, 12960, 7200, 8, 4680},
    {CodeRate::R3_5, 38880, 12, 12960, 9720, 12, 3240},
    {CodeRate::R2_3, 43200, 13, 4320, 10800, 13, 1080},
    {CodeRate::R3_4, 48600, 12, 5400, 11880, 12, 1800},
    {CodeRate::R4_5, 51840, 11, 6480, 12600, 12, 1800},
    {CodeRate::R5_6, 54000, 13, 5400, 13320, 12, 360},
    {CodeRate::R8_9, 57600, 4, 7200, 14400, 4, 1800},
    {CodeRate::R9_10, 58320, 4, 6480, 0, 0, 0},  // 9/10 undefined for short
}};

const RateSpec& spec_for(CodeRate rate) {
    for (const auto& s : kSpecs)
        if (s.rate == rate) return s;
    throw std::runtime_error("unknown code rate");
}

}  // namespace

CodeParams standard_params(CodeRate rate, FrameSize frame) {
    const RateSpec& s = spec_for(rate);
    CodeParams p;
    p.parallelism = 360;
    if (frame == FrameSize::Long) {
        p.n = 64800;
        p.k = s.k_long;
        p.deg_hi = s.deg_hi_long;
        p.n_hi = s.n_hi_long;
        p.name = "DVB-S2 " + to_string(rate) + " long";
    } else {
        DVBS2_REQUIRE(rate != CodeRate::R9_10, "rate 9/10 is not defined for short frames");
        p.n = 16200;
        p.k = s.k_short;
        p.deg_hi = s.deg_hi_short;
        p.n_hi = s.n_hi_short;
        p.name = "DVB-S2 " + to_string(rate) + " short";
    }
    p.q = p.m() / p.parallelism;
    p.check_deg = static_cast<int>(p.e_in() / p.m()) + 2;
    // Deterministic per-(rate, frame) seed so the synthetic tables are stable
    // across runs and across machines.
    p.seed = 0xD5B52ULL * 1000003ULL + static_cast<std::uint64_t>(rate) * 257ULL +
             (frame == FrameSize::Short ? 131071ULL : 0ULL);
    p.validate();
    return p;
}

CodeParams toy_params(int p, int q, int groups_hi, int deg_hi, int groups_lo, std::uint64_t seed) {
    CodeParams cp;
    cp.parallelism = p;
    cp.q = q;
    cp.k = p * (groups_hi + groups_lo);
    cp.n = cp.k + p * q;
    cp.deg_hi = deg_hi;
    cp.n_hi = p * groups_hi;
    cp.seed = seed;
    DVBS2_REQUIRE(cp.e_in() % cp.m() == 0,
                  "toy code: E_IN must be divisible by N-K for a regular check degree");
    cp.check_deg = static_cast<int>(cp.e_in() / cp.m()) + 2;
    cp.name = "toy p=" + std::to_string(p) + " q=" + std::to_string(q);
    cp.validate();
    return cp;
}

}  // namespace dvbs2::code
