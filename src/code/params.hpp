// DVB-S2 LDPC code parameters (paper Table 1 / Table 2).
//
// The DVB-S2 standard defines irregular repeat-accumulate (IRA) codes for 11
// code rates at codeword length N = 64800 (and 10 rates at the short frame
// N = 16200). A code is fully described by:
//   * K information nodes: n_hi of degree deg_hi, the rest of degree 3,
//   * N-K parity nodes of degree 2 in a fixed zigzag chain,
//   * N-K check nodes of constant degree check_deg,
//   * the group-structured permutation Π: information bits come in groups of
//     `parallelism` (=360); bit i of a group with table entry x connects to
//     check node (x + i·q) mod (N−K), with q = (N−K)/parallelism (Eq. 2).
//
// This header provides the per-rate parameter database plus the derived
// quantities of the paper's Table 2 (E_IN, E_PN, Addr). Custom parameter
// sets (small "toy" codes with reduced parallelism) are supported so tests
// can exercise every code path cheaply.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dvbs2::code {

/// The 11 code rates of EN 302 307 (paper Table 1).
enum class CodeRate {
    R1_4,
    R1_3,
    R2_5,
    R1_2,
    R3_5,
    R2_3,
    R3_4,
    R4_5,
    R5_6,
    R8_9,
    R9_10,
};

/// Frame length selector. The paper focuses on the long (64800-bit) frame;
/// short frames are provided as an extension (see DESIGN.md §4.5).
enum class FrameSize { Long, Short };

/// All rates in standard order.
const std::vector<CodeRate>& all_rates();

/// Rates defined for a frame size (9/10 does not exist for short frames).
std::vector<CodeRate> rates_for(FrameSize frame);

/// "1/4", "9/10", ...
std::string to_string(CodeRate rate);

/// Numeric value K/N of the nominal rate label.
double rate_value(CodeRate rate);

/// Complete structural description of one IRA code.
struct CodeParams {
    std::string name;      ///< human-readable label, e.g. "DVB-S2 1/2 long"
    int n = 0;             ///< codeword length N
    int k = 0;             ///< information length K
    int parallelism = 360; ///< group size P (360 for DVB-S2)
    int q = 0;             ///< (N−K)/P, the Eq. 2 stride
    int deg_hi = 0;        ///< degree of the high-degree information nodes
    int n_hi = 0;          ///< number of high-degree information nodes
    int deg_lo = 3;        ///< degree of the remaining information nodes
    int check_deg = 0;     ///< constant check-node degree k (incl. 2 parity edges)
    std::uint64_t seed = 0;///< seed of the deterministic table generator

    // --- derived quantities (paper Table 2) ---

    /// Number of parity (= check) nodes, N − K.
    int m() const noexcept { return n - k; }
    /// Number of low-degree information nodes.
    int n_lo() const noexcept { return k - n_hi; }
    /// Edges between information and check nodes: E_IN.
    long long e_in() const noexcept {
        return static_cast<long long>(n_hi) * deg_hi + static_cast<long long>(n_lo()) * deg_lo;
    }
    /// Edges between parity and check nodes (zigzag): E_PN = 2(N−K) − 1.
    long long e_pn() const noexcept { return 2LL * m() - 1; }
    /// Address/shuffle ROM words: E_IN / P (Table 2 "Addr").
    long long addr_words() const noexcept { return e_in() / parallelism; }
    /// Number of information-bit groups, K / P.
    int groups() const noexcept { return k / parallelism; }
    /// Number of high-degree groups, n_hi / P.
    int groups_hi() const noexcept { return n_hi / parallelism; }
    /// Actual code rate K/N.
    double rate() const noexcept { return static_cast<double>(k) / static_cast<double>(n); }

    /// Throws std::runtime_error unless all divisibility/consistency
    /// invariants hold (q·P = N−K, E_IN = P·q·(check_deg−2), group-aligned
    /// degree boundary, ...).
    void validate() const;
};

/// Parameter set of a standard DVB-S2 code (synthetic tables are generated
/// from `seed`, which is fixed per (rate, frame) so codes are reproducible).
CodeParams standard_params(CodeRate rate, FrameSize frame = FrameSize::Long);

/// A small structurally-identical code for fast tests: parallelism `p`,
/// `groups_hi` high-degree groups of degree `deg_hi`, `groups_lo` degree-3
/// groups, q chosen from `q`. n/k follow from the group counts.
CodeParams toy_params(int p, int q, int groups_hi, int deg_hi, int groups_lo,
                      std::uint64_t seed = 42);

}  // namespace dvbs2::code
