#include "code/profile_solver.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dvbs2::code {

std::optional<CodeParams> derive_profile(int n, int k, int p, double target_avg_degree,
                                         int deg_lo, int max_deg_hi, std::uint64_t seed) {
    if (n <= 0 || k <= 0 || k >= n || p <= 0) return std::nullopt;
    if (k % p != 0 || (n - k) % p != 0) return std::nullopt;
    const int q = (n - k) / p;
    const int groups = k / p;

    std::optional<CodeParams> best;
    double best_dist = 1e300;
    for (int d_hi = deg_lo + 1; d_hi <= max_deg_hi; ++d_hi) {
        for (int g_hi = 0; g_hi <= groups; ++g_hi) {
            // Per-lane information edge count; Eq. 6 needs q | e_lane with a
            // check degree of at least 3 (kc−2 ≥ 1).
            const long long e_lane = static_cast<long long>(groups) * deg_lo +
                                     static_cast<long long>(g_hi) * (d_hi - deg_lo);
            if (e_lane % q != 0) continue;
            const long long kc_minus2 = e_lane / q;
            if (kc_minus2 < 1 || kc_minus2 + 2 > 40) continue;  // decoder degree cap
            const double avg = static_cast<double>(e_lane) / groups;
            const double dist = std::fabs(avg - target_avg_degree);
            const bool better =
                dist < best_dist - 1e-12 ||
                (dist < best_dist + 1e-12 && best && d_hi > best->deg_hi);
            if (!better) continue;
            CodeParams cp;
            cp.name = "derived " + std::to_string(k) + "/" + std::to_string(n);
            cp.n = n;
            cp.k = k;
            cp.parallelism = p;
            cp.q = q;
            cp.deg_hi = g_hi > 0 ? d_hi : 0;
            cp.n_hi = g_hi * p;
            cp.deg_lo = deg_lo;
            cp.check_deg = static_cast<int>(kc_minus2) + 2;
            cp.seed = seed ^ (static_cast<std::uint64_t>(k) << 20) ^ static_cast<std::uint64_t>(n);
            // A profile with zero high-degree groups must not claim deg_hi.
            if (g_hi == 0) {
                cp.deg_hi = deg_lo + 1;  // validate() requires deg_hi > deg_lo
                cp.n_hi = 0;
            }
            try {
                cp.validate();
            } catch (const std::exception&) {
                continue;
            }
            best = cp;
            best_dist = dist;
        }
    }
    return best;
}

double dvbs2_like_avg_degree(double rate) {
    // Linear fit through the standard's profiles: R=1/4 → 6.0, R=1/2 → 5.0,
    // R=3/4 → 4.0, R=9/10 → 3.1 (average information-node degrees).
    const double avg = 7.1 - 4.4 * rate;
    return avg < 3.1 ? 3.1 : avg;
}

const std::vector<XRateSpec>& dvbs2x_rates() {
    // Normal-frame DVB-S2X rates with K = 360·(180·a/b) — all x/180-style
    // rates are group-aligned by construction. Subset chosen to span the
    // extension's range.
    static const std::vector<XRateSpec> rates = {
        {"2/9", 14400},    {"13/45", 18720},  {"9/20", 29160},   {"11/20", 35640},
        {"26/45", 37440},  {"28/45", 40320},  {"23/36", 41400},  {"25/36", 45000},
        {"13/18", 46800},  {"7/9", 50400},    {"90/180", 32400}, {"96/180", 34560},
        {"100/180", 36000},{"104/180", 37440},{"116/180", 41760},{"124/180", 44640},
        {"128/180", 46080},{"132/180", 47520},{"140/180", 50400},{"154/180", 55440},
        {"77/90", 55440},
    };
    return rates;
}

CodeParams dvbs2x_params(const std::string& label) {
    for (const auto& spec : dvbs2x_rates()) {
        if (spec.label != label) continue;
        const double rate = static_cast<double>(spec.k) / 64800.0;
        auto cp = derive_profile(64800, spec.k, 360, dvbs2_like_avg_degree(rate));
        DVBS2_REQUIRE(cp.has_value(), "no feasible profile for DVB-S2X rate " + label);
        cp->name = "DVB-S2X " + label + " (synthetic profile)";
        return *cp;
    }
    throw std::runtime_error("unknown DVB-S2X rate label: " + label);
}

}  // namespace dvbs2::code
