// Degree-profile solver — "bring your own code rate".
//
// The paper's architecture requirements (Sec. 3) constrain a code's degree
// profile, not its rate: K and N−K multiples of P, a group-aligned
// two-level information degree distribution, and Eq. 6
// (E_IN = P·q·(check_deg−2), which simultaneously balances the FU load and
// makes the check nodes regular). This module searches the (deg_hi,
// groups_hi) plane for profiles satisfying those constraints for an
// arbitrary (n, k), enabling the DVB-S2X extension rates (and any custom
// rate) on the same decoder — the direction the successor works took
// (DVB-S2X decoders reuse exactly this structure).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "code/params.hpp"

namespace dvbs2::code {

/// Searches for a valid profile for codeword length `n` and info length
/// `k` at parallelism `p`. Among all (deg_hi ∈ [deg_lo+1, max_deg_hi],
/// groups_hi) satisfying the structural constraints, returns the one whose
/// average information-node degree is closest to `target_avg_degree`
/// (ties: larger deg_hi, matching DVB-S2's concentrated profiles).
/// Returns nullopt when no profile exists (e.g. K or N−K not multiples of
/// p, or no Eq. 6-compatible split).
std::optional<CodeParams> derive_profile(int n, int k, int p, double target_avg_degree,
                                         int deg_lo = 3, int max_deg_hi = 14,
                                         std::uint64_t seed = 0x5e0d);

/// Heuristic degree target mirroring the DVB-S2 family: low rates use
/// denser profiles (avg ≈ 6 at R=1/4) than high rates (≈ 3.1 at R=9/10).
double dvbs2_like_avg_degree(double rate);

/// A DVB-S2X-style extension rate (normal frame N = 64800).
struct XRateSpec {
    std::string label;  ///< e.g. "100/180"
    int k;              ///< information length (multiple of 360)
};

/// Representative DVB-S2X normal-frame rates (subset of EN 302 307-2).
const std::vector<XRateSpec>& dvbs2x_rates();

/// Profile for one DVB-S2X rate label; throws if the label is unknown.
CodeParams dvbs2x_params(const std::string& label);

}  // namespace dvbs2::code
