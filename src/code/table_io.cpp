#include "code/table_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace dvbs2::code {

void save_tables(std::ostream& os, const IraTables& tables) {
    os << "# groups=" << tables.rows.size() << '\n';
    for (const auto& row : tables.rows) {
        for (std::size_t i = 0; i < row.size(); ++i) os << (i ? " " : "") << row[i];
        os << '\n';
    }
}

IraTables load_tables(std::istream& is) {
    IraTables tables;
    std::string line;
    while (std::getline(is, line)) {
        // Strip comments and skip blank lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream ls(line);
        std::vector<std::uint32_t> row;
        long long v = 0;
        while (ls >> v) {
            DVBS2_REQUIRE(v >= 0 && v <= 0xFFFFFFFFLL, "table entry out of range");
            row.push_back(static_cast<std::uint32_t>(v));
        }
        DVBS2_REQUIRE(ls.eof(), "malformed table line: '" + line + "'");
        if (!row.empty()) tables.rows.push_back(std::move(row));
    }
    DVBS2_REQUIRE(!tables.rows.empty(), "no table rows found");
    return tables;
}

std::string tables_to_string(const IraTables& tables) {
    std::ostringstream os;
    save_tables(os, tables);
    return os.str();
}

IraTables tables_from_string(const std::string& text) {
    std::istringstream is(text);
    return load_tables(is);
}

}  // namespace dvbs2::code
