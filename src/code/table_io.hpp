// Text serialization of IRA connection tables.
//
// The format mirrors how the standard publishes its Annex-B tables — one
// line per group of 360 bits, the parity-accumulator addresses separated by
// spaces — so externally supplied tables (e.g. the real ETSI ones, where a
// user has them) can be loaded into Dvbs2Code in place of the synthetic
// generator, and generated tables can be exported for inspection or for a
// hardware configuration flow.
#pragma once

#include <iosfwd>
#include <string>

#include "code/tables.hpp"

namespace dvbs2::code {

/// Writes `tables` as text: a header line "# groups=<G>" then one line of
/// space-separated addresses per group.
void save_tables(std::ostream& os, const IraTables& tables);

/// Parses tables written by save_tables (or hand-authored in the same
/// format; '#' starts a comment line). Throws on malformed input.
IraTables load_tables(std::istream& is);

/// Convenience round-trip through a string.
std::string tables_to_string(const IraTables& tables);
IraTables tables_from_string(const std::string& text);

}  // namespace dvbs2::code
