#include "code/tables.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace dvbs2::code {

namespace {

// Flat view of all table entries during generation.
struct Entry {
    int row;       // group index
    int residue;   // x mod q  (fixed: enforces check regularity)
    int quotient;  // ⌊x/q⌋ ∈ [0, P)  (resampled to remove conflicts)
};

// Collision key for the 4-cycle / double-edge test. Two entries of the same
// residue class r with rows (g1, g2) and quotients (s1, s2) make information
// bits (g1, i) and (g2, i + (s1−s2) mod P) share one check node, for every
// lane i. A 4-cycle exists iff two distinct same-residue pairs map to the
// same canonical (g_lo, g_hi, Δ) key; a double edge is the degenerate
// same-row Δ = 0 case.
// A single same-residue pair whose lane offset is exactly P/2 (P even) is a
// 4-cycle on its own: the pair coincides with its own reverse orientation,
// so bits (g1, i) and (g2, i + P/2) share *two* check nodes. (Caught the
// hard way by the BFS girth scanner; see test_girth.cpp.)
bool half_turn_pair(const Entry& a, const Entry& b, int p) {
    if (p % 2 != 0) return false;
    int delta = (a.quotient - b.quotient) % p;
    if (delta < 0) delta += p;
    return delta == p / 2;
}

std::uint64_t pair_key(const Entry& a, const Entry& b, int p) {
    int g1 = a.row, g2 = b.row;
    int delta = (a.quotient - b.quotient) % p;
    if (delta < 0) delta += p;
    if (g1 == g2) {
        delta = std::min(delta, p - delta);  // unordered bit pair within a group
    } else if (g1 > g2) {
        std::swap(g1, g2);
        delta = (p - delta) % p;  // orient the offset from the lower group
    }
    return (static_cast<std::uint64_t>(g1) << 40) ^ (static_cast<std::uint64_t>(g2) << 16) ^
           static_cast<std::uint64_t>(delta);
}

}  // namespace

IraTables generate_tables(const CodeParams& params) {
    params.validate();
    const int p = params.parallelism;
    const int q = params.q;
    const int per_residue = params.check_deg - 2;
    const int groups = params.groups();
    const int m_total = params.m();

    util::Xoshiro256pp rng(params.seed);

    // Row degrees: the first groups_hi groups carry the high-degree columns.
    std::vector<int> row_degree(static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g)
        row_degree[static_cast<std::size_t>(g)] = g < params.groups_hi() ? params.deg_hi : params.deg_lo;

    // The constraint system is solved by randomized repair (resample the
    // quotient of one entry of each violated pair); tight toy parameter
    // sets can need a fresh residue dealing, hence the outer attempt loop.
    const int kMaxAttempts = 40;
    const int kMaxRounds = 4000;
    std::vector<Entry> entries;
    std::unordered_map<std::uint64_t, std::size_t> seen;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        // Residue pool: each residue exactly (check_deg − 2) times — this is
        // what makes every check node receive exactly (check_deg − 2)
        // information edges (see header). Shuffle, then deal into row slots.
        std::vector<int> pool;
        pool.reserve(static_cast<std::size_t>(q) * static_cast<std::size_t>(per_residue));
        for (int r = 0; r < q; ++r)
            for (int c = 0; c < per_residue; ++c) pool.push_back(r);
        for (std::size_t i = pool.size(); i > 1; --i)
            std::swap(pool[i - 1], pool[rng.below(i)]);

        entries.clear();
        entries.reserve(pool.size());
        std::size_t next = 0;
        for (int g = 0; g < groups; ++g) {
            for (int d = 0; d < row_degree[static_cast<std::size_t>(g)]; ++d) {
                DVBS2_REQUIRE(next < pool.size(), "residue pool exhausted — inconsistent params");
                entries.push_back(Entry{g, pool[next++], static_cast<int>(rng.below(
                                                             static_cast<std::uint64_t>(p)))});
            }
        }
        DVBS2_REQUIRE(next == pool.size(), "residue pool not fully consumed");

        // Group entries by residue class for the pair scan, and by row for
        // the zigzag-adjacency scan.
        std::vector<std::vector<std::size_t>> by_residue(static_cast<std::size_t>(q));
        std::vector<std::vector<std::size_t>> by_row(static_cast<std::size_t>(groups));
        for (std::size_t e = 0; e < entries.size(); ++e) {
            by_residue[static_cast<std::size_t>(entries[e].residue)].push_back(e);
            by_row[static_cast<std::size_t>(entries[e].row)].push_back(e);
        }

        // Iteratively resample quotients until all constraints hold.
        bool clean = false;
        for (int round = 0; round < kMaxRounds && !clean; ++round) {
            clean = true;
            seen.clear();
            seen.reserve(entries.size() * static_cast<std::size_t>(per_residue));
            for (const auto& cls : by_residue) {
                for (std::size_t i = 0; i < cls.size(); ++i) {
                    for (std::size_t j = i + 1; j < cls.size(); ++j) {
                        Entry& a = entries[cls[i]];
                        Entry& b = entries[cls[j]];
                        const bool double_edge = (a.row == b.row) && (a.quotient == b.quotient);
                        const std::uint64_t key = pair_key(a, b, p);
                        if (double_edge || half_turn_pair(a, b, p) || seen.count(key)) {
                            b.quotient =
                                static_cast<int>(rng.below(static_cast<std::uint64_t>(p)));
                            clean = false;
                        } else {
                            seen.emplace(key, cls[j]);
                        }
                    }
                }
                if (!clean) break;  // restart the scan with the new quotient
            }
            if (!clean) continue;

            // Zigzag-adjacency scan: two entries of one row with values x
            // and x±1 (mod M) put the same information bit on two chain-
            // adjacent check nodes — a 4-cycle through the parity bit
            // between them.
            for (const auto& row_entries : by_row) {
                for (std::size_t i = 0; i < row_entries.size() && clean; ++i) {
                    for (std::size_t j = i + 1; j < row_entries.size(); ++j) {
                        Entry& a = entries[row_entries[i]];
                        Entry& b = entries[row_entries[j]];
                        const int xa = a.residue + q * a.quotient;
                        const int xb = b.residue + q * b.quotient;
                        int diff = (xa - xb) % m_total;
                        if (diff < 0) diff += m_total;
                        if (diff == 1 || diff == m_total - 1) {
                            b.quotient =
                                static_cast<int>(rng.below(static_cast<std::uint64_t>(p)));
                            clean = false;
                            break;
                        }
                    }
                }
                if (!clean) break;
            }
        }
        if (!clean) continue;  // fresh residue dealing

        IraTables tables;
        tables.rows.resize(static_cast<std::size_t>(groups));
        for (const auto& e : entries)
            tables.rows[static_cast<std::size_t>(e.row)].push_back(
                static_cast<std::uint32_t>(e.residue + q * e.quotient));
        for (auto& row : tables.rows) std::sort(row.begin(), row.end());
        return tables;
    }
    throw std::runtime_error("table generator failed to converge for " + params.name +
                             " — parameters too tight for a girth-6 code");
}

IraTables generate_tables_unconstrained(const CodeParams& params) {
    params.validate();
    const int p = params.parallelism;
    const int q = params.q;
    const int per_residue = params.check_deg - 2;
    const int groups = params.groups();

    // Decorrelate from the constrained generator so ablation pairs are
    // independent draws.
    util::Xoshiro256pp rng(params.seed ^ 0xABBAABBAULL);

    std::vector<int> pool;
    for (int r = 0; r < q; ++r)
        for (int c = 0; c < per_residue; ++c) pool.push_back(r);
    for (std::size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng.below(i)]);

    IraTables tables;
    tables.rows.resize(static_cast<std::size_t>(groups));
    std::size_t next = 0;
    for (int g = 0; g < groups; ++g) {
        const int deg = g < params.groups_hi() ? params.deg_hi : params.deg_lo;
        auto& row = tables.rows[static_cast<std::size_t>(g)];
        for (int d = 0; d < deg; ++d) {
            const int r = pool[next++];
            // Double edges only: resample the quotient until the value is
            // new within the row.
            std::uint32_t x;
            do {
                x = static_cast<std::uint32_t>(
                    r + q * static_cast<int>(rng.below(static_cast<std::uint64_t>(p))));
            } while (std::find(row.begin(), row.end(), x) != row.end());
            row.push_back(x);
        }
        std::sort(row.begin(), row.end());
    }
    return tables;
}

long long count_information_4cycles(const CodeParams& params, const IraTables& tables) {
    const int p = params.parallelism;
    const int q = params.q;

    std::vector<Entry> entries;
    for (std::size_t g = 0; g < tables.rows.size(); ++g)
        for (std::uint32_t x : tables.rows[g])
            entries.push_back(Entry{static_cast<int>(g), static_cast<int>(x) % q,
                                    static_cast<int>(x) / q});

    std::vector<std::vector<std::size_t>> by_residue(static_cast<std::size_t>(q));
    for (std::size_t e = 0; e < entries.size(); ++e)
        by_residue[static_cast<std::size_t>(entries[e].residue)].push_back(e);

    std::unordered_map<std::uint64_t, long long> multiplicity;
    long long half_turn_cycles = 0;
    for (const auto& cls : by_residue) {
        for (std::size_t i = 0; i < cls.size(); ++i) {
            for (std::size_t j = i + 1; j < cls.size(); ++j) {
                ++multiplicity[pair_key(entries[cls[i]], entries[cls[j]], p)];
                if (half_turn_pair(entries[cls[i]], entries[cls[j]], p)) ++half_turn_cycles;
            }
        }
    }

    long long cycles = half_turn_cycles;
    for (const auto& [key, t] : multiplicity) {
        (void)key;
        cycles += t * (t - 1) / 2;  // each pair of colliding entry-pairs is one 4-cycle
    }
    return cycles;
}

}  // namespace dvbs2::code
