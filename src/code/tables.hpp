// Synthetic DVB-S2-structured IRA connection tables.
//
// The standard publishes, for every code rate, one table row per group of
// 360 information bits; row g lists deg(g) parity-accumulator addresses
// x ∈ [0, N−K). Bit i of the group connects to check node (x + i·q) mod
// (N−K) (Eq. 2 of the paper). The ETSI tables themselves are not
// redistributable here, so this module *generates* tables with the same
// structural guarantees the architecture relies on:
//
//  1. group-shift property: x = r + q·s (r = x mod q, s = ⌊x/q⌋), so the 360
//     edges of an entry hit 360 distinct functional units at one common local
//     address — satisfied by construction of Eq. 2;
//  2. check-node regularity: every check node receives exactly
//     (check_deg − 2) information edges. This holds iff every residue class
//     r mod q contains exactly (check_deg − 2) table entries;
//  3. no double edges and no length-4 cycles in the information part:
//     a 4-cycle exists iff two same-residue entry pairs produce the same
//     (group₁, group₂, lane-offset Δ) collision key (see tables.cpp);
//  4. no length-4 cycles through the zigzag chain either: no row contains
//     two values x, x±1 (mod N−K), which would put one information bit on
//     two chain-adjacent check nodes. Together with 3 this gives girth ≥ 6
//     for the full Tanner graph (verified by code/girth.hpp).
//
// Generation is deterministic from CodeParams::seed.
#pragma once

#include <cstdint>
#include <vector>

#include "code/params.hpp"

namespace dvbs2::code {

/// One generated table: rows[g] lists the accumulator addresses of group g.
struct IraTables {
    std::vector<std::vector<std::uint32_t>> rows;

    /// Total number of entries = E_IN / P.
    std::size_t entry_count() const noexcept {
        std::size_t c = 0;
        for (const auto& r : rows) c += r.size();
        return c;
    }
};

/// Generates the connection tables for `params` (deterministic in
/// params.seed). Throws if the generator cannot satisfy the structural
/// constraints (which only happens for degenerate toy parameters).
IraTables generate_tables(const CodeParams& params);

/// Counts remaining 4-cycles in the information part of a table set (0 for
/// tables from generate_tables; used by tests and by the girth validator).
long long count_information_4cycles(const CodeParams& params, const IraTables& tables);

/// Ablation variant: generates tables with the same residue-regularity
/// (check-regular, Eq. 6) but WITHOUT the girth constraints — only double
/// edges are avoided. Used to quantify what the 4-cycle removal buys in
/// BER (bench_ablation_girth); never use for a production code.
IraTables generate_tables_unconstrained(const CodeParams& params);

}  // namespace dvbs2::code
