#include "code/tanner.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace dvbs2::code {

Dvbs2Code::Dvbs2Code(const CodeParams& params) : Dvbs2Code(params, generate_tables(params)) {}

Dvbs2Code::Dvbs2Code(const CodeParams& params, IraTables tables)
    : params_(params), tables_(std::move(tables)) {
    params_.validate();
    DVBS2_REQUIRE(static_cast<int>(tables_.rows.size()) == params_.groups(),
                  "table row count must equal the number of bit groups");
    build();
}

void Dvbs2Code::build() {
    const int p = params_.parallelism;
    const int q = params_.q;
    const int m = params_.m();
    const int kc = check_in_degree();

    // Pass 1: count edges per check node (must be exactly kc each — the
    // generator guarantees it; explicit tables are validated here).
    std::vector<int> cn_fill(static_cast<std::size_t>(m), 0);
    for (std::size_t g = 0; g < tables_.rows.size(); ++g) {
        DVBS2_REQUIRE(static_cast<int>(tables_.rows[g].size()) ==
                          (static_cast<int>(g) < params_.groups_hi() ? params_.deg_hi
                                                                     : params_.deg_lo),
                      "row degree mismatch in group tables");
        for (std::uint32_t x : tables_.rows[g]) {
            DVBS2_REQUIRE(static_cast<int>(x) < m, "table entry out of range");
            for (int i = 0; i < p; ++i) {
                const int c = (static_cast<int>(x) + i * q) % m;
                ++cn_fill[static_cast<std::size_t>(c)];
            }
        }
    }
    for (int c = 0; c < m; ++c)
        DVBS2_REQUIRE(cn_fill[static_cast<std::size_t>(c)] == kc,
                      "check node " + std::to_string(c) + " is not regular");

    // Pass 2: place edges in check-major slots; within a CN, order by
    // ascending variable index for a canonical layout.
    const long long e_total = e_in();
    std::vector<int> cursor(static_cast<std::size_t>(m), 0);
    edge_variable_.assign(static_cast<std::size_t>(e_total), -1);
    for (std::size_t g = 0; g < tables_.rows.size(); ++g) {
        for (std::uint32_t x : tables_.rows[g]) {
            for (int i = 0; i < p; ++i) {
                const int c = (static_cast<int>(x) + i * q) % m;
                const int v = static_cast<int>(g) * p + i;
                const long long e = static_cast<long long>(c) * kc +
                                    cursor[static_cast<std::size_t>(c)]++;
                edge_variable_[static_cast<std::size_t>(e)] = v;
            }
        }
    }
    // Canonicalize: sort each CN's slot range by variable index.
    for (int c = 0; c < m; ++c) {
        auto first = edge_variable_.begin() + static_cast<long long>(c) * kc;
        std::sort(first, first + kc);
        DVBS2_REQUIRE(std::adjacent_find(first, first + kc) == first + kc,
                      "double edge at check node " + std::to_string(c));
    }

    // Pass 3: variable-major CSR over the check-major edge ids.
    info_edge_offset_.assign(static_cast<std::size_t>(params_.k) + 1, 0);
    for (long long e = 0; e < e_total; ++e)
        ++info_edge_offset_[static_cast<std::size_t>(edge_variable_[static_cast<std::size_t>(e)]) + 1];
    std::partial_sum(info_edge_offset_.begin(), info_edge_offset_.end(), info_edge_offset_.begin());
    info_edge_ids_.assign(static_cast<std::size_t>(e_total), 0);
    std::vector<std::size_t> vpos(info_edge_offset_.begin(), info_edge_offset_.end() - 1);
    for (long long e = 0; e < e_total; ++e) {
        const int v = edge_variable_[static_cast<std::size_t>(e)];
        info_edge_ids_[vpos[static_cast<std::size_t>(v)]++] = e;
    }
    for (int v = 0; v < params_.k; ++v)
        DVBS2_REQUIRE(static_cast<int>(info_edge_offset_[static_cast<std::size_t>(v) + 1] -
                                       info_edge_offset_[static_cast<std::size_t>(v)]) ==
                          info_degree(v),
                      "variable degree mismatch");
}

util::BitVec Dvbs2Code::syndrome(const util::BitVec& codeword) const {
    DVBS2_REQUIRE(codeword.size() == static_cast<std::size_t>(params_.n),
                  "codeword length mismatch");
    const int m = params_.m();
    const int kc = check_in_degree();
    util::BitVec s(static_cast<std::size_t>(m));
    // Information part.
    for (int c = 0; c < m; ++c) {
        bool parity = false;
        const long long base = static_cast<long long>(c) * kc;
        for (int d = 0; d < kc; ++d)
            parity ^= codeword.get(
                static_cast<std::size_t>(edge_variable_[static_cast<std::size_t>(base + d)]));
        if (parity) s.flip(static_cast<std::size_t>(c));
    }
    // Zigzag part: CN j also checks parity bits p_j and p_{j−1}.
    for (int j = 0; j < m; ++j) {
        bool parity = codeword.get(static_cast<std::size_t>(params_.k + j));
        if (j > 0) parity ^= codeword.get(static_cast<std::size_t>(params_.k + j - 1));
        if (parity) s.flip(static_cast<std::size_t>(j));
    }
    return s;
}

bool Dvbs2Code::is_codeword(const util::BitVec& codeword) const {
    // Allocation-free early-exit check: early-stopping decoders evaluate
    // this every iteration for every frame, so it must not materialize a
    // syndrome vector (see tests/test_alloc.cpp).
    DVBS2_REQUIRE(codeword.size() == static_cast<std::size_t>(params_.n),
                  "codeword length mismatch");
    const int m = params_.m();
    const int kc = check_in_degree();
    for (int c = 0; c < m; ++c) {
        bool parity = codeword.get(static_cast<std::size_t>(params_.k + c));
        if (c > 0) parity ^= codeword.get(static_cast<std::size_t>(params_.k + c - 1));
        const long long base = static_cast<long long>(c) * kc;
        for (int d = 0; d < kc; ++d)
            parity ^= codeword.get(
                static_cast<std::size_t>(edge_variable_[static_cast<std::size_t>(base + d)]));
        if (parity) return false;
    }
    return true;
}

}  // namespace dvbs2::code
