// Tanner-graph representation of a DVB-S2 IRA code (paper Fig. 1).
//
// Variable nodes: K information nodes (IN) followed by N−K parity nodes (PN,
// all degree 2, zigzag chain). Check nodes: N−K. The information part of the
// edge set (E_IN edges) is stored in CSR form twice — check-major for the
// check-node phase and variable-major for the variable-node phase — with a
// permutation linking the two orders. The zigzag part needs no storage
// beyond its defining recurrence (PN j ↔ CN j, CN j+1).
//
// Edge identity: information edge e ∈ [0, E_IN) is numbered in check-major
// order (all edges of CN 0, then CN 1, ...; within a CN, in ascending
// variable index). Message arrays in the decoders are indexed by e.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "code/params.hpp"
#include "code/tables.hpp"
#include "util/bitvec.hpp"

namespace dvbs2::code {

/// Immutable Tanner graph + code structure. Construction performs the full
/// Eq. 2 expansion of the group tables; all accessors are O(1).
class Dvbs2Code {
public:
    /// Builds the code for `params`, generating tables from params.seed.
    explicit Dvbs2Code(const CodeParams& params);

    /// Builds the code from explicit tables (used by tests with hand-made
    /// tables and by experiments that re-use a generated table set).
    Dvbs2Code(const CodeParams& params, IraTables tables);

    const CodeParams& params() const noexcept { return params_; }
    const IraTables& tables() const noexcept { return tables_; }

    int n() const noexcept { return params_.n; }
    int k() const noexcept { return params_.k; }
    int m() const noexcept { return params_.m(); }
    long long e_in() const noexcept { return params_.e_in(); }

    // --- check-major view (information edges only) ---

    /// Number of information edges of check node c: constant check_deg − 2.
    int check_in_degree() const noexcept { return params_.check_deg - 2; }

    /// Information edges of CN c occupy ids [c*(check_deg−2), (c+1)*(check_deg−2)).
    /// This accessor returns the variable (information-bit) index of edge e.
    int edge_variable(long long e) const noexcept { return edge_variable_[static_cast<std::size_t>(e)]; }

    // --- variable-major view ---

    /// Degree of information bit v (deg_hi or deg_lo).
    int info_degree(int v) const noexcept {
        return v < params_.n_hi ? params_.deg_hi : params_.deg_lo;
    }

    /// Edge ids (check-major numbering) incident to information bit v, in the
    /// order of the group-table entries (ascending x).
    const long long* info_edges(int v) const noexcept {
        return info_edge_ids_.data() + info_edge_offset_[static_cast<std::size_t>(v)];
    }

    /// Check node of information edge e.
    int edge_check(long long e) const noexcept {
        return static_cast<int>(e / check_in_degree());
    }

    // --- codeword predicates ---

    /// Syndrome s = H·xᵀ over GF(2); bit j is the parity of CN j.
    util::BitVec syndrome(const util::BitVec& codeword) const;

    /// True iff `codeword` (size N) satisfies all parity checks.
    /// Allocation-free with early exit on the first unsatisfied check — safe
    /// to call per iteration from a decoder's early-stopping hot loop.
    bool is_codeword(const util::BitVec& codeword) const;

private:
    void build();

    CodeParams params_;
    IraTables tables_;

    // Check-major: edge e → information-bit index.
    std::vector<int> edge_variable_;
    // Variable-major: per information bit, the list of its edge ids.
    std::vector<long long> info_edge_ids_;
    std::vector<std::size_t> info_edge_offset_;  // size K+1
};

}  // namespace dvbs2::code
