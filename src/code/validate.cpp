#include "code/validate.hpp"

#include <map>

namespace dvbs2::code {

StructureReport audit_structure(const Dvbs2Code& code) {
    const CodeParams& cp = code.params();
    StructureReport rep;
    rep.e_in = cp.e_in();
    rep.e_pn = cp.e_pn();

    // 1. Group-shift property: for every table entry x = r + q·s the 360
    //    lanes must land on FU (s+i) mod P at common local address r. This
    //    is Eq. 2 algebra; we verify it against the expanded graph by
    //    checking that each entry's lane-i check node is (x + i·q) mod M and
    //    that ⌊c/q⌋ enumerates all P FUs exactly once.
    rep.group_shift_ok = true;
    const int p = cp.parallelism;
    const int q = cp.q;
    const int m = cp.m();
    std::vector<char> fu_seen(static_cast<std::size_t>(p));
    for (std::size_t g = 0; g < code.tables().rows.size() && rep.group_shift_ok; ++g) {
        for (std::uint32_t x : code.tables().rows[g]) {
            std::fill(fu_seen.begin(), fu_seen.end(), 0);
            const int r = static_cast<int>(x) % q;
            for (int i = 0; i < p; ++i) {
                const int c = (static_cast<int>(x) + i * q) % m;
                if (c % q != r) {
                    rep.group_shift_ok = false;
                    rep.detail = "entry " + std::to_string(x) + " lane " + std::to_string(i) +
                                 " breaks the common-address property";
                    break;
                }
                fu_seen[static_cast<std::size_t>(c / q)] = 1;
            }
            for (int f = 0; f < p && rep.group_shift_ok; ++f) {
                if (!fu_seen[static_cast<std::size_t>(f)]) {
                    rep.group_shift_ok = false;
                    rep.detail = "entry " + std::to_string(x) + " does not cover FU " +
                                 std::to_string(f);
                }
            }
            if (!rep.group_shift_ok) break;
        }
    }

    // 2. Check regularity (the Dvbs2Code constructor enforces it; re-derive
    //    from the histogram for an independent confirmation).
    const auto hist = check_degree_histogram(code);
    long long buckets = 0;
    for (std::size_t d = 0; d < hist.size(); ++d)
        if (hist[d] != 0) ++buckets;
    rep.check_regular =
        buckets == 1 && static_cast<std::size_t>(cp.check_deg - 2) < hist.size() &&
        hist[static_cast<std::size_t>(cp.check_deg - 2)] == m;
    if (!rep.check_regular && rep.detail.empty()) rep.detail = "check degrees not regular";

    // 3. Load balance (Eq. 6): total IN edges per FU.
    rep.load_balanced = cp.e_in() == static_cast<long long>(p) * q * (cp.check_deg - 2);
    if (!rep.load_balanced && rep.detail.empty()) rep.detail = "Eq. 6 load balance violated";

    // 4. Girth of the information part.
    rep.four_cycles = count_information_4cycles(cp, code.tables());
    if (rep.four_cycles != 0 && rep.detail.empty())
        rep.detail = std::to_string(rep.four_cycles) + " information 4-cycles";

    return rep;
}

std::vector<long long> check_degree_histogram(const Dvbs2Code& code) {
    const CodeParams& cp = code.params();
    std::vector<long long> counts(static_cast<std::size_t>(cp.m()), 0);
    const long long e_total = cp.e_in();
    for (long long e = 0; e < e_total; ++e)
        ++counts[static_cast<std::size_t>(code.edge_check(e))];
    std::vector<long long> hist;
    for (long long c : counts) {
        if (static_cast<std::size_t>(c) >= hist.size()) hist.resize(static_cast<std::size_t>(c) + 1, 0);
        ++hist[static_cast<std::size_t>(c)];
    }
    return hist;
}

}  // namespace dvbs2::code
