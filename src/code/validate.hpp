// Structural validators for generated codes.
//
// These check the properties the paper's architecture depends on (and that
// our reproduction of Tables 1/2 reports): the group-shift property of Π,
// check regularity, per-FU load balance (Eq. 6), and girth ≥ 6 of the
// information part.
#pragma once

#include <string>
#include <vector>

#include "code/tanner.hpp"

namespace dvbs2::code {

/// Result of a structural audit of one code.
struct StructureReport {
    bool group_shift_ok = false;   ///< every table group maps to one cyclic shift
    bool check_regular = false;    ///< all CNs have exactly check_deg−2 IN edges
    bool load_balanced = false;    ///< Eq. 6: per-FU edge load equals q(check_deg−2)
    long long four_cycles = -1;    ///< 4-cycles in the information part (0 expected)
    long long e_in = 0;            ///< measured E_IN
    long long e_pn = 0;            ///< measured E_PN
    std::string detail;            ///< first failure description, empty when all ok

    bool all_ok() const noexcept {
        return group_shift_ok && check_regular && load_balanced && four_cycles == 0;
    }
};

/// Audits `code` and returns the report. Never throws on a structural
/// failure — failures are reported so benches can print them.
StructureReport audit_structure(const Dvbs2Code& code);

/// Per-check-node information degree histogram (degree → count); a regular
/// code yields a single bucket at check_deg−2.
std::vector<long long> check_degree_histogram(const Dvbs2Code& code);

}  // namespace dvbs2::code
