#include "comm/ber.hpp"

#include <bit>

#include "comm/parallel.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace dvbs2::comm {

namespace {

// Role lanes of the counter-based stream scheme (see util::derive_stream).
// The values are arbitrary but frozen: they are part of the reproducibility
// contract pinned by the golden BER tests.
constexpr std::uint64_t kLanePoint = 0;
constexpr std::uint64_t kLaneData = 1;
constexpr std::uint64_t kLaneNoise = 2;

}  // namespace

std::uint64_t point_stream_seed(std::uint64_t seed, double ebn0_db) {
    // Collapse -0.0 onto +0.0 so equal Eb/N0 values share a stream.
    const double norm = ebn0_db == 0.0 ? 0.0 : ebn0_db;
    return util::derive_stream(seed, std::bit_cast<std::uint64_t>(norm), kLanePoint);
}

std::uint64_t frame_data_seed(std::uint64_t point_seed, std::uint64_t frame) {
    return util::derive_stream(point_seed, frame, kLaneData);
}

std::uint64_t frame_noise_seed(std::uint64_t point_seed, std::uint64_t frame) {
    return util::derive_stream(point_seed, frame, kLaneNoise);
}

BerPoint simulate_point(const code::Dvbs2Code& code, const DecodeFn& decode, double ebn0_db,
                        const SimConfig& cfg) {
    // A single DecodeFn may own mutable decoder state, so it must never be
    // called concurrently: force one worker. The tallies still match the
    // parallel engine at any thread count (per-frame streams + batch-wise
    // early stop are scheduling-independent).
    SimConfig serial = cfg;
    serial.threads = 1;
    return simulate_point_parallel(
        code, [&decode](unsigned) { return decode; }, ebn0_db, serial, nullptr);
}

std::vector<BerPoint> simulate_sweep(const code::Dvbs2Code& code, const DecodeFn& decode,
                                     const std::vector<double>& ebn0_db, const SimConfig& cfg) {
    std::vector<BerPoint> points;
    points.reserve(ebn0_db.size());
    for (double snr : ebn0_db) points.push_back(simulate_point(code, decode, snr, cfg));
    return points;
}

std::optional<double> find_threshold_db(const code::Dvbs2Code& code, const DecodeFn& decode,
                                        double target_ber, double start_db, double step_db,
                                        const SimConfig& cfg, double max_db) {
    DVBS2_REQUIRE(step_db > 0.0, "step must be positive");
    const auto k_bits = static_cast<std::uint64_t>(code.params().k);
    // Index-based stepping: snr = start + i·step is computed fresh per point,
    // so long scans do not accumulate floating-point drift (the former
    // `snr += step` loop needed a max_db fudge to terminate predictably).
    for (std::uint64_t i = 0;; ++i) {
        const double snr = start_db + static_cast<double>(i) * step_db;
        if (snr > max_db + 1e-9) break;
        const BerPoint pt = simulate_point(code, decode, snr, cfg);
        if (pt.ber(k_bits) < target_ber) return snr;
    }
    return std::nullopt;  // target BER never reached within the scan range
}

}  // namespace dvbs2::comm
