#include "comm/ber.hpp"

#include "util/error.hpp"
#include "util/prng.hpp"

namespace dvbs2::comm {

BerPoint simulate_point(const code::Dvbs2Code& code, const DecodeFn& decode, double ebn0_db,
                        const SimConfig& cfg) {
    const auto& cp = code.params();
    const double sigma = noise_sigma(ebn0_db, cp.rate(), cfg.modulation);
    // Decorrelate the point's streams from the sweep position and seed.
    const std::uint64_t point_seed =
        util::mix64(cfg.seed ^ util::mix64(static_cast<std::uint64_t>(ebn0_db * 4096.0) + 7));
    AwgnModem modem(cfg.modulation, point_seed);
    util::Xoshiro256pp data_rng(util::mix64(point_seed + 1));
    const enc::Encoder encoder(code);

    BerPoint pt;
    pt.ebn0_db = ebn0_db;
    double iter_sum = 0.0;
    for (std::uint64_t f = 0; f < cfg.limits.max_frames; ++f) {
        util::BitVec info(static_cast<std::size_t>(cp.k));
        if (cfg.random_data) {
            for (int v = 0; v < cp.k; ++v)
                if (data_rng() & 1u) info.set(static_cast<std::size_t>(v), true);
        }
        const util::BitVec cw = encoder.encode(info);
        const std::vector<double> llr = modem.transmit(cw, sigma);
        const DecodeOutcome out = decode(llr);
        DVBS2_REQUIRE(out.info_bits.size() == static_cast<std::size_t>(cp.k),
                      "decoder returned wrong info length");

        const std::size_t errs = util::BitVec::hamming_distance(out.info_bits, info);
        pt.bit_errors += errs;
        if (errs != 0) {
            ++pt.frame_errors;
            if (out.converged) ++pt.undetected_frame_errors;
        }
        iter_sum += out.iterations;
        ++pt.frames;

        const bool enough_errors = pt.bit_errors >= cfg.limits.target_bit_errors &&
                                   pt.frame_errors >= cfg.limits.target_frame_errors;
        if (pt.frames >= cfg.limits.min_frames && enough_errors) break;
    }
    pt.avg_iterations = pt.frames ? iter_sum / static_cast<double>(pt.frames) : 0.0;
    return pt;
}

std::vector<BerPoint> simulate_sweep(const code::Dvbs2Code& code, const DecodeFn& decode,
                                     const std::vector<double>& ebn0_db, const SimConfig& cfg) {
    std::vector<BerPoint> points;
    points.reserve(ebn0_db.size());
    for (double snr : ebn0_db) points.push_back(simulate_point(code, decode, snr, cfg));
    return points;
}

double find_threshold_db(const code::Dvbs2Code& code, const DecodeFn& decode, double target_ber,
                         double start_db, double step_db, const SimConfig& cfg, double max_db) {
    DVBS2_REQUIRE(step_db > 0.0, "step must be positive");
    const auto k_bits = static_cast<std::uint64_t>(code.params().k);
    for (double snr = start_db; snr <= max_db + 1e-9; snr += step_db) {
        const BerPoint pt = simulate_point(code, decode, snr, cfg);
        if (pt.ber(k_bits) < target_ber) return snr;
    }
    return max_db;  // not reached within the scan range
}

}  // namespace dvbs2::comm
