// Monte-Carlo BER/FER measurement harness.
//
// Runs the full chain encode → modulate → AWGN → decode for a sweep of
// Eb/N0 points, with early stopping once enough error events are observed.
// The decoder is injected as a callback so the harness works with the
// floating-point decoder, the fixed-point decoder and the cycle-driven
// architecture model alike (no dependency on the core decoders or the arch
// model — only on the plain core::ConvergenceStats telemetry value type,
// which every decode path feeds).
//
// Determinism contract (also the parallel engine's, see comm/parallel.hpp):
// every random quantity is a pure function of logical coordinates, never of
// evaluation order. Point p of a sweep draws from streams seeded by
// point_stream_seed(cfg.seed, ebn0_db) — a function of the Eb/N0 *value*,
// so permuting the sweep vector permutes the results. Frame f of a point
// draws its data bits and its noise from two streams seeded by
// frame_data_seed / frame_noise_seed(point_seed, f). Early stopping is
// batch-wise: frames are grouped into batches of cfg.batch_frames
// consecutive frame indices, and the result is the tally over the shortest
// batch prefix whose cumulative counts satisfy SimLimits (or all frames up
// to max_frames). Both rules are scheduling-independent, which is what
// makes the counts identical for any thread count, including 1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "core/types.hpp"
#include "enc/encoder.hpp"
#include "util/bitvec.hpp"

namespace dvbs2::comm {

/// What a decoder returns to the harness.
struct DecodeOutcome {
    util::BitVec info_bits;  ///< hard decisions for the K information bits
    bool converged = false;  ///< syndrome satisfied before the iteration cap
    int iterations = 0;      ///< iterations actually executed
};

/// Decoder under test: channel LLRs (size N, sign convention: positive → 0)
/// to decoded info bits.
using DecodeFn = std::function<DecodeOutcome(const std::vector<double>& llr)>;

/// Stopping/size limits for one Eb/N0 point.
struct SimLimits {
    std::uint64_t max_frames = 200;    ///< hard cap on simulated frames
    std::uint64_t min_frames = 8;      ///< always simulate at least this many
    std::uint64_t target_bit_errors = 200;   ///< stop early once reached
    std::uint64_t target_frame_errors = 20;  ///< stop early once reached
};

/// Result of one Eb/N0 point.
struct BerPoint {
    double ebn0_db = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t bit_errors = 0;
    std::uint64_t frame_errors = 0;
    /// Frames where the decoder *claimed* convergence but delivered wrong
    /// information bits (it converged to a different codeword). These are
    /// the dangerous events an outer BCH code must catch; with girth-6 IRA
    /// codes at N = 64800 they are rare.
    std::uint64_t undetected_frame_errors = 0;
    double avg_iterations = 0.0;
    /// Iteration-count histogram and convergence counts over the measured
    /// frames (the same frames the error counts cover). Deterministic for
    /// any thread count — the per-frame iteration counts are pure functions
    /// of frame indices and the batch-prefix stop rule, like every other
    /// field. convergence.mean_iterations() == avg_iterations.
    core::ConvergenceStats convergence;

    double ber(std::uint64_t info_bits_per_frame) const {
        const auto total = frames * info_bits_per_frame;
        return total ? static_cast<double>(bit_errors) / static_cast<double>(total) : 0.0;
    }
    double fer() const {
        return frames ? static_cast<double>(frame_errors) / static_cast<double>(frames) : 0.0;
    }
};

/// Progress snapshot of one Eb/N0 point, emitted at batch-merge boundaries
/// and once more (with `finished = true`) after the point completes. The
/// callback runs under the engine's reduction lock: keep it cheap and do
/// not re-enter the engine from it.
struct SimProgress {
    double ebn0_db = 0.0;
    std::uint64_t frames = 0;      ///< frames merged into the result so far
    std::uint64_t frames_cap = 0;  ///< cfg.limits.max_frames
    std::uint64_t bit_errors = 0;
    std::uint64_t frame_errors = 0;
    double elapsed_s = 0.0;
    double frames_per_s = 0.0;
    unsigned threads = 1;
    /// Σ worker busy time / (threads · wall time); only meaningful on the
    /// final (finished) event. 1.0 = every worker was busy the whole run.
    double worker_utilization = 0.0;
    bool finished = false;
};
using ProgressFn = std::function<void(const SimProgress&)>;

/// Simulation configuration shared by all points of a sweep.
struct SimConfig {
    Modulation modulation = Modulation::Bpsk;
    std::uint64_t seed = 1;
    bool random_data = true;  ///< false → all-zero codeword (decoder-symmetric)
    SimLimits limits;
    /// Worker threads for the parallel engine (comm/parallel.hpp):
    /// 0 = auto (DVBS2_THREADS env var, else hardware_concurrency). The
    /// DecodeFn entry points below always run serially — a single decoder
    /// callback may own mutable state and must not be called concurrently —
    /// but produce tallies identical to the parallel engine at any thread
    /// count, because frame streams and early stopping depend only on frame
    /// indices (see header comment).
    unsigned threads = 0;
    /// Frames per scheduling batch; early stopping is decided on batch
    /// prefixes, so this is part of the deterministic result, not a tuning
    /// knob to change freely once results are pinned.
    std::uint64_t batch_frames = 8;
    ProgressFn progress;  ///< optional observability hook (may be empty)
};

/// Seed of the independent RNG stream of one (sweep-seed, Eb/N0) point.
/// Hashes the IEEE-754 bit pattern of `ebn0_db` (with −0.0 normalized to
/// +0.0), so any two distinct Eb/N0 values get distinct streams — no
/// quantization collisions — and the stream does not depend on the point's
/// position in the sweep vector.
std::uint64_t point_stream_seed(std::uint64_t seed, double ebn0_db);

/// Per-frame stream seeds (counter-based: pure functions of their inputs).
std::uint64_t frame_data_seed(std::uint64_t point_seed, std::uint64_t frame);
std::uint64_t frame_noise_seed(std::uint64_t point_seed, std::uint64_t frame);

/// Simulates one Eb/N0 point (serial; see SimConfig::threads).
BerPoint simulate_point(const code::Dvbs2Code& code, const DecodeFn& decode, double ebn0_db,
                        const SimConfig& cfg);

/// Simulates a sweep of points (independent RNG streams per point).
std::vector<BerPoint> simulate_sweep(const code::Dvbs2Code& code, const DecodeFn& decode,
                                     const std::vector<double>& ebn0_db, const SimConfig& cfg);

/// Finds the smallest Eb/N0 (dB, within `step_db`) at which the measured BER
/// drops below `target_ber`, scanning upward from `start_db`. Scan points are
/// start_db + i·step_db (index-stepped, no floating-point accumulation
/// drift); the last point tested is the largest one ≤ max_db. Returns
/// std::nullopt when no scanned point meets the target — distinguishable
/// from a threshold exactly at max_db. Used for threshold/gap measurements
/// (E4, E7, E8).
std::optional<double> find_threshold_db(const code::Dvbs2Code& code, const DecodeFn& decode,
                                        double target_ber, double start_db, double step_db,
                                        const SimConfig& cfg, double max_db = 12.0);

}  // namespace dvbs2::comm
