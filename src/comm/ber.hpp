// Monte-Carlo BER/FER measurement harness.
//
// Runs the full chain encode → modulate → AWGN → decode for a sweep of
// Eb/N0 points, with early stopping once enough error events are observed.
// The decoder is injected as a callback so the harness works with the
// floating-point decoder, the fixed-point decoder and the cycle-driven
// architecture model alike (and stays free of a dependency on core/arch).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "code/tanner.hpp"
#include "comm/modem.hpp"
#include "enc/encoder.hpp"
#include "util/bitvec.hpp"

namespace dvbs2::comm {

/// What a decoder returns to the harness.
struct DecodeOutcome {
    util::BitVec info_bits;  ///< hard decisions for the K information bits
    bool converged = false;  ///< syndrome satisfied before the iteration cap
    int iterations = 0;      ///< iterations actually executed
};

/// Decoder under test: channel LLRs (size N, sign convention: positive → 0)
/// to decoded info bits.
using DecodeFn = std::function<DecodeOutcome(const std::vector<double>& llr)>;

/// Stopping/size limits for one Eb/N0 point.
struct SimLimits {
    std::uint64_t max_frames = 200;    ///< hard cap on simulated frames
    std::uint64_t min_frames = 8;      ///< always simulate at least this many
    std::uint64_t target_bit_errors = 200;   ///< stop early once reached
    std::uint64_t target_frame_errors = 20;  ///< stop early once reached
};

/// Result of one Eb/N0 point.
struct BerPoint {
    double ebn0_db = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t bit_errors = 0;
    std::uint64_t frame_errors = 0;
    /// Frames where the decoder *claimed* convergence but delivered wrong
    /// information bits (it converged to a different codeword). These are
    /// the dangerous events an outer BCH code must catch; with girth-6 IRA
    /// codes at N = 64800 they are rare.
    std::uint64_t undetected_frame_errors = 0;
    double avg_iterations = 0.0;

    double ber(std::uint64_t info_bits_per_frame) const {
        const auto total = frames * info_bits_per_frame;
        return total ? static_cast<double>(bit_errors) / static_cast<double>(total) : 0.0;
    }
    double fer() const {
        return frames ? static_cast<double>(frame_errors) / static_cast<double>(frames) : 0.0;
    }
};

/// Simulation configuration shared by all points of a sweep.
struct SimConfig {
    Modulation modulation = Modulation::Bpsk;
    std::uint64_t seed = 1;
    bool random_data = true;  ///< false → all-zero codeword (decoder-symmetric)
    SimLimits limits;
};

/// Simulates one Eb/N0 point.
BerPoint simulate_point(const code::Dvbs2Code& code, const DecodeFn& decode, double ebn0_db,
                        const SimConfig& cfg);

/// Simulates a sweep of points (independent RNG streams per point).
std::vector<BerPoint> simulate_sweep(const code::Dvbs2Code& code, const DecodeFn& decode,
                                     const std::vector<double>& ebn0_db, const SimConfig& cfg);

/// Finds the smallest Eb/N0 (dB, within `step_db`) at which the measured BER
/// drops below `target_ber`, scanning upward from `start_db`. Used for
/// threshold/gap measurements (E4, E7, E8).
double find_threshold_db(const code::Dvbs2Code& code, const DecodeFn& decode, double target_ber,
                         double start_db, double step_db, const SimConfig& cfg,
                         double max_db = 12.0);

}  // namespace dvbs2::comm
