#include "comm/capacity.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace dvbs2::comm {

double bi_awgn_capacity(double sigma) {
    DVBS2_REQUIRE(sigma > 0.0, "sigma must be positive");
    // Simpson integration of (1/√(2πσ²)) e^{−(y−1)²/2σ²} log2(1+e^{−2y/σ²})
    // over y ∈ [1−12σ, 1+12σ]. The integrand is smooth; 4001 points give
    // ~1e−10 absolute accuracy across the σ range used here.
    const int n = 4000;  // even
    const double lo = 1.0 - 12.0 * sigma;
    const double hi = 1.0 + 12.0 * sigma;
    const double h = (hi - lo) / n;
    const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
    const double norm = 1.0 / (sigma * std::sqrt(2.0 * M_PI));
    auto f = [&](double y) {
        const double pdf = norm * std::exp(-(y - 1.0) * (y - 1.0) * inv2s2);
        const double arg = -2.0 * y / (sigma * sigma);
        // log2(1+e^{arg}) computed stably for both signs of arg.
        const double l2 = arg > 0 ? (arg + std::log1p(std::exp(-arg))) / std::log(2.0)
                                  : std::log1p(std::exp(arg)) / std::log(2.0);
        return pdf * l2;
    };
    double sum = f(lo) + f(hi);
    for (int i = 1; i < n; ++i) sum += f(lo + i * h) * (i % 2 ? 4.0 : 2.0);
    const double expectation = sum * h / 3.0;
    return 1.0 - expectation;
}

double shannon_limit_bpsk_db(double code_rate) {
    DVBS2_REQUIRE(code_rate > 0.0 && code_rate < 1.0, "rate must be in (0,1)");
    // C(σ(Eb/N0)) is increasing in Eb/N0; bisect on Eb/N0 in dB.
    double lo = -3.0, hi = 20.0;
    for (int it = 0; it < 200; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double sigma = noise_sigma(mid, code_rate, Modulation::Bpsk);
        if (bi_awgn_capacity(sigma) >= code_rate)
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

double shannon_limit_unconstrained_db(double code_rate) {
    DVBS2_REQUIRE(code_rate > 0.0 && code_rate < 1.0, "rate must be in (0,1)");
    // rate = ½ log2(1 + 2·rate·Eb/N0)  ⇒  Eb/N0 = (2^{2·rate} − 1)/(2·rate).
    const double ebn0 = (std::pow(2.0, 2.0 * code_rate) - 1.0) / (2.0 * code_rate);
    return util::linear_to_db(ebn0);
}

}  // namespace dvbs2::comm
