// Shannon limits for the AWGN channel.
//
// The paper claims the DVB-S2 LDPC family operates ≈0.7 dB from the Shannon
// limit. Experiment E8 measures our decoder's threshold against two
// references computed here:
//   * the BPSK/QPSK-input constrained capacity C(σ) (numeric integration of
//     the mutual information of a binary-input AWGN channel), and
//   * the unconstrained real-AWGN capacity ½·log2(1 + SNR).
#pragma once

#include "comm/modem.hpp"

namespace dvbs2::comm {

/// Mutual information (bits per binary symbol) of a binary-input AWGN
/// channel with per-dimension amplitude 1 and noise stddev `sigma`:
///   C = 1 − E_y|x=+1 [ log2(1 + e^{−2y/σ²}) ].
double bi_awgn_capacity(double sigma);

/// Minimum Eb/N0 (dB) at which a binary-input AWGN channel supports rate
/// `code_rate` (bits per binary symbol), solved by bisection on
/// C(σ(Eb/N0)) = rate. This is the Shannon limit the paper's "0.7 dB" gap
/// refers to for (Gray-mapped) BPSK/QPSK transmission.
double shannon_limit_bpsk_db(double code_rate);

/// Unconstrained Shannon limit: smallest Eb/N0 (dB) with
/// rate ≤ ½·log2(1 + 2·rate·Eb/N0) per real dimension.
double shannon_limit_unconstrained_db(double code_rate);

}  // namespace dvbs2::comm
