#include "comm/constellation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dvbs2::comm {

namespace {

bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Binary-reflected Gray code.
std::uint32_t gray(std::uint32_t v) { return v ^ (v >> 1); }

}  // namespace

Constellation::Constellation(std::string name, std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
    DVBS2_REQUIRE(is_power_of_two(points_.size()) && points_.size() >= 2,
                  "constellation size must be a power of two >= 2");
    while ((std::size_t{1} << bits_) < points_.size()) ++bits_;
    // Normalize to unit average symbol energy.
    double energy = 0.0;
    for (const auto& p : points_) energy += p.i * p.i + p.q * p.q;
    energy /= static_cast<double>(points_.size());
    DVBS2_REQUIRE(energy > 0.0, "degenerate constellation");
    const double scale = 1.0 / std::sqrt(energy);
    for (auto& p : points_) {
        p.i *= scale;
        p.q *= scale;
    }
}

Constellation::Point Constellation::map(const util::BitVec& bits, std::size_t offset) const {
    std::size_t v = 0;
    for (int b = 0; b < bits_; ++b)
        v = (v << 1) | (bits.get(offset + static_cast<std::size_t>(b)) ? 1u : 0u);
    return points_[v];
}

void Constellation::demap_maxlog(double yi, double yq, double sigma, double* llr_out) const {
    DVBS2_REQUIRE(sigma > 0.0, "sigma must be positive");
    const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
    double min0[8], min1[8];
    for (int b = 0; b < bits_; ++b) min0[b] = min1[b] = 1e300;
    for (std::size_t v = 0; v < points_.size(); ++v) {
        const Point& p = points_[v];
        const double d2 = (yi - p.i) * (yi - p.i) + (yq - p.q) * (yq - p.q);
        for (int b = 0; b < bits_; ++b) {
            const bool bit = ((v >> (bits_ - 1 - b)) & 1u) != 0;
            double& slot = bit ? min1[b] : min0[b];
            if (d2 < slot) slot = d2;
        }
    }
    for (int b = 0; b < bits_; ++b) llr_out[b] = (min1[b] - min0[b]) * inv2s2;
}

double Constellation::min_distance() const {
    double best = 1e300;
    for (std::size_t a = 0; a < points_.size(); ++a) {
        for (std::size_t b = a + 1; b < points_.size(); ++b) {
            const double di = points_[a].i - points_[b].i;
            const double dq = points_[a].q - points_[b].q;
            best = std::min(best, std::sqrt(di * di + dq * dq));
        }
    }
    return best;
}

Constellation Constellation::psk8() {
    std::vector<Point> pts(8);
    for (std::uint32_t k = 0; k < 8; ++k) {
        // Gray mapping: angle slot k carries value gray(k), so the values
        // of adjacent slots differ in exactly one bit (placing value v at
        // slot gray(v) — the tempting shortcut — does NOT have this
        // property; caught by Psk8Gray.AdjacentAnglesDifferInOneBit).
        const double ang = 2.0 * M_PI * k / 8.0;
        pts[gray(k)] = {std::cos(ang), std::sin(ang)};
    }
    return Constellation("8PSK", std::move(pts));
}

Constellation Constellation::apsk16(double gamma) {
    DVBS2_REQUIRE(gamma > 1.0, "16APSK ring ratio must exceed 1");
    // 4+12 structure (EN 302 307 §5.4.3): values 0..11 on the outer ring
    // (radius γ), 12..15 on the inner ring (radius 1). Within each ring the
    // value order follows the angle slots (structured approximation of the
    // standard's bit map; the ring split carries the dominant reliability
    // difference).
    std::vector<Point> pts(16);
    for (int k = 0; k < 12; ++k) {
        const double ang = M_PI / 12.0 + 2.0 * M_PI * k / 12.0;
        pts[static_cast<std::size_t>(k)] = {gamma * std::cos(ang), gamma * std::sin(ang)};
    }
    for (int k = 0; k < 4; ++k) {
        const double ang = M_PI / 4.0 + 2.0 * M_PI * k / 4.0;
        pts[static_cast<std::size_t>(12 + k)] = {std::cos(ang), std::sin(ang)};
    }
    return Constellation("16APSK", std::move(pts));
}

Constellation Constellation::apsk32(double gamma1, double gamma2) {
    DVBS2_REQUIRE(gamma2 > gamma1 && gamma1 > 1.0, "32APSK needs 1 < gamma1 < gamma2");
    // 4+12+16 structure (§5.4.4): values 0..15 outer ring (γ2), 16..27
    // middle ring (γ1), 28..31 inner ring (1).
    std::vector<Point> pts(32);
    for (int k = 0; k < 16; ++k) {
        const double ang = 2.0 * M_PI * k / 16.0;
        pts[static_cast<std::size_t>(k)] = {gamma2 * std::cos(ang), gamma2 * std::sin(ang)};
    }
    for (int k = 0; k < 12; ++k) {
        const double ang = M_PI / 12.0 + 2.0 * M_PI * k / 12.0;
        pts[static_cast<std::size_t>(16 + k)] = {gamma1 * std::cos(ang), gamma1 * std::sin(ang)};
    }
    for (int k = 0; k < 4; ++k) {
        const double ang = M_PI / 4.0 + 2.0 * M_PI * k / 4.0;
        pts[static_cast<std::size_t>(28 + k)] = {std::cos(ang), std::sin(ang)};
    }
    return Constellation("32APSK", std::move(pts));
}

std::vector<double> transmit_constellation(const Constellation& c, const util::BitVec& bits,
                                           double sigma, util::Xoshiro256pp& rng) {
    const int bps = c.bits_per_symbol();
    DVBS2_REQUIRE(bits.size() % static_cast<std::size_t>(bps) == 0,
                  "bit count must be a multiple of bits-per-symbol");
    std::vector<double> llr(bits.size());
    double out[8];
    for (std::size_t s = 0; s < bits.size(); s += static_cast<std::size_t>(bps)) {
        const auto tx = c.map(bits, s);
        const double yi = tx.i + sigma * rng.gaussian();
        const double yq = tx.q + sigma * rng.gaussian();
        c.demap_maxlog(yi, yq, sigma, out);
        for (int b = 0; b < bps; ++b) llr[s + static_cast<std::size_t>(b)] = out[b];
    }
    return llr;
}

}  // namespace dvbs2::comm
