// Generic 2-D constellations with max-log demapping — the DVB-S2 modes
// beyond QPSK: 8PSK, 16APSK (4+12 rings) and 32APSK (4+12+16 rings), with
// the standard's rate-dependent ring-radius ratios.
//
// The decoder IP is modulation-agnostic (it consumes LLRs); these classes
// provide the channel front-end for the higher spectral efficiencies the
// DVB-S2 system pairs the LDPC codes with.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.hpp"
#include "util/prng.hpp"

namespace dvbs2::comm {

/// A unit-average-energy complex constellation with an explicit bit map.
class Constellation {
public:
    struct Point {
        double i = 0.0;
        double q = 0.0;
    };

    /// `points[v]` is the symbol transmitted for bit-group value v (first
    /// bit = MSB). The constructor normalizes to unit average energy and
    /// validates |points| is a power of two.
    Constellation(std::string name, std::vector<Point> points);

    const std::string& name() const noexcept { return name_; }
    int bits_per_symbol() const noexcept { return bits_; }
    std::size_t size() const noexcept { return points_.size(); }
    const Point& point(std::size_t value) const noexcept { return points_[value]; }

    /// Maps a bit group (MSB-first, `bits_per_symbol` bits starting at
    /// `offset`) to its symbol.
    Point map(const util::BitVec& bits, std::size_t offset) const;

    /// Max-log LLRs of one received symbol: llr[b] =
    /// (min_{s: bit b=1} |y−s|² − min_{s: bit b=0} |y−s|²) / (2σ²).
    void demap_maxlog(double yi, double yq, double sigma, double* llr_out) const;

    /// Minimum distance between distinct constellation points (after
    /// normalization) — used by tests and link budgeting.
    double min_distance() const;

    // --- DVB-S2 constellations ---

    /// Gray-mapped 8PSK (EN 302 307 §5.4.2).
    static Constellation psk8();

    /// 16APSK, 4+12 rings with radius ratio `gamma` (§5.4.3; e.g. γ = 3.15
    /// for rate 2/3, 2.85 for 3/4, 2.57 for 9/10 at unit outer ring).
    static Constellation apsk16(double gamma = 3.15);

    /// 32APSK, 4+12+16 rings with ratios γ1 (middle/inner) and γ2
    /// (outer/inner) (§5.4.4; e.g. γ1 = 2.84, γ2 = 5.27 for rate 3/4).
    static Constellation apsk32(double gamma1 = 2.84, double gamma2 = 5.27);

private:
    std::string name_;
    int bits_ = 0;
    std::vector<Point> points_;
};

/// Symbol-level AWGN transmission with a generic constellation: modulates
/// `bits` (length must be a multiple of bits_per_symbol), adds noise of
/// stddev `sigma` per real dimension, demaps max-log LLRs.
std::vector<double> transmit_constellation(const Constellation& c, const util::BitVec& bits,
                                           double sigma, util::Xoshiro256pp& rng);

}  // namespace dvbs2::comm
