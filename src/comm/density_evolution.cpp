#include "comm/density_evolution.hpp"

#include <cmath>

#include "comm/modem.hpp"
#include "util/error.hpp"

namespace dvbs2::comm {

double de_phi(double m) {
    if (m <= 0.0) return 1.0;
    if (m < 10.0) return std::exp(-0.4527 * std::pow(m, 0.86) + 0.0218);
    // Large-mean asymptotics (Chung et al., Eq. (9) tail expansion).
    return std::sqrt(M_PI / m) * std::exp(-m / 4.0) * (1.0 - 10.0 / (7.0 * m));
}

double de_phi_inv(double y) {
    DVBS2_REQUIRE(y > 0.0 && y <= 1.0, "phi_inv domain is (0, 1]");
    if (y >= 1.0) return 0.0;
    double lo = 0.0, hi = 1.0;
    while (de_phi(hi) > y) hi *= 2.0;  // phi is decreasing
    for (int it = 0; it < 200; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (de_phi(mid) > y)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

DeResult evolve(const code::CodeParams& params, double sigma, int max_iterations) {
    DVBS2_REQUIRE(sigma > 0.0, "sigma must be positive");

    // Edge-perspective degree fractions of the full graph (information +
    // zigzag parity edges). The single degree-1 parity column and the CN_0
    // irregularity are O(1/N) and ignored.
    const double e_in = static_cast<double>(params.e_in());
    const double e_pn = 2.0 * static_cast<double>(params.m());
    const double e_total = e_in + e_pn;
    struct VnClass {
        double frac;  // fraction of edges
        int degree;
    };
    const VnClass classes[] = {
        {static_cast<double>(params.n_hi) * params.deg_hi / e_total, params.deg_hi},
        {static_cast<double>(params.n_lo()) * params.deg_lo / e_total, params.deg_lo},
        {e_pn / e_total, 2},
    };
    const int dc = params.check_deg;

    const double m_ch = 2.0 / (sigma * sigma);  // mean of the channel LLR
    // Success once the posterior mean implies BER < 1e-7 (Q(√(m/2)) with
    // m ≈ 60). The zigzag degree-2 chain makes the mean grow linearly, not
    // doubly-exponentially, so an astronomically large bound would need
    // thousands of iterations.
    const double kSuccessMean = 60.0;

    double m_c = 0.0;  // mean of CN→VN messages
    DeResult res;
    for (int it = 0; it < max_iterations; ++it) {
        // VN update: per class, m_v = m_ch + (d−1)·m_c; CN update combines
        // the mixture through phi.
        double mix = 0.0;
        for (const auto& cls : classes)
            mix += cls.frac * de_phi(m_ch + (cls.degree - 1) * m_c);
        const double one_minus = 1.0 - mix;
        if (one_minus <= 0.0) {
            res.iterations = it + 1;
            return res;  // stuck at zero mean
        }
        const double prod = std::pow(one_minus, dc - 1);
        m_c = de_phi_inv(std::max(1e-300, 1.0 - prod));
        res.iterations = it + 1;
        if (m_ch + m_c > kSuccessMean) {
            res.converged = true;
            return res;
        }
        if (m_c < 1e-12 && it > 10) return res;  // no progress
    }
    return res;
}

double de_threshold_db(const code::CodeParams& params, int max_iterations, double tol_db) {
    double lo = -2.0, hi = 8.0;
    DVBS2_REQUIRE(tol_db > 0.0, "tolerance must be positive");
    while (hi - lo > tol_db) {
        const double mid = 0.5 * (lo + hi);
        const double sigma = noise_sigma(mid, params.rate(), Modulation::Bpsk);
        if (evolve(params, sigma, max_iterations).converged)
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

}  // namespace dvbs2::comm
