// Density evolution (Gaussian approximation) for the DVB-S2 IRA ensemble.
//
// Predicts the asymptotic decoding threshold of a code's degree profile
// without simulation (Chung/Richardson/Urbanke GA-DE): messages are modeled
// as consistent Gaussians N(m, 2m); variable nodes add means, check nodes
// combine through the φ-function. The IRA graph is treated as an irregular
// LDPC ensemble: information nodes of degree {deg_hi, 3}, parity nodes of
// degree 2 (zigzag), constant check degree k.
//
// Used as an analytic cross-check of the simulated thresholds in E8 and to
// show why the DVB-S2 profiles sit ≈0.7 dB from capacity at finite
// iteration counts.
#pragma once

#include "code/params.hpp"

namespace dvbs2::comm {

/// φ(m) = 1 − E[tanh(x/2)], x ~ N(m, 2m) — Chung's two-piece approximation
/// (exact enough for threshold work; monotone decreasing, φ(0)=1).
double de_phi(double m);

/// Inverse of de_phi on (0, 1].
double de_phi_inv(double y);

/// Result of evolving the densities at one channel parameter.
struct DeResult {
    bool converged = false;  ///< mean exceeded the success bound
    int iterations = 0;      ///< iterations used (≤ max)
};

/// Evolves the Gaussian densities of the ensemble of `params` on a
/// binary-input AWGN channel with noise `sigma`, up to `max_iterations`.
DeResult evolve(const code::CodeParams& params, double sigma, int max_iterations);

/// Decoding threshold in Eb/N0 (dB): the smallest channel quality at which
/// GA-DE converges within `max_iterations` (bisection to `tol_db`).
double de_threshold_db(const code::CodeParams& params, int max_iterations,
                       double tol_db = 0.01);

}  // namespace dvbs2::comm
