#include "comm/interleaver.hpp"

#include "util/error.hpp"

namespace dvbs2::comm {

BlockInterleaver::BlockInterleaver(int frame_bits, int columns, std::vector<int> twist)
    : frame_bits_(frame_bits), columns_(columns), twist_(std::move(twist)) {
    DVBS2_REQUIRE(columns >= 1, "need at least one column");
    DVBS2_REQUIRE(frame_bits > 0 && frame_bits % columns == 0,
                  "frame length must be a multiple of the column count");
    rows_ = frame_bits / columns;
    if (twist_.empty()) twist_.assign(static_cast<std::size_t>(columns), 0);
    DVBS2_REQUIRE(static_cast<int>(twist_.size()) == columns, "one twist per column");
    for (auto& t : twist_) t = ((t % rows_) + rows_) % rows_;
}

int BlockInterleaver::map_index(int i) const noexcept {
    // Input bit i is written into column c = i / rows at row r = i % rows,
    // then twisted down by twist[c]; readout is row-major.
    const int c = i / rows_;
    const int r = (i % rows_ + twist_[static_cast<std::size_t>(c)]) % rows_;
    return r * columns_ + c;
}

util::BitVec BlockInterleaver::interleave(const util::BitVec& in) const {
    DVBS2_REQUIRE(in.size() == static_cast<std::size_t>(frame_bits_), "frame length mismatch");
    util::BitVec out(in.size());
    for (int i = 0; i < frame_bits_; ++i)
        if (in.get(static_cast<std::size_t>(i)))
            out.set(static_cast<std::size_t>(map_index(i)), true);
    return out;
}

util::BitVec BlockInterleaver::deinterleave(const util::BitVec& in) const {
    DVBS2_REQUIRE(in.size() == static_cast<std::size_t>(frame_bits_), "frame length mismatch");
    util::BitVec out(in.size());
    for (int i = 0; i < frame_bits_; ++i)
        if (in.get(static_cast<std::size_t>(map_index(i))))
            out.set(static_cast<std::size_t>(i), true);
    return out;
}

std::vector<double> BlockInterleaver::deinterleave(const std::vector<double>& in) const {
    DVBS2_REQUIRE(in.size() == static_cast<std::size_t>(frame_bits_), "frame length mismatch");
    std::vector<double> out(in.size());
    for (int i = 0; i < frame_bits_; ++i)
        out[static_cast<std::size_t>(i)] = in[static_cast<std::size_t>(map_index(i))];
    return out;
}

}  // namespace dvbs2::comm
