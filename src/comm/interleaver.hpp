// DVB-S2 block bit interleaver (EN 302 307 §5.3.3).
//
// For 8PSK (and higher orders) the standard interleaves the FECFRAME
// serially column-wise into a rows×columns block (columns = bits per
// symbol) and reads it out row-wise, with a column-twist for some modes.
// This spreads each LDPC codeword bit across constellation bit positions of
// different reliability. BPSK/QPSK frames are not interleaved.
//
// The paper's decoder sits after the deinterleaver, so the interleaver is a
// chain substrate (used by the 8PSK path of the examples), not part of the
// reproduced IP.
#pragma once

#include <vector>

#include "util/bitvec.hpp"

namespace dvbs2::comm {

/// Block interleaver: `columns` columns of `frame_bits / columns` rows.
/// Writing is column by column (column c gets bits c·rows .. c·rows+rows−1),
/// reading is row by row; `twist[c]` rotates column c downward (the
/// standard's column twist, e.g. {0,1,2} isn't used for 8PSK — pass zeros
/// for the plain §5.3.3 interleaver).
class BlockInterleaver {
public:
    BlockInterleaver(int frame_bits, int columns, std::vector<int> twist = {});

    int frame_bits() const noexcept { return frame_bits_; }
    int columns() const noexcept { return columns_; }
    int rows() const noexcept { return rows_; }

    /// Interleaves (TX direction).
    util::BitVec interleave(const util::BitVec& in) const;

    /// Deinterleaves (RX direction) — exact inverse of interleave.
    util::BitVec deinterleave(const util::BitVec& in) const;

    /// Deinterleaves soft values (channel LLRs) — what the decoder input
    /// stage does.
    std::vector<double> deinterleave(const std::vector<double>& in) const;

private:
    /// Output position of input bit i under interleaving.
    int map_index(int i) const noexcept;

    int frame_bits_;
    int columns_;
    int rows_;
    std::vector<int> twist_;
};

}  // namespace dvbs2::comm
