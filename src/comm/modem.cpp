#include "comm/modem.hpp"

#include <array>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace dvbs2::comm {

int bits_per_symbol(Modulation mod) {
    switch (mod) {
        case Modulation::Bpsk: return 1;
        case Modulation::Qpsk: return 2;
        case Modulation::Psk8: return 3;
    }
    return 1;
}

double noise_sigma(double ebn0_db, double code_rate, Modulation mod) {
    DVBS2_REQUIRE(code_rate > 0.0 && code_rate < 1.0, "code rate must be in (0,1)");
    const double esn0 = util::db_to_linear(ebn0_db) * code_rate * bits_per_symbol(mod);
    // Es = 1 per complex symbol. For BPSK the symbol lives in one real
    // dimension with amplitude 1; for QPSK each real dimension carries
    // amplitude 1/√2; for 8PSK the unit circle. In all cases N0 = Es/(Es/N0)
    // and σ² = N0/2 per real dimension.
    return std::sqrt(1.0 / (2.0 * esn0));
}

namespace {

/// Per-dimension amplitude of each transmitted bit (BPSK/QPSK only).
double bit_amplitude(Modulation mod) {
    return mod == Modulation::Bpsk ? 1.0 : 1.0 / std::sqrt(2.0);
}

/// Gray-mapped 8PSK: bit triple value v (b0 MSB) → constellation index k,
/// point = e^{j·2πk/8}. kGray8 is the *inverse* binary-reflected Gray code
/// (angle slot k carries value gray(k)), which is what makes adjacent
/// points differ in exactly one bit.
constexpr std::array<int, 8> kGray8 = {0, 1, 3, 2, 7, 6, 4, 5};

struct Point {
    double i;
    double q;
};

std::array<Point, 8> make_psk8_points() {
    std::array<Point, 8> pts{};
    for (int k = 0; k < 8; ++k) {
        const double ang = 2.0 * M_PI * k / 8.0;
        pts[static_cast<std::size_t>(k)] = {std::cos(ang), std::sin(ang)};
    }
    return pts;
}

}  // namespace

std::vector<double> AwgnModem::transmit(const util::BitVec& bits, double sigma) {
    DVBS2_REQUIRE(sigma > 0.0, "sigma must be positive");
    std::vector<double> llr(bits.size());

    if (mod_ == Modulation::Psk8) {
        DVBS2_REQUIRE(bits.size() % 3 == 0, "8PSK needs a multiple of 3 bits");
        static const std::array<Point, 8> pts = make_psk8_points();
        const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
        for (std::size_t s = 0; s < bits.size(); s += 3) {
            int v = 0;
            for (int b = 0; b < 3; ++b)
                v = (v << 1) | (bits.get(s + static_cast<std::size_t>(b)) ? 1 : 0);
            const Point& tx = pts[static_cast<std::size_t>(kGray8[static_cast<std::size_t>(v)])];
            const double yi = tx.i + sigma * rng_.gaussian();
            const double yq = tx.q + sigma * rng_.gaussian();
            // Max-log demap: LLR_b = (min_{b=1} d² − min_{b=0} d²) / (2σ²).
            double min0[3] = {1e300, 1e300, 1e300};
            double min1[3] = {1e300, 1e300, 1e300};
            for (int u = 0; u < 8; ++u) {
                const Point& p = pts[static_cast<std::size_t>(kGray8[static_cast<std::size_t>(u)])];
                const double d2 = (yi - p.i) * (yi - p.i) + (yq - p.q) * (yq - p.q);
                for (int b = 0; b < 3; ++b) {
                    const bool bit = ((u >> (2 - b)) & 1) != 0;
                    double& slot = bit ? min1[b] : min0[b];
                    if (d2 < slot) slot = d2;
                }
            }
            for (int b = 0; b < 3; ++b)
                llr[s + static_cast<std::size_t>(b)] = (min1[b] - min0[b]) * inv2s2;
        }
        return llr;
    }

    const double a = bit_amplitude(mod_);
    const double gain = 2.0 * a / (sigma * sigma);  // exact AWGN LLR scaling
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const double tx = bits.get(i) ? -a : a;  // bit 0 → +a, bit 1 → −a
        const double y = tx + sigma * rng_.gaussian();
        llr[i] = gain * y;
    }
    return llr;
}

std::vector<double> AwgnModem::transmit_noiseless(const util::BitVec& bits,
                                                  double sigma_for_gain) {
    DVBS2_REQUIRE(sigma_for_gain > 0.0, "sigma must be positive");
    if (mod_ == Modulation::Psk8) {
        // Noiseless 8PSK: demap the clean constellation point directly; the
        // max-log LLR magnitude is the distance gap to the nearest
        // competing point.
        static const std::array<Point, 8> pts = make_psk8_points();
        std::vector<double> llr(bits.size());
        const double inv2s2 = 1.0 / (2.0 * sigma_for_gain * sigma_for_gain);
        for (std::size_t s = 0; s < bits.size(); s += 3) {
            int v = 0;
            for (int b = 0; b < 3; ++b)
                v = (v << 1) | (bits.get(s + static_cast<std::size_t>(b)) ? 1 : 0);
            const Point& y = pts[static_cast<std::size_t>(kGray8[static_cast<std::size_t>(v)])];
            double min0[3] = {1e300, 1e300, 1e300};
            double min1[3] = {1e300, 1e300, 1e300};
            for (int u = 0; u < 8; ++u) {
                const Point& p = pts[static_cast<std::size_t>(kGray8[static_cast<std::size_t>(u)])];
                const double d2 = (y.i - p.i) * (y.i - p.i) + (y.q - p.q) * (y.q - p.q);
                for (int b = 0; b < 3; ++b) {
                    const bool bit = ((u >> (2 - b)) & 1) != 0;
                    double& slot = bit ? min1[b] : min0[b];
                    if (d2 < slot) slot = d2;
                }
            }
            for (int b = 0; b < 3; ++b)
                llr[s + static_cast<std::size_t>(b)] = (min1[b] - min0[b]) * inv2s2;
        }
        return llr;
    }
    const double a = bit_amplitude(mod_);
    const double gain = 2.0 * a / (sigma_for_gain * sigma_for_gain);
    std::vector<double> llr(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) llr[i] = bits.get(i) ? -gain * a : gain * a;
    return llr;
}

}  // namespace dvbs2::comm
