// Modulation, AWGN channel and LLR demapping.
//
// The DVB-S2 LDPC evaluation chain of the paper is: encode → map → AWGN →
// channel LLRs → iterative decoder. BPSK and QPSK are provided (for a
// Gray-mapped QPSK over AWGN the two bit LLRs are independent per dimension,
// so both behave identically per information bit at equal Eb/N0 — QPSK is
// included because DVB-S2 transmits QPSK and the examples use it).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"
#include "util/prng.hpp"

namespace dvbs2::comm {

enum class Modulation { Bpsk, Qpsk, Psk8 };

/// Bits carried per complex channel symbol.
int bits_per_symbol(Modulation mod);

/// Noise variance per real dimension for a given Eb/N0 (dB), code rate and
/// modulation, with unit average symbol energy Es = 1:
///   Es/N0 = rate · bits_per_symbol · Eb/N0,  σ² = N0/2 = 1/(2·Es/N0·...)
/// normalized per real dimension carrying amplitude a (see modem.cpp).
double noise_sigma(double ebn0_db, double code_rate, Modulation mod);

/// End-to-end mapper + AWGN + demapper. Stateless apart from the RNG.
class AwgnModem {
public:
    AwgnModem(Modulation mod, std::uint64_t seed) : mod_(mod), rng_(seed) {}

    /// Transmits `bits` over AWGN at noise level `sigma` (per real dimension)
    /// and returns the channel LLRs, one per transmitted bit, with the
    /// convention LLR = log P(bit=0|y) / P(bit=1|y) (positive favors 0).
    /// BPSK/QPSK use the exact per-dimension demapper; 8PSK (Gray-mapped,
    /// the DVB-S2 constellation) uses the max-log demapper. For 8PSK the
    /// bit count must be a multiple of 3 (64800 and 16200 both are).
    std::vector<double> transmit(const util::BitVec& bits, double sigma);

    /// As `transmit`, but models a noiseless channel (LLRs saturated by the
    /// demapper gain); handy for decoder smoke tests.
    std::vector<double> transmit_noiseless(const util::BitVec& bits, double sigma_for_gain);

private:
    Modulation mod_;
    util::Xoshiro256pp rng_;
};

}  // namespace dvbs2::comm
