#include "comm/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace dvbs2::comm {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Exact per-batch counts; merged in batch-index order by the frontier.
struct Tally {
    std::uint64_t frames = 0;
    std::uint64_t bit_errors = 0;
    std::uint64_t frame_errors = 0;
    std::uint64_t undetected = 0;
    std::uint64_t iter_sum = 0;
    core::ConvergenceStats conv;

    void merge(const Tally& o) {
        frames += o.frames;
        bit_errors += o.bit_errors;
        frame_errors += o.frame_errors;
        undetected += o.undetected;
        iter_sum += o.iter_sum;
        conv.merge(o.conv);
    }
};

bool stop_satisfied(const Tally& t, const SimLimits& lim) {
    return t.frames >= lim.min_frames && t.bit_errors >= lim.target_bit_errors &&
           t.frame_errors >= lim.target_frame_errors;
}

/// Folds one decoded frame into the tally; shared by both decode paths so
/// their counting rules cannot drift apart.
void tally_frame(Tally& t, const util::BitVec& tx_info, const util::BitVec& rx_info,
                 int iterations, bool converged, int k) {
    DVBS2_REQUIRE(rx_info.size() == static_cast<std::size_t>(k),
                  "decoder returned wrong info length");
    const std::size_t errs = util::BitVec::hamming_distance(rx_info, tx_info);
    t.bit_errors += errs;
    if (errs != 0) {
        ++t.frame_errors;
        if (converged) ++t.undetected;
    }
    t.iter_sum += static_cast<std::uint64_t>(iterations > 0 ? iterations : 0);
    t.conv.record(iterations, converged);
    ++t.frames;
}

/// Draws frame f's information bits from its counter-derived stream.
void draw_info(util::BitVec& info, const SimConfig& cfg, std::uint64_t point_seed,
               std::uint64_t f, int k) {
    util::Xoshiro256pp data_rng(frame_data_seed(point_seed, f));
    info.clear();
    if (cfg.random_data) {
        for (int v = 0; v < k; ++v)
            if (data_rng() & 1u) info.set(static_cast<std::size_t>(v), true);
    }
}

/// Simulates frames [lo, hi) of one point. Every frame owns its RNG streams,
/// so this is a pure function of (point_seed, frame index) — the core of the
/// thread-count-invariance guarantee.
Tally run_batch(const code::Dvbs2Code& code, const enc::Encoder& encoder, const DecodeFn& decode,
                const SimConfig& cfg, double sigma, std::uint64_t point_seed, std::uint64_t lo,
                std::uint64_t hi) {
    const auto& cp = code.params();
    Tally t;
    util::BitVec info(static_cast<std::size_t>(cp.k));
    for (std::uint64_t f = lo; f < hi; ++f) {
        draw_info(info, cfg, point_seed, f, cp.k);
        AwgnModem modem(cfg.modulation, frame_noise_seed(point_seed, f));
        const util::BitVec cw = encoder.encode(info);
        const std::vector<double> llr = modem.transmit(cw, sigma);
        const DecodeOutcome out = decode(llr);
        tally_frame(t, info, out.info_bits, out.iterations, out.converged, cp.k);
    }
    return t;
}

/// Worker-owned decode buffers for the engine path: one block of
/// preferred_batch() frames' LLRs, transmitted info words, and reused
/// DecodeResults. Sized once per worker; steady state allocates nothing in
/// the decode call itself.
struct EngineBatchWorkspace {
    EngineBatchWorkspace(const code::Dvbs2Code& code, int block_frames)
        : llrs(static_cast<std::size_t>(block_frames) *
               static_cast<std::size_t>(code.params().n)),
          results(static_cast<std::size_t>(block_frames)),
          infos(static_cast<std::size_t>(block_frames),
                util::BitVec(static_cast<std::size_t>(code.params().k))) {}

    std::vector<double> llrs;            // frame-major block, B * N
    std::vector<core::DecodeResult> results;
    std::vector<util::BitVec> infos;     // transmitted info words of the block
};

/// Engine counterpart of run_batch: same per-frame RNG streams and tally
/// rules, but frames are decoded through Engine::decode_batch in blocks of
/// the engine's preferred batch size (SIMD lane count for the frame-per-lane
/// engine), amortizing setup and filling every lane.
Tally run_batch_engine(const code::Dvbs2Code& code, const enc::Encoder& encoder,
                       core::Engine& engine, EngineBatchWorkspace& ws, const SimConfig& cfg,
                       double sigma, std::uint64_t point_seed, std::uint64_t lo,
                       std::uint64_t hi) {
    const auto& cp = code.params();
    const auto n = static_cast<std::size_t>(cp.n);
    const auto cap = static_cast<std::uint64_t>(ws.results.size());
    Tally t;
    for (std::uint64_t f0 = lo; f0 < hi; f0 += cap) {
        const auto cnt = static_cast<std::size_t>(std::min(cap, hi - f0));
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::uint64_t f = f0 + static_cast<std::uint64_t>(i);
            draw_info(ws.infos[i], cfg, point_seed, f, cp.k);
            AwgnModem modem(cfg.modulation, frame_noise_seed(point_seed, f));
            const util::BitVec cw = encoder.encode(ws.infos[i]);
            const std::vector<double> llr = modem.transmit(cw, sigma);
            std::copy(llr.begin(), llr.end(), ws.llrs.begin() + static_cast<std::ptrdiff_t>(i * n));
        }
        engine.decode_batch(std::span<const double>(ws.llrs.data(), cnt * n),
                            std::span<core::DecodeResult>(ws.results.data(), cnt));
        for (std::size_t i = 0; i < cnt; ++i)
            tally_frame(t, ws.infos[i], ws.results[i].info_bits, ws.results[i].iterations,
                        ws.results[i].converged, cp.k);
    }
    return t;
}

/// Per-worker batch executor: simulates frames [lo, hi) and returns their
/// exact tally. Built once per worker; owns all mutable decode state.
using BatchFn = std::function<Tally(std::uint64_t lo, std::uint64_t hi)>;

/// Builds one worker's BatchFn after sigma and the point seed are known.
using BatchFactory = std::function<BatchFn(unsigned worker, double sigma,
                                           std::uint64_t point_seed)>;

/// Reduction state shared by the workers of one point; all fields are
/// guarded by `mu` except the two atomics.
struct Reduction {
    explicit Reduction(std::uint64_t num_batches)
        : tallies(num_batches), done(num_batches, 0), stop_at(num_batches) {}

    std::vector<Tally> tallies;
    std::vector<char> done;
    std::atomic<std::uint64_t> next_batch{0};
    std::atomic<std::uint64_t> stop_at;  ///< first batch index NOT in the result
    std::mutex mu;
    std::uint64_t frontier = 0;  ///< next batch index to merge into `prefix`
    Tally prefix;
    bool stopped = false;
};

/// Shared scaffold of both public point simulators: batch-claimed
/// scheduling plus the deterministic prefix reduction. The decode path is
/// entirely inside the BatchFactory, so DecodeFn- and engine-based runs go
/// through identical scheduling and stopping logic.
BerPoint simulate_point_impl(const code::Dvbs2Code& code, const BatchFactory& make_batch_fn,
                             double ebn0_db, const SimConfig& cfg, util::ThreadPool* pool) {
    const double sigma = noise_sigma(ebn0_db, code.params().rate(), cfg.modulation);
    const std::uint64_t point_seed = point_stream_seed(cfg.seed, ebn0_db);
    const unsigned threads = util::resolve_thread_count(cfg.threads);
    const std::uint64_t batch = cfg.batch_frames > 0 ? cfg.batch_frames : 1;
    const std::uint64_t max_frames = cfg.limits.max_frames;
    const std::uint64_t num_batches = (max_frames + batch - 1) / batch;

    Reduction red(num_batches);
    std::vector<double> busy_s(threads, 0.0);
    const Clock::time_point start = Clock::now();

    auto worker = [&](unsigned w) {
        const BatchFn run = make_batch_fn(w, sigma, point_seed);
        for (;;) {
            const std::uint64_t b = red.next_batch.fetch_add(1, std::memory_order_relaxed);
            if (b >= num_batches || b >= red.stop_at.load(std::memory_order_acquire)) break;
            const std::uint64_t lo = b * batch;
            const std::uint64_t hi = std::min(lo + batch, max_frames);

            const Clock::time_point t0 = Clock::now();
            const Tally t = run(lo, hi);
            busy_s[w] += seconds_since(t0);

            bool stop_now;
            {
                std::lock_guard<std::mutex> lock(red.mu);
                red.tallies[b] = t;
                red.done[b] = 1;
                // Advance the frontier over the contiguous done prefix; the
                // stop decision only ever looks at batch prefixes, so it is
                // the same for every scheduling of batches onto workers.
                while (!red.stopped && red.frontier < num_batches && red.done[red.frontier]) {
                    red.prefix.merge(red.tallies[red.frontier]);
                    ++red.frontier;
                    if (stop_satisfied(red.prefix, cfg.limits)) {
                        red.stopped = true;
                        red.stop_at.store(red.frontier, std::memory_order_release);
                    }
                }
                if (cfg.progress) {
                    SimProgress p;
                    p.ebn0_db = ebn0_db;
                    p.frames = red.prefix.frames;
                    p.frames_cap = max_frames;
                    p.bit_errors = red.prefix.bit_errors;
                    p.frame_errors = red.prefix.frame_errors;
                    p.elapsed_s = seconds_since(start);
                    p.frames_per_s = p.elapsed_s > 0.0 ? static_cast<double>(p.frames) / p.elapsed_s
                                                       : 0.0;
                    p.threads = threads;
                    cfg.progress(p);
                }
                stop_now = red.stopped;
            }
            if (stop_now) break;
        }
    };

    if (threads == 1) {
        worker(0);
    } else if (pool != nullptr) {
        pool->run_workers(threads, worker);
    } else {
        util::ThreadPool local(threads);
        local.run_workers(threads, worker);
    }

    BerPoint pt;
    pt.ebn0_db = ebn0_db;
    pt.frames = red.prefix.frames;
    pt.bit_errors = red.prefix.bit_errors;
    pt.frame_errors = red.prefix.frame_errors;
    pt.undetected_frame_errors = red.prefix.undetected;
    pt.avg_iterations = pt.frames ? static_cast<double>(red.prefix.iter_sum) /
                                        static_cast<double>(pt.frames)
                                  : 0.0;
    pt.convergence = red.prefix.conv;

    if (cfg.progress) {
        SimProgress p;
        p.ebn0_db = ebn0_db;
        p.frames = pt.frames;
        p.frames_cap = max_frames;
        p.bit_errors = pt.bit_errors;
        p.frame_errors = pt.frame_errors;
        p.elapsed_s = seconds_since(start);
        p.frames_per_s = p.elapsed_s > 0.0 ? static_cast<double>(pt.frames) / p.elapsed_s : 0.0;
        p.threads = threads;
        double busy = 0.0;
        for (double b : busy_s) busy += b;
        p.worker_utilization =
            p.elapsed_s > 0.0 ? busy / (static_cast<double>(threads) * p.elapsed_s) : 0.0;
        p.finished = true;
        cfg.progress(p);
    }
    return pt;
}

BatchFactory decode_fn_batches(const code::Dvbs2Code& code, const DecodeFactory& factory,
                               const SimConfig& cfg) {
    return [&code, &factory, &cfg](unsigned w, double sigma, std::uint64_t point_seed) -> BatchFn {
        auto decode = std::make_shared<DecodeFn>(factory(w));
        auto encoder = std::make_shared<enc::Encoder>(code);
        return [&code, &cfg, decode, encoder, sigma, point_seed](std::uint64_t lo,
                                                                 std::uint64_t hi) {
            return run_batch(code, *encoder, *decode, cfg, sigma, point_seed, lo, hi);
        };
    };
}

BatchFactory engine_batches(const code::Dvbs2Code& code, const core::EngineSpec& spec,
                            const SimConfig& cfg) {
    return [&code, &spec, &cfg](unsigned /*w*/, double sigma, std::uint64_t point_seed) -> BatchFn {
        std::shared_ptr<core::Engine> engine = core::make_engine(code, spec);
        auto encoder = std::make_shared<enc::Encoder>(code);
        auto ws = std::make_shared<EngineBatchWorkspace>(code,
                                                         std::max(engine->preferred_batch(), 1));
        return [&code, &cfg, engine, encoder, ws, sigma, point_seed](std::uint64_t lo,
                                                                     std::uint64_t hi) {
            return run_batch_engine(code, *encoder, *engine, *ws, cfg, sigma, point_seed, lo, hi);
        };
    };
}

}  // namespace

BerPoint simulate_point_parallel(const code::Dvbs2Code& code, const DecodeFactory& factory,
                                 double ebn0_db, const SimConfig& cfg, util::ThreadPool* pool) {
    return simulate_point_impl(code, decode_fn_batches(code, factory, cfg), ebn0_db, cfg, pool);
}

BerPoint simulate_point_engine(const code::Dvbs2Code& code, const core::EngineSpec& spec,
                               double ebn0_db, const SimConfig& cfg, util::ThreadPool* pool) {
    return simulate_point_impl(code, engine_batches(code, spec, cfg), ebn0_db, cfg, pool);
}

std::vector<BerPoint> simulate_sweep_parallel(const code::Dvbs2Code& code,
                                              const DecodeFactory& factory,
                                              const std::vector<double>& ebn0_db,
                                              const SimConfig& cfg) {
    const unsigned threads = util::resolve_thread_count(cfg.threads);
    std::vector<BerPoint> points;
    points.reserve(ebn0_db.size());
    if (threads == 1) {
        for (double snr : ebn0_db)
            points.push_back(simulate_point_parallel(code, factory, snr, cfg, nullptr));
        return points;
    }
    util::ThreadPool pool(threads);
    for (double snr : ebn0_db)
        points.push_back(simulate_point_parallel(code, factory, snr, cfg, &pool));
    return points;
}

std::vector<BerPoint> simulate_sweep_engine(const code::Dvbs2Code& code,
                                            const core::EngineSpec& spec,
                                            const std::vector<double>& ebn0_db,
                                            const SimConfig& cfg) {
    core::validate_engine_spec(spec);  // fail fast, before any point runs
    const unsigned threads = util::resolve_thread_count(cfg.threads);
    std::vector<BerPoint> points;
    points.reserve(ebn0_db.size());
    if (threads == 1) {
        for (double snr : ebn0_db)
            points.push_back(simulate_point_engine(code, spec, snr, cfg, nullptr));
        return points;
    }
    util::ThreadPool pool(threads);
    for (double snr : ebn0_db)
        points.push_back(simulate_point_engine(code, spec, snr, cfg, &pool));
    return points;
}

std::optional<double> find_threshold_db_parallel(const code::Dvbs2Code& code,
                                                 const DecodeFactory& factory, double target_ber,
                                                 double start_db, double step_db,
                                                 const SimConfig& cfg, double max_db) {
    DVBS2_REQUIRE(step_db > 0.0, "step must be positive");
    const auto k_bits = static_cast<std::uint64_t>(code.params().k);
    const unsigned threads = util::resolve_thread_count(cfg.threads);
    util::ThreadPool pool(threads > 1 ? threads : 1);
    util::ThreadPool* shared = threads > 1 ? &pool : nullptr;
    // Index-based stepping (see find_threshold_db): no accumulation drift,
    // and scan points are bit-identical to the serial variant's.
    for (std::uint64_t i = 0;; ++i) {
        const double snr = start_db + static_cast<double>(i) * step_db;
        if (snr > max_db + 1e-9) break;
        const BerPoint pt = simulate_point_parallel(code, factory, snr, cfg, shared);
        if (pt.ber(k_bits) < target_ber) return snr;
    }
    return std::nullopt;  // target BER never reached within the scan range
}

std::optional<double> find_threshold_db_engine(const code::Dvbs2Code& code,
                                               const core::EngineSpec& spec, double target_ber,
                                               double start_db, double step_db,
                                               const SimConfig& cfg, double max_db) {
    DVBS2_REQUIRE(step_db > 0.0, "step must be positive");
    core::validate_engine_spec(spec);
    const auto k_bits = static_cast<std::uint64_t>(code.params().k);
    const unsigned threads = util::resolve_thread_count(cfg.threads);
    util::ThreadPool pool(threads > 1 ? threads : 1);
    util::ThreadPool* shared = threads > 1 ? &pool : nullptr;
    for (std::uint64_t i = 0;; ++i) {
        const double snr = start_db + static_cast<double>(i) * step_db;
        if (snr > max_db + 1e-9) break;
        const BerPoint pt = simulate_point_engine(code, spec, snr, cfg, shared);
        if (pt.ber(k_bits) < target_ber) return snr;
    }
    return std::nullopt;
}

}  // namespace dvbs2::comm
