// Frame-parallel Monte-Carlo BER engine.
//
// Decodes the frames of one Eb/N0 point on a worker pool while producing
// *bit-identical tallies for every thread count*, including the serial
// entry points in comm/ber.hpp. Three mechanisms make that hold:
//
//   1. Counter-based RNG streams. Frame f of a point draws its data bits
//      and its AWGN noise from streams seeded by (point_seed, f) via
//      util::derive_stream — a pure function of indices, so the sampled
//      noise is independent of which worker simulates the frame and when.
//   2. Batch-claimed scheduling. Workers claim fixed-size batches of
//      consecutive frame indices from an atomic cursor; which worker gets
//      which batch varies run to run, but the *content* of a batch does not.
//   3. Deterministic reduction. A single frontier merges per-batch tallies
//      in batch-index order and evaluates the early-stop predicate on batch
//      prefixes only. The result is the tally over the shortest stopping
//      prefix; batches a worker had already started beyond it are discarded.
//
// Decoders are stateful (they own message memories), so the parallel entry
// points take a factory that builds one independent decoder per worker
// instead of a shared DecodeFn.
#pragma once

#include "comm/ber.hpp"
#include "core/engine.hpp"
#include "util/thread_pool.hpp"

namespace dvbs2::comm {

/// Builds the decoder callback used by one worker. Called once per worker
/// (index in [0, threads)) before any frame is simulated; each returned
/// DecodeFn is only ever invoked from its own worker, so it may own mutable
/// decoder state. The decode must be a deterministic function of the LLRs.
using DecodeFactory = std::function<DecodeFn(unsigned worker)>;

/// Simulates one Eb/N0 point on `cfg.threads` workers (0 = auto). Tallies
/// are identical to simulate_point for every thread count. If `pool` is
/// non-null it is reused (spawn threads once per sweep, not per point);
/// otherwise a pool is created when more than one worker is requested.
BerPoint simulate_point_parallel(const code::Dvbs2Code& code, const DecodeFactory& factory,
                                 double ebn0_db, const SimConfig& cfg,
                                 util::ThreadPool* pool = nullptr);

/// Sweep over `ebn0_db` with one shared worker pool. Points run one after
/// another with all workers on the current point, so results match
/// point-by-point calls exactly (streams are per-point, see ber.hpp).
std::vector<BerPoint> simulate_sweep_parallel(const code::Dvbs2Code& code,
                                              const DecodeFactory& factory,
                                              const std::vector<double>& ebn0_db,
                                              const SimConfig& cfg);

/// Parallel counterpart of find_threshold_db (same scan semantics:
/// index-stepped points start_db + i·step_db, std::nullopt when the target
/// BER is never reached within the scan range).
std::optional<double> find_threshold_db_parallel(const code::Dvbs2Code& code,
                                                 const DecodeFactory& factory, double target_ber,
                                                 double start_db, double step_db,
                                                 const SimConfig& cfg, double max_db = 12.0);

// --- engine-spec entry points -------------------------------------------
//
// Same Monte-Carlo contract as the DecodeFactory variants (identical RNG
// streams, batch-claimed scheduling, deterministic reduction — tallies are
// bit-identical for every thread count AND to the DecodeFactory variants
// when the spec describes the same decoder), but each worker builds its own
// engine from the registry (core::make_engine) and decodes its work items
// through Engine::decode_batch in blocks of Engine::preferred_batch()
// frames, so the SIMD frame-per-lane engine sees whole batches. All decode
// workspaces are worker-owned and reused: the steady-state decode path
// performs no heap allocation.

/// Simulates one Eb/N0 point with per-worker engines built from `spec`.
BerPoint simulate_point_engine(const code::Dvbs2Code& code, const core::EngineSpec& spec,
                               double ebn0_db, const SimConfig& cfg,
                               util::ThreadPool* pool = nullptr);

/// Sweep over `ebn0_db` with one shared worker pool and per-worker engines.
std::vector<BerPoint> simulate_sweep_engine(const code::Dvbs2Code& code,
                                            const core::EngineSpec& spec,
                                            const std::vector<double>& ebn0_db,
                                            const SimConfig& cfg);

/// Threshold scan with per-worker engines (same scan semantics as
/// find_threshold_db_parallel).
std::optional<double> find_threshold_db_engine(const code::Dvbs2Code& code,
                                               const core::EngineSpec& spec, double target_ber,
                                               double start_db, double step_db,
                                               const SimConfig& cfg, double max_db = 12.0);

}  // namespace dvbs2::comm
