// Arithmetic back-ends for the message-passing decoder.
//
// One schedule implementation (mp_decoder.hpp) is instantiated with either
// floating-point or quantized fixed-point arithmetic. The fixed-point
// back-end performs exactly the operations a hardware functional unit does
// (integer saturating adds, correction-LUT boxplus), which is what makes the
// algorithmic decoder and the cycle-driven architecture model bit-exact.
#pragma once

#include <cmath>

#include "core/types.hpp"
#include "quant/fixed.hpp"
#include "util/math.hpp"

namespace dvbs2::core {

/// Observed pre-saturation peaks of a fixed-point decode. A probe attached
/// to FixedArith records the largest magnitudes that actually flowed through
/// the datapath, so the range-certification witness tests can compare a
/// real decode against the abstract interpreter's proven stage bounds
/// (tests/test_absint.cpp): `wide_peak` must never exceed the certified
/// accumulator bound and `word_peak` must never exceed the stored-word
/// bound — and the concretized adversarial witness must drive both to the
/// proven peak exactly. Detached (the default) the hooks cost one branch.
struct RangeProbe {
    long long wide_peak = 0;  ///< largest |w| entering narrow(), pre-saturation
    long long word_peak = 0;  ///< largest |v| leaving narrow()/finalize (stored words)

    void see_wide(long long w) noexcept {
        if (w < 0) w = -w;
        if (w > wide_peak) wide_peak = w;
    }
    void see_word(long long v) noexcept {
        if (v < 0) v = -v;
        if (v > word_peak) word_peak = v;
    }
};

/// Floating-point arithmetic: `Value` is a clamped double LLR.
class FloatArith {
public:
    using Value = double;
    using Wide = double;

    FloatArith(CheckRule rule, double normalization, double offset)
        : rule_(rule), normalization_(normalization), offset_(offset) {}

    Value zero() const noexcept { return 0.0; }
    Value from_llr(double llr) const noexcept { return util::clamp_llr(llr); }
    Wide to_wide(Value v) const noexcept { return v; }
    Value narrow(Wide w) const noexcept { return util::clamp_llr(w); }
    bool is_negative(Wide w) const noexcept { return w < 0.0; }

    /// Pairwise check-node combine (associative core of the rule).
    Value combine(Value a, Value b) const noexcept {
        return rule_ == CheckRule::Exact ? util::boxplus_exact(a, b)
                                         : util::boxplus_minsum(a, b);
    }

    /// Post-processing applied once per produced check-node output.
    Value finalize(Value v) const noexcept {
        switch (rule_) {
            case CheckRule::NormalizedMinSum: return v * normalization_;
            case CheckRule::OffsetMinSum: {
                const double mag = std::fabs(v) - offset_;
                return mag <= 0.0 ? 0.0 : std::copysign(mag, v);
            }
            default: return v;
        }
    }

private:
    CheckRule rule_;
    double normalization_;
    double offset_;
};

/// Fixed-point arithmetic: `Value` is a raw quantized LLR, `Wide` an
/// unsaturated 32-bit accumulator.
class FixedArith {
public:
    using Value = quant::QLLR;
    using Wide = quant::QLLR;

    /// `table` must outlive the arithmetic object; pass nullptr for min-sum
    /// rules (the LUT is only needed for CheckRule::Exact).
    FixedArith(CheckRule rule, const quant::QuantSpec& spec, const quant::BoxplusTable* table,
               double normalization, double offset)
        : rule_(rule),
          spec_(spec),
          table_(table),
          // NormalizedMinSum in hardware is a shift-add: we quantize the
          // factor to a multiple of 1/16 and apply it as (v*num) >> 4.
          norm_num_(static_cast<quant::QLLR>(std::lround(normalization * 16.0))),
          offset_raw_(quant::quantize(offset, spec)) {
        if (rule == CheckRule::Exact) {
            DVBS2_REQUIRE(table != nullptr, "Exact fixed rule needs a BoxplusTable");
            DVBS2_REQUIRE(table->spec() == spec, "BoxplusTable spec mismatch");
        }
    }

    const quant::QuantSpec& spec() const noexcept { return spec_; }

    /// Attaches (or detaches, with nullptr) a peak observer. The probe must
    /// outlive the arithmetic object while attached.
    void attach_probe(RangeProbe* probe) noexcept { probe_ = probe; }

    Value zero() const noexcept { return 0; }
    Value from_llr(double llr) const noexcept { return quant::quantize(llr, spec_); }
    Wide to_wide(Value v) const noexcept { return v; }
    Value narrow(Wide w) const noexcept {
        const Value v = quant::saturate(w, spec_);
        if (probe_) {
            probe_->see_wide(w);
            probe_->see_word(v);
        }
        return v;
    }
    bool is_negative(Wide w) const noexcept { return w < 0; }

    Value combine(Value a, Value b) const noexcept {
        return rule_ == CheckRule::Exact ? table_->boxplus(a, b)
                                         : quant::boxplus_minsum_raw(a, b);
    }

    Value finalize(Value v) const noexcept {
        Value out;
        switch (rule_) {
            case CheckRule::NormalizedMinSum: {
                // Round-to-nearest fixed scale; symmetric for ±v.
                const Wide scaled = v * norm_num_;
                const Wide rounded = scaled >= 0 ? (scaled + 8) >> 4 : -((-scaled + 8) >> 4);
                out = quant::saturate(rounded, spec_);
                break;
            }
            case CheckRule::OffsetMinSum: {
                const Value mag = (v < 0 ? -v : v) - offset_raw_;
                out = mag <= 0 ? Value(0) : (v < 0 ? -mag : mag);
                break;
            }
            default: out = v; break;
        }
        if (probe_) probe_->see_word(out);
        return out;
    }

private:
    CheckRule rule_;
    quant::QuantSpec spec_;
    const quant::BoxplusTable* table_;
    quant::QLLR norm_num_;
    quant::QLLR offset_raw_;
    RangeProbe* probe_ = nullptr;
};

}  // namespace dvbs2::core
