#include "core/decoder.hpp"

#include <cmath>

#include "core/arith.hpp"
#include "core/mp_decoder.hpp"
#include "core/simd/simd_decoder.hpp"

namespace dvbs2::core {

const char* to_string(Schedule s) {
    switch (s) {
        case Schedule::TwoPhase: return "two-phase";
        case Schedule::ZigzagForward: return "zigzag-forward";
        case Schedule::ZigzagSegmented: return "zigzag-segmented";
        case Schedule::ZigzagMap: return "zigzag-map";
        case Schedule::Layered: return "layered";
    }
    return "?";
}

const char* to_string(CheckRule r) {
    switch (r) {
        case CheckRule::Exact: return "exact";
        case CheckRule::MinSum: return "min-sum";
        case CheckRule::NormalizedMinSum: return "normalized-min-sum";
        case CheckRule::OffsetMinSum: return "offset-min-sum";
    }
    return "?";
}

const char* to_string(DecoderBackend b) {
    switch (b) {
        case DecoderBackend::Scalar: return "scalar";
        case DecoderBackend::Simd: return "simd";
    }
    return "?";
}

// ---------------------------------------------------------------- Decoder

struct Decoder::Impl {
    Impl(const code::Dvbs2Code& code, const DecoderConfig& cfg)
        : config(cfg), engine(code, cfg, FloatArith(cfg.rule, cfg.normalization, cfg.offset)) {
        DVBS2_REQUIRE(cfg.backend == DecoderBackend::Scalar,
                      "the SIMD backend models the fixed-point datapath only; "
                      "use FixedDecoder for DecoderBackend::Simd");
    }

    DecoderConfig config;
    MpDecoder<FloatArith> engine;
};

Decoder::Decoder(const code::Dvbs2Code& code, const DecoderConfig& cfg)
    : impl_(std::make_unique<Impl>(code, cfg)) {}
Decoder::~Decoder() = default;
Decoder::Decoder(Decoder&&) noexcept = default;
Decoder& Decoder::operator=(Decoder&&) noexcept = default;

DecodeResult Decoder::decode(const std::vector<double>& llr) {
    std::vector<double> clamped(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i) {
        DVBS2_REQUIRE(std::isfinite(llr[i]),
                      "non-finite channel LLR at index " + std::to_string(i));
        clamped[i] = util::clamp_llr(llr[i]);
    }
    return impl_->engine.decode_values(clamped);
}

void Decoder::set_observer(std::function<void(const IterationTrace&)> observer) {
    impl_->engine.set_observer(std::move(observer));
}

const DecoderConfig& Decoder::config() const noexcept { return impl_->config; }

// ----------------------------------------------------------- FixedDecoder

struct FixedDecoder::Impl {
    Impl(const code::Dvbs2Code& code, const DecoderConfig& cfg, const quant::QuantSpec& sp)
        : config(cfg), spec(sp), table(sp) {
        if (cfg.backend == DecoderBackend::Simd) {
            simd_engine = std::make_unique<SimdFixedDecoder>(code, cfg, sp);
        } else {
            scalar_engine = std::make_unique<MpDecoder<FixedArith>>(
                code, cfg,
                FixedArith(cfg.rule, sp, cfg.rule == CheckRule::Exact ? &table : nullptr,
                           cfg.normalization, cfg.offset));
        }
    }

    DecodeResult decode_values(const std::vector<quant::QLLR>& q) {
        return simd_engine ? simd_engine->decode_values(q) : scalar_engine->decode_values(q);
    }

    DecoderConfig config;
    quant::QuantSpec spec;
    quant::BoxplusTable table;
    // Exactly one engine is live, selected by config.backend; both produce
    // bit-identical messages and results (pinned by tests/test_simd.cpp).
    std::unique_ptr<MpDecoder<FixedArith>> scalar_engine;
    std::unique_ptr<SimdFixedDecoder> simd_engine;
};

FixedDecoder::FixedDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg,
                           const quant::QuantSpec& spec)
    : impl_(std::make_unique<Impl>(code, cfg, spec)) {}
FixedDecoder::~FixedDecoder() = default;
FixedDecoder::FixedDecoder(FixedDecoder&&) noexcept = default;
FixedDecoder& FixedDecoder::operator=(FixedDecoder&&) noexcept = default;

DecodeResult FixedDecoder::decode(const std::vector<double>& llr) {
    std::vector<quant::QLLR> q(llr.size());
    for (std::size_t i = 0; i < llr.size(); ++i) {
        DVBS2_REQUIRE(std::isfinite(llr[i]),
                      "non-finite channel LLR at index " + std::to_string(i));
        q[i] = quant::quantize(llr[i], impl_->spec);
    }
    return impl_->decode_values(q);
}

DecodeResult FixedDecoder::decode_raw(const std::vector<quant::QLLR>& qllr) {
    return impl_->decode_values(qllr);
}

void FixedDecoder::set_cn_order(std::vector<int> order) {
    DVBS2_REQUIRE(impl_->scalar_engine != nullptr,
                  "per-check-node input orders require DecoderBackend::Scalar "
                  "(the SIMD engine processes the canonical slot order)");
    impl_->scalar_engine->set_cn_order(std::move(order));
}

void FixedDecoder::set_observer(std::function<void(const IterationTrace&)> observer) {
    if (impl_->simd_engine)
        impl_->simd_engine->set_observer(std::move(observer));
    else
        impl_->scalar_engine->set_observer(std::move(observer));
}

std::vector<quant::QLLR> FixedDecoder::run_and_dump_c2v(const std::vector<quant::QLLR>& qllr,
                                                        int iters) {
    if (impl_->simd_engine) {
        impl_->simd_engine->run_iterations(qllr, iters);
        return impl_->simd_engine->c2v_messages();
    }
    impl_->scalar_engine->run_iterations(qllr, iters);
    return impl_->scalar_engine->c2v_messages();
}

const quant::QuantSpec& FixedDecoder::spec() const noexcept { return impl_->spec; }
const DecoderConfig& FixedDecoder::config() const noexcept { return impl_->config; }

}  // namespace dvbs2::core
