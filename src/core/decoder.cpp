#include "core/decoder.hpp"

#include <utility>

#include "core/engine.hpp"

namespace dvbs2::core {

const char* to_string(Algorithm a) {
    switch (a) {
        case Algorithm::MinSum: return "min-sum";
        case Algorithm::Wbf: return "wbf";
        case Algorithm::RhsBp: return "rhs-bp";
    }
    return "?";
}

const char* to_string(Schedule s) {
    switch (s) {
        case Schedule::TwoPhase: return "two-phase";
        case Schedule::ZigzagForward: return "zigzag-forward";
        case Schedule::ZigzagSegmented: return "zigzag-segmented";
        case Schedule::ZigzagMap: return "zigzag-map";
        case Schedule::Layered: return "layered";
    }
    return "?";
}

const char* to_string(CheckRule r) {
    switch (r) {
        case CheckRule::Exact: return "exact";
        case CheckRule::MinSum: return "min-sum";
        case CheckRule::NormalizedMinSum: return "normalized-min-sum";
        case CheckRule::OffsetMinSum: return "offset-min-sum";
    }
    return "?";
}

const char* to_string(DecoderBackend b) {
    switch (b) {
        case DecoderBackend::Scalar: return "scalar";
        case DecoderBackend::Simd: return "simd";
    }
    return "?";
}

const char* to_string(SimdLaneMode m) {
    switch (m) {
        case SimdLaneMode::Auto: return "auto";
        case SimdLaneMode::GroupParallel: return "group-parallel";
        case SimdLaneMode::FramePerLane: return "frame-per-lane";
    }
    return "?";
}

const char* to_string(Arithmetic a) {
    switch (a) {
        case Arithmetic::Float: return "float";
        case Arithmetic::Fixed: return "fixed";
    }
    return "?";
}

// ---------------------------------------------------------------- Decoder

Decoder::Decoder(const code::Dvbs2Code& code, const DecoderConfig& cfg)
    : engine_(make_engine(code, EngineSpec{Arithmetic::Float, cfg, quant::kQuant6})) {}
Decoder::~Decoder() = default;
Decoder::Decoder(Decoder&&) noexcept = default;
Decoder& Decoder::operator=(Decoder&&) noexcept = default;

DecodeResult Decoder::decode(const std::vector<double>& llr) { return engine_->decode(llr); }

void Decoder::decode_into(std::span<const double> llr, DecodeResult& out) {
    engine_->decode_into(llr, out);
}

void Decoder::set_observer(std::function<void(const IterationTrace&)> observer) {
    engine_->set_observer(std::move(observer));
}

const DecoderConfig& Decoder::config() const noexcept { return engine_->config(); }

Engine& Decoder::engine() noexcept { return *engine_; }

// ----------------------------------------------------------- FixedDecoder

FixedDecoder::FixedDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg,
                           const quant::QuantSpec& spec)
    : spec_(spec), engine_(make_engine(code, EngineSpec{Arithmetic::Fixed, cfg, spec})) {}
FixedDecoder::~FixedDecoder() = default;
FixedDecoder::FixedDecoder(FixedDecoder&&) noexcept = default;
FixedDecoder& FixedDecoder::operator=(FixedDecoder&&) noexcept = default;

DecodeResult FixedDecoder::decode(const std::vector<double>& llr) {
    return engine_->decode(llr);
}

DecodeResult FixedDecoder::decode_raw(const std::vector<quant::QLLR>& qllr) {
    DecodeResult result;
    engine_->decode_raw_into(qllr, result);
    return result;
}

void FixedDecoder::decode_into(std::span<const double> llr, DecodeResult& out) {
    engine_->decode_into(llr, out);
}

void FixedDecoder::decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out) {
    engine_->decode_raw_into(qllr, out);
}

void FixedDecoder::set_cn_order(std::vector<int> order) {
    engine_->set_cn_order(std::move(order));
}

void FixedDecoder::set_observer(std::function<void(const IterationTrace&)> observer) {
    engine_->set_observer(std::move(observer));
}

std::vector<quant::QLLR> FixedDecoder::run_and_dump_c2v(const std::vector<quant::QLLR>& qllr,
                                                        int iters) {
    return engine_->run_and_dump_c2v(qllr, iters);
}

const quant::QuantSpec& FixedDecoder::spec() const noexcept { return spec_; }
const DecoderConfig& FixedDecoder::config() const noexcept { return engine_->config(); }

Engine& FixedDecoder::engine() noexcept { return *engine_; }

}  // namespace dvbs2::core
