// Public decoder API — the paper's primary contribution.
//
// `Decoder` is the floating-point reference (infinite-precision messages up
// to the ±30 clamp); `FixedDecoder` is the bit-accurate model of the
// hardware datapath with 5/6-bit quantized messages. Both run any of the
// five schedules of core/types.hpp; the paper's IP core corresponds to
// FixedDecoder{ZigzagSegmented, Exact, 30 iterations, 6-bit}.
//
// Both classes are thin wrappers over the unified engine layer
// (core/engine.hpp): construction runs the central DecoderConfig validation
// and builds the matching registered engine, and every call forwards to it.
// New code that wants zero-allocation decode_into / batched decode_batch can
// use the wrapped engine directly via engine(), or build one with
// core::make_engine.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "code/tanner.hpp"
#include "core/types.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::core {

class Engine;

/// Floating-point belief-propagation decoder.
class Decoder {
public:
    /// The code object must outlive the decoder.
    Decoder(const code::Dvbs2Code& code, const DecoderConfig& cfg);
    ~Decoder();
    Decoder(Decoder&&) noexcept;
    Decoder& operator=(Decoder&&) noexcept;

    /// Decodes channel LLRs (size N, positive favors bit 0).
    DecodeResult decode(const std::vector<double>& llr);

    /// Non-allocating variant: decodes into caller-owned result storage,
    /// which is reused (and resized only on first use) across calls.
    void decode_into(std::span<const double> llr, DecodeResult& out);

    /// Installs a per-iteration diagnostics observer (see IterationTrace);
    /// pass an empty function to disable.
    void set_observer(std::function<void(const IterationTrace&)> observer);

    const DecoderConfig& config() const noexcept;

    /// The wrapped engine (for decode_batch and other Engine-only APIs).
    Engine& engine() noexcept;

private:
    std::unique_ptr<Engine> engine_;
};

/// Bit-accurate fixed-point decoder (the hardware datapath model).
class FixedDecoder {
public:
    /// The code object must outlive the decoder. `spec` selects the message
    /// quantization (quant::kQuant6 reproduces the paper's design point).
    FixedDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg,
                 const quant::QuantSpec& spec = quant::kQuant6);
    ~FixedDecoder();
    FixedDecoder(FixedDecoder&&) noexcept;
    FixedDecoder& operator=(FixedDecoder&&) noexcept;

    /// Quantizes the channel LLRs and decodes.
    DecodeResult decode(const std::vector<double>& llr);

    /// Decodes from already-quantized channel values (size N).
    DecodeResult decode_raw(const std::vector<quant::QLLR>& qllr);

    /// Non-allocating variants into caller-owned, reused result storage.
    void decode_into(std::span<const double> llr, DecodeResult& out);
    void decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out);

    /// Sets the per-check-node information-edge processing order (see
    /// MpDecoder::set_cn_order); used by the architecture equivalence tests.
    void set_cn_order(std::vector<int> order);

    /// Installs a per-iteration diagnostics observer (see IterationTrace).
    void set_observer(std::function<void(const IterationTrace&)> observer);

    /// Runs exactly `iters` iterations on quantized channel values and
    /// returns the resulting check-to-variable message state (for bit-exact
    /// comparison against the architecture model).
    std::vector<quant::QLLR> run_and_dump_c2v(const std::vector<quant::QLLR>& qllr, int iters);

    const quant::QuantSpec& spec() const noexcept;
    const DecoderConfig& config() const noexcept;

    /// The wrapped engine (for decode_batch and other Engine-only APIs).
    Engine& engine() noexcept;

private:
    quant::QuantSpec spec_;
    std::unique_ptr<Engine> engine_;
};

}  // namespace dvbs2::core
