// Unified decoder-engine layer: central validation, the engine registry,
// and the six in-tree engine implementations (min-sum float-scalar,
// fixed-scalar and fixed-simd; WBF float-scalar and fixed-scalar; RHS-BP
// float-scalar). The public Decoder/FixedDecoder classes are thin wrappers
// over make_engine (see decoder.cpp).
#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>

#include "analysis/ir/analyses.hpp"
#include "analysis/ir/transform.hpp"
#include "code/params.hpp"
#include "core/arith.hpp"
#include "core/mp_decoder.hpp"
#include "core/rhs_decoder.hpp"
#include "core/simd/batch_decoder.hpp"
#include "core/simd/simd_decoder.hpp"
#include "core/wbf_decoder.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace dvbs2::core {

std::string to_string(const EngineKey& key) {
    return std::string("algorithm=") + to_string(key.algorithm) +
           " arithmetic=" + to_string(key.arith) + " backend=" + to_string(key.backend);
}

// ------------------------------------------------------------- validation

namespace {

/// Family-envelope trace dimensions for range certification: the scaled
/// model dims every IR analysis runs at (P=4, q=3), carrying the WORST-CASE
/// degrees over all shipped long-frame rates — the largest check in-degree
/// and an information node of the largest deg_hi — so one certificate per
/// (algorithm, schedule, datapath numbers) covers every standard code. The
/// abstract bounds grow only with per-firing fan-in (vn sums, flip metrics),
/// never with m or N, so the envelope dominates the full-size codes.
const analysis::ir::TraceDims& range_envelope_dims() {
    static const analysis::ir::TraceDims dims = [] {
        int max_kc = 2;
        int max_deg = 3;
        for (code::CodeRate r : code::all_rates()) {
            const code::CodeParams p = code::standard_params(r);
            max_kc = std::max(max_kc, p.check_deg - 2);
            max_deg = std::max(max_deg, p.deg_hi);
        }
        analysis::ir::TraceDims d;
        d.check_in_degree = max_kc;
        const long long e = d.e_in();
        // variable 0 takes deg_hi edges; every other edge is its own
        // degree-1 node (degree only sharpens the vn-accumulate peak)
        d.edge_variable.assign(static_cast<std::size_t>(e), 0);
        std::int32_t next = 1;
        for (long long ed = std::min<long long>(max_deg, e); ed < e; ++ed)
            d.edge_variable[static_cast<std::size_t>(ed)] = next++;
        d.num_info_nodes = next;
        return d;
    }();
    return dims;
}

/// Translates the spec's quantizer and knobs into the IR layer's numeric
/// datapath description (raw units of the quantizer step).
analysis::ir::AbsintSpec absint_spec_of(const EngineSpec& spec) {
    const DecoderConfig& c = spec.config;
    analysis::ir::AbsintSpec a;
    a.algorithm = c.algorithm;
    a.rule = c.rule;
    a.max_raw = spec.quant.max_raw();
    // fixed tiers quantize the channel at the word bound; the RHS-BP tier
    // stores doubles, so its channel carries the repo-wide LLR clamp
    a.channel_clamp = c.algorithm == Algorithm::RhsBp
                          ? std::llround(std::ceil(util::kLlrClamp / spec.quant.step()))
                          : a.max_raw;
    a.corr_peak = c.rule == CheckRule::Exact
                      ? std::llround(std::nearbyint(std::log1p(1.0) / spec.quant.step()))
                      : 0;
    a.wide_capacity = std::numeric_limits<std::int32_t>::max();
    a.norm_num = std::llround(c.normalization * 16.0);
    a.offset_raw = c.rule == CheckRule::OffsetMinSum
                       ? std::llround(c.offset / spec.quant.step())
                       : 0;
    a.wbf_alpha = c.wbf_alpha;
    a.rhs_cmax_raw = std::llround(std::ceil(kRhsCmax / spec.quant.step()));
    return a;
}

}  // namespace

analysis::ir::RangeCertificate engine_range_certificate(const EngineSpec& spec) {
    const analysis::ir::AbsintSpec a = absint_spec_of(spec);
    using Key = std::tuple<int, int, int, long long, long long, long long, long long, long long,
                           long long, long long>;
    const Key key{static_cast<int>(a.algorithm),
                  static_cast<int>(a.rule),
                  static_cast<int>(spec.config.schedule),
                  a.max_raw,
                  a.channel_clamp,
                  a.corr_peak,
                  a.norm_num,
                  a.offset_raw,
                  std::llround(a.wbf_alpha * 1e9),
                  a.rhs_cmax_raw};
    static std::mutex mu;
    static std::map<Key, analysis::ir::RangeCertificate>& cache =
        *new std::map<Key, analysis::ir::RangeCertificate>();
    {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = cache.find(key);
        if (it != cache.end()) return it->second;
    }
    const analysis::ir::Trace trace =
        analysis::ir::build_schedule_trace(spec.config.schedule, range_envelope_dims());
    analysis::ir::RangeCertificate cert = analysis::ir::certify_ranges(trace, a);
    // the certificate is only trusted checked: an interpreter bug must fail
    // construction loudly, never silently admit an overflowing datapath
    const analysis::ir::RangeCheck chk = analysis::ir::check_range_certificate(trace, a, cert);
    DVBS2_REQUIRE(chk.ok, "range certificate failed its independent check: " +
                              (chk.rejection ? chk.rejection->reason : std::string("?")));
    const std::lock_guard<std::mutex> lock(mu);
    return cache.emplace(key, std::move(cert)).first->second;
}

void validate_engine_spec(const EngineSpec& spec) {
    const DecoderConfig& c = spec.config;
    DVBS2_REQUIRE(c.max_iterations >= 0, "max_iterations must be non-negative, got " +
                                             std::to_string(c.max_iterations));
    if (c.rule == CheckRule::NormalizedMinSum)
        DVBS2_REQUIRE(c.normalization > 0.0 && c.normalization <= 1.0,
                      "normalization must be in (0, 1] for rule=normalized-min-sum, got " +
                          std::to_string(c.normalization));
    if (c.rule == CheckRule::OffsetMinSum)
        DVBS2_REQUIRE(c.offset >= 0.0, "offset must be non-negative for rule=offset-min-sum, "
                                       "got " + std::to_string(c.offset));
    if (c.algorithm == Algorithm::Wbf) {
        DVBS2_REQUIRE(c.wbf_alpha > 0.0,
                      "wbf_alpha must be positive for algorithm=wbf (alpha=0 drops the "
                      "reliability term and degenerates the flip metric to plain Gallager "
                      "check counting), got " + std::to_string(c.wbf_alpha));
        DVBS2_REQUIRE(c.wbf_theta >= 1e-6 && c.wbf_theta <= 1.0,
                      "wbf_theta must be in [1e-6, 1] for algorithm=wbf (1 = single-bit "
                      "flips; a smaller threshold flips every positive-metric bit at once "
                      "and oscillates), got " + std::to_string(c.wbf_theta));
        DVBS2_REQUIRE(c.wbf_surrender > 0.0 && c.wbf_surrender < 1.0,
                      "wbf_surrender must be in (0, 1) for algorithm=wbf (fraction of "
                      "checks; surrender=1 means the gate waits for MORE than every check "
                      "to fail and never fires), got " + std::to_string(c.wbf_surrender));
    }
    if (c.algorithm == Algorithm::RhsBp)
        DVBS2_REQUIRE(c.rhs_beta >= 1e-6 && c.rhs_beta < 1.0,
                      "rhs_beta must be in [1e-6, 1) for algorithm=rhs-bp (beta=1 removes "
                      "the tracker memory entirely — t copies the instantaneous sign and "
                      "the decoder degenerates to hard-decision gossip; beta below 1e-6 "
                      "freezes the trackers at their initial state), got " +
                          std::to_string(c.rhs_beta));
    // Algorithm × (schedule, backend) legality is derived by the IR layer
    // (analysis::ir::classify_algorithm), not hardcoded here: the verdicts
    // come from the same trace analyses that certify the lane mappings.
    const auto& alg = analysis::ir::classify_algorithm(c.algorithm);
    DVBS2_REQUIRE(alg.supports(c.schedule),
                  std::string("algorithm=") + to_string(c.algorithm) + " cannot run schedule=" +
                      to_string(c.schedule) + ": " + alg.obstruction(c.schedule));
    if (c.backend == DecoderBackend::Simd)
        DVBS2_REQUIRE(alg.simd_supported, std::string("algorithm=") + to_string(c.algorithm) +
                                              " cannot run backend=simd: " +
                                              alg.simd_obstruction);
    if (spec.arith == Arithmetic::Float) {
        DVBS2_REQUIRE(c.backend != DecoderBackend::Simd,
                      "backend=simd models the fixed-point datapath only; "
                      "use fixed arithmetic (core::FixedDecoder / Arithmetic::Fixed) "
                      "for DecoderBackend::Simd");
    } else {
        quant::validate_spec(spec.quant);
    }
    if (c.backend == DecoderBackend::Simd) {
        // Legality is derived, not hardcoded: the dataflow IR classifies each
        // schedule by tracing its def/use dependences (analysis/ir). The
        // group-parallel mapping needs every same-phase dependence to stay
        // inside one lane and respect the lockstep step order — either in
        // the schedule as emitted (native legality) or under a certified
        // dependence-preserving rewrite (analysis/ir/transform.hpp): the
        // transformer's certificates are re-checked by replaying the
        // permuted trace through the same analyses, so an uncertified
        // schedule can never reach the group-parallel executor.
        const auto& cls = analysis::ir::classify_schedule(c.schedule);
        if (c.lane_mode != SimdLaneMode::FramePerLane) {
            const auto& verdict = analysis::ir::transform_schedule(c.schedule);
            DVBS2_REQUIRE(verdict.group_parallel(),
                          std::string("backend=simd with lane_mode=") + to_string(c.lane_mode) +
                              " (group-parallel lanes) cannot run schedule=" +
                              to_string(c.schedule) + ": " + cls.group_parallel_obstruction +
                              ", and no certified lockstep rewrite exists; use "
                              "lane_mode=frame-per-lane (one lane per frame) to run this "
                              "schedule on the SIMD backend");
        } else {
            DVBS2_REQUIRE(cls.frame_per_lane_legal,
                          std::string("backend=simd with lane_mode=frame-per-lane cannot run "
                                      "schedule=") +
                              to_string(c.schedule) + ": the schedule shares state across frames");
        }
    }
    if (spec.arith == Arithmetic::Fixed) {
        // Per-event range certification over the dataflow IR (absint.hpp):
        // the family-envelope certificate must prove every stored word and
        // wide accumulator fits the spec's quantizer, or the spec is
        // rejected naming the first overflowing event. Every registered
        // <= 16-bit quantizer fits (the worst vn sum stays far inside the
        // 32-bit accumulators); this is the safety net for wider datapaths
        // and externally registered builders.
        const analysis::ir::RangeCertificate cert = engine_range_certificate(spec);
        if (!cert.ok) {
            const analysis::ir::Trace trace =
                analysis::ir::build_schedule_trace(c.schedule, range_envelope_dims());
            std::string what = std::string("quantization overflows the ") +
                               to_string(c.algorithm) + " datapath: " + cert.offender_stage;
            if (cert.first_offender >= 0)
                what += ", first at " +
                        analysis::ir::describe_event(
                            trace.events[static_cast<std::size_t>(cert.first_offender)]);
            DVBS2_REQUIRE(false, what);
        }
    }
}

// ---------------------------------------------------------- Engine (base)

Engine::~Engine() = default;

void Engine::record(const DecodeResult& r) {
    // stats_mu_ serializes the recording against convergence_snapshot()
    // pollers on other threads; decode_* itself stays single-writer. The
    // lock is per frame (not per iteration) and uncontended in every
    // single-threaded use, so it costs nothing measurable on the hot path.
    const std::lock_guard<std::mutex> lock(stats_mu_);
    // Lazily sized on the first recorded frame: config() is virtual, so the
    // base constructor cannot call it. reserve_iterations presizes the
    // histogram to 0..max_iterations, making steady-state record() calls
    // allocation-free (pinned by tests/test_alloc.cpp).
    if (stats_.histogram.empty()) stats_.reserve_iterations(config().max_iterations);
    stats_.record(r.iterations, r.converged);
}

ConvergenceStats Engine::convergence_snapshot() const {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

namespace {

/// One diagnostic shape for every frame-length mismatch: names the actual
/// span size, the engine's N and (for batches) the expected relation.
void require_frame_span(std::size_t actual, std::size_t n, const char* entry) {
    DVBS2_REQUIRE(actual == n, std::string(entry) + ": channel span has " +
                                   std::to_string(actual) +
                                   " values but this engine decodes frames of N=" +
                                   std::to_string(n) + " (expected span size == N)");
}

}  // namespace

void Engine::decode_into(std::span<const double> llr, DecodeResult& out) {
    if (const std::size_t n = frame_length(); n > 0) require_frame_span(llr.size(), n, "decode_into");
    do_decode_into(llr, out);
    record(out);
}

void Engine::decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out) {
    if (const std::size_t n = frame_length(); n > 0)
        require_frame_span(qllr.size(), n, "decode_raw_into");
    do_decode_raw_into(qllr, out);
    record(out);
}

void Engine::decode_batch(std::span<const double> llrs, std::span<DecodeResult> out) {
    // Validate both spans against each other (and against N when the
    // backend declares one) before any backend code runs, so scalar and
    // SIMD engines reject a mismatched call with the same diagnostic: the
    // error names both actual sizes and the relation they must satisfy.
    const std::size_t frames = out.size();
    DVBS2_REQUIRE(frames > 0, "decode_batch: out.size()=0 result slots for llrs.size()=" +
                                  std::to_string(llrs.size()) +
                                  " LLR values (expected llrs.size() == out.size() * N with "
                                  "out.size() >= 1)");
    if (const std::size_t n = frame_length(); n > 0) {
        DVBS2_REQUIRE(llrs.size() == frames * n,
                      "decode_batch: llrs.size()=" + std::to_string(llrs.size()) +
                          " does not match out.size()=" + std::to_string(frames) +
                          " frames of N=" + std::to_string(n) +
                          " (expected llrs.size() == out.size() * N = " +
                          std::to_string(frames * n) + ")");
    } else {
        DVBS2_REQUIRE(llrs.size() % frames == 0,
                      "decode_batch: llrs.size()=" + std::to_string(llrs.size()) +
                          " is not a multiple of out.size()=" + std::to_string(frames) +
                          " frames (expected llrs.size() == out.size() * frame length)");
    }
    do_decode_batch(llrs, out);
    for (const DecodeResult& r : out) record(r);
}

void Engine::do_decode_raw_into(std::span<const quant::QLLR> /*qllr*/, DecodeResult& /*out*/) {
    throw std::runtime_error(std::string("decode_raw_into requires a fixed-point engine "
                                         "(this engine's arithmetic is ") +
                             to_string(arithmetic()) + ")");
}

void Engine::do_decode_batch(std::span<const double> llrs, std::span<DecodeResult> out) {
    // Spans were validated by the public decode_batch wrapper.
    const std::size_t b = out.size();
    const std::size_t n = llrs.size() / b;
    for (std::size_t f = 0; f < b; ++f) do_decode_into(llrs.subspan(f * n, n), out[f]);
}

DecodeResult Engine::decode(std::span<const double> llr) {
    DecodeResult result;
    decode_into(llr, result);
    return result;
}

const quant::QuantSpec* Engine::quant_spec() const noexcept { return nullptr; }

int Engine::preferred_batch() const noexcept { return 1; }

std::size_t Engine::frame_length() const noexcept { return 0; }

void Engine::set_cn_order(std::vector<int> /*order*/) {
    throw std::runtime_error("per-check-node input orders require a scalar engine "
                             "(DecoderBackend::Scalar); the SIMD engines process the "
                             "canonical slot order");
}

std::vector<quant::QLLR> Engine::run_and_dump_c2v(std::span<const quant::QLLR> /*qllr*/,
                                                  int /*iters*/) {
    throw std::runtime_error(std::string("run_and_dump_c2v requires a fixed-point engine "
                                         "(this engine's arithmetic is ") +
                             to_string(arithmetic()) + ")");
}

// --------------------------------------------------- engine implementations

namespace {

/// Engine-owned staging reused across calls: `staging` holds one converted
/// frame. Message memories live inside the wrapped decoders and persist the
/// same way; together they are the reason steady-state decode calls
/// allocate nothing. (The SIMD engine no longer stages whole batch blocks:
/// decode_stream pulls frames one at a time through a quantizing source
/// callback as lanes free up.)
template <class T>
struct DecodeWorkspace {
    std::vector<T> staging;
};

class FloatEngine final : public Engine {
public:
    FloatEngine(const code::Dvbs2Code& code, const EngineSpec& spec)
        : spec_(spec),
          mp_(code, spec.config,
              FloatArith(spec.config.rule, spec.config.normalization, spec.config.offset)) {
        ws_.staging.resize(static_cast<std::size_t>(code.n()));
    }

    void set_observer(std::function<void(const IterationTrace&)> observer) override {
        mp_.set_observer(std::move(observer));
    }

    const DecoderConfig& config() const noexcept override { return spec_.config; }
    Arithmetic arithmetic() const noexcept override { return Arithmetic::Float; }
    std::string backend_name() const override { return "float-scalar"; }
    std::size_t frame_length() const noexcept override { return ws_.staging.size(); }

    void set_cn_order(std::vector<int> order) override { mp_.set_cn_order(std::move(order)); }

protected:
    void do_decode_into(std::span<const double> llr, DecodeResult& out) override {
        DVBS2_REQUIRE(llr.size() == ws_.staging.size(), "channel length mismatch");
        for (std::size_t i = 0; i < llr.size(); ++i) {
            DVBS2_REQUIRE(std::isfinite(llr[i]),
                          "non-finite channel LLR at index " + std::to_string(i));
            ws_.staging[i] = util::clamp_llr(llr[i]);
        }
        mp_.decode_into(ws_.staging, out);
    }

private:
    EngineSpec spec_;
    MpDecoder<FloatArith> mp_;
    DecodeWorkspace<double> ws_;
};

class FixedScalarEngine final : public Engine {
public:
    FixedScalarEngine(const code::Dvbs2Code& code, const EngineSpec& spec)
        : spec_(spec),
          table_(spec.quant),
          mp_(code, spec.config,
              FixedArith(spec.config.rule, spec.quant,
                         spec.config.rule == CheckRule::Exact ? &table_ : nullptr,
                         spec.config.normalization, spec.config.offset)) {
        ws_.staging.resize(static_cast<std::size_t>(code.n()));
    }

    void set_observer(std::function<void(const IterationTrace&)> observer) override {
        mp_.set_observer(std::move(observer));
    }

    const DecoderConfig& config() const noexcept override { return spec_.config; }
    Arithmetic arithmetic() const noexcept override { return Arithmetic::Fixed; }
    const quant::QuantSpec* quant_spec() const noexcept override { return &spec_.quant; }
    std::string backend_name() const override { return "fixed-scalar"; }
    std::size_t frame_length() const noexcept override { return ws_.staging.size(); }

    void set_cn_order(std::vector<int> order) override { mp_.set_cn_order(std::move(order)); }

    std::vector<quant::QLLR> run_and_dump_c2v(std::span<const quant::QLLR> qllr,
                                              int iters) override {
        mp_.run_iterations(qllr, iters);
        return mp_.c2v_messages();
    }

protected:
    void do_decode_into(std::span<const double> llr, DecodeResult& out) override {
        DVBS2_REQUIRE(llr.size() == ws_.staging.size(), "channel length mismatch");
        for (std::size_t i = 0; i < llr.size(); ++i) {
            DVBS2_REQUIRE(std::isfinite(llr[i]),
                          "non-finite channel LLR at index " + std::to_string(i));
            ws_.staging[i] = quant::quantize(llr[i], spec_.quant);
        }
        mp_.decode_into(ws_.staging, out);
    }

    void do_decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out) override {
        mp_.decode_into(qllr, out);
    }

private:
    EngineSpec spec_;
    quant::BoxplusTable table_;
    MpDecoder<FixedArith> mp_;
    DecodeWorkspace<quant::QLLR> ws_;
};

/// Fixed-point SIMD engine. Owns up to two lane mappings, selected by
/// DecoderConfig::lane_mode: a group-parallel decoder (lane = functional
/// unit) for single frames and a frame-per-lane decoder for batch blocks.
class SimdEngine final : public Engine {
public:
    SimdEngine(const code::Dvbs2Code& code, const EngineSpec& spec) : spec_(spec) {
        const auto n = static_cast<std::size_t>(code.n());
        if (spec.config.lane_mode != SimdLaneMode::FramePerLane)
            group_ = std::make_unique<SimdFixedDecoder>(code, spec.config, spec.quant);
        if (spec.config.lane_mode != SimdLaneMode::GroupParallel)
            batch_ = std::make_unique<SimdBatchFixedDecoder>(code, spec.config, spec.quant);
        ws_.staging.resize(n);
    }

    void set_observer(std::function<void(const IterationTrace&)> observer) override {
        if (observer && group_ == nullptr)
            throw std::runtime_error(
                "lane_mode=frame-per-lane does not emit iteration traces; use "
                "lane_mode=auto or group-parallel (or DecoderBackend::Scalar) for tracing");
        has_observer_ = static_cast<bool>(observer);
        if (group_) group_->set_observer(std::move(observer));
    }

    const DecoderConfig& config() const noexcept override { return spec_.config; }
    Arithmetic arithmetic() const noexcept override { return Arithmetic::Fixed; }
    const quant::QuantSpec* quant_spec() const noexcept override { return &spec_.quant; }
    std::string backend_name() const override {
        return std::string("fixed-simd(") + simd_backend_name() + ")";
    }
    std::size_t frame_length() const noexcept override { return ws_.staging.size(); }
    int preferred_batch() const noexcept override {
        // Several lane blocks per call, not one: lane compaction only has
        // frames to splice into retired lanes when the batch outnumbers the
        // lanes, so a deeper preferred batch is what converts per-lane early
        // termination into throughput (see decode_stream).
        return batch_ ? 4 * SimdBatchFixedDecoder::lanes() : 1;
    }

    std::vector<quant::QLLR> run_and_dump_c2v(std::span<const quant::QLLR> qllr,
                                              int iters) override {
        if (group_) {
            group_->run_iterations(qllr, iters);
            return group_->c2v_messages();
        }
        batch_->run_iterations(qllr, 1, iters);
        return batch_->c2v_messages(0);
    }

protected:
    void do_decode_into(std::span<const double> llr, DecodeResult& out) override {
        DVBS2_REQUIRE(llr.size() == ws_.staging.size(), "channel length mismatch");
        quantize_range(llr, ws_.staging.data());
        decode_raw_single(ws_.staging, out);
    }

    void do_decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out) override {
        DVBS2_REQUIRE(qllr.size() == ws_.staging.size(), "channel length mismatch");
        decode_raw_single(qllr, out);
    }

    void do_decode_batch(std::span<const double> llrs, std::span<DecodeResult> out) override {
        // Spans were validated by the public decode_batch wrapper (this
        // engine declares frame_length(), so llrs.size() == b * n here).
        const std::size_t b = out.size();
        const std::size_t n = ws_.staging.size();
        if (!batch_ || has_observer_) {
            // Group-parallel lane mode, or tracing: decode frame by frame so
            // observers see one frame's iterations at a time, in order.
            for (std::size_t f = 0; f < b; ++f) do_decode_into(llrs.subspan(f * n, n), out[f]);
            return;
        }
        // One decode_stream over the whole batch: frames are quantized on
        // demand as lanes claim them, and retired lanes are refilled from
        // the pending frames (lane compaction), so a mixed-convergence batch
        // never leaves lanes idle while frames wait.
        StreamCtx ctx{this, llrs.data(), n};
        batch_->decode_stream(b, &SimdEngine::quantize_frame, &ctx, out.data());
    }

private:
    /// decode_stream frame source: quantizes frame `f` out of the caller's
    /// LLR block on demand (captureless, so it converts to the plain
    /// function pointer the allocation-free stream API takes).
    struct StreamCtx {
        SimdEngine* self;
        const double* llrs;
        std::size_t n;
    };
    static void quantize_frame(void* c, std::size_t f, quant::QLLR* dst) {
        auto* s = static_cast<StreamCtx*>(c);
        s->self->quantize_range(std::span<const double>(s->llrs + f * s->n, s->n), dst);
    }

    void quantize_range(std::span<const double> llr, quant::QLLR* dst) {
        for (std::size_t i = 0; i < llr.size(); ++i) {
            DVBS2_REQUIRE(std::isfinite(llr[i]),
                          "non-finite channel LLR at index " + std::to_string(i));
            dst[i] = quant::quantize(llr[i], spec_.quant);
        }
    }

    void decode_raw_single(std::span<const quant::QLLR> qllr, DecodeResult& out) {
        if (group_) {
            group_->decode_into(qllr, out);
            return;
        }
        batch_->decode_into(qllr, 1, &out);
    }

    EngineSpec spec_;
    std::unique_ptr<SimdFixedDecoder> group_;       // lane = functional unit
    std::unique_ptr<SimdBatchFixedDecoder> batch_;  // lane = frame
    DecodeWorkspace<quant::QLLR> ws_;
    bool has_observer_ = false;
};

/// Float weighted-bit-flipping engine: double reliabilities, clamped like
/// the float MP engine so the flip metric sees the same dynamic range.
class WbfFloatEngine final : public Engine {
public:
    WbfFloatEngine(const code::Dvbs2Code& code, const EngineSpec& spec)
        : spec_(spec), wbf_(code, spec.config) {
        ws_.staging.resize(static_cast<std::size_t>(code.n()));
    }

    void set_observer(std::function<void(const IterationTrace&)> observer) override {
        wbf_.set_observer(std::move(observer));
    }

    const DecoderConfig& config() const noexcept override { return spec_.config; }
    Arithmetic arithmetic() const noexcept override { return Arithmetic::Float; }
    std::string backend_name() const override { return "wbf-float-scalar"; }
    std::size_t frame_length() const noexcept override { return ws_.staging.size(); }

protected:
    void do_decode_into(std::span<const double> llr, DecodeResult& out) override {
        DVBS2_REQUIRE(llr.size() == ws_.staging.size(), "channel length mismatch");
        for (std::size_t i = 0; i < llr.size(); ++i) {
            DVBS2_REQUIRE(std::isfinite(llr[i]),
                          "non-finite channel LLR at index " + std::to_string(i));
            ws_.staging[i] = util::clamp_llr(llr[i]);
        }
        wbf_.decode_into(std::span<const double>(ws_.staging), out);
    }

private:
    EngineSpec spec_;
    WbfDecoder<double> wbf_;
    DecodeWorkspace<double> ws_;
};

/// Fixed-point WBF engine: quantized |y| as integer weights, so the flip
/// metric is integer arithmetic except for the α·|y| term.
class WbfFixedEngine final : public Engine {
public:
    WbfFixedEngine(const code::Dvbs2Code& code, const EngineSpec& spec)
        : spec_(spec), wbf_(code, spec.config) {
        ws_.staging.resize(static_cast<std::size_t>(code.n()));
    }

    void set_observer(std::function<void(const IterationTrace&)> observer) override {
        wbf_.set_observer(std::move(observer));
    }

    const DecoderConfig& config() const noexcept override { return spec_.config; }
    Arithmetic arithmetic() const noexcept override { return Arithmetic::Fixed; }
    const quant::QuantSpec* quant_spec() const noexcept override { return &spec_.quant; }
    std::string backend_name() const override { return "wbf-fixed-scalar"; }
    std::size_t frame_length() const noexcept override { return ws_.staging.size(); }

protected:
    void do_decode_into(std::span<const double> llr, DecodeResult& out) override {
        DVBS2_REQUIRE(llr.size() == ws_.staging.size(), "channel length mismatch");
        for (std::size_t i = 0; i < llr.size(); ++i) {
            DVBS2_REQUIRE(std::isfinite(llr[i]),
                          "non-finite channel LLR at index " + std::to_string(i));
            ws_.staging[i] = quant::quantize(llr[i], spec_.quant);
        }
        wbf_.decode_into(std::span<const quant::QLLR>(ws_.staging), out);
    }

    void do_decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out) override {
        wbf_.decode_into(qllr, out);
    }

private:
    EngineSpec spec_;
    WbfDecoder<quant::QLLR> wbf_;
    DecodeWorkspace<quant::QLLR> ws_;
};

/// Relaxed half-stochastic BP engine (float-only: the tracker state is the
/// analog half of the algorithm).
class RhsEngine final : public Engine {
public:
    RhsEngine(const code::Dvbs2Code& code, const EngineSpec& spec)
        : spec_(spec), rhs_(code, spec.config) {
        ws_.staging.resize(static_cast<std::size_t>(code.n()));
    }

    void set_observer(std::function<void(const IterationTrace&)> observer) override {
        rhs_.set_observer(std::move(observer));
    }

    const DecoderConfig& config() const noexcept override { return spec_.config; }
    Arithmetic arithmetic() const noexcept override { return Arithmetic::Float; }
    std::string backend_name() const override { return "rhs-float-scalar"; }
    std::size_t frame_length() const noexcept override { return ws_.staging.size(); }

protected:
    void do_decode_into(std::span<const double> llr, DecodeResult& out) override {
        DVBS2_REQUIRE(llr.size() == ws_.staging.size(), "channel length mismatch");
        for (std::size_t i = 0; i < llr.size(); ++i) {
            DVBS2_REQUIRE(std::isfinite(llr[i]),
                          "non-finite channel LLR at index " + std::to_string(i));
            ws_.staging[i] = util::clamp_llr(llr[i]);
        }
        rhs_.decode_into(std::span<const double>(ws_.staging), out);
    }

private:
    EngineSpec spec_;
    RhsBpDecoder rhs_;
    DecodeWorkspace<double> ws_;
};

// --------------------------------------------------------------- registry

struct Registry {
    std::mutex mu;
    std::vector<std::pair<EngineKey, EngineBuilder>> entries;
};

Registry& registry() {
    static Registry r;
    static const bool builtins = [] {
        const auto add = [](const EngineKey& key, auto tag) {
            using E = typename decltype(tag)::type;
            r.entries.emplace_back(
                key, [](const code::Dvbs2Code& code, const EngineSpec& spec) {
                    return std::unique_ptr<Engine>(std::make_unique<E>(code, spec));
                });
        };
        add({Algorithm::MinSum, Arithmetic::Float, DecoderBackend::Scalar},
            std::type_identity<FloatEngine>{});
        add({Algorithm::MinSum, Arithmetic::Fixed, DecoderBackend::Scalar},
            std::type_identity<FixedScalarEngine>{});
        add({Algorithm::MinSum, Arithmetic::Fixed, DecoderBackend::Simd},
            std::type_identity<SimdEngine>{});
        add({Algorithm::Wbf, Arithmetic::Float, DecoderBackend::Scalar},
            std::type_identity<WbfFloatEngine>{});
        add({Algorithm::Wbf, Arithmetic::Fixed, DecoderBackend::Scalar},
            std::type_identity<WbfFixedEngine>{});
        add({Algorithm::RhsBp, Arithmetic::Float, DecoderBackend::Scalar},
            std::type_identity<RhsEngine>{});
        return true;
    }();
    (void)builtins;
    return r;
}

}  // namespace

void register_engine(const EngineKey& key, EngineBuilder builder) {
    DVBS2_REQUIRE(builder != nullptr, "engine builder must be callable");
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& entry : r.entries) {
        if (entry.first == key) {
            entry.second = std::move(builder);
            return;
        }
    }
    r.entries.emplace_back(key, std::move(builder));
}

bool engine_registered(const EngineKey& key) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& entry : r.entries)
        if (entry.first == key) return true;
    return false;
}

std::vector<EngineKey> registered_engines() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<EngineKey> keys;
    keys.reserve(r.entries.size());
    for (const auto& entry : r.entries) keys.push_back(entry.first);
    // Sorted by (algorithm, arithmetic, backend), not registration order, so
    // callers that sweep the registry are deterministic.
    std::sort(keys.begin(), keys.end());
    return keys;
}

std::unique_ptr<Engine> make_engine(const code::Dvbs2Code& code, const EngineSpec& spec) {
    validate_engine_spec(spec);
    const EngineKey key = engine_key(spec);
    EngineBuilder builder;
    {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& entry : r.entries) {
            if (entry.first == key) {
                builder = entry.second;
                break;
            }
        }
    }
    DVBS2_REQUIRE(builder != nullptr, "no engine registered for " + to_string(key));
    return builder(code, spec);
}

}  // namespace dvbs2::core
