// Unified decoder-engine layer.
//
// `core::Engine` is the one type-erased interface every decode backend
// implements: the min-sum message-passing family (floating-point reference,
// scalar fixed-point datapath model, SIMD group-parallel and frame-per-lane
// backends), the weighted-bit-flipping decoder, and the relaxed
// half-stochastic BP decoder all sit behind it, and every consumer — the
// Monte-Carlo harness, the examples, the benches, the streaming service —
// talks to this interface only. Engines are built through a registry
// (`make_engine`) keyed by (Algorithm, Arithmetic, DecoderBackend); the
// full EngineSpec (schedule, rule, quantization, lane mode, per-algorithm
// knobs) parameterizes the built instance and is validated centrally by
// validate_engine_spec before any builder runs, so illegal combinations
// fail in one place with a diagnostic naming the offending option.
//
// Ownership and lifetime: an engine holds a pointer to the Dvbs2Code it was
// built for (the code must outlive it) and owns all of its mutable state —
// message memories, staging buffers, batch blocks — in a workspace reused
// across calls. Engines are therefore stateful and NOT thread-safe: build
// one engine per worker (see comm/parallel.hpp and service/service.hpp).
// The single supported cross-thread operation is convergence_snapshot(),
// which a metrics poller may call while the owning thread decodes — every
// other member requires the single-writer discipline. After a first call has
// sized the workspace and the caller's DecodeResult, steady-state
// decode_into / decode_batch calls perform no heap allocation (pinned by
// tests/test_alloc.cpp); installing an observer waives that guarantee
// (tracing materializes a syndrome per iteration).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "analysis/ir/absint.hpp"
#include "code/tanner.hpp"
#include "core/types.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::core {

/// Everything needed to build an engine. `quant` applies to fixed-point
/// engines only (ignored — not validated — for Arithmetic::Float).
struct EngineSpec {
    Arithmetic arith = Arithmetic::Fixed;
    DecoderConfig config;
    quant::QuantSpec quant = quant::kQuant6;
};

/// Central configuration validation: throws std::runtime_error with a
/// diagnostic naming the offending option for any illegal combination
/// (float arithmetic with the SIMD backend, a schedule the group-parallel
/// lane mode cannot run, an out-of-range normalization/offset/iteration
/// count, a malformed quantizer spec). Every construction path — engines
/// from make_engine, the Decoder/FixedDecoder wrappers — routes through
/// this, so there is exactly one place that decides legality.
void validate_engine_spec(const EngineSpec& spec);

/// The per-event range certificate validate_engine_spec consults for
/// fixed-arithmetic specs: the abstract interpreter's proven bounds for the
/// spec's (algorithm, schedule, quantizer) over the family-envelope trace
/// dims (worst-case degrees over every shipped long-frame rate, so one
/// certificate covers all standard codes). Always returned checker-verified
/// (check_range_certificate accepted it); cached per datapath key, so
/// repeated engine construction certifies once. Works for any legal
/// schedule/algorithm combination regardless of the quantizer width —
/// `ok == false` certificates name the first overflowing event.
analysis::ir::RangeCertificate engine_range_certificate(const EngineSpec& spec);

/// Type-erased decoder engine. All LLR spans use the channel sign
/// convention (positive favors bit 0) and must have size N; batched calls
/// take B frames stored back to back (size B·N, frame-major).
class Engine {
public:
    virtual ~Engine();

    /// Decodes one frame of channel LLRs into caller-owned result storage
    /// (allocation-free once `out` is sized; see file header). Non-virtual:
    /// wraps the backend's do_decode_into and records the frame into the
    /// engine's ConvergenceStats, so the telemetry is structural — every
    /// backend, current or future, feeds it without opting in.
    void decode_into(std::span<const double> llr, DecodeResult& out);

    /// Fixed-point engines decode already-quantized raw values; float
    /// engines throw std::runtime_error.
    void decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out);

    /// Decodes `out.size()` frames stored back to back in `llrs`. Results
    /// are bit-identical to per-frame decode_into calls (pinned by
    /// tests/test_engine.cpp and tests/test_convergence.cpp); backends
    /// amortize setup, execute frames in parallel lanes, and refill lanes
    /// from pending frames as lanes converge (lane compaction in the SIMD
    /// engine). The base implementation loops do_decode_into.
    void decode_batch(std::span<const double> llrs, std::span<DecodeResult> out);

    /// Convenience allocating wrapper over decode_into.
    DecodeResult decode(std::span<const double> llr);

    /// Aggregate convergence telemetry over every frame decoded by this
    /// engine since construction (or the last reset_convergence):
    /// iteration-count histogram, converged-frame count, mean iterations.
    /// Recorded by the public decode entry points themselves, so it is
    /// identical across backends whenever the per-frame results are —
    /// which the convergence tier pins. Allocation-free in steady state
    /// (the histogram is sized to max_iterations on first use).
    ///
    /// SINGLE-WRITER CONTRACT: engines are single-writer objects — at most
    /// one thread may drive decode_* at any time. This accessor returns a
    /// reference into live telemetry and is only valid on that same thread
    /// (or while no decode is in flight): a *different* thread polling it
    /// mid-decode can observe a torn update (histogram bumped, frame count
    /// not yet). Concurrent readers — e.g. a service metrics poller watching
    /// a worker's engine — must use convergence_snapshot() instead.
    const ConvergenceStats& convergence() const noexcept { return stats_; }

    /// Coherent copy of the telemetry, safe to call from any thread while
    /// another thread drives decode_* on this engine: the snapshot is taken
    /// under the same lock the recording path holds, so the counts are never
    /// torn (pinned by the tsan tier in tests/test_service.cpp). The copy
    /// allocates; poll it at metrics cadence, not per frame.
    ConvergenceStats convergence_snapshot() const;

    /// Zeroes the telemetry (keeps the histogram storage). Writer-side
    /// operation: call it from the decoding thread, like decode_* itself.
    void reset_convergence() noexcept {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.reset();
    }

    /// Installs a per-iteration diagnostics observer (empty disables).
    /// Observers must not change any decode result; batched calls fall back
    /// to per-frame execution so traces arrive frame by frame, in order.
    virtual void set_observer(std::function<void(const IterationTrace&)> observer) = 0;

    virtual const DecoderConfig& config() const noexcept = 0;
    virtual Arithmetic arithmetic() const noexcept = 0;

    /// Quantization of a fixed-point engine; nullptr for float engines.
    virtual const quant::QuantSpec* quant_spec() const noexcept;

    /// Human-readable backend tag, e.g. "float-scalar", "fixed-simd(avx2)".
    virtual std::string backend_name() const = 0;

    /// Preferred number of frames per decode_batch call (the lane count of
    /// frame-parallel backends; 1 where batching only amortizes setup).
    virtual int preferred_batch() const noexcept;

    /// Channel-frame length N this engine decodes, or 0 when the backend
    /// does not declare one (externally registered engines that predate this
    /// hook). When nonzero, the public decode entry points validate every
    /// span against it up front, so mismatch diagnostics name the actual
    /// sizes and the expected relation in one place.
    virtual std::size_t frame_length() const noexcept;

    // --- diagnostic hooks implemented by a subset of engines; the default
    // --- implementations throw std::runtime_error naming the limitation ---

    /// Per-check-node information-edge processing order (scalar engines
    /// only; see MpDecoder::set_cn_order).
    virtual void set_cn_order(std::vector<int> order);

    /// Runs exactly `iters` iterations on quantized channel values and
    /// returns the c2v message state (fixed-point engines only).
    virtual std::vector<quant::QLLR> run_and_dump_c2v(std::span<const quant::QLLR> qllr,
                                                      int iters);

protected:
    // --- backend implementation points (template-method pattern): the
    // --- public decode calls wrap these and record convergence telemetry ---

    /// Decodes one frame (the only hook a backend must implement).
    virtual void do_decode_into(std::span<const double> llr, DecodeResult& out) = 0;

    /// Default throws: raw quantized input needs a fixed-point engine.
    virtual void do_decode_raw_into(std::span<const quant::QLLR> qllr, DecodeResult& out);

    /// Default loops do_decode_into frame by frame.
    virtual void do_decode_batch(std::span<const double> llrs, std::span<DecodeResult> out);

private:
    void record(const DecodeResult& r);

    /// Serializes stats_ between the (single) decoding thread's record()
    /// calls and concurrent convergence_snapshot() readers. Uncontended in
    /// every single-threaded use; one lock per *frame* on the decode path.
    mutable std::mutex stats_mu_;
    ConvergenceStats stats_;
};

/// Registry key: which builder constructs the engine. Schedule, rule,
/// quantization and lane mode select behavior *within* a backend and travel
/// in the EngineSpec handed to the builder; the algorithm family is part of
/// the key because each family is a different decoder implementation.
struct EngineKey {
    Algorithm algorithm = Algorithm::MinSum;
    Arithmetic arith = Arithmetic::Fixed;
    DecoderBackend backend = DecoderBackend::Scalar;

    friend constexpr bool operator==(const EngineKey&, const EngineKey&) = default;
    /// Orders keys by (algorithm, arithmetic, backend) — the deterministic
    /// order registered_engines() reports.
    friend constexpr bool operator<(const EngineKey& a, const EngineKey& b) {
        if (a.algorithm != b.algorithm) return a.algorithm < b.algorithm;
        if (a.arith != b.arith) return a.arith < b.arith;
        return a.backend < b.backend;
    }
};

/// "algorithm=<a> arithmetic=<ar> backend=<b>" — the one rendering every
/// registry/spec diagnostic uses, so errors always name the full key.
std::string to_string(const EngineKey& key);

/// The registry key an EngineSpec selects.
inline EngineKey engine_key(const EngineSpec& spec) {
    return EngineKey{spec.config.algorithm, spec.arith, spec.config.backend};
}

/// Builds one engine for a validated spec; the code must outlive the engine.
using EngineBuilder =
    std::function<std::unique_ptr<Engine>(const code::Dvbs2Code& code, const EngineSpec& spec)>;

/// Registers (or replaces) the builder for `key`. The six in-tree engines
/// (min-sum: float-scalar, fixed-scalar, fixed-simd; WBF: float-scalar,
/// fixed-scalar; RHS-BP: float-scalar) are pre-registered; future backends
/// (GPU, distributed) add themselves here.
void register_engine(const EngineKey& key, EngineBuilder builder);

/// True iff a builder is registered for `key`.
bool engine_registered(const EngineKey& key);

/// All currently registered keys, sorted by (algorithm, arithmetic,
/// backend) — deterministic regardless of registration order.
std::vector<EngineKey> registered_engines();

/// The factory: validates `spec` (validate_engine_spec), looks up the
/// builder for engine_key(spec) and builds the engine. Throws
/// std::runtime_error on an invalid spec or an unregistered key; both
/// diagnostics name the algorithm along with the rest of the key.
std::unique_ptr<Engine> make_engine(const code::Dvbs2Code& code, const EngineSpec& spec);

}  // namespace dvbs2::core
