// Shared node-processing kernels.
//
// Both the algorithmic decoder (core/mp_decoder.hpp) and the cycle-driven
// architecture model (arch/rtl_model) compute check-node extrinsics through
// this one function, which is what guarantees their bit-exactness: same
// combine operator, same prefix/suffix order over the same input sequence.
#pragma once

namespace dvbs2::core {

/// Computes, for d inputs ins[0..d), outs[i] = combine of all inputs except
/// i, using two passes of the arithmetic's pairwise combine (serial
/// forward/backward recursion — the structure of a hardware functional
/// unit). Outputs are un-finalized; the caller applies Arith::finalize.
/// Requires 2 ≤ d and caller-provided buffers of at least d entries.
template <class Arith>
void compute_extrinsics(const Arith& arith, const typename Arith::Value* ins, int d,
                        typename Arith::Value* outs, typename Arith::Value* pre,
                        typename Arith::Value* suf) {
    pre[0] = ins[0];
    for (int i = 1; i < d; ++i) pre[i] = arith.combine(pre[i - 1], ins[i]);
    suf[d - 1] = ins[d - 1];
    for (int i = d - 2; i >= 0; --i) suf[i] = arith.combine(ins[i], suf[i + 1]);
    outs[0] = suf[1];
    outs[d - 1] = pre[d - 2];
    for (int i = 1; i < d - 1; ++i) outs[i] = arith.combine(pre[i - 1], suf[i + 1]);
}

}  // namespace dvbs2::core
