// Message-passing decoder engine, templated over the arithmetic back-end.
//
// Implements the four schedules of core/types.hpp on the IRA Tanner graph.
// The check-node input sequence convention is fixed and shared with the
// architecture model (arch/rtl_model): first the information-edge messages
// in slot order (optionally permuted by set_cn_order — the order in which
// the hardware schedule delivers them), then the left (forward zigzag)
// parity input, then the right (backward zigzag) parity input. Extrinsic
// outputs are computed with prefix/suffix combines over exactly this
// sequence, so a functional-unit model that consumes messages serially in
// the same order is bit-exact with this reference.
//
// Internal header: include via core/decoder.hpp unless you are the
// architecture model or a test that needs the template directly.
#pragma once

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "code/tanner.hpp"
#include "core/kernels.hpp"
#include "core/syndrome.hpp"
#include "core/types.hpp"
#include "util/error.hpp"

namespace dvbs2::core {

/// Maximum check-node total degree we support (DVB-S2 max is 30 for R=9/10).
inline constexpr int kMaxCheckDegree = 40;

template <class Arith>
class MpDecoder {
public:
    using Value = typename Arith::Value;
    using Wide = typename Arith::Wide;

    MpDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg, Arith arith)
        : code_(&code), cfg_(cfg), arith_(std::move(arith)) {
        const auto& cp = code.params();
        DVBS2_REQUIRE(cp.check_deg <= kMaxCheckDegree, "check degree exceeds kMaxCheckDegree");
        DVBS2_REQUIRE(cfg.max_iterations >= 0, "max_iterations must be non-negative");
        const auto e = static_cast<std::size_t>(cp.e_in());
        c2v_.resize(e);
        v2c_.resize(e);
        const auto m = static_cast<std::size_t>(cp.m());
        down_.resize(m);
        up_.resize(m);  // up_[M-1] unused (p_{M-1} has degree 1), kept zero
        ch_in_.resize(static_cast<std::size_t>(cp.k));
        ch_p_.resize(m);
        post_in_.resize(static_cast<std::size_t>(cp.k));
        post_p_.resize(m);
        if (cfg.schedule == Schedule::TwoPhase) {
            pn_a_.resize(m);
            pn_c_.resize(m);
        }
        if (cfg.schedule == Schedule::ZigzagMap) fwd_d_.resize(m);
        if (cfg.schedule == Schedule::ZigzagSegmented) {
            DVBS2_REQUIRE(cp.q >= 1, "segmented schedule needs q >= 1");
            boundary_snapshot_.resize(static_cast<std::size_t>(cp.parallelism));
        }
    }

    /// Sets the per-check-node processing order of the information edges:
    /// `order` has E_IN entries; for CN c, positions [c·kc, (c+1)·kc) hold a
    /// permutation of {0..kc−1} giving the slot processed at each position.
    /// An empty vector restores the canonical (slot) order.
    void set_cn_order(std::vector<int> order) {
        if (!order.empty())
            DVBS2_REQUIRE(order.size() == c2v_.size(), "cn order must cover all E_IN slots");
        cn_order_ = std::move(order);
    }

    /// Installs a per-iteration observer (empty function disables tracing).
    /// Convergence checks go through the shared core/syndrome.hpp routine:
    /// without an observer it runs the allocation-free early-exit walk, and
    /// only when early stopping or the final iteration needs a verdict; with
    /// an observer it hardens every iteration and switches the routine to
    /// counting mode (full O(E) syndrome weight, allocates the syndrome
    /// vector) because traces report the exact unsatisfied-check count.
    void set_observer(std::function<void(const IterationTrace&)> observer) {
        observer_ = std::move(observer);
    }

    /// Decodes from already-converted channel values (size N, decoder domain).
    DecodeResult decode_values(const std::vector<Value>& ch) {
        DecodeResult result;
        decode_into(ch, result);
        return result;
    }

    /// Non-allocating variant: decodes into caller-owned result storage.
    /// Once `out`'s BitVecs have been sized by a first call, steady-state
    /// calls perform no heap allocation (unless an observer is installed —
    /// tracing materializes a syndrome vector per iteration).
    void decode_into(std::span<const Value> ch, DecodeResult& out) {
        begin(ch);
        int it = 0;
        bool converged = false;
        for (; it < cfg_.max_iterations && !converged; ) {
            step();
            ++it;
            const bool need_harden =
                cfg_.early_stop || it == cfg_.max_iterations || static_cast<bool>(observer_);
            if (need_harden) {
                harden(out.codeword);
                const SyndromeOutcome syn =
                    check_syndrome(*code_, out.codeword, static_cast<bool>(observer_));
                if (observer_) {
                    IterationTrace trace;
                    trace.iteration = it;
                    trace.unsatisfied_checks = syn.unsatisfied;
                    trace.mean_abs_posterior = mean_abs_posterior();
                    observer_(trace);
                }
                converged = cfg_.early_stop && syn.satisfied;
            }
        }
        if (cfg_.max_iterations == 0) harden(out.codeword);
        if (!cfg_.early_stop && cfg_.max_iterations > 0)
            converged = check_syndrome(*code_, out.codeword).satisfied;
        out.iterations = it;
        out.converged = converged;
        copy_info_bits(out);
    }

    // --- stepping API (used by the frame-per-lane batch engine, which needs
    // --- to interleave iterations with its own per-lane harden/early-stop) ---

    /// Loads the channel and resets all message state; pairs with step().
    void begin(std::span<const Value> ch) {
        const auto& cp = code_->params();
        DVBS2_REQUIRE(ch.size() == static_cast<std::size_t>(cp.n), "channel length mismatch");
        load_channel(ch);
        reset_state();
        if (cfg_.schedule == Schedule::Layered) init_layered_totals();
    }

    /// Runs one full iteration (variable phase + check phase); posteriors
    /// are valid afterwards via posterior_in()/posterior_p().
    void step() {
        if (cfg_.schedule != Schedule::Layered) variable_phase();
        check_phase();
    }

    /// Posterior totals after step(): information nodes, then parity nodes.
    const std::vector<Wide>& posterior_in() const noexcept { return post_in_; }
    const std::vector<Wide>& posterior_p() const noexcept { return post_p_; }

    /// Mutable access to the arithmetic back-end, so a test can attach a
    /// core::RangeProbe to the fixed arithmetic and read the real decode's
    /// pre-saturation peaks (the range-certification witness tier).
    Arith& arith() noexcept { return arith_; }
    /// Loaded channel values (begin() must have run): information / parity.
    const std::vector<Value>& channel_in() const noexcept { return ch_in_; }
    const std::vector<Value>& channel_p() const noexcept { return ch_p_; }

    /// Read-only access to the message state (used by the bit-exactness
    /// experiments to compare against the architecture model).
    const std::vector<Value>& c2v_messages() const noexcept { return c2v_; }
    const std::vector<Value>& v2c_messages() const noexcept { return v2c_; }
    const std::vector<Value>& backward_messages() const noexcept { return up_; }

    /// Runs exactly `iters` iterations without early stopping and without
    /// hardening (for message-level comparisons).
    void run_iterations(std::span<const Value> ch, int iters) {
        begin(ch);
        for (int it = 0; it < iters; ++it) step();
    }

    // --- lane-compaction support (frame-per-lane batch engine only) ---

    /// Mutable views over the cross-iteration state. The frame-per-lane
    /// batch engine uses this to retire one SIMD lane in place and splice a
    /// fresh frame into it between step() calls (lane compaction): zeroing
    /// lane l of c2v/v2c/down/up and rewriting lane l of ch_in/ch_p
    /// re-creates exactly the per-lane state begin() builds for a fresh
    /// frame. The per-schedule scratch arrays (pn_a_/pn_c_, fwd_d_, the
    /// segment-boundary snapshots) are recomputed from this state each
    /// iteration before being read, so they need no reset; the Layered
    /// schedule's running posterior totals DO carry cross-iteration state
    /// and are exposed for re-initialization from the new channel.
    struct StateView {
        std::span<Value> c2v, v2c, down, up;
        std::span<Value> ch_in, ch_p;
        std::span<Wide> post_in, post_p;  ///< Layered running totals
    };
    StateView state_view() {
        return {c2v_, v2c_, down_, up_, ch_in_, ch_p_, post_in_, post_p_};
    }

private:
    void load_channel(std::span<const Value> ch) {
        const auto& cp = code_->params();
        for (int v = 0; v < cp.k; ++v) ch_in_[static_cast<std::size_t>(v)] = ch[static_cast<std::size_t>(v)];
        for (int j = 0; j < cp.m(); ++j)
            ch_p_[static_cast<std::size_t>(j)] = ch[static_cast<std::size_t>(cp.k + j)];
    }

    void reset_state() {
        const Value z = arith_.zero();
        std::fill(c2v_.begin(), c2v_.end(), z);
        std::fill(v2c_.begin(), v2c_.end(), z);
        std::fill(down_.begin(), down_.end(), z);
        std::fill(up_.begin(), up_.end(), z);
    }

    /// Information-node update (Eq. 4): extrinsic sum with wide accumulation
    /// and a single saturation per produced message — exactly the serial
    /// functional-unit datapath.
    void variable_phase() {
        const auto& cp = code_->params();
        for (int v = 0; v < cp.k; ++v) {
            const int deg = code_->info_degree(v);
            const long long* edges = code_->info_edges(v);
            Wide total = arith_.to_wide(ch_in_[static_cast<std::size_t>(v)]);
            for (int d = 0; d < deg; ++d)
                total += arith_.to_wide(c2v_[static_cast<std::size_t>(edges[d])]);
            for (int d = 0; d < deg; ++d) {
                const auto e = static_cast<std::size_t>(edges[d]);
                v2c_[e] = arith_.narrow(total - arith_.to_wide(c2v_[e]));
            }
        }
        if (cfg_.schedule == Schedule::TwoPhase) {
            // Parity nodes are updated like any degree-2 variable node.
            const int m = cp.m();
            for (int j = 0; j < m; ++j) {
                const Wide chp = arith_.to_wide(ch_p_[static_cast<std::size_t>(j)]);
                const Wide up = j < m - 1 ? arith_.to_wide(up_[static_cast<std::size_t>(j)])
                                          : Wide(arith_.zero());
                pn_a_[static_cast<std::size_t>(j)] = arith_.narrow(chp + up);
                if (j < m - 1)
                    pn_c_[static_cast<std::size_t>(j)] =
                        arith_.narrow(chp + arith_.to_wide(down_[static_cast<std::size_t>(j)]));
            }
        }
    }

    void check_phase() {
        if (cfg_.schedule == Schedule::Layered) {
            check_phase_layered();
            return;
        }
        begin_posterior();
        switch (cfg_.schedule) {
            case Schedule::TwoPhase: check_phase_two_phase(); break;
            case Schedule::ZigzagForward: check_phase_zigzag(/*segmented=*/false); break;
            case Schedule::ZigzagSegmented: check_phase_zigzag(/*segmented=*/true); break;
            case Schedule::ZigzagMap: check_phase_map(); break;
            case Schedule::Layered: break;  // handled above
        }
    }

    /// Prefix/suffix extrinsic computation over the canonical input sequence
    /// (delegates to the kernel shared with the architecture model).
    void extrinsics(const Value* ins, int d, Value* outs) const {
        DVBS2_ASSERT(d >= 2 && d <= kMaxCheckDegree);
        Value pre[kMaxCheckDegree];
        Value suf[kMaxCheckDegree];
        compute_extrinsics(arith_, ins, d, outs, pre, suf);
    }

    /// Gathers CN c's information-edge inputs (respecting cn_order_) into
    /// ins[0..kc); returns the slot index processed at each position.
    int gather_in_edges(int c, Value* ins, int* slots) const {
        const int kc = code_->check_in_degree();
        const long long base = static_cast<long long>(c) * kc;
        for (int t = 0; t < kc; ++t) {
            const int slot =
                cn_order_.empty() ? t : cn_order_[static_cast<std::size_t>(base + t)];
            slots[t] = slot;
            ins[t] = v2c_[static_cast<std::size_t>(base + slot)];
        }
        return kc;
    }

    void scatter_outputs(int c, const Value* outs, const int* slots, int kc) {
        const long long base = static_cast<long long>(c) * kc;
        for (int t = 0; t < kc; ++t) {
            const auto e = static_cast<std::size_t>(base + slots[t]);
            const Value msg = arith_.finalize(outs[t]);
            c2v_[e] = msg;
            post_in_[static_cast<std::size_t>(code_->edge_variable(static_cast<long long>(e)))] +=
                arith_.to_wide(msg);
        }
    }

    void check_phase_two_phase() {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int kc = code_->check_in_degree();
        Value ins[kMaxCheckDegree];
        Value outs[kMaxCheckDegree];
        int slots[kMaxCheckDegree];
        for (int j = 0; j < m; ++j) {
            int d = gather_in_edges(j, ins, slots);
            const int left_pos = j > 0 ? d : -1;
            if (j > 0) ins[d++] = pn_c_[static_cast<std::size_t>(j - 1)];
            const int right_pos = d;
            ins[d++] = pn_a_[static_cast<std::size_t>(j)];
            extrinsics(ins, d, outs);
            scatter_outputs(j, outs, slots, kc);
            down_[static_cast<std::size_t>(j)] = arith_.finalize(outs[right_pos]);
            if (j > 0) up_[static_cast<std::size_t>(j - 1)] = arith_.finalize(outs[left_pos]);
        }
        finish_parity_posterior();
    }

    void check_phase_zigzag(bool segmented) {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int q = cp.q;
        const int kc = code_->check_in_degree();
        Value ins[kMaxCheckDegree];
        Value outs[kMaxCheckDegree];
        int slots[kMaxCheckDegree];

        // Segment boundaries: in the hardware, FU f starts its local chain at
        // CN f·q using last iteration's forward value; snapshot them before
        // the sweep overwrites down_.
        if (segmented) {
            for (int f = 1; f < cp.parallelism; ++f)
                boundary_snapshot_[static_cast<std::size_t>(f)] =
                    down_[static_cast<std::size_t>(f * q - 1)];
        }

        for (int j = 0; j < m; ++j) {
            int d = gather_in_edges(j, ins, slots);
            int left_pos = -1;
            if (j > 0) {
                const bool at_boundary = segmented && (j % q == 0);
                const Value d_prev = at_boundary
                                         ? boundary_snapshot_[static_cast<std::size_t>(j / q)]
                                         : down_[static_cast<std::size_t>(j - 1)];
                left_pos = d;
                ins[d++] = arith_.narrow(arith_.to_wide(ch_p_[static_cast<std::size_t>(j - 1)]) +
                                         arith_.to_wide(d_prev));
            }
            const int right_pos = d;
            const Wide chp = arith_.to_wide(ch_p_[static_cast<std::size_t>(j)]);
            ins[d++] = j < m - 1
                           ? arith_.narrow(chp + arith_.to_wide(up_[static_cast<std::size_t>(j)]))
                           : arith_.narrow(chp);
            extrinsics(ins, d, outs);
            scatter_outputs(j, outs, slots, kc);
            down_[static_cast<std::size_t>(j)] = arith_.finalize(outs[right_pos]);
            if (j > 0) up_[static_cast<std::size_t>(j - 1)] = arith_.finalize(outs[left_pos]);
        }
        finish_parity_posterior();
    }

    void check_phase_map() {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int kc = code_->check_in_degree();
        Value ins[kMaxCheckDegree];
        Value outs[kMaxCheckDegree];
        int slots[kMaxCheckDegree];

        // Forward sweep: fresh d_j along the chain (right input from the
        // previous iteration's backward messages).
        for (int j = 0; j < m; ++j) {
            int d = gather_in_edges(j, ins, slots);
            if (j > 0)
                ins[d++] = arith_.narrow(arith_.to_wide(ch_p_[static_cast<std::size_t>(j - 1)]) +
                                         arith_.to_wide(fwd_d_[static_cast<std::size_t>(j - 1)]));
            const int right_pos = d;
            const Wide chp = arith_.to_wide(ch_p_[static_cast<std::size_t>(j)]);
            ins[d++] = j < m - 1
                           ? arith_.narrow(chp + arith_.to_wide(up_[static_cast<std::size_t>(j)]))
                           : arith_.narrow(chp);
            extrinsics(ins, d, outs);
            fwd_d_[static_cast<std::size_t>(j)] = arith_.finalize(outs[right_pos]);
        }
        // Backward sweep: fresh u_j, fresh outputs to the information nodes.
        for (int j = m - 1; j >= 0; --j) {
            int d = gather_in_edges(j, ins, slots);
            int left_pos = -1;
            if (j > 0) {
                left_pos = d;
                ins[d++] = arith_.narrow(arith_.to_wide(ch_p_[static_cast<std::size_t>(j - 1)]) +
                                         arith_.to_wide(fwd_d_[static_cast<std::size_t>(j - 1)]));
            }
            const Wide chp = arith_.to_wide(ch_p_[static_cast<std::size_t>(j)]);
            ins[d++] = j < m - 1
                           ? arith_.narrow(chp + arith_.to_wide(up_[static_cast<std::size_t>(j)]))
                           : arith_.narrow(chp);
            extrinsics(ins, d, outs);
            scatter_outputs(j, outs, slots, kc);
            if (j > 0) up_[static_cast<std::size_t>(j - 1)] = arith_.finalize(outs[left_pos]);
        }
        for (int j = 0; j < m; ++j) down_[static_cast<std::size_t>(j)] = fwd_d_[static_cast<std::size_t>(j)];
        finish_parity_posterior();
    }

    /// Mean |posterior| over all N variable nodes, in decoder units
    /// (raw integer steps for the fixed back-end).
    double mean_abs_posterior() const {
        double sum = 0.0;
        for (const Wide& w : post_in_) sum += std::fabs(static_cast<double>(w));
        for (const Wide& w : post_p_) sum += std::fabs(static_cast<double>(w));
        return sum / static_cast<double>(post_in_.size() + post_p_.size());
    }

    /// Layered decoding: the posterior arrays double as running totals.
    void init_layered_totals() {
        const auto& cp = code_->params();
        for (int v = 0; v < cp.k; ++v)
            post_in_[static_cast<std::size_t>(v)] =
                arith_.to_wide(ch_in_[static_cast<std::size_t>(v)]);
        for (int j = 0; j < cp.m(); ++j)
            post_p_[static_cast<std::size_t>(j)] =
                arith_.to_wide(ch_p_[static_cast<std::size_t>(j)]);
    }

    /// Row-layered sweep: each check node reads fresh variable-to-check
    /// messages as (running total − its own previous contribution), then
    /// folds the new extrinsics back into the totals immediately.
    void check_phase_layered() {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int kc = code_->check_in_degree();
        Value ins[kMaxCheckDegree];
        Value outs[kMaxCheckDegree];
        int slots[kMaxCheckDegree];
        for (int j = 0; j < m; ++j) {
            const long long base = static_cast<long long>(j) * kc;
            int d = 0;
            for (int t = 0; t < kc; ++t) {
                const int slot =
                    cn_order_.empty() ? t : cn_order_[static_cast<std::size_t>(base + t)];
                slots[t] = slot;
                const auto e = static_cast<std::size_t>(base + slot);
                const int v = code_->edge_variable(static_cast<long long>(e));
                ins[d++] = arith_.narrow(post_in_[static_cast<std::size_t>(v)] -
                                         arith_.to_wide(c2v_[e]));
            }
            int left_pos = -1;
            if (j > 0) {
                left_pos = d;
                ins[d++] = arith_.narrow(post_p_[static_cast<std::size_t>(j - 1)] -
                                         arith_.to_wide(up_[static_cast<std::size_t>(j - 1)]));
            }
            const int right_pos = d;
            ins[d++] = arith_.narrow(post_p_[static_cast<std::size_t>(j)] -
                                     arith_.to_wide(down_[static_cast<std::size_t>(j)]));
            extrinsics(ins, d, outs);
            for (int t = 0; t < kc; ++t) {
                const auto e = static_cast<std::size_t>(base + slots[t]);
                const int v = code_->edge_variable(static_cast<long long>(e));
                const Value fresh = arith_.finalize(outs[t]);
                post_in_[static_cast<std::size_t>(v)] +=
                    arith_.to_wide(fresh) - arith_.to_wide(c2v_[e]);
                c2v_[e] = fresh;
            }
            if (j > 0) {
                const Value fresh = arith_.finalize(outs[left_pos]);
                post_p_[static_cast<std::size_t>(j - 1)] +=
                    arith_.to_wide(fresh) - arith_.to_wide(up_[static_cast<std::size_t>(j - 1)]);
                up_[static_cast<std::size_t>(j - 1)] = fresh;
            }
            const Value fresh_d = arith_.finalize(outs[right_pos]);
            post_p_[static_cast<std::size_t>(j)] +=
                arith_.to_wide(fresh_d) - arith_.to_wide(down_[static_cast<std::size_t>(j)]);
            down_[static_cast<std::size_t>(j)] = fresh_d;
        }
    }

    void begin_posterior() {
        const auto& cp = code_->params();
        for (int v = 0; v < cp.k; ++v)
            post_in_[static_cast<std::size_t>(v)] =
                arith_.to_wide(ch_in_[static_cast<std::size_t>(v)]);
    }

    void finish_parity_posterior() {
        const auto& cp = code_->params();
        const int m = cp.m();
        for (int j = 0; j < m; ++j) {
            Wide t = arith_.to_wide(ch_p_[static_cast<std::size_t>(j)]) +
                     arith_.to_wide(down_[static_cast<std::size_t>(j)]);
            if (j < m - 1) t += arith_.to_wide(up_[static_cast<std::size_t>(j)]);
            post_p_[static_cast<std::size_t>(j)] = t;
        }
    }

    void harden(util::BitVec& codeword) const {
        const auto& cp = code_->params();
        if (codeword.size() != static_cast<std::size_t>(cp.n))
            codeword = util::BitVec(static_cast<std::size_t>(cp.n));
        else
            codeword.clear();
        if (cfg_.max_iterations == 0) {
            // No iterations ran: decide straight from the channel.
            for (int v = 0; v < cp.k; ++v)
                if (arith_.is_negative(arith_.to_wide(ch_in_[static_cast<std::size_t>(v)])))
                    codeword.set(static_cast<std::size_t>(v), true);
            for (int j = 0; j < cp.m(); ++j)
                if (arith_.is_negative(arith_.to_wide(ch_p_[static_cast<std::size_t>(j)])))
                    codeword.set(static_cast<std::size_t>(cp.k + j), true);
            return;
        }
        for (int v = 0; v < cp.k; ++v)
            if (arith_.is_negative(post_in_[static_cast<std::size_t>(v)]))
                codeword.set(static_cast<std::size_t>(v), true);
        for (int j = 0; j < cp.m(); ++j)
            if (arith_.is_negative(post_p_[static_cast<std::size_t>(j)]))
                codeword.set(static_cast<std::size_t>(cp.k + j), true);
    }

    /// Copies the K information bits out of the hardened codeword, reusing
    /// `out.info_bits` storage when already correctly sized.
    void copy_info_bits(DecodeResult& out) const {
        const auto k = static_cast<std::size_t>(code_->params().k);
        if (out.info_bits.size() != k)
            out.info_bits = util::BitVec(k);
        else
            out.info_bits.clear();
        for (std::size_t v = 0; v < k; ++v)
            if (out.codeword.get(v)) out.info_bits.set(v, true);
    }

    const code::Dvbs2Code* code_;
    DecoderConfig cfg_;
    Arith arith_;

    std::vector<Value> c2v_, v2c_;          // information-edge messages
    std::vector<Value> down_, up_;          // zigzag messages (CN_j→p_j, CN_{j+1}→p_j)
    std::vector<Value> pn_a_, pn_c_;        // two-phase parity v2c messages
    std::vector<Value> fwd_d_;              // MAP forward storage
    std::vector<Value> boundary_snapshot_;  // segmented-schedule FU boundaries
    std::vector<Value> ch_in_, ch_p_;
    std::vector<Wide> post_in_, post_p_;
    std::vector<int> cn_order_;
    std::function<void(const IterationTrace&)> observer_;
};

}  // namespace dvbs2::core
