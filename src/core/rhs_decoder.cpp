#include "core/rhs_decoder.hpp"

#include <algorithm>
#include <cmath>

#include "core/syndrome.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace dvbs2::core {

namespace {

/// Stack bound of the layered sweep's per-CN sign buffer (DVB-S2 max check
/// degree is 30; mirrors core::kMaxCheckDegree without pulling in the MP
/// template header).
constexpr int kMaxDegree = 40;

}  // namespace

RhsBpDecoder::RhsBpDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg)
    : code_(&code), cfg_(cfg), beta_(cfg.rhs_beta), seed_(cfg.rhs_seed) {
    const auto& cp = code.params();
    DVBS2_REQUIRE(cp.check_deg <= kMaxDegree, "check degree exceeds kMaxDegree");
    DVBS2_REQUIRE(cfg.max_iterations >= 0, "max_iterations must be non-negative");
    DVBS2_REQUIRE(beta_ > 0.0 && beta_ <= 1.0,
                  "rhs_beta must be in (0, 1], got " + std::to_string(beta_));
    const auto e = static_cast<std::size_t>(cp.e_in());
    trk_.resize(e);
    v2c_sign_.resize(e);
    const auto m = static_cast<std::size_t>(cp.m());
    down_trk_.resize(m);
    up_trk_.resize(m);  // up_trk_[M-1] unused (p_{M-1} has degree 1), kept zero
    ch_in_.resize(static_cast<std::size_t>(cp.k));
    ch_p_.resize(m);
    post_in_.resize(static_cast<std::size_t>(cp.k));
    post_p_.resize(m);
    if (cfg.schedule == Schedule::TwoPhase) {
        pn_a_.resize(m);
        pn_c_.resize(m);
    }
    if (cfg.schedule == Schedule::ZigzagSegmented) {
        DVBS2_REQUIRE(cp.q >= 1, "segmented schedule needs q >= 1");
        boundary_snapshot_.resize(static_cast<std::size_t>(cp.parallelism));
    }
}

double RhsBpDecoder::tracker_llr(double t) {
    // |t| is kept strictly inside (−1, 1) by the relaxation (β ≤ 1 moves t
    // toward ±1 without reaching it from t = 0), but clamp the LLR anyway
    // so a β = 1 tracker cannot produce ±inf.
    const double llr = 2.0 * std::atanh(std::clamp(t, -0.999999, 0.999999));
    return std::clamp(llr, -kRhsCmax, kRhsCmax);
}

double RhsBpDecoder::binarize(double llr) {
    const std::uint64_t bits = util::derive_stream(seed_, counter_++);
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    const double p1 = 1.0 / (1.0 + std::exp(llr));  // P(bit = 1) under λ
    return u < p1 ? -1.0 : 1.0;
}

void RhsBpDecoder::load_channel(std::span<const double> ch) {
    const auto& cp = code_->params();
    for (int v = 0; v < cp.k; ++v) ch_in_[static_cast<std::size_t>(v)] = ch[static_cast<std::size_t>(v)];
    for (int j = 0; j < cp.m(); ++j)
        ch_p_[static_cast<std::size_t>(j)] = ch[static_cast<std::size_t>(cp.k + j)];
}

void RhsBpDecoder::reset_state() {
    std::fill(trk_.begin(), trk_.end(), 0.0);
    std::fill(v2c_sign_.begin(), v2c_sign_.end(), 0.0);
    std::fill(down_trk_.begin(), down_trk_.end(), 0.0);
    std::fill(up_trk_.begin(), up_trk_.end(), 0.0);
    counter_ = 0;
}

void RhsBpDecoder::init_layered_totals() {
    const auto& cp = code_->params();
    for (int v = 0; v < cp.k; ++v)
        post_in_[static_cast<std::size_t>(v)] = ch_in_[static_cast<std::size_t>(v)];
    for (int j = 0; j < cp.m(); ++j)
        post_p_[static_cast<std::size_t>(j)] = ch_p_[static_cast<std::size_t>(j)];
}

void RhsBpDecoder::decode_into(std::span<const double> ch, DecodeResult& out) {
    const auto& cp = code_->params();
    DVBS2_REQUIRE(ch.size() == static_cast<std::size_t>(cp.n), "channel length mismatch");
    load_channel(ch);
    reset_state();
    if (cfg_.schedule == Schedule::Layered) init_layered_totals();

    int it = 0;
    bool converged = false;
    for (; it < cfg_.max_iterations && !converged;) {
        step();
        ++it;
        const bool need_harden =
            cfg_.early_stop || it == cfg_.max_iterations || static_cast<bool>(observer_);
        if (need_harden) {
            if (cfg_.schedule != Schedule::Layered) refresh_posterior();
            harden(out.codeword);
            const SyndromeOutcome syn =
                check_syndrome(*code_, out.codeword, static_cast<bool>(observer_));
            if (observer_) {
                IterationTrace trace;
                trace.iteration = it;
                trace.unsatisfied_checks = syn.unsatisfied;
                trace.mean_abs_posterior = mean_abs_posterior();
                observer_(trace);
            }
            converged = cfg_.early_stop && syn.satisfied;
        }
    }
    if (cfg_.max_iterations == 0) {
        refresh_posterior();  // trackers are zero: posterior = channel
        harden(out.codeword);
    }
    if (!cfg_.early_stop && cfg_.max_iterations > 0)
        converged = check_syndrome(*code_, out.codeword).satisfied;
    out.iterations = it;
    out.converged = converged;
    copy_info_bits(out);
}

void RhsBpDecoder::step() {
    if (cfg_.schedule != Schedule::Layered) variable_phase();
    switch (cfg_.schedule) {
        case Schedule::TwoPhase: check_phase_two_phase(); break;
        case Schedule::ZigzagForward: check_phase_zigzag(/*segmented=*/false); break;
        case Schedule::ZigzagSegmented: check_phase_zigzag(/*segmented=*/true); break;
        case Schedule::ZigzagMap: check_phase_map(); break;
        case Schedule::Layered: check_phase_layered(); break;
    }
}

/// Variable phase (the stochastic half): extrinsic LLR from the channel
/// plus the tracker-derived c2v estimates, binarized per edge.
void RhsBpDecoder::variable_phase() {
    const auto& cp = code_->params();
    for (int v = 0; v < cp.k; ++v) {
        const int deg = code_->info_degree(v);
        const long long* edges = code_->info_edges(v);
        double total = ch_in_[static_cast<std::size_t>(v)];
        for (int d = 0; d < deg; ++d)
            total += tracker_llr(trk_[static_cast<std::size_t>(edges[d])]);
        for (int d = 0; d < deg; ++d) {
            const auto e = static_cast<std::size_t>(edges[d]);
            v2c_sign_[e] = binarize(total - tracker_llr(trk_[e]));
        }
    }
    if (cfg_.schedule == Schedule::TwoPhase) {
        // Parity nodes binarize like any degree-2 variable node.
        const int m = cp.m();
        for (int j = 0; j < m; ++j) {
            const double chp = ch_p_[static_cast<std::size_t>(j)];
            const double up = j < m - 1 ? tracker_llr(up_trk_[static_cast<std::size_t>(j)]) : 0.0;
            pn_a_[static_cast<std::size_t>(j)] = binarize(chp + up);
            if (j < m - 1)
                pn_c_[static_cast<std::size_t>(j)] =
                    binarize(chp + tracker_llr(down_trk_[static_cast<std::size_t>(j)]));
        }
    }
}

void RhsBpDecoder::check_phase_two_phase() {
    const auto& cp = code_->params();
    const int m = cp.m();
    const int kc = code_->check_in_degree();
    for (int j = 0; j < m; ++j) {
        const long long base = static_cast<long long>(j) * kc;
        // Sign product over all inputs; per-input extrinsic = product / input.
        double prod = pn_a_[static_cast<std::size_t>(j)];
        if (j > 0) prod *= pn_c_[static_cast<std::size_t>(j - 1)];
        for (int t = 0; t < kc; ++t) prod *= v2c_sign_[static_cast<std::size_t>(base + t)];
        for (int t = 0; t < kc; ++t) {
            const auto e = static_cast<std::size_t>(base + t);
            trk_[e] = relax(trk_[e], prod * v2c_sign_[e]);
        }
        down_trk_[static_cast<std::size_t>(j)] = relax(
            down_trk_[static_cast<std::size_t>(j)], prod * pn_a_[static_cast<std::size_t>(j)]);
        if (j > 0)
            up_trk_[static_cast<std::size_t>(j - 1)] =
                relax(up_trk_[static_cast<std::size_t>(j - 1)],
                      prod * pn_c_[static_cast<std::size_t>(j - 1)]);
    }
}

void RhsBpDecoder::check_phase_zigzag(bool segmented) {
    const auto& cp = code_->params();
    const int m = cp.m();
    const int q = cp.q;
    const int kc = code_->check_in_degree();

    // Segment boundaries: FU f starts its local chain at CN f·q from last
    // iteration's tracker value; snapshot before the sweep overwrites them.
    if (segmented)
        for (int f = 1; f < cp.parallelism; ++f)
            boundary_snapshot_[static_cast<std::size_t>(f)] =
                down_trk_[static_cast<std::size_t>(f * q - 1)];

    for (int j = 0; j < m; ++j) {
        const long long base = static_cast<long long>(j) * kc;
        double left = 0.0;
        if (j > 0) {
            const bool at_boundary = segmented && (j % q == 0);
            const double d_prev = at_boundary
                                      ? boundary_snapshot_[static_cast<std::size_t>(j / q)]
                                      : down_trk_[static_cast<std::size_t>(j - 1)];
            left = binarize(ch_p_[static_cast<std::size_t>(j - 1)] + tracker_llr(d_prev));
        }
        const double chp = ch_p_[static_cast<std::size_t>(j)];
        const double right = binarize(
            j < m - 1 ? chp + tracker_llr(up_trk_[static_cast<std::size_t>(j)]) : chp);

        double prod = right;
        if (j > 0) prod *= left;
        for (int t = 0; t < kc; ++t) prod *= v2c_sign_[static_cast<std::size_t>(base + t)];
        for (int t = 0; t < kc; ++t) {
            const auto e = static_cast<std::size_t>(base + t);
            trk_[e] = relax(trk_[e], prod * v2c_sign_[e]);
        }
        down_trk_[static_cast<std::size_t>(j)] =
            relax(down_trk_[static_cast<std::size_t>(j)], prod * right);
        if (j > 0)
            up_trk_[static_cast<std::size_t>(j - 1)] =
                relax(up_trk_[static_cast<std::size_t>(j - 1)], prod * left);
    }
}

void RhsBpDecoder::check_phase_map() {
    const auto& cp = code_->params();
    const int m = cp.m();
    const int kc = code_->check_in_degree();

    // Forward sweep: refresh the forward-chain trackers sequentially (the
    // MAP variant's d_j recursion), reading last iteration's backward
    // trackers on the right.
    for (int j = 0; j < m; ++j) {
        const long long base = static_cast<long long>(j) * kc;
        double left = 0.0;
        if (j > 0)
            left = binarize(ch_p_[static_cast<std::size_t>(j - 1)] +
                            tracker_llr(down_trk_[static_cast<std::size_t>(j - 1)]));
        const double chp = ch_p_[static_cast<std::size_t>(j)];
        const double right = binarize(
            j < m - 1 ? chp + tracker_llr(up_trk_[static_cast<std::size_t>(j)]) : chp);
        double prod = right;
        if (j > 0) prod *= left;
        for (int t = 0; t < kc; ++t) prod *= v2c_sign_[static_cast<std::size_t>(base + t)];
        down_trk_[static_cast<std::size_t>(j)] =
            relax(down_trk_[static_cast<std::size_t>(j)], prod * right);
    }
    // Backward sweep: fresh backward trackers and info-edge outputs, reading
    // the fresh forward trackers.
    for (int j = m - 1; j >= 0; --j) {
        const long long base = static_cast<long long>(j) * kc;
        double left = 0.0;
        if (j > 0)
            left = binarize(ch_p_[static_cast<std::size_t>(j - 1)] +
                            tracker_llr(down_trk_[static_cast<std::size_t>(j - 1)]));
        const double chp = ch_p_[static_cast<std::size_t>(j)];
        const double right = binarize(
            j < m - 1 ? chp + tracker_llr(up_trk_[static_cast<std::size_t>(j)]) : chp);
        double prod = right;
        if (j > 0) prod *= left;
        for (int t = 0; t < kc; ++t) prod *= v2c_sign_[static_cast<std::size_t>(base + t)];
        for (int t = 0; t < kc; ++t) {
            const auto e = static_cast<std::size_t>(base + t);
            trk_[e] = relax(trk_[e], prod * v2c_sign_[e]);
        }
        if (j > 0)
            up_trk_[static_cast<std::size_t>(j - 1)] =
                relax(up_trk_[static_cast<std::size_t>(j - 1)], prod * left);
    }
}

/// Row-layered sweep over running LLR totals: every CN binarizes the
/// freshest extrinsic beliefs, and tracker updates fold back immediately.
void RhsBpDecoder::check_phase_layered() {
    const auto& cp = code_->params();
    const int m = cp.m();
    const int kc = code_->check_in_degree();
    double signs[kMaxDegree];
    for (int j = 0; j < m; ++j) {
        const long long base = static_cast<long long>(j) * kc;
        double prod = 1.0;
        for (int t = 0; t < kc; ++t) {
            const auto e = static_cast<std::size_t>(base + t);
            const int v = code_->edge_variable(static_cast<long long>(e));
            const double s = binarize(post_in_[static_cast<std::size_t>(v)] - tracker_llr(trk_[e]));
            signs[t] = s;
            prod *= s;
        }
        double left = 0.0;
        if (j > 0) {
            left = binarize(post_p_[static_cast<std::size_t>(j - 1)] -
                            tracker_llr(up_trk_[static_cast<std::size_t>(j - 1)]));
            prod *= left;
        }
        const double right = binarize(post_p_[static_cast<std::size_t>(j)] -
                                      tracker_llr(down_trk_[static_cast<std::size_t>(j)]));
        prod *= right;

        for (int t = 0; t < kc; ++t) {
            const auto e = static_cast<std::size_t>(base + t);
            const int v = code_->edge_variable(static_cast<long long>(e));
            const double old_msg = tracker_llr(trk_[e]);
            trk_[e] = relax(trk_[e], prod * signs[t]);
            post_in_[static_cast<std::size_t>(v)] += tracker_llr(trk_[e]) - old_msg;
        }
        if (j > 0) {
            const auto u = static_cast<std::size_t>(j - 1);
            const double old_msg = tracker_llr(up_trk_[u]);
            up_trk_[u] = relax(up_trk_[u], prod * left);
            post_p_[u] += tracker_llr(up_trk_[u]) - old_msg;
        }
        const auto d = static_cast<std::size_t>(j);
        const double old_msg = tracker_llr(down_trk_[d]);
        down_trk_[d] = relax(down_trk_[d], prod * right);
        post_p_[d] += tracker_llr(down_trk_[d]) - old_msg;
    }
}

void RhsBpDecoder::refresh_posterior() {
    const auto& cp = code_->params();
    for (int v = 0; v < cp.k; ++v) {
        const int deg = code_->info_degree(v);
        const long long* edges = code_->info_edges(v);
        double total = ch_in_[static_cast<std::size_t>(v)];
        for (int d = 0; d < deg; ++d)
            total += tracker_llr(trk_[static_cast<std::size_t>(edges[d])]);
        post_in_[static_cast<std::size_t>(v)] = total;
    }
    const int m = cp.m();
    for (int j = 0; j < m; ++j) {
        double t = ch_p_[static_cast<std::size_t>(j)] +
                   tracker_llr(down_trk_[static_cast<std::size_t>(j)]);
        if (j < m - 1) t += tracker_llr(up_trk_[static_cast<std::size_t>(j)]);
        post_p_[static_cast<std::size_t>(j)] = t;
    }
}

void RhsBpDecoder::harden(util::BitVec& codeword) const {
    const auto& cp = code_->params();
    if (codeword.size() != static_cast<std::size_t>(cp.n))
        codeword = util::BitVec(static_cast<std::size_t>(cp.n));
    else
        codeword.clear();
    for (int v = 0; v < cp.k; ++v)
        if (post_in_[static_cast<std::size_t>(v)] < 0.0)
            codeword.set(static_cast<std::size_t>(v), true);
    for (int j = 0; j < cp.m(); ++j)
        if (post_p_[static_cast<std::size_t>(j)] < 0.0)
            codeword.set(static_cast<std::size_t>(cp.k + j), true);
}

void RhsBpDecoder::copy_info_bits(DecodeResult& out) const {
    const auto k = static_cast<std::size_t>(code_->params().k);
    if (out.info_bits.size() != k)
        out.info_bits = util::BitVec(k);
    else
        out.info_bits.clear();
    for (std::size_t v = 0; v < k; ++v)
        if (out.codeword.get(v)) out.info_bits.set(v, true);
}

double RhsBpDecoder::mean_abs_posterior() const {
    double sum = 0.0;
    for (double w : post_in_) sum += std::fabs(w);
    for (double w : post_p_) sum += std::fabs(w);
    return sum / static_cast<double>(post_in_.size() + post_p_.size());
}

}  // namespace dvbs2::core
