// Relaxed half-stochastic BP decoder (Algorithm::RhsBp).
//
// Implements the decoder of PAPERS.md (Leduc-Primeau, Hemati, Mannor,
// Gross, "Relaxed Half-Stochastic Belief Propagation") on the IRA Tanner
// graph, following the message-passing trace shape of core/mp_decoder.hpp
// — all five schedules run, with the same def/use structure the dataflow IR
// certifies for the MP family (which is why classify_algorithm gives RHS-BP
// the MP schedule verdicts):
//
//   * variable → check ("stochastic half"): each v2c message is binarized
//     to a single sign bit, sampled as P(bit=1) = 1 / (1 + exp(λ)) from the
//     extrinsic LLR λ;
//   * check node: with all inputs reduced to equal-magnitude signs, the
//     min-sum/boxplus extrinsic degenerates to a sign product — exactly the
//     XOR a stochastic check node computes;
//   * check → variable ("relaxed analog half"): each edge keeps a tracker
//     t ∈ (−1, 1) relaxed toward the CN output sign, t ← (1−β)t + β·(±1).
//     The tracker estimates E[sign] = tanh(μ/2) of the true BP message μ,
//     so the LLR fed back to the variable nodes is 2·atanh(t) (clamped to
//     ±kRhsCmax) — the calibration that lets RHS-BP approach floating BP.
//
// Randomness is counter-based (util::derive_stream): the binarization
// stream is (rhs_seed, counter) with the counter reset at the start of each
// decode, so a decode is a pure function of (LLRs, rhs_seed) — bit-identical
// across repeated runs and thread counts, matching the Monte-Carlo
// determinism contract (pinned by tests/test_algorithms.cpp).
//
// Internal header: build through the engine registry
// (Algorithm::RhsBp, Arithmetic::Float, DecoderBackend::Scalar).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "code/tanner.hpp"
#include "core/types.hpp"

namespace dvbs2::core {

/// Magnitude cap of the tracker-derived LLRs (|2·atanh(t)| ≤ kRhsCmax).
inline constexpr double kRhsCmax = 12.0;

class RhsBpDecoder {
public:
    RhsBpDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg);

    void set_observer(std::function<void(const IterationTrace&)> observer) {
        observer_ = std::move(observer);
    }

    /// Decodes one frame of channel LLRs (positive favors bit 0).
    /// Allocation-free once `out` is sized (tracing waives that, like the
    /// MP decoder: the counted syndrome allocates).
    void decode_into(std::span<const double> ch, DecodeResult& out);

    /// Posterior totals of the last decode (channel + clamped tracker
    /// LLRs), exposed so the range-certification witness tests can compare
    /// a real decode's peaks against the certified post-info/post-parity
    /// bounds (every |2·atanh(t)| contribution is clamped to kRhsCmax).
    const std::vector<double>& posterior_in() const noexcept { return post_in_; }
    const std::vector<double>& posterior_p() const noexcept { return post_p_; }

private:
    // One iteration in the configured schedule.
    void step();
    void variable_phase();
    void check_phase_two_phase();
    void check_phase_zigzag(bool segmented);
    void check_phase_map();
    void check_phase_layered();

    void load_channel(std::span<const double> ch);
    void reset_state();
    void init_layered_totals();
    void refresh_posterior();
    void harden(util::BitVec& codeword) const;
    void copy_info_bits(DecodeResult& out) const;
    double mean_abs_posterior() const;

    /// Tracker → LLR: 2·atanh(t), clamped to ±kRhsCmax.
    static double tracker_llr(double t);
    /// Samples the stochastic sign (±1) of an LLR from the counter stream.
    double binarize(double llr);
    /// Relaxes tracker `t` toward the CN output sign `s` (±1).
    double relax(double t, double s) const { return (1.0 - beta_) * t + beta_ * s; }

    const code::Dvbs2Code* code_;
    DecoderConfig cfg_;
    double beta_;
    std::uint64_t seed_;
    std::uint64_t counter_ = 0;  ///< reset per decode: pure function of LLRs

    // Tracker state (the c2v storage of the MP skeleton) and binarized v2c
    // signs, laid out exactly like MpDecoder's message arrays.
    std::vector<double> trk_;        ///< info-edge trackers t ∈ (−1, 1)
    std::vector<double> v2c_sign_;   ///< binarized info-edge v2c (±1)
    std::vector<double> down_trk_;   ///< CN_j → p_j trackers
    std::vector<double> up_trk_;     ///< CN_{j+1} → p_j trackers
    std::vector<double> pn_a_;       ///< two-phase parity v2c signs (to CN j)
    std::vector<double> pn_c_;       ///< two-phase parity v2c signs (to CN j+1)
    std::vector<double> boundary_snapshot_;  ///< segmented FU boundaries
    std::vector<double> ch_in_, ch_p_;
    std::vector<double> post_in_, post_p_;

    std::function<void(const IterationTrace&)> observer_;
};

}  // namespace dvbs2::core
