// Frame-parallel SIMD fixed-point decoder (lane = frame).
//
// Strategy: instantiate the scalar reference schedule implementation
// (core/mp_decoder.hpp) with an arithmetic whose Value is a whole vector
// register — lane l carries frame l's message. The schedule's control flow
// (loop bounds, edge indices, boundary snapshots) depends only on the code
// structure, never on message values, so W frames advance through the exact
// scalar instruction sequence in lockstep and each lane reproduces the
// scalar decoder bit for bit. Because the message arrays are lane-major
// (vector<VecVal> indexed by edge), every access the scalar schedule makes
// becomes a contiguous vector load/store: unlike the group-parallel engine,
// this mode needs no gather instructions.
//
// Early stopping is per lane: after each iteration a lane-parallel
// syndrome pass (count_unsatisfied, the vectorized counterpart of
// core/syndrome.hpp) counts each due lane's unsatisfied checks straight
// from the posterior sign bits, and a converging lane hardens and freezes
// its result (codeword, iteration count) at its own stopping iteration
// while the remaining lanes keep iterating.
//
// Lane compaction (decode_stream): a retired lane is reset in place —
// zero its column of the cross-iteration message arrays, splice the next
// pending frame's channel into its column of ch_in/ch_p (and, for the
// Layered schedule, the running posterior totals) via
// MpDecoder::state_view(). That reproduces exactly the per-lane state
// begin() builds for a fresh frame, so a frame decoded by a recycled lane
// is still bit-identical to its scalar decode; each lane carries its own
// iteration counter and result slot, so results land in input order.
#include "core/simd/batch_decoder.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/mp_decoder.hpp"
#include "core/simd/lane_arith.hpp"
#include "core/simd/vec.hpp"
#include "util/error.hpp"

namespace dvbs2::core {

namespace {

namespace sv = dvbs2::core::simd;
using V = sv::ActiveVec;
using Reg = V::reg;
inline constexpr int W = V::width;
using quant::QLLR;

/// One vector register of W per-frame messages, with just enough operator
/// surface for MpDecoder's accumulations. The default constructor is
/// defaulted (not user-provided), so vector<VecVal>::resize value-
/// initializes to all-zero lanes like the scalar arrays, while stack arrays
/// stay default-initialized (no per-element zeroing in the hot loop).
struct VecVal {
    Reg r;
    VecVal() = default;
    VecVal(Reg x) : r(x) {}  // implicit: lane ops return raw registers
    friend VecVal operator+(VecVal a, VecVal b) { return V::add(a.r, b.r); }
    friend VecVal operator-(VecVal a, VecVal b) { return V::sub(a.r, b.r); }
    VecVal& operator+=(VecVal o) {
        r = V::add(r, o.r);
        return *this;
    }
};

/// Arith concept adapter: per-lane FixedArith semantics on VecVal. Only the
/// members the begin()/step() path instantiates exist meaningfully;
/// is_negative/from_llr are never instantiated on this arithmetic because
/// the batch engine hardens lanes itself.
class BatchLaneArith {
public:
    using Value = VecVal;
    using Wide = VecVal;

    BatchLaneArith(CheckRule rule, const quant::QuantSpec& spec,
                   const quant::BoxplusTable* table, double normalization, double offset)
        : lanes_(rule, spec, table, normalization, offset) {}

    Value zero() const { return VecVal(V::broadcast(0)); }
    Wide to_wide(Value v) const { return v; }
    Value narrow(Wide w) const { return lanes_.narrow(w.r); }
    Value combine(Value a, Value b) const { return lanes_.combine(a.r, b.r); }
    Value finalize(Value v) const { return lanes_.finalize(v.r); }

private:
    sv::LaneFixedArith<V> lanes_;
};

}  // namespace

struct SimdBatchFixedDecoder::Impl {
    Impl(const code::Dvbs2Code& code, const DecoderConfig& cfg, const quant::QuantSpec& spec)
        : code_(&code),
          cfg_(cfg),
          table_(spec),
          mp_(code, cfg,
              BatchLaneArith(cfg.rule, spec, cfg.rule == CheckRule::Exact ? &table_ : nullptr,
                             cfg.normalization, cfg.offset)) {
        ch_.resize(static_cast<std::size_t>(code.params().n));
        stage_.resize(static_cast<std::size_t>(code.params().n));
    }

    /// Transposes `frames` frame-major channel vectors into the lane-major
    /// block; unused lanes replicate frame 0 (their results are discarded).
    void load_block(std::span<const QLLR> qllr, std::size_t frames) {
        const auto n = static_cast<std::size_t>(code_->params().n);
        DVBS2_REQUIRE(frames >= 1 && frames <= static_cast<std::size_t>(W),
                      "batch frames must be in [1, lanes()]");
        DVBS2_REQUIRE(qllr.size() == frames * n, "batch channel length mismatch");
        QLLR tmp[W];
        for (std::size_t i = 0; i < n; ++i) {
            for (int l = 0; l < W; ++l) {
                const auto f = static_cast<std::size_t>(l) < frames ? static_cast<std::size_t>(l)
                                                                    : std::size_t{0};
                tmp[l] = qllr[f * n + i];
            }
            ch_[i] = VecVal(V::load(tmp));
        }
    }

    /// Overwrites lane `l` of one vector value (store/patch/reload — the
    /// splice runs once per frame, not per iteration, so the scalar detour
    /// is off the hot path).
    static void set_lane(VecVal& v, std::size_t l, QLLR x) {
        QLLR tmp[W];
        V::store(tmp, v.r);
        tmp[l] = x;
        v.r = V::load(tmp);
    }

    static void zero_lane(std::span<VecVal> vals, std::size_t l) {
        QLLR tmp[W];
        for (VecVal& v : vals) {
            V::store(tmp, v.r);
            tmp[l] = 0;
            v.r = V::load(tmp);
        }
    }

    /// Resets lane `l` in place for a fresh frame (lane compaction): zero
    /// its column of every cross-iteration message array and splice the new
    /// channel into its column of ch_in/ch_p — exactly the per-lane state
    /// begin() builds. See MpDecoder::state_view() for why the per-schedule
    /// scratch arrays need no reset and why Layered's running totals do.
    void reset_lane(std::size_t l, const QLLR* frame) {
        const auto& cp = code_->params();
        auto st = mp_.state_view();
        zero_lane(st.c2v, l);
        zero_lane(st.v2c, l);
        zero_lane(st.down, l);
        zero_lane(st.up, l);
        const auto k = static_cast<std::size_t>(cp.k);
        const auto m = static_cast<std::size_t>(cp.m());
        for (std::size_t v = 0; v < k; ++v) set_lane(st.ch_in[v], l, frame[v]);
        for (std::size_t j = 0; j < m; ++j) set_lane(st.ch_p[j], l, frame[k + j]);
        if (cfg_.schedule == Schedule::Layered) {
            for (std::size_t v = 0; v < k; ++v) set_lane(st.post_in[v], l, frame[v]);
            for (std::size_t j = 0; j < m; ++j) set_lane(st.post_p[j], l, frame[k + j]);
        }
    }

    /// Lane-parallel syndrome: per-lane unsatisfied-check counts straight
    /// from the posterior sign bits — the vectorized counterpart of the
    /// shared scalar routine (core/syndrome.hpp). sign(posterior) IS the
    /// hardened bit (harden_lanes sets bit v iff posterior_v < 0, and
    /// srai<31> is the matching all-ones mask), so the xor-parity per check
    /// node equals the scalar syndrome of the hardened codeword bit for bit
    /// (pinned by tests/test_convergence.cpp). One load+xor per edge and no
    /// per-lane graph walk, so the every-iteration early-stop check costs a
    /// small fraction of a step() instead of W scalar is_codeword calls.
    void count_unsatisfied(const std::vector<VecVal>& post_in,
                           const std::vector<VecVal>& post_p, std::int32_t* unsat) const {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int d = code_->check_in_degree();
        Reg cnt = V::broadcast(0);
        Reg prev = V::broadcast(0);  // sign of p_{c-1}; CN 0 has no predecessor
        long long e = 0;
        for (int c = 0; c < m; ++c) {
            Reg acc = prev;
            for (int i = 0; i < d; ++i, ++e)
                acc = V::xor_(acc, V::template srai<31>(
                                       post_in[static_cast<std::size_t>(
                                                   code_->edge_variable(e))].r));
            const Reg pc = V::template srai<31>(post_p[static_cast<std::size_t>(c)].r);
            acc = V::xor_(acc, pc);
            prev = pc;
            cnt = V::sub(cnt, acc);  // acc lanes are 0 or −1 (unsatisfied)
        }
        V::store(unsat, cnt);
    }

    /// Hardens the lanes flagged in `check` from lane-major value arrays
    /// into their caller-owned codewords; slot[l] is lane l's result (null
    /// for idle lanes).
    void harden_lanes(const std::vector<VecVal>& in_vals, const std::vector<VecVal>& p_vals,
                      DecodeResult* const* slot, const bool* check) const {
        const auto& cp = code_->params();
        for (int l = 0; l < W; ++l) {
            if (!check[l]) continue;
            util::BitVec& cw = slot[l]->codeword;
            if (cw.size() != static_cast<std::size_t>(cp.n))
                cw = util::BitVec(static_cast<std::size_t>(cp.n));
            else
                cw.clear();
        }
        QLLR tmp[W];
        for (int v = 0; v < cp.k; ++v) {
            V::store(tmp, in_vals[static_cast<std::size_t>(v)].r);
            for (int l = 0; l < W; ++l)
                if (check[l] && tmp[l] < 0)
                    slot[l]->codeword.set(static_cast<std::size_t>(v), true);
        }
        for (int j = 0; j < cp.m(); ++j) {
            V::store(tmp, p_vals[static_cast<std::size_t>(j)].r);
            for (int l = 0; l < W; ++l)
                if (check[l] && tmp[l] < 0)
                    slot[l]->codeword.set(static_cast<std::size_t>(cp.k + j), true);
        }
    }

    /// Zero-iteration budget: decide one frame straight from its channel
    /// (mirrors the scalar reference's harden-from-channel path).
    void harden_channel_frame(const QLLR* ch, DecodeResult& r) const {
        const auto n = static_cast<std::size_t>(code_->params().n);
        if (r.codeword.size() != n)
            r.codeword = util::BitVec(n);
        else
            r.codeword.clear();
        for (std::size_t i = 0; i < n; ++i)
            if (ch[i] < 0) r.codeword.set(i, true);
    }

    /// Freezes a lane's result (same info-bit extraction as the scalar
    /// reference, reusing the caller's storage).
    void finish_lane(DecodeResult& r, int iterations, bool converged) const {
        r.iterations = iterations;
        r.converged = converged;
        const auto k = static_cast<std::size_t>(code_->params().k);
        if (r.info_bits.size() != k)
            r.info_bits = util::BitVec(k);
        else
            r.info_bits.clear();
        for (std::size_t v = 0; v < k; ++v)
            if (r.codeword.get(v)) r.info_bits.set(v, true);
    }

    /// Single lane block: decode_stream over a frame-major span.
    struct SpanSource {
        const QLLR* data;
        std::size_t n;
    };

    void decode_into(std::span<const QLLR> qllr, std::size_t frames, DecodeResult* out) {
        const auto n = static_cast<std::size_t>(code_->params().n);
        DVBS2_REQUIRE(frames >= 1 && frames <= static_cast<std::size_t>(W),
                      "batch frames must be in [1, lanes()]");
        DVBS2_REQUIRE(qllr.size() == frames * n, "batch channel length mismatch");
        SpanSource src{qllr.data(), n};
        decode_stream(
            frames,
            [](void* ctx, std::size_t f, QLLR* dst) {
                const auto* s = static_cast<const SpanSource*>(ctx);
                std::copy(s->data + f * s->n, s->data + (f + 1) * s->n, dst);
            },
            &src, out);
    }

    void decode_stream(std::size_t frames, FrameSource source, void* ctx, DecodeResult* out) {
        DVBS2_REQUIRE(frames >= 1, "decode_stream needs at least one frame");
        DVBS2_REQUIRE(source != nullptr && out != nullptr,
                      "decode_stream needs a frame source and result storage");
        const std::size_t n = ch_.size();

        if (cfg_.max_iterations == 0) {
            // Mirror the scalar reference: decide straight from the channel
            // (no vector work; no lane is ever occupied).
            for (std::size_t f = 0; f < frames; ++f) {
                source(ctx, f, stage_.data());
                harden_channel_frame(stage_.data(), out[f]);
                finish_lane(out[f], /*iterations=*/0, /*converged=*/false);
            }
            return;
        }

        // Fill the lanes with the first min(W, frames) frames. Surplus
        // lanes keep whatever channel the previous call left behind (always
        // in-range quantized values, or the zeros of construction); they
        // compute in lockstep but are never hardened or read out.
        const std::size_t first = std::min(frames, static_cast<std::size_t>(W));
        for (std::size_t l = 0; l < first; ++l) {
            source(ctx, l, stage_.data());
            for (std::size_t i = 0; i < n; ++i) set_lane(ch_[i], l, stage_[i]);
        }
        mp_.begin(ch_);

        // Per-lane bookkeeping: the result slot a lane writes (null = idle)
        // and how many iterations its current frame has run. Lanes drift
        // apart as compaction refills them, so the iteration counter is per
        // lane, never global.
        DecodeResult* slot[W] = {};
        int lane_it[W] = {};
        for (std::size_t l = 0; l < first; ++l) slot[l] = &out[l];
        std::size_t next = first;   // next pending frame index
        std::size_t active = first; // lanes holding an unfinished frame

        while (active > 0) {
            mp_.step();
            bool due[W] = {};  // lanes whose frame is syndrome-checked now
            bool any_due = false;
            for (int l = 0; l < W; ++l) {
                if (slot[l] == nullptr) continue;
                ++lane_it[l];
                // Same cadence as the scalar reference: check every
                // iteration under early stopping, else only at the budget.
                if (cfg_.early_stop || lane_it[l] == cfg_.max_iterations) {
                    due[l] = true;
                    any_due = true;
                }
            }
            if (!any_due) continue;
            std::int32_t unsat[W];
            count_unsatisfied(mp_.posterior_in(), mp_.posterior_p(), unsat);
            bool fin[W] = {};   // lanes retiring this iteration
            bool conv[W] = {};  // their converged flags
            bool any_fin = false;
            for (int l = 0; l < W; ++l) {
                if (!due[l]) continue;
                const bool ok = unsat[l] == 0;
                const bool last = lane_it[l] == cfg_.max_iterations;
                if (cfg_.early_stop && ok) {
                    fin[l] = conv[l] = true;
                    any_fin = true;
                } else if (last) {
                    // early_stop semantics: converged only via the per-
                    // iteration check above; without early stopping the
                    // final syndrome decides (same as the scalar engine).
                    fin[l] = true;
                    conv[l] = cfg_.early_stop ? false : ok;
                    any_fin = true;
                }
            }
            if (!any_fin) continue;
            // Harden only the retiring lanes: on a typical early-stop
            // iteration that is zero or one lane, not all W.
            harden_lanes(mp_.posterior_in(), mp_.posterior_p(), slot, fin);
            for (int l = 0; l < W; ++l) {
                if (!fin[l]) continue;
                finish_lane(*slot[l], lane_it[l], conv[l]);
                // Lane retired. Compaction: splice the next pending frame
                // into it so it never idles while frames wait.
                if (next < frames) {
                    source(ctx, next, stage_.data());
                    reset_lane(static_cast<std::size_t>(l), stage_.data());
                    slot[l] = &out[next];
                    lane_it[l] = 0;
                    ++next;
                } else {
                    slot[l] = nullptr;
                    --active;
                }
            }
        }
    }

    void run_iterations(std::span<const QLLR> qllr, std::size_t frames, int iters) {
        load_block(qllr, frames);
        mp_.begin(ch_);
        for (int i = 0; i < iters; ++i) mp_.step();
    }

    std::vector<QLLR> c2v_messages(std::size_t frame) const {
        DVBS2_REQUIRE(frame < static_cast<std::size_t>(W), "lane index out of range");
        const auto& c2v = mp_.c2v_messages();
        std::vector<QLLR> out(c2v.size());
        QLLR tmp[W];
        for (std::size_t e = 0; e < c2v.size(); ++e) {
            V::store(tmp, c2v[e].r);
            out[e] = tmp[frame];
        }
        return out;
    }

    const code::Dvbs2Code* code_;
    DecoderConfig cfg_;
    quant::BoxplusTable table_;
    MpDecoder<BatchLaneArith> mp_;
    std::vector<VecVal> ch_;   // lane-major staged channel block
    std::vector<QLLR> stage_;  // one frame's channel, staging area for lane splices
};

SimdBatchFixedDecoder::SimdBatchFixedDecoder(const code::Dvbs2Code& code,
                                             const DecoderConfig& cfg,
                                             const quant::QuantSpec& spec)
    : impl_(std::make_unique<Impl>(code, cfg, spec)) {}
SimdBatchFixedDecoder::~SimdBatchFixedDecoder() = default;
SimdBatchFixedDecoder::SimdBatchFixedDecoder(SimdBatchFixedDecoder&&) noexcept = default;
SimdBatchFixedDecoder& SimdBatchFixedDecoder::operator=(SimdBatchFixedDecoder&&) noexcept =
    default;

int SimdBatchFixedDecoder::lanes() noexcept { return W; }

void SimdBatchFixedDecoder::decode_into(std::span<const quant::QLLR> qllr, std::size_t frames,
                                        DecodeResult* out) {
    impl_->decode_into(qllr, frames, out);
}

void SimdBatchFixedDecoder::decode_stream(std::size_t frames, FrameSource source, void* ctx,
                                          DecodeResult* out) {
    impl_->decode_stream(frames, source, ctx, out);
}

void SimdBatchFixedDecoder::run_iterations(std::span<const quant::QLLR> qllr,
                                           std::size_t frames, int iters) {
    impl_->run_iterations(qllr, frames, iters);
}

std::vector<quant::QLLR> SimdBatchFixedDecoder::c2v_messages(std::size_t frame) const {
    return impl_->c2v_messages(frame);
}

}  // namespace dvbs2::core
