// Frame-parallel SIMD fixed-point decoder (lane = frame).
//
// Strategy: instantiate the scalar reference schedule implementation
// (core/mp_decoder.hpp) with an arithmetic whose Value is a whole vector
// register — lane l carries frame l's message. The schedule's control flow
// (loop bounds, edge indices, boundary snapshots) depends only on the code
// structure, never on message values, so W frames advance through the exact
// scalar instruction sequence in lockstep and each lane reproduces the
// scalar decoder bit for bit. Because the message arrays are lane-major
// (vector<VecVal> indexed by edge), every access the scalar schedule makes
// becomes a contiguous vector load/store: unlike the group-parallel engine,
// this mode needs no gather instructions.
//
// Early stopping is per lane: after each iteration the posteriors are
// hardened for the still-active lanes only, each active lane runs the
// allocation-free syndrome check, and a converging lane freezes its result
// (codeword, iteration count) while the remaining lanes keep iterating.
// Finished lanes keep computing garbage in their vector slots — that is
// harmless (lanes never interact) and cheaper than masking.
#include "core/simd/batch_decoder.hpp"

#include <cstdint>
#include <utility>

#include "core/mp_decoder.hpp"
#include "core/simd/lane_arith.hpp"
#include "core/simd/vec.hpp"
#include "util/error.hpp"

namespace dvbs2::core {

namespace {

namespace sv = dvbs2::core::simd;
using V = sv::ActiveVec;
using Reg = V::reg;
inline constexpr int W = V::width;
using quant::QLLR;

/// One vector register of W per-frame messages, with just enough operator
/// surface for MpDecoder's accumulations. The default constructor is
/// defaulted (not user-provided), so vector<VecVal>::resize value-
/// initializes to all-zero lanes like the scalar arrays, while stack arrays
/// stay default-initialized (no per-element zeroing in the hot loop).
struct VecVal {
    Reg r;
    VecVal() = default;
    VecVal(Reg x) : r(x) {}  // implicit: lane ops return raw registers
    friend VecVal operator+(VecVal a, VecVal b) { return V::add(a.r, b.r); }
    friend VecVal operator-(VecVal a, VecVal b) { return V::sub(a.r, b.r); }
    VecVal& operator+=(VecVal o) {
        r = V::add(r, o.r);
        return *this;
    }
};

/// Arith concept adapter: per-lane FixedArith semantics on VecVal. Only the
/// members the begin()/step() path instantiates exist meaningfully;
/// is_negative/from_llr are never instantiated on this arithmetic because
/// the batch engine hardens lanes itself.
class BatchLaneArith {
public:
    using Value = VecVal;
    using Wide = VecVal;

    BatchLaneArith(CheckRule rule, const quant::QuantSpec& spec,
                   const quant::BoxplusTable* table, double normalization, double offset)
        : lanes_(rule, spec, table, normalization, offset) {}

    Value zero() const { return VecVal(V::broadcast(0)); }
    Wide to_wide(Value v) const { return v; }
    Value narrow(Wide w) const { return lanes_.narrow(w.r); }
    Value combine(Value a, Value b) const { return lanes_.combine(a.r, b.r); }
    Value finalize(Value v) const { return lanes_.finalize(v.r); }

private:
    sv::LaneFixedArith<V> lanes_;
};

}  // namespace

struct SimdBatchFixedDecoder::Impl {
    Impl(const code::Dvbs2Code& code, const DecoderConfig& cfg, const quant::QuantSpec& spec)
        : code_(&code),
          cfg_(cfg),
          table_(spec),
          mp_(code, cfg,
              BatchLaneArith(cfg.rule, spec, cfg.rule == CheckRule::Exact ? &table_ : nullptr,
                             cfg.normalization, cfg.offset)) {
        ch_.resize(static_cast<std::size_t>(code.params().n));
    }

    /// Transposes `frames` frame-major channel vectors into the lane-major
    /// block; unused lanes replicate frame 0 (their results are discarded).
    void load_block(std::span<const QLLR> qllr, std::size_t frames) {
        const auto n = static_cast<std::size_t>(code_->params().n);
        DVBS2_REQUIRE(frames >= 1 && frames <= static_cast<std::size_t>(W),
                      "batch frames must be in [1, lanes()]");
        DVBS2_REQUIRE(qllr.size() == frames * n, "batch channel length mismatch");
        QLLR tmp[W];
        for (std::size_t i = 0; i < n; ++i) {
            for (int l = 0; l < W; ++l) {
                const auto f = static_cast<std::size_t>(l) < frames ? static_cast<std::size_t>(l)
                                                                    : std::size_t{0};
                tmp[l] = qllr[f * n + i];
            }
            ch_[i] = VecVal(V::load(tmp));
        }
    }

    /// Hardens the still-active lanes from lane-major value arrays
    /// (posteriors after an iteration, or the channel when no iterations
    /// ran) into their caller-owned codewords.
    void harden_lanes(const std::vector<VecVal>& in_vals, const std::vector<VecVal>& p_vals,
                      DecodeResult* out, const bool* active, std::size_t frames) const {
        const auto& cp = code_->params();
        for (std::size_t b = 0; b < frames; ++b) {
            if (!active[b]) continue;
            if (out[b].codeword.size() != static_cast<std::size_t>(cp.n))
                out[b].codeword = util::BitVec(static_cast<std::size_t>(cp.n));
            else
                out[b].codeword.clear();
        }
        QLLR tmp[W];
        for (int v = 0; v < cp.k; ++v) {
            V::store(tmp, in_vals[static_cast<std::size_t>(v)].r);
            for (std::size_t b = 0; b < frames; ++b)
                if (active[b] && tmp[b] < 0) out[b].codeword.set(static_cast<std::size_t>(v), true);
        }
        for (int j = 0; j < cp.m(); ++j) {
            V::store(tmp, p_vals[static_cast<std::size_t>(j)].r);
            for (std::size_t b = 0; b < frames; ++b)
                if (active[b] && tmp[b] < 0)
                    out[b].codeword.set(static_cast<std::size_t>(cp.k + j), true);
        }
    }

    /// Freezes a lane's result (same info-bit extraction as the scalar
    /// reference, reusing the caller's storage).
    void finish_lane(DecodeResult& r, int iterations, bool converged) const {
        r.iterations = iterations;
        r.converged = converged;
        const auto k = static_cast<std::size_t>(code_->params().k);
        if (r.info_bits.size() != k)
            r.info_bits = util::BitVec(k);
        else
            r.info_bits.clear();
        for (std::size_t v = 0; v < k; ++v)
            if (r.codeword.get(v)) r.info_bits.set(v, true);
    }

    void decode_into(std::span<const QLLR> qllr, std::size_t frames, DecodeResult* out) {
        load_block(qllr, frames);
        mp_.begin(ch_);

        bool active[W] = {};
        for (std::size_t b = 0; b < frames; ++b) active[b] = true;

        if (cfg_.max_iterations == 0) {
            // Mirror the scalar reference: decide straight from the channel.
            harden_lanes(mp_.channel_in(), mp_.channel_p(), out, active, frames);
            for (std::size_t b = 0; b < frames; ++b)
                finish_lane(out[b], /*iterations=*/0, /*converged=*/false);
            return;
        }

        std::size_t remaining = frames;
        int it = 0;
        while (remaining > 0 && it < cfg_.max_iterations) {
            mp_.step();
            ++it;
            const bool last = it == cfg_.max_iterations;
            if (!cfg_.early_stop && !last) continue;
            harden_lanes(mp_.posterior_in(), mp_.posterior_p(), out, active, frames);
            for (std::size_t b = 0; b < frames; ++b) {
                if (!active[b]) continue;
                const bool ok = code_->is_codeword(out[b].codeword);
                if (cfg_.early_stop && ok) {
                    active[b] = false;
                    --remaining;
                    finish_lane(out[b], it, true);
                } else if (last) {
                    active[b] = false;
                    --remaining;
                    // early_stop semantics: converged only via the per-
                    // iteration check above; without early stopping the
                    // final syndrome decides (same as the scalar engine).
                    finish_lane(out[b], it, cfg_.early_stop ? false : ok);
                }
            }
        }
    }

    void run_iterations(std::span<const QLLR> qllr, std::size_t frames, int iters) {
        load_block(qllr, frames);
        mp_.begin(ch_);
        for (int i = 0; i < iters; ++i) mp_.step();
    }

    std::vector<QLLR> c2v_messages(std::size_t frame) const {
        DVBS2_REQUIRE(frame < static_cast<std::size_t>(W), "lane index out of range");
        const auto& c2v = mp_.c2v_messages();
        std::vector<QLLR> out(c2v.size());
        QLLR tmp[W];
        for (std::size_t e = 0; e < c2v.size(); ++e) {
            V::store(tmp, c2v[e].r);
            out[e] = tmp[frame];
        }
        return out;
    }

    const code::Dvbs2Code* code_;
    DecoderConfig cfg_;
    quant::BoxplusTable table_;
    MpDecoder<BatchLaneArith> mp_;
    std::vector<VecVal> ch_;  // lane-major staged channel block
};

SimdBatchFixedDecoder::SimdBatchFixedDecoder(const code::Dvbs2Code& code,
                                             const DecoderConfig& cfg,
                                             const quant::QuantSpec& spec)
    : impl_(std::make_unique<Impl>(code, cfg, spec)) {}
SimdBatchFixedDecoder::~SimdBatchFixedDecoder() = default;
SimdBatchFixedDecoder::SimdBatchFixedDecoder(SimdBatchFixedDecoder&&) noexcept = default;
SimdBatchFixedDecoder& SimdBatchFixedDecoder::operator=(SimdBatchFixedDecoder&&) noexcept =
    default;

int SimdBatchFixedDecoder::lanes() noexcept { return W; }

void SimdBatchFixedDecoder::decode_into(std::span<const quant::QLLR> qllr, std::size_t frames,
                                        DecodeResult* out) {
    impl_->decode_into(qllr, frames, out);
}

void SimdBatchFixedDecoder::run_iterations(std::span<const quant::QLLR> qllr,
                                           std::size_t frames, int iters) {
    impl_->run_iterations(qllr, frames, iters);
}

std::vector<quant::QLLR> SimdBatchFixedDecoder::c2v_messages(std::size_t frame) const {
    return impl_->c2v_messages(frame);
}

}  // namespace dvbs2::core
