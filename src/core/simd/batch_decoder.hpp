// Frame-parallel (lane = frame) SIMD fixed-point decoder.
//
// The group-parallel backend (simd_decoder.hpp) vectorizes *within* one
// frame across the Eq. 2 functional units, which restricts it to schedules
// whose check nodes are independent inside a phase (TwoPhase,
// ZigzagSegmented). This engine vectorizes *across* frames instead: lane l
// of every vector register carries frame l's message, and the scalar
// reference schedule — any of the five, including the strictly sequential
// ZigzagForward/ZigzagMap/Layered sweeps — runs unchanged on W frames in
// lockstep. Schedule control flow never depends on message values, so every
// lane is bit-exact with a scalar MpDecoder<FixedArith> decode of its frame
// (pinned by tests/test_engine.cpp and tests/test_convergence.cpp),
// including per-frame early stopping: each lane hardens and syndrome-checks
// at its own pace and records its result at its own stopping iteration.
// decode_stream adds lane compaction on top: a retired lane's state is
// reset in place and the next pending frame is spliced into it, so a long
// stream of frames keeps every lane busy no matter how unevenly the frames
// converge.
//
// Memory layout: messages are stored lane-major (one vector register per
// edge), so every v2c/c2v access of the scalar schedule becomes a
// contiguous vector load/store — the frame-per-lane mode needs no gathers
// at all. The cost is W× the message footprint; throughput per frame still
// exceeds the group-parallel mode on full batches (bench_simd_kernels).
//
// This header is intrinsic-free; batch_decoder.cpp is the only other TU
// built with SIMD compiler flags (see src/core/CMakeLists.txt).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "code/tanner.hpp"
#include "core/types.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::core {

/// W-frame lockstep decoder; W = simd_backend_width(). Use via the unified
/// engine layer (core/engine.hpp, DecoderBackend::Simd with batches or
/// SimdLaneMode::FramePerLane); direct use is for tests and benches.
class SimdBatchFixedDecoder {
public:
    /// The code object must outlive the decoder. Accepts every schedule.
    SimdBatchFixedDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg,
                          const quant::QuantSpec& spec = quant::kQuant6);
    ~SimdBatchFixedDecoder();
    SimdBatchFixedDecoder(SimdBatchFixedDecoder&&) noexcept;
    SimdBatchFixedDecoder& operator=(SimdBatchFixedDecoder&&) noexcept;

    /// Lanes per batch block (== simd_backend_width()).
    static int lanes() noexcept;

    /// Decodes `frames` (1..lanes()) quantized frames stored back to back
    /// (frame-major, each of size N) into out[0..frames). Result semantics
    /// per frame are identical to MpDecoder::decode_into: per-lane early
    /// stopping, iteration counts and hardened codewords match a scalar
    /// decode of the same frame bit for bit. Unused lanes are left idle and
    /// discarded. Allocation-free once `out` entries are sized. (Thin
    /// wrapper over decode_stream for a single lane block.)
    void decode_into(std::span<const quant::QLLR> qllr, std::size_t frames, DecodeResult* out);

    /// Source callback of decode_stream: materializes frame `frame`'s N
    /// quantized channel values into `dst`. Called exactly once per frame,
    /// in ascending frame order (frames are claimed by lanes as they free
    /// up). A plain function pointer + context keeps the steady-state path
    /// allocation-free.
    using FrameSource = void (*)(void* ctx, std::size_t frame, quant::QLLR* dst);

    /// Decodes `frames` frames (any count >= 1) delivered by `source`, with
    /// per-lane early termination AND lane compaction: the first
    /// min(W, frames) frames fill the lanes; whenever a lane finishes — its
    /// syndrome satisfied under early stopping, or its iteration budget
    /// exhausted — the result is frozen into out[that frame's index] and
    /// the lane is immediately reloaded with the next pending frame, so no
    /// lane idles while frames wait. Results land in input order, and each
    /// frame's codeword, iteration count and converged flag are
    /// bit-identical to a scalar MpDecoder decode of that frame (pinned by
    /// tests/test_convergence.cpp). Allocation-free once `out` entries are
    /// sized.
    void decode_stream(std::size_t frames, FrameSource source, void* ctx, DecodeResult* out);

    /// Runs exactly `iters` iterations on `frames` frames without early
    /// stopping or hardening (throughput timing; message comparisons go
    /// through c2v_messages).
    void run_iterations(std::span<const quant::QLLR> qllr, std::size_t frames, int iters);

    /// Extracts lane `frame`'s c2v message state in the canonical scalar
    /// layout (diagnostics; allocates).
    std::vector<quant::QLLR> c2v_messages(std::size_t frame) const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace dvbs2::core
