// Lane-parallel fixed-point check-node arithmetic.
//
// `LaneFixedArith<V>` performs, in every vector lane, exactly the integer
// operations of core/arith.hpp's FixedArith — same saturation bounds, same
// correction-LUT boxplus, same rounding in the min-sum finalizers — so a
// lane's message stream is bit-identical to the scalar decoder's. The class
// satisfies the `Arith` concept of core/kernels.hpp (Value + combine), which
// lets the SIMD decoder reuse compute_extrinsics verbatim: the per-check-node
// serial prefix/suffix recursion is unchanged, only the independent check
// nodes of a group are spread across lanes.
//
// Sign tricks used throughout (two's complement, lanes are int32):
//   sign mask   m = v >> 31            (all-ones iff v < 0)
//   negate-if   (x ^ m) - m            (x if m == 0, -x if m == all-ones)
//   product sign  (a ^ b) >> 31        (all-ones iff signs differ)
#pragma once

#include "core/simd/vec.hpp"
#include "core/types.hpp"
#include "quant/fixed.hpp"
#include "util/error.hpp"

#include <cmath>

namespace dvbs2::core::simd {

template <class V>
class LaneFixedArith {
public:
    using Value = typename V::reg;

    /// Mirrors FixedArith's constructor; `table` must outlive the object and
    /// is only required for CheckRule::Exact.
    LaneFixedArith(CheckRule rule, const quant::QuantSpec& spec, const quant::BoxplusTable* table,
                   double normalization, double offset)
        : rule_(rule),
          max_raw_(spec.max_raw()),
          norm_num_(static_cast<std::int32_t>(std::lround(normalization * 16.0))),
          offset_raw_(quant::quantize(offset, spec)),
          corr_data_(table != nullptr ? table->corr_data() : nullptr),
          corr_len_(table != nullptr ? static_cast<std::int32_t>(table->corr_size()) : 0) {
        if (rule == CheckRule::Exact) {
            DVBS2_REQUIRE(table != nullptr, "Exact fixed rule needs a BoxplusTable");
            DVBS2_REQUIRE(table->spec() == spec, "BoxplusTable spec mismatch");
        }
    }

    /// Lane-wise symmetric saturation into [-max_raw, +max_raw].
    Value saturate(Value w) const {
        return V::min(V::max(w, V::broadcast(-max_raw_)), V::broadcast(max_raw_));
    }
    Value narrow(Value w) const { return saturate(w); }

    /// Lane-wise pairwise combine; bit-exact with FixedArith::combine.
    Value combine(Value a, Value b) const {
        const Value prod_sign = V::template srai<31>(V::xor_(a, b));
        const Value m = V::min(V::abs_(a), V::abs_(b));
        const Value signed_m = negate_if(m, prod_sign);
        if (rule_ != CheckRule::Exact) return signed_m;
        const Value ca = corr(V::abs_(V::add(a, b)));
        const Value cb = corr(V::abs_(V::sub(a, b)));
        return saturate(V::add(signed_m, V::sub(ca, cb)));
    }

    /// Lane-wise output post-processing; bit-exact with FixedArith::finalize.
    Value finalize(Value v) const {
        switch (rule_) {
            case CheckRule::NormalizedMinSum: {
                // rounded = scaled >= 0 ? (scaled+8)>>4 : -((-scaled+8)>>4)
                const Value scaled = V::mullo(v, V::broadcast(norm_num_));
                const Value m = V::template srai<31>(scaled);
                const Value mag = V::template srai<4>(V::add(negate_if(scaled, m), V::broadcast(8)));
                return saturate(negate_if(mag, m));
            }
            case CheckRule::OffsetMinSum: {
                // mag = |v| - offset; mag <= 0 ? 0 : copysign(mag, v)
                const Value mag = V::sub(V::abs_(v), V::broadcast(offset_raw_));
                const Value res = negate_if(mag, V::template srai<31>(v));
                return V::and_(res, V::cmpgt(mag, V::broadcast(0)));
            }
            default: return v;
        }
    }

private:
    static Value negate_if(Value x, Value mask) { return V::sub(V::xor_(x, mask), mask); }

    /// Lane-wise correction lookup: table[idx] for idx < len, else 0. The
    /// gather index is clamped into bounds; out-of-range lanes are masked to
    /// zero afterwards (corr is identically 0 beyond the table).
    Value corr(Value idx) const {
        const Value len = V::broadcast(corr_len_);
        const Value safe = V::min(idx, V::broadcast(corr_len_ - 1));
        const Value val = V::gather(corr_data_, safe);
        return V::and_(val, V::cmpgt(len, idx));
    }

    CheckRule rule_;
    std::int32_t max_raw_;
    std::int32_t norm_num_;
    std::int32_t offset_raw_;
    const std::int32_t* corr_data_;
    std::int32_t corr_len_;
};

}  // namespace dvbs2::core::simd
