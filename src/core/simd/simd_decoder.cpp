// SIMD group-parallel fixed-point decoder engine.
//
// This is the only TU compiled with target-specific SIMD flags; everything
// vector lives here behind the intrinsic-free interface of
// simd_decoder.hpp.
//
// Bit-exactness strategy: all state arrays (c2v_, v2c_, down_, up_, pn_a_,
// pn_c_, posteriors) keep exactly the scalar MpDecoder<FixedArith> layout
// and contents; only the *computation* of independent check/variable nodes
// is spread across lanes. The per-check-node combine order (prefix/suffix
// recursion of core/kernels.hpp) is identical per lane, posterior
// accumulation is exact integer addition (order-free), and the few
// remainder nodes that do not fill a vector block run through the very same
// scalar FixedArith code path as the reference engine.
//
// Lane ↔ functional-unit mapping (paper Sec. 3): DVB-S2's Eq. 2 structure
// gives P=360 independent functional units; FU f handles check nodes
// f·q .. (f+1)·q−1. A vector block assigns W consecutive FUs to the W lanes
// and advances them in lockstep through the local step r, so lane l works
// on CN (f0+l)·q + r — a stride-q gather in CN index, stride q·kc in edge
// index. Two snapshots preserve the sequential sweep's read-before-write
// semantics at segment boundaries:
//  * boundary_snapshot_ (same as the scalar reference): FU f's first left
//    input is last iteration's down_[f·q−1].
//  * a per-block up-boundary snapshot: lane l reads up_[(f0+l+1)·q−1] at its
//    last step r = q−1, but lane l+1 overwrites that entry at its step 0;
//    the snapshot keeps the previous-iteration value the sequential order
//    would have read. Cross-block reads are safe because blocks (and the
//    scalar head/tail) are processed in ascending FU order.
//
// Certified transformed schedules (analysis/ir/transform.hpp): zigzag-
// forward, zigzag-map, and layered are lockstep-illegal as emitted — each
// carries an m-length serial dependence chain through its check phase — but
// every one holds a certified dependence-preserving rewrite that compacts
// the independent variable phase into P-wide lockstep levels and
// serializes the chain-bearing phase onto a single lane in program order.
// This executor realizes exactly that transformed order: the vectorized
// variable phase above plus a scalar chain sweep that is byte-for-byte the
// MpDecoder<FixedArith> loop body (program order inside one lane *is* the
// original order, which is why the transformed decode is bit-identical to
// the scalar reference). The certificate's per-phase widths record the
// honest parallelism; engine validation (core/engine.cpp) only admits
// schedules whose rewrite passed the independent replay check.
#include "core/simd/simd_decoder.hpp"

#include "analysis/ir/transform.hpp"

#include <cstdint>
#include <limits>
#include <utility>

#include "core/arith.hpp"
#include "core/kernels.hpp"
#include "core/mp_decoder.hpp"  // kMaxCheckDegree
#include "core/simd/lane_arith.hpp"
#include "core/syndrome.hpp"
#include "core/simd/vec.hpp"
#include "util/error.hpp"

namespace dvbs2::core {

namespace {

namespace sv = dvbs2::core::simd;
using V = sv::ActiveVec;
using Reg = V::reg;
inline constexpr int W = V::width;
using quant::QLLR;

/// Maximum information-node degree we support (DVB-S2 max is 13 for R=1/4).
inline constexpr int kMaxInfoDegree = 16;

}  // namespace

const char* simd_backend_name() noexcept { return sv::kBackendName; }
int simd_backend_width() noexcept { return W; }

struct SimdFixedDecoder::Impl {
    Impl(const code::Dvbs2Code& code, const DecoderConfig& cfg, const quant::QuantSpec& spec)
        : code_(&code),
          cfg_(cfg),
          table_(spec),
          arith_(cfg.rule, spec, cfg.rule == CheckRule::Exact ? &table_ : nullptr,
                 cfg.normalization, cfg.offset),
          lanes_(cfg.rule, spec, cfg.rule == CheckRule::Exact ? &table_ : nullptr,
                 cfg.normalization, cfg.offset) {
        const auto& cp = code.params();
        DVBS2_REQUIRE(analysis::ir::group_parallel_supported(cfg.schedule),
                      std::string("SIMD group-parallel backend cannot run schedule=") +
                          to_string(cfg.schedule) +
                          ": the schedule is lockstep-illegal as emitted and carries no "
                          "certified rewrite");
        DVBS2_REQUIRE(cp.check_deg <= kMaxCheckDegree, "check degree exceeds kMaxCheckDegree");
        DVBS2_REQUIRE(cp.deg_hi <= kMaxInfoDegree && cp.deg_lo <= kMaxInfoDegree,
                      "information degree exceeds kMaxInfoDegree");
        DVBS2_REQUIRE(cfg.max_iterations >= 0, "max_iterations must be non-negative");
        DVBS2_REQUIRE(cp.e_in() < std::numeric_limits<std::int32_t>::max(),
                      "edge count exceeds 32-bit gather indices");
        const auto e = static_cast<std::size_t>(cp.e_in());
        c2v_.resize(e);
        v2c_.resize(e);
        const auto m = static_cast<std::size_t>(cp.m());
        down_.resize(m);
        up_.resize(m);  // up_[M-1] stays zero (p_{M-1} has degree 1)
        ch_in_.resize(static_cast<std::size_t>(cp.k));
        ch_p_.resize(m);
        post_in_.resize(static_cast<std::size_t>(cp.k));
        post_p_.resize(m);
        if (cfg.schedule == Schedule::TwoPhase) {
            pn_a_.resize(m);
            pn_c_.resize(m);
        }
        if (cfg.schedule == Schedule::ZigzagSegmented) {
            DVBS2_REQUIRE(cp.q >= 1, "segmented schedule needs q >= 1");
            boundary_snapshot_.resize(static_cast<std::size_t>(cp.parallelism));
        }
        if (cfg.schedule == Schedule::ZigzagMap) fwd_d_.resize(m);
        build_transposed_edges();
    }

    /// Transposed variable-major edge ids: for group g (degree deg), lane i,
    /// slot d, einfoT_[base_[g] + d·P + i] is the edge id of information bit
    /// g·P+i's d-th edge — contiguous across lanes for vector loads. The
    /// group-aligned degree boundary is a CodeParams::validate invariant.
    void build_transposed_edges() {
        const auto& cp = code_->params();
        const int P = cp.parallelism;
        const int G = cp.groups();
        einfoT_base_.resize(static_cast<std::size_t>(G));
        std::size_t off = 0;
        for (int g = 0; g < G; ++g) {
            const int deg = code_->info_degree(g * P);
            einfoT_base_[static_cast<std::size_t>(g)] = off;
            off += static_cast<std::size_t>(deg) * static_cast<std::size_t>(P);
        }
        einfoT_.resize(off);
        for (int g = 0; g < G; ++g) {
            const int deg = code_->info_degree(g * P);
            const std::size_t base = einfoT_base_[static_cast<std::size_t>(g)];
            for (int i = 0; i < P; ++i) {
                const long long* edges = code_->info_edges(g * P + i);
                for (int d = 0; d < deg; ++d)
                    einfoT_[base + static_cast<std::size_t>(d) * P + static_cast<std::size_t>(i)] =
                        static_cast<std::int32_t>(edges[d]);
            }
        }
    }

    // ----------------------------------------------------------- iteration

    void decode_into(std::span<const QLLR> ch, DecodeResult& out) {
        const auto& cp = code_->params();
        DVBS2_REQUIRE(ch.size() == static_cast<std::size_t>(cp.n), "channel length mismatch");
        load_channel(ch);
        reset_state();

        int it = 0;
        bool converged = false;
        for (; it < cfg_.max_iterations && !converged;) {
            iterate();
            ++it;
            const bool need_harden =
                cfg_.early_stop || it == cfg_.max_iterations || static_cast<bool>(observer_);
            if (need_harden) {
                harden(out.codeword);
                // Shared syndrome routine (core/syndrome.hpp): counting mode
                // only under an observer, exactly like the scalar reference.
                const SyndromeOutcome syn =
                    check_syndrome(*code_, out.codeword, static_cast<bool>(observer_));
                if (observer_) {
                    IterationTrace trace;
                    trace.iteration = it;
                    trace.unsatisfied_checks = syn.unsatisfied;
                    trace.mean_abs_posterior = mean_abs_posterior();
                    observer_(trace);
                }
                converged = cfg_.early_stop && syn.satisfied;
            }
        }
        if (cfg_.max_iterations == 0) harden(out.codeword);
        if (!cfg_.early_stop && cfg_.max_iterations > 0)
            converged = check_syndrome(*code_, out.codeword).satisfied;
        out.iterations = it;
        out.converged = converged;
        const auto k = static_cast<std::size_t>(cp.k);
        if (out.info_bits.size() != k)
            out.info_bits = util::BitVec(k);
        else
            out.info_bits.clear();
        for (std::size_t v = 0; v < k; ++v)
            if (out.codeword.get(v)) out.info_bits.set(v, true);
    }

    void run_iterations(std::span<const QLLR> ch, int iters) {
        const auto& cp = code_->params();
        DVBS2_REQUIRE(ch.size() == static_cast<std::size_t>(cp.n), "channel length mismatch");
        load_channel(ch);
        reset_state();
        for (int it = 0; it < iters; ++it) iterate();
    }

    /// One full iteration in the (possibly transformed) schedule order.
    /// Layered folds the variable update into its check sweep, so it has no
    /// separate variable phase.
    void iterate() {
        if (cfg_.schedule != Schedule::Layered) variable_phase();
        check_phase();
    }

    void load_channel(std::span<const QLLR> ch) {
        const auto& cp = code_->params();
        for (int v = 0; v < cp.k; ++v)
            ch_in_[static_cast<std::size_t>(v)] = ch[static_cast<std::size_t>(v)];
        for (int j = 0; j < cp.m(); ++j)
            ch_p_[static_cast<std::size_t>(j)] = ch[static_cast<std::size_t>(cp.k + j)];
    }

    void reset_state() {
        std::fill(c2v_.begin(), c2v_.end(), 0);
        std::fill(v2c_.begin(), v2c_.end(), 0);
        std::fill(down_.begin(), down_.end(), 0);
        std::fill(up_.begin(), up_.end(), 0);
        if (cfg_.schedule == Schedule::Layered) init_layered_totals();
    }

    // ------------------------------------------------------ variable phase

    /// Information-node update vectorized across the lanes of each group
    /// (lane = information bit g·P+i, W bits in lockstep): wide totals with
    /// one saturation per produced message, exactly Eq. 4.
    void variable_phase() {
        const auto& cp = code_->params();
        const int P = cp.parallelism;
        const int G = cp.groups();
        for (int g = 0; g < G; ++g) {
            const int v0 = g * P;
            const int deg = code_->info_degree(v0);
            const std::int32_t* et = einfoT_.data() + einfoT_base_[static_cast<std::size_t>(g)];
            int i = 0;
            for (; i + W <= P; i += W) {
                Reg msgs[kMaxInfoDegree];
                Reg total = V::load(ch_in_.data() + v0 + i);
                for (int d = 0; d < deg; ++d) {
                    msgs[d] = V::gather(c2v_.data(), V::load(et + d * P + i));
                    total = V::add(total, msgs[d]);
                }
                for (int d = 0; d < deg; ++d) {
                    QLLR tmp[W];
                    V::store(tmp, lanes_.narrow(V::sub(total, msgs[d])));
                    const std::int32_t* ep = et + d * P + i;
                    for (int l = 0; l < W; ++l) v2c_[static_cast<std::size_t>(ep[l])] = tmp[l];
                }
            }
            for (; i < P; ++i) {  // remainder lanes: scalar reference path
                const int v = v0 + i;
                const long long* edges = code_->info_edges(v);
                QLLR total = ch_in_[static_cast<std::size_t>(v)];
                for (int d = 0; d < deg; ++d) total += c2v_[static_cast<std::size_t>(edges[d])];
                for (int d = 0; d < deg; ++d) {
                    const auto e = static_cast<std::size_t>(edges[d]);
                    v2c_[e] = arith_.narrow(total - c2v_[e]);
                }
            }
        }
        if (cfg_.schedule == Schedule::TwoPhase) {
            // Parity nodes are degree-2 variable nodes. up_[m−1] is
            // invariantly zero and pn_c_[m−1] is never read, so full blocks
            // need no last-node special case.
            const int m = cp.m();
            int j = 0;
            for (; j + W <= m; j += W) {
                const Reg chp = V::load(ch_p_.data() + j);
                V::store(pn_a_.data() + j, lanes_.narrow(V::add(chp, V::load(up_.data() + j))));
                V::store(pn_c_.data() + j, lanes_.narrow(V::add(chp, V::load(down_.data() + j))));
            }
            for (; j < m; ++j) {
                const QLLR chp = ch_p_[static_cast<std::size_t>(j)];
                const QLLR up = j < m - 1 ? up_[static_cast<std::size_t>(j)] : 0;
                pn_a_[static_cast<std::size_t>(j)] = arith_.narrow(chp + up);
                if (j < m - 1)
                    pn_c_[static_cast<std::size_t>(j)] =
                        arith_.narrow(chp + down_[static_cast<std::size_t>(j)]);
            }
        }
    }

    // --------------------------------------------------------- check phase

    void check_phase() {
        if (cfg_.schedule == Schedule::Layered) {
            check_phase_layered();  // posteriors ARE the running totals
            return;
        }
        begin_posterior();
        switch (cfg_.schedule) {
            case Schedule::TwoPhase: check_phase_two_phase(); break;
            case Schedule::ZigzagForward: check_phase_zigzag_forward(); break;
            case Schedule::ZigzagSegmented: check_phase_zigzag_segmented(); break;
            case Schedule::ZigzagMap: check_phase_map(); break;
            case Schedule::Layered: break;  // handled above
        }
        finish_parity_posterior();
    }

    /// Finalizes and scatters a block's information-edge outputs: lane l's
    /// edge for slot t is e_base + l·e_stride + t. Scalar stores (the write
    /// pattern is strided) on top of vectorized finalize; the posterior
    /// accumulation is exact integer addition, so order does not matter.
    void scatter_block(const Reg* outs, int kc, long long e_base, long long e_stride) {
        for (int t = 0; t < kc; ++t) {
            QLLR tmp[W];
            V::store(tmp, lanes_.finalize(outs[t]));
            for (int l = 0; l < W; ++l) {
                const long long e = e_base + static_cast<long long>(l) * e_stride + t;
                c2v_[static_cast<std::size_t>(e)] = tmp[l];
                post_in_[static_cast<std::size_t>(code_->edge_variable(e))] += tmp[l];
            }
        }
    }

    /// Two-phase flooding: every check node reads only variable-phase
    /// outputs, so all m CNs are independent — vector blocks of W
    /// consecutive CNs, with CN 0 (no left parity input, degree kc+1) and
    /// the remainder on the scalar reference path.
    void check_phase_two_phase() {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int kc = code_->check_in_degree();
        scalar_cn_two_phase(0);
        QLLR iota_kc[W];
        for (int l = 0; l < W; ++l) iota_kc[l] = l * kc;
        const Reg stride_kc = V::load(iota_kc);
        int j0 = 1;
        for (; j0 + W <= m; j0 += W) {
            Reg ins[kMaxCheckDegree];
            Reg outs[kMaxCheckDegree];
            Reg pre[kMaxCheckDegree];
            Reg suf[kMaxCheckDegree];
            for (int t = 0; t < kc; ++t)
                ins[t] = V::gather(v2c_.data(), V::add(V::broadcast(j0 * kc + t), stride_kc));
            ins[kc] = V::load(pn_c_.data() + j0 - 1);      // left zigzag input
            ins[kc + 1] = V::load(pn_a_.data() + j0);      // right zigzag input
            compute_extrinsics(lanes_, ins, kc + 2, outs, pre, suf);
            scatter_block(outs, kc, static_cast<long long>(j0) * kc, kc);
            V::store(down_.data() + j0, lanes_.finalize(outs[kc + 1]));
            V::store(up_.data() + j0 - 1, lanes_.finalize(outs[kc]));
        }
        for (; j0 < m; ++j0) scalar_cn_two_phase(j0);
    }

    /// Segmented zigzag: FU f sweeps CNs f·q..(f+1)·q−1; lanes are W
    /// consecutive FUs in lockstep at common step r (see file header for the
    /// boundary snapshots). FU 0 (contains CN 0's short input list) and the
    /// remainder FUs run the scalar reference path in ascending order.
    void check_phase_zigzag_segmented() {
        const auto& cp = code_->params();
        const int P = cp.parallelism;
        const int q = cp.q;
        const int m = cp.m();
        const int kc = code_->check_in_degree();
        for (int f = 1; f < P; ++f)
            boundary_snapshot_[static_cast<std::size_t>(f)] =
                down_[static_cast<std::size_t>(f * q - 1)];
        for (int j = 0; j < q; ++j) scalar_cn_zigzag(j, /*segmented=*/true);

        QLLR iota[W];
        for (int l = 0; l < W; ++l) iota[l] = l * q;
        const Reg stride_q = V::load(iota);
        for (int l = 0; l < W; ++l) iota[l] = l * q * kc;
        const Reg stride_qkc = V::load(iota);

        int f0 = 1;
        for (; f0 + W <= P; f0 += W) {
            QLLR upsnap[W];
            for (int l = 0; l < W; ++l)
                upsnap[l] = up_[static_cast<std::size_t>((f0 + l + 1) * q - 1)];
            const Reg up_boundary = V::load(upsnap);
            for (int r = 0; r < q; ++r) {
                const int jb = f0 * q + r;  // lane l works on CN jb + l·q
                Reg ins[kMaxCheckDegree];
                Reg outs[kMaxCheckDegree];
                Reg pre[kMaxCheckDegree];
                Reg suf[kMaxCheckDegree];
                for (int t = 0; t < kc; ++t)
                    ins[t] =
                        V::gather(v2c_.data(), V::add(V::broadcast(jb * kc + t), stride_qkc));
                const Reg chp_prev =
                    V::gather(ch_p_.data(), V::add(V::broadcast(jb - 1), stride_q));
                const Reg d_prev =
                    r == 0 ? V::load(boundary_snapshot_.data() + f0)
                           : V::gather(down_.data(), V::add(V::broadcast(jb - 1), stride_q));
                ins[kc] = lanes_.narrow(V::add(chp_prev, d_prev));
                const Reg chp = V::gather(ch_p_.data(), V::add(V::broadcast(jb), stride_q));
                const Reg up =
                    r == q - 1 ? up_boundary
                               : V::gather(up_.data(), V::add(V::broadcast(jb), stride_q));
                ins[kc + 1] = lanes_.narrow(V::add(chp, up));
                compute_extrinsics(lanes_, ins, kc + 2, outs, pre, suf);
                scatter_block(outs, kc, static_cast<long long>(jb) * kc,
                              static_cast<long long>(q) * kc);
                QLLR dtmp[W];
                QLLR utmp[W];
                V::store(dtmp, lanes_.finalize(outs[kc + 1]));
                V::store(utmp, lanes_.finalize(outs[kc]));
                for (int l = 0; l < W; ++l) {
                    down_[static_cast<std::size_t>(jb + l * q)] = dtmp[l];
                    up_[static_cast<std::size_t>(jb + l * q - 1)] = utmp[l];
                }
            }
        }
        for (int j = f0 * q; j < m; ++j) scalar_cn_zigzag(j, /*segmented=*/true);
    }

    // --------------------------------- certified transformed-order paths
    //
    // The rewrite certificates for these schedules serialize the chain-
    // bearing check phase onto one lane in program order (see file header),
    // so the executor's chain sweeps below ARE the certified transformed
    // order — and byte-for-byte the MpDecoder<FixedArith> reference bodies,
    // which is what makes the decode bit-identical to the scalar engine.

    /// Plain forward zigzag: one serial chain over all m CNs, each reading
    /// the fresh down_[j−1] its predecessor just wrote.
    void check_phase_zigzag_forward() {
        const int m = code_->params().m();
        for (int j = 0; j < m; ++j) scalar_cn_zigzag(j, /*segmented=*/false);
    }

    /// Zigzag BCJR/MAP: forward recursion storing fwd_d_, then a backward
    /// sweep emitting the extrinsics in descending CN order.
    void check_phase_map() {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int kc = code_->check_in_degree();
        QLLR ins[kMaxCheckDegree];
        QLLR outs[kMaxCheckDegree];
        QLLR pre[kMaxCheckDegree];
        QLLR suf[kMaxCheckDegree];
        // Forward sweep: fresh d_j along the chain (right input from the
        // previous iteration's backward messages).
        for (int j = 0; j < m; ++j) {
            const long long base = static_cast<long long>(j) * kc;
            int d = 0;
            for (int t = 0; t < kc; ++t) ins[d++] = v2c_[static_cast<std::size_t>(base + t)];
            if (j > 0)
                ins[d++] = arith_.narrow(ch_p_[static_cast<std::size_t>(j - 1)] +
                                         fwd_d_[static_cast<std::size_t>(j - 1)]);
            const int right_pos = d;
            const QLLR chp = ch_p_[static_cast<std::size_t>(j)];
            ins[d++] = j < m - 1 ? arith_.narrow(chp + up_[static_cast<std::size_t>(j)])
                                 : arith_.narrow(chp);
            compute_extrinsics(arith_, ins, d, outs, pre, suf);
            fwd_d_[static_cast<std::size_t>(j)] = arith_.finalize(outs[right_pos]);
        }
        // Backward sweep: fresh u_j, fresh outputs to the information nodes.
        for (int j = m - 1; j >= 0; --j) {
            const long long base = static_cast<long long>(j) * kc;
            int d = 0;
            for (int t = 0; t < kc; ++t) ins[d++] = v2c_[static_cast<std::size_t>(base + t)];
            int left_pos = -1;
            if (j > 0) {
                left_pos = d;
                ins[d++] = arith_.narrow(ch_p_[static_cast<std::size_t>(j - 1)] +
                                         fwd_d_[static_cast<std::size_t>(j - 1)]);
            }
            const QLLR chp = ch_p_[static_cast<std::size_t>(j)];
            ins[d++] = j < m - 1 ? arith_.narrow(chp + up_[static_cast<std::size_t>(j)])
                                 : arith_.narrow(chp);
            compute_extrinsics(arith_, ins, d, outs, pre, suf);
            scatter_scalar(base, outs, kc);
            if (j > 0) up_[static_cast<std::size_t>(j - 1)] = arith_.finalize(outs[left_pos]);
        }
        for (int j = 0; j < m; ++j)
            down_[static_cast<std::size_t>(j)] = fwd_d_[static_cast<std::size_t>(j)];
    }

    /// Layered running posterior totals, (re)seeded from the channel at
    /// decode start (mirror of MpDecoder::init_layered_totals; FixedArith's
    /// Wide is QLLR, so the totals match the reference bit-for-bit).
    void init_layered_totals() {
        const auto& cp = code_->params();
        for (int v = 0; v < cp.k; ++v)
            post_in_[static_cast<std::size_t>(v)] = ch_in_[static_cast<std::size_t>(v)];
        for (int j = 0; j < cp.m(); ++j)
            post_p_[static_cast<std::size_t>(j)] = ch_p_[static_cast<std::size_t>(j)];
    }

    /// Row-layered sweep: each CN reads fresh variable-to-check messages as
    /// (running total − its own previous contribution), then folds the new
    /// extrinsics back into the totals immediately.
    void check_phase_layered() {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int kc = code_->check_in_degree();
        QLLR ins[kMaxCheckDegree];
        QLLR outs[kMaxCheckDegree];
        QLLR pre[kMaxCheckDegree];
        QLLR suf[kMaxCheckDegree];
        for (int j = 0; j < m; ++j) {
            const long long base = static_cast<long long>(j) * kc;
            int d = 0;
            for (int t = 0; t < kc; ++t) {
                const auto e = static_cast<std::size_t>(base + t);
                const int v = code_->edge_variable(static_cast<long long>(e));
                ins[d++] = arith_.narrow(post_in_[static_cast<std::size_t>(v)] - c2v_[e]);
            }
            int left_pos = -1;
            if (j > 0) {
                left_pos = d;
                ins[d++] = arith_.narrow(post_p_[static_cast<std::size_t>(j - 1)] -
                                         up_[static_cast<std::size_t>(j - 1)]);
            }
            const int right_pos = d;
            ins[d++] = arith_.narrow(post_p_[static_cast<std::size_t>(j)] -
                                     down_[static_cast<std::size_t>(j)]);
            compute_extrinsics(arith_, ins, d, outs, pre, suf);
            for (int t = 0; t < kc; ++t) {
                const auto e = static_cast<std::size_t>(base + t);
                const int v = code_->edge_variable(static_cast<long long>(e));
                const QLLR fresh = arith_.finalize(outs[t]);
                post_in_[static_cast<std::size_t>(v)] += fresh - c2v_[e];
                c2v_[e] = fresh;
            }
            if (j > 0) {
                const QLLR fresh = arith_.finalize(outs[left_pos]);
                post_p_[static_cast<std::size_t>(j - 1)] +=
                    fresh - up_[static_cast<std::size_t>(j - 1)];
                up_[static_cast<std::size_t>(j - 1)] = fresh;
            }
            const QLLR fresh_d = arith_.finalize(outs[right_pos]);
            post_p_[static_cast<std::size_t>(j)] += fresh_d - down_[static_cast<std::size_t>(j)];
            down_[static_cast<std::size_t>(j)] = fresh_d;
        }
    }

    // Scalar reference paths: byte-for-byte the MpDecoder<FixedArith> loop
    // bodies, used for CN 0 / FU 0 and block remainders.

    void scalar_cn_two_phase(int j) {
        const int kc = code_->check_in_degree();
        QLLR ins[kMaxCheckDegree];
        QLLR outs[kMaxCheckDegree];
        QLLR pre[kMaxCheckDegree];
        QLLR suf[kMaxCheckDegree];
        const long long base = static_cast<long long>(j) * kc;
        int d = 0;
        for (int t = 0; t < kc; ++t) ins[d++] = v2c_[static_cast<std::size_t>(base + t)];
        const int left_pos = j > 0 ? d : -1;
        if (j > 0) ins[d++] = pn_c_[static_cast<std::size_t>(j - 1)];
        const int right_pos = d;
        ins[d++] = pn_a_[static_cast<std::size_t>(j)];
        compute_extrinsics(arith_, ins, d, outs, pre, suf);
        scatter_scalar(base, outs, kc);
        down_[static_cast<std::size_t>(j)] = arith_.finalize(outs[right_pos]);
        if (j > 0) up_[static_cast<std::size_t>(j - 1)] = arith_.finalize(outs[left_pos]);
    }

    void scalar_cn_zigzag(int j, bool segmented) {
        const auto& cp = code_->params();
        const int m = cp.m();
        const int q = cp.q;
        const int kc = code_->check_in_degree();
        QLLR ins[kMaxCheckDegree];
        QLLR outs[kMaxCheckDegree];
        QLLR pre[kMaxCheckDegree];
        QLLR suf[kMaxCheckDegree];
        const long long base = static_cast<long long>(j) * kc;
        int d = 0;
        for (int t = 0; t < kc; ++t) ins[d++] = v2c_[static_cast<std::size_t>(base + t)];
        int left_pos = -1;
        if (j > 0) {
            const bool at_boundary = segmented && (j % q == 0);
            const QLLR d_prev = at_boundary ? boundary_snapshot_[static_cast<std::size_t>(j / q)]
                                            : down_[static_cast<std::size_t>(j - 1)];
            left_pos = d;
            ins[d++] = arith_.narrow(ch_p_[static_cast<std::size_t>(j - 1)] + d_prev);
        }
        const int right_pos = d;
        const QLLR chp = ch_p_[static_cast<std::size_t>(j)];
        ins[d++] = j < m - 1 ? arith_.narrow(chp + up_[static_cast<std::size_t>(j)])
                             : arith_.narrow(chp);
        compute_extrinsics(arith_, ins, d, outs, pre, suf);
        scatter_scalar(base, outs, kc);
        down_[static_cast<std::size_t>(j)] = arith_.finalize(outs[right_pos]);
        if (j > 0) up_[static_cast<std::size_t>(j - 1)] = arith_.finalize(outs[left_pos]);
    }

    void scatter_scalar(long long e_base, const QLLR* outs, int kc) {
        for (int t = 0; t < kc; ++t) {
            const auto e = static_cast<std::size_t>(e_base + t);
            const QLLR msg = arith_.finalize(outs[t]);
            c2v_[e] = msg;
            post_in_[static_cast<std::size_t>(code_->edge_variable(static_cast<long long>(e)))] +=
                msg;
        }
    }

    // ------------------------------------------------- posterior / harden

    void begin_posterior() {
        const auto& cp = code_->params();
        for (int v = 0; v < cp.k; ++v)
            post_in_[static_cast<std::size_t>(v)] = ch_in_[static_cast<std::size_t>(v)];
    }

    void finish_parity_posterior() {
        const auto& cp = code_->params();
        const int m = cp.m();
        for (int j = 0; j < m; ++j) {
            QLLR t = ch_p_[static_cast<std::size_t>(j)] + down_[static_cast<std::size_t>(j)];
            if (j < m - 1) t += up_[static_cast<std::size_t>(j)];
            post_p_[static_cast<std::size_t>(j)] = t;
        }
    }

    void harden(util::BitVec& codeword) const {
        const auto& cp = code_->params();
        if (codeword.size() != static_cast<std::size_t>(cp.n))
            codeword = util::BitVec(static_cast<std::size_t>(cp.n));
        else
            codeword.clear();
        if (cfg_.max_iterations == 0) {
            for (int v = 0; v < cp.k; ++v)
                if (ch_in_[static_cast<std::size_t>(v)] < 0)
                    codeword.set(static_cast<std::size_t>(v), true);
            for (int j = 0; j < cp.m(); ++j)
                if (ch_p_[static_cast<std::size_t>(j)] < 0)
                    codeword.set(static_cast<std::size_t>(cp.k + j), true);
            return;
        }
        for (int v = 0; v < cp.k; ++v)
            if (post_in_[static_cast<std::size_t>(v)] < 0)
                codeword.set(static_cast<std::size_t>(v), true);
        for (int j = 0; j < cp.m(); ++j)
            if (post_p_[static_cast<std::size_t>(j)] < 0)
                codeword.set(static_cast<std::size_t>(cp.k + j), true);
    }

    double mean_abs_posterior() const {
        double sum = 0.0;
        for (const QLLR w : post_in_) sum += w < 0 ? -static_cast<double>(w) : w;
        for (const QLLR w : post_p_) sum += w < 0 ? -static_cast<double>(w) : w;
        return sum / static_cast<double>(post_in_.size() + post_p_.size());
    }

    const code::Dvbs2Code* code_;
    DecoderConfig cfg_;
    quant::BoxplusTable table_;
    FixedArith arith_;
    sv::LaneFixedArith<V> lanes_;

    std::vector<QLLR> c2v_, v2c_;
    std::vector<QLLR> down_, up_;
    std::vector<QLLR> pn_a_, pn_c_;
    std::vector<QLLR> fwd_d_;  // MAP forward storage
    std::vector<QLLR> boundary_snapshot_;
    std::vector<QLLR> ch_in_, ch_p_;
    std::vector<QLLR> post_in_, post_p_;
    std::vector<std::int32_t> einfoT_;
    std::vector<std::size_t> einfoT_base_;
    std::function<void(const IterationTrace&)> observer_;
};

SimdFixedDecoder::SimdFixedDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg,
                                   const quant::QuantSpec& spec)
    : impl_(std::make_unique<Impl>(code, cfg, spec)) {}
SimdFixedDecoder::~SimdFixedDecoder() = default;
SimdFixedDecoder::SimdFixedDecoder(SimdFixedDecoder&&) noexcept = default;
SimdFixedDecoder& SimdFixedDecoder::operator=(SimdFixedDecoder&&) noexcept = default;

DecodeResult SimdFixedDecoder::decode_values(const std::vector<quant::QLLR>& ch) {
    DecodeResult result;
    impl_->decode_into(ch, result);
    return result;
}

void SimdFixedDecoder::decode_into(std::span<const quant::QLLR> ch, DecodeResult& out) {
    impl_->decode_into(ch, out);
}

void SimdFixedDecoder::run_iterations(std::span<const quant::QLLR> ch, int iters) {
    impl_->run_iterations(ch, iters);
}

const std::vector<quant::QLLR>& SimdFixedDecoder::c2v_messages() const noexcept {
    return impl_->c2v_;
}
const std::vector<quant::QLLR>& SimdFixedDecoder::v2c_messages() const noexcept {
    return impl_->v2c_;
}
const std::vector<quant::QLLR>& SimdFixedDecoder::backward_messages() const noexcept {
    return impl_->up_;
}

void SimdFixedDecoder::set_observer(std::function<void(const IterationTrace&)> observer) {
    impl_->observer_ = std::move(observer);
}

}  // namespace dvbs2::core
