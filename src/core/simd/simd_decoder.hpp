// Group-parallel SIMD fixed-point decoder backend.
//
// Exploits the structural parallelism the paper's IP core is built on: the
// Eq. 2 group-shift property makes the 360 check nodes of a group (and the
// 360 information nodes of a group) independent within one update phase, so
// the hardware processes them on P parallel functional units. Here one SIMD
// lane plays the role of one functional unit: lanes advance in lockstep
// through the same local schedule step, and the cyclic-shift network of the
// hardware becomes strided vector gathers into the canonical message
// arrays. The per-check-node serial prefix/suffix combine (core/kernels.hpp)
// is unchanged — only independent check nodes are spread across lanes — so
// every message is bit-exact with the scalar MpDecoder<FixedArith>.
//
// Supported schedules: all five. TwoPhase (all check nodes independent →
// vector blocks of consecutive CNs) and ZigzagSegmented (lane = functional
// unit sweeping its q-CN segment; segment-boundary values are snapshotted
// exactly like the scalar reference's boundary_snapshot_, plus a per-block
// up-boundary snapshot that preserves the previous-iteration read the
// sequential sweep performs naturally) are natively lockstep-legal.
// ZigzagForward, ZigzagMap, and Layered run in the certified transformed
// order of analysis/ir/transform.hpp: the independent variable phase is
// compacted into P-wide vector levels while the serially dependent check
// chain executes on one lane in program order (the certificate's per-phase
// widths record the honest parallelism; construction throws for any
// schedule without a native or certified lockstep mapping).
//
// This header is intrinsic-free; all target-specific code lives in
// simd_decoder.cpp, the only TU built with SIMD compiler flags.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "code/tanner.hpp"
#include "core/types.hpp"
#include "quant/fixed.hpp"

namespace dvbs2::core {

/// Name of the vector backend compiled into this build: "avx2", "sse4",
/// "neon", or "scalar" (the portable fallback).
const char* simd_backend_name() noexcept;

/// Number of lanes (functional units per vector op) of that backend.
int simd_backend_width() noexcept;

/// SIMD engine with the same state layout and iteration semantics as
/// MpDecoder<FixedArith>. Use via core::FixedDecoder with
/// DecoderConfig::backend = DecoderBackend::Simd; direct use is for the
/// bit-exactness tests and benches that compare message state.
class SimdFixedDecoder {
public:
    /// The code object must outlive the decoder. Throws unless the schedule
    /// is natively lockstep-legal or carries a certified rewrite
    /// (analysis::ir::group_parallel_supported) — true for all five shipped
    /// schedules.
    SimdFixedDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg,
                     const quant::QuantSpec& spec = quant::kQuant6);
    ~SimdFixedDecoder();
    SimdFixedDecoder(SimdFixedDecoder&&) noexcept;
    SimdFixedDecoder& operator=(SimdFixedDecoder&&) noexcept;

    /// Decodes from already-quantized channel values (size N); identical
    /// result semantics to MpDecoder::decode_values.
    DecodeResult decode_values(const std::vector<quant::QLLR>& ch);

    /// Non-allocating variant into caller-owned result storage (identical
    /// semantics to MpDecoder::decode_into, including the observer caveat).
    void decode_into(std::span<const quant::QLLR> ch, DecodeResult& out);

    /// Runs exactly `iters` iterations without early stopping or hardening
    /// (for message-level bit-exactness comparisons).
    void run_iterations(std::span<const quant::QLLR> ch, int iters);

    /// Read-only message state in the canonical (scalar-identical) layout.
    const std::vector<quant::QLLR>& c2v_messages() const noexcept;
    const std::vector<quant::QLLR>& v2c_messages() const noexcept;
    const std::vector<quant::QLLR>& backward_messages() const noexcept;

    /// Installs a per-iteration observer (same tracing semantics as the
    /// scalar engine; tracing must not change any decode result).
    void set_observer(std::function<void(const IterationTrace&)> observer);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace dvbs2::core
