// Portable fixed-width integer vector layer for the SIMD decoder backend.
//
// Each backend exposes the same static interface over a register of
// `width` lanes of int32 (the raw quantized-LLR type): loads/stores,
// saturating-add building blocks (add/sub/min/max/abs), sign manipulation
// (xor/and/srai/cmpgt), a multiply for the normalized-min-sum scale, and a
// gather for the boxplus correction LUT. The backend is chosen at configure
// time (CMake option DVBS2_SIMD → one DVBS2_SIMD_* macro); exactly one TU
// (simd_decoder.cpp) includes this header, so the rest of the tree builds
// without target-specific compiler flags.
//
// Every operation is integer-exact, so any backend produces bit-identical
// messages; the scalar fallback doubles as the reference for platforms
// without intrinsics.
#pragma once

#include <cstdint>

#if !defined(DVBS2_SIMD_AVX2) && !defined(DVBS2_SIMD_SSE4) && !defined(DVBS2_SIMD_NEON) && \
    !defined(DVBS2_SIMD_SCALAR)
#define DVBS2_SIMD_SCALAR
#endif

#if defined(DVBS2_SIMD_AVX2) || defined(DVBS2_SIMD_SSE4)
#include <immintrin.h>
#elif defined(DVBS2_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace dvbs2::core::simd {

/// Reference backend: plain lane loops the compiler may auto-vectorize.
/// `W` is a power of two dividing the group parallelism handled in blocks.
template <int W>
struct VecScalar {
    static constexpr int width = W;
    struct reg {
        std::int32_t lane[W];
    };

    static reg load(const std::int32_t* p) {
        reg r;
        for (int i = 0; i < W; ++i) r.lane[i] = p[i];
        return r;
    }
    static void store(std::int32_t* p, reg v) {
        for (int i = 0; i < W; ++i) p[i] = v.lane[i];
    }
    static reg broadcast(std::int32_t x) {
        reg r;
        for (int i = 0; i < W; ++i) r.lane[i] = x;
        return r;
    }
    static reg add(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] += b.lane[i];
        return a;
    }
    static reg sub(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] -= b.lane[i];
        return a;
    }
    static reg min(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
        return a;
    }
    static reg max(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
        return a;
    }
    static reg abs_(reg a) {
        for (int i = 0; i < W; ++i) a.lane[i] = a.lane[i] < 0 ? -a.lane[i] : a.lane[i];
        return a;
    }
    static reg xor_(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] ^= b.lane[i];
        return a;
    }
    static reg and_(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] &= b.lane[i];
        return a;
    }
    static reg mullo(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] *= b.lane[i];
        return a;
    }
    template <int K>
    static reg srai(reg a) {
        for (int i = 0; i < W; ++i) a.lane[i] >>= K;
        return a;
    }
    /// Per-lane all-ones where a > b, zero elsewhere.
    static reg cmpgt(reg a, reg b) {
        for (int i = 0; i < W; ++i) a.lane[i] = a.lane[i] > b.lane[i] ? -1 : 0;
        return a;
    }
    static reg gather(const std::int32_t* base, reg idx) {
        reg r;
        for (int i = 0; i < W; ++i) r.lane[i] = base[idx.lane[i]];
        return r;
    }
};

#if defined(DVBS2_SIMD_AVX2)

struct VecAvx2 {
    static constexpr int width = 8;
    using reg = __m256i;

    static reg load(const std::int32_t* p) {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }
    static void store(std::int32_t* p, reg v) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
    static reg broadcast(std::int32_t x) { return _mm256_set1_epi32(x); }
    static reg add(reg a, reg b) { return _mm256_add_epi32(a, b); }
    static reg sub(reg a, reg b) { return _mm256_sub_epi32(a, b); }
    static reg min(reg a, reg b) { return _mm256_min_epi32(a, b); }
    static reg max(reg a, reg b) { return _mm256_max_epi32(a, b); }
    static reg abs_(reg a) { return _mm256_abs_epi32(a); }
    static reg xor_(reg a, reg b) { return _mm256_xor_si256(a, b); }
    static reg and_(reg a, reg b) { return _mm256_and_si256(a, b); }
    static reg mullo(reg a, reg b) { return _mm256_mullo_epi32(a, b); }
    template <int K>
    static reg srai(reg a) {
        return _mm256_srai_epi32(a, K);
    }
    static reg cmpgt(reg a, reg b) { return _mm256_cmpgt_epi32(a, b); }
    static reg gather(const std::int32_t* base, reg idx) {
        return _mm256_i32gather_epi32(base, idx, 4);
    }
};

using ActiveVec = VecAvx2;
inline constexpr const char* kBackendName = "avx2";

#elif defined(DVBS2_SIMD_SSE4)

struct VecSse41 {
    static constexpr int width = 4;
    using reg = __m128i;

    static reg load(const std::int32_t* p) {
        return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    }
    static void store(std::int32_t* p, reg v) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
    }
    static reg broadcast(std::int32_t x) { return _mm_set1_epi32(x); }
    static reg add(reg a, reg b) { return _mm_add_epi32(a, b); }
    static reg sub(reg a, reg b) { return _mm_sub_epi32(a, b); }
    static reg min(reg a, reg b) { return _mm_min_epi32(a, b); }
    static reg max(reg a, reg b) { return _mm_max_epi32(a, b); }
    static reg abs_(reg a) { return _mm_abs_epi32(a); }
    static reg xor_(reg a, reg b) { return _mm_xor_si128(a, b); }
    static reg and_(reg a, reg b) { return _mm_and_si128(a, b); }
    static reg mullo(reg a, reg b) { return _mm_mullo_epi32(a, b); }
    template <int K>
    static reg srai(reg a) {
        return _mm_srai_epi32(a, K);
    }
    static reg cmpgt(reg a, reg b) { return _mm_cmpgt_epi32(a, b); }
    /// SSE4.1 has no gather instruction; emulate with lane loads.
    static reg gather(const std::int32_t* base, reg idx) {
        alignas(16) std::int32_t i[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(i), idx);
        return _mm_setr_epi32(base[i[0]], base[i[1]], base[i[2]], base[i[3]]);
    }
};

using ActiveVec = VecSse41;
inline constexpr const char* kBackendName = "sse4";

#elif defined(DVBS2_SIMD_NEON)

struct VecNeon {
    static constexpr int width = 4;
    using reg = int32x4_t;

    static reg load(const std::int32_t* p) { return vld1q_s32(p); }
    static void store(std::int32_t* p, reg v) { vst1q_s32(p, v); }
    static reg broadcast(std::int32_t x) { return vdupq_n_s32(x); }
    static reg add(reg a, reg b) { return vaddq_s32(a, b); }
    static reg sub(reg a, reg b) { return vsubq_s32(a, b); }
    static reg min(reg a, reg b) { return vminq_s32(a, b); }
    static reg max(reg a, reg b) { return vmaxq_s32(a, b); }
    static reg abs_(reg a) { return vabsq_s32(a); }
    static reg xor_(reg a, reg b) { return veorq_s32(a, b); }
    static reg and_(reg a, reg b) { return vandq_s32(a, b); }
    static reg mullo(reg a, reg b) { return vmulq_s32(a, b); }
    template <int K>
    static reg srai(reg a) {
        return vshrq_n_s32(a, K);
    }
    static reg cmpgt(reg a, reg b) {
        return vreinterpretq_s32_u32(vcgtq_s32(a, b));
    }
    /// NEON has no gather; emulate with lane loads.
    static reg gather(const std::int32_t* base, reg idx) {
        alignas(16) std::int32_t i[4];
        vst1q_s32(i, idx);
        const std::int32_t v[4] = {base[i[0]], base[i[1]], base[i[2]], base[i[3]]};
        return vld1q_s32(v);
    }
};

using ActiveVec = VecNeon;
inline constexpr const char* kBackendName = "neon";

#else

using ActiveVec = VecScalar<8>;
inline constexpr const char* kBackendName = "scalar";

#endif

}  // namespace dvbs2::core::simd
