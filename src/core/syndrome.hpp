// The one post-iteration syndrome evaluation shared by every decode
// backend.
//
// All three historic call sites of the scalar MpDecoder (the tracing path,
// the early-stop path and the no-early-stop post-loop fallback) and the
// SIMD group-parallel decoder route through check_syndrome(), so the
// convergence decision cannot drift between backends. The frame-per-lane
// batch decoder evaluates the same predicate lane-parallel from the
// posterior sign bits (count_unsatisfied in batch_decoder.cpp); its
// agreement with this routine is pinned by the bit-identical
// iteration-count invariant of tests/test_convergence.cpp.
//
// Two cost/precision flavors, selected by `count_unsatisfied`:
//   * false (the decode hot path): the allocation-free early-exit walk of
//     code::Dvbs2Code::is_codeword — O(E) worst case but it bails at the
//     first unsatisfied check, which is almost immediate for frames still
//     far from convergence. `unsatisfied` is reported as -1 (not counted).
//   * true (tracing only): the full syndrome weight via Dvbs2Code::syndrome,
//     which materializes the M-bit syndrome vector (allocates) and never
//     exits early — observers need the exact count, not just a verdict.
#pragma once

#include "code/tanner.hpp"
#include "util/bitvec.hpp"

namespace dvbs2::core {

/// Outcome of one hard-decision syndrome evaluation.
struct SyndromeOutcome {
    bool satisfied = false;  ///< x·Hᵀ = 0, i.e. `codeword` is a codeword
    int unsatisfied = -1;    ///< syndrome weight; -1 when not counted
};

inline SyndromeOutcome check_syndrome(const code::Dvbs2Code& code,
                                      const util::BitVec& codeword,
                                      bool count_unsatisfied = false) {
    if (count_unsatisfied) {
        const int unsat = static_cast<int>(code.syndrome(codeword).count());
        return {unsat == 0, unsat};
    }
    return {code.is_codeword(codeword), -1};
}

}  // namespace dvbs2::core
