// Public decoder types: schedules, check-node rules, configuration, result.
#pragma once

#include "util/bitvec.hpp"

namespace dvbs2::core {

/// Message-update schedule (paper Fig. 2 and Sec. 2.2).
enum class Schedule {
    /// Fig. 2a: canonical two-phase flooding; parity nodes are ordinary
    /// degree-2 variable nodes, both zigzag message directions are stored.
    TwoPhase,
    /// Fig. 2b: the paper's optimized scheme — check nodes are swept
    /// sequentially, the fresh parity message is passed forward immediately,
    /// only the backward message is stored (memory halved, ~10 iterations
    /// saved).
    ZigzagForward,
    /// The hardware realization of Fig. 2b: all P functional units sweep
    /// their q-CN segments in parallel, so the forward recursion restarts at
    /// every segment boundary from the previous iteration's value.
    ZigzagSegmented,
    /// The MAP variant the paper mentions ("a sequential backwards update
    /// would result in a maximum a posteriori algorithm"): forward and
    /// backward sweeps both sequential within one iteration.
    ZigzagMap,
    /// Row-layered decoding (extension): check nodes update sequentially
    /// against running posterior totals, so every CN sees the freshest
    /// variable beliefs — the schedule later DVB-S2/S2X decoders adopted
    /// (converges in roughly half the iterations of two-phase flooding).
    Layered,
};

/// Check-node combining rule (paper Eq. 5 and its implementations).
enum class CheckRule {
    Exact,              ///< log-domain boxplus (float) / correction-LUT (fixed)
    MinSum,             ///< magnitude minimum, sign product
    NormalizedMinSum,   ///< min-sum scaled by `normalization`
    OffsetMinSum,       ///< min-sum with magnitude offset `offset`
};

/// Message-processing backend of the fixed-point decoder.
enum class DecoderBackend {
    /// Reference serial engine (core/mp_decoder.hpp); supports every
    /// schedule and the float arithmetic.
    Scalar,
    /// SIMD engine (core/simd), bit-exact with Scalar and fixed-point only.
    /// Single frames run group-parallel (one lane = one FU per Eq. 2;
    /// TwoPhase and ZigzagSegmented); batches run frame-parallel (one lane =
    /// one frame; every schedule). See SimdLaneMode.
    Simd,
};

/// Lane mapping of the SIMD backend (ignored by DecoderBackend::Scalar).
enum class SimdLaneMode {
    /// Group-parallel for single-frame decodes, frame-per-lane for batches.
    Auto,
    /// Lane = functional unit for every call (batches decode frame by
    /// frame). Requires TwoPhase or ZigzagSegmented.
    GroupParallel,
    /// Lane = frame for every call (a single-frame decode occupies one lane
    /// of a batch block). Works with every schedule, including the ones the
    /// group-parallel mapping cannot cover (ZigzagForward, ZigzagMap,
    /// Layered); full throughput needs whole batches.
    FramePerLane,
};

/// Message-domain arithmetic of a decoder engine (see core/engine.hpp).
enum class Arithmetic {
    Float,  ///< clamped double LLRs — the infinite-precision reference
    Fixed,  ///< quantized integer LLRs — the hardware datapath model
};

/// Decoder configuration. Defaults reproduce the paper's operating point:
/// 30 iterations of the optimized zigzag schedule with the exact rule.
struct DecoderConfig {
    Schedule schedule = Schedule::ZigzagForward;
    CheckRule rule = CheckRule::Exact;
    DecoderBackend backend = DecoderBackend::Scalar;
    SimdLaneMode lane_mode = SimdLaneMode::Auto;  ///< Simd backend only
    int max_iterations = 30;
    bool early_stop = true;        ///< stop once the syndrome is satisfied
    double normalization = 0.75;   ///< NormalizedMinSum scale factor
    double offset = 0.5;           ///< OffsetMinSum magnitude offset (LLR units)
};

/// Decoding outcome.
struct DecodeResult {
    util::BitVec codeword;   ///< hard decision for all N bits
    util::BitVec info_bits;  ///< hard decision for the K information bits
    bool converged = false;  ///< syndrome satisfied within the iteration cap
    int iterations = 0;      ///< iterations executed
};

/// Per-iteration diagnostics delivered to an observer (see
/// Decoder::set_observer): convergence analyses, waterfall debugging, and
/// the E4 bench use these.
struct IterationTrace {
    int iteration = 0;            ///< 1-based iteration index
    int unsatisfied_checks = 0;   ///< syndrome weight of the hard decision
    double mean_abs_posterior = 0.0;  ///< mean |posterior| in decoder units
};

const char* to_string(Schedule s);
const char* to_string(CheckRule r);
const char* to_string(DecoderBackend b);
const char* to_string(SimdLaneMode m);
const char* to_string(Arithmetic a);

}  // namespace dvbs2::core
