// Public decoder types: schedules, check-node rules, configuration, result.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace dvbs2::core {

/// Message-update schedule (paper Fig. 2 and Sec. 2.2).
enum class Schedule {
    /// Fig. 2a: canonical two-phase flooding; parity nodes are ordinary
    /// degree-2 variable nodes, both zigzag message directions are stored.
    TwoPhase,
    /// Fig. 2b: the paper's optimized scheme — check nodes are swept
    /// sequentially, the fresh parity message is passed forward immediately,
    /// only the backward message is stored (memory halved, ~10 iterations
    /// saved).
    ZigzagForward,
    /// The hardware realization of Fig. 2b: all P functional units sweep
    /// their q-CN segments in parallel, so the forward recursion restarts at
    /// every segment boundary from the previous iteration's value.
    ZigzagSegmented,
    /// The MAP variant the paper mentions ("a sequential backwards update
    /// would result in a maximum a posteriori algorithm"): forward and
    /// backward sweeps both sequential within one iteration.
    ZigzagMap,
    /// Row-layered decoding (extension): check nodes update sequentially
    /// against running posterior totals, so every CN sees the freshest
    /// variable beliefs — the schedule later DVB-S2/S2X decoders adopted
    /// (converges in roughly half the iterations of two-phase flooding).
    Layered,
};

/// Check-node combining rule (paper Eq. 5 and its implementations).
enum class CheckRule {
    Exact,              ///< log-domain boxplus (float) / correction-LUT (fixed)
    MinSum,             ///< magnitude minimum, sign product
    NormalizedMinSum,   ///< min-sum scaled by `normalization`
    OffsetMinSum,       ///< min-sum with magnitude offset `offset`
};

/// Message-processing backend of the fixed-point decoder.
enum class DecoderBackend {
    /// Reference serial engine (core/mp_decoder.hpp); supports every
    /// schedule and the float arithmetic.
    Scalar,
    /// SIMD engine (core/simd), bit-exact with Scalar and fixed-point only.
    /// Single frames run group-parallel (one lane = one FU per Eq. 2 —
    /// natively for TwoPhase/ZigzagSegmented, via certified schedule
    /// rewrites for the rest; see analysis/ir/transform.hpp); batches run
    /// frame-parallel (one lane = one frame; every schedule). See
    /// SimdLaneMode.
    Simd,
};

/// Lane mapping of the SIMD backend (ignored by DecoderBackend::Scalar).
enum class SimdLaneMode {
    /// Group-parallel for single-frame decodes, frame-per-lane for batches.
    Auto,
    /// Lane = functional unit for every call (batches decode frame by
    /// frame). Requires a schedule that is natively lockstep-legal or holds
    /// a certified rewrite (all five shipped schedules qualify; see
    /// analysis/ir/transform.hpp).
    GroupParallel,
    /// Lane = frame for every call (a single-frame decode occupies one lane
    /// of a batch block). Works with every schedule regardless of lockstep
    /// legality; full throughput needs whole batches.
    FramePerLane,
};

/// Message-domain arithmetic of a decoder engine (see core/engine.hpp).
enum class Arithmetic {
    Float,  ///< clamped double LLRs — the infinite-precision reference
    Fixed,  ///< quantized integer LLRs — the hardware datapath model
};

/// Decoding algorithm family of an engine. The registry (core/engine.hpp)
/// is keyed by (Algorithm, Arithmetic, DecoderBackend); the analysis layer
/// derives which schedules and lane modes each family supports
/// (analysis/ir/analyses.hpp, classify_algorithm) instead of hardcoding the
/// combinations.
enum class Algorithm {
    /// The message-passing family of core/mp_decoder.hpp (paper Eq. 4/5):
    /// exact boxplus and the min-sum variants, selected by CheckRule.
    /// Supports all five schedules and both SIMD lane mappings.
    MinSum,
    /// Improved weighted bit flipping (PAPERS.md, "An Improved WBF Algorithm
    /// for Higher-Speed Decoding of LDPC Codes"): hard-decision flipping
    /// with soft reliability weights — an order of magnitude cheaper per
    /// iteration than message passing, the low-latency tier for high-SNR
    /// traffic. Flooding-only (the flip metric is a function of one whole
    /// iteration's syndrome, so only single-level check phases apply).
    Wbf,
    /// Relaxed half-stochastic belief propagation (PAPERS.md,
    /// Leduc-Primeau et al.): check nodes see stochastically binarized ±C
    /// messages, variable nodes keep relaxed analog trackers. Follows the
    /// message-passing trace shape, so it runs every MP schedule; the
    /// binarization stream is counter-based (util::derive_stream), making
    /// decodes bit-reproducible and thread-invariant.
    RhsBp,
};

/// Decoder configuration. Defaults reproduce the paper's operating point:
/// 30 iterations of the optimized zigzag schedule with the exact rule.
struct DecoderConfig {
    Algorithm algorithm = Algorithm::MinSum;
    Schedule schedule = Schedule::ZigzagForward;
    CheckRule rule = CheckRule::Exact;  ///< Algorithm::MinSum only
    DecoderBackend backend = DecoderBackend::Scalar;
    SimdLaneMode lane_mode = SimdLaneMode::Auto;  ///< Simd backend only
    int max_iterations = 30;
    bool early_stop = true;        ///< stop once the syndrome is satisfied
    double normalization = 0.75;   ///< NormalizedMinSum scale factor
    double offset = 0.5;           ///< OffsetMinSum magnitude offset (LLR units)

    // --- Algorithm::Wbf knobs (ignored by the other families) ---
    /// Reliability weight α of the flip metric E_n = Σ (2s_m−1)·w_{m,n} − α|y_n|.
    double wbf_alpha = 0.2;
    /// Parallel-flip threshold θ ∈ (0, 1]: every bit with E_n ≥ θ·max E is
    /// flipped in one iteration (θ = 1 degenerates to single-bit WBF).
    double wbf_theta = 0.9;
    /// Surrender fraction ∈ (0, 1]: when more than this fraction of checks
    /// is unsatisfied at iteration 0, the frame is outside WBF's operating
    /// regime and the decoder fails fast (converged = false, 0 iterations)
    /// so an SLA layer can reroute it to a message-passing tier.
    double wbf_surrender = 0.125;

    // --- Algorithm::RhsBp knobs (ignored by the other families) ---
    /// Tracker relaxation factor β ∈ (0, 1]: T ← (1−β)·T + β·(±C).
    double rhs_beta = 0.15;
    /// Seed of the counter-based binarization stream (util::derive_stream);
    /// a decode is a pure function of (LLRs, rhs_seed).
    std::uint64_t rhs_seed = 0x5eedULL;
};

/// Decoding outcome.
struct DecodeResult {
    util::BitVec codeword;   ///< hard decision for all N bits
    util::BitVec info_bits;  ///< hard decision for the K information bits
    bool converged = false;  ///< syndrome satisfied within the iteration cap
    int iterations = 0;      ///< iterations executed
};

/// Aggregate convergence observables over any number of decoded frames: an
/// iterations-to-finish histogram plus running counts. core::Engine records
/// one entry per frame structurally in its public decode entry points (so
/// every backend — including externally registered ones — surfaces the same
/// observable), and the Monte-Carlo harness (comm/) folds per-frame entries
/// into its deterministic batch-prefix reduction, making the histogram
/// thread-count invariant wherever the error tallies are.
struct ConvergenceStats {
    /// histogram[i] = frames that finished after exactly i iterations
    /// (i = 0 covers a zero-iteration budget).
    std::vector<std::uint64_t> histogram;
    std::uint64_t frames = 0;            ///< frames recorded
    std::uint64_t converged_frames = 0;  ///< frames with the syndrome satisfied
    std::uint64_t iteration_sum = 0;     ///< Σ iterations over all frames

    /// Pre-sizes the histogram for iteration counts 0..max_iterations so
    /// steady-state record() calls never allocate (part of the engine
    /// layer's zero-allocation contract, pinned by tests/test_alloc.cpp).
    void reserve_iterations(int max_iterations) {
        const auto need = static_cast<std::size_t>(max_iterations < 0 ? 0 : max_iterations) + 1;
        if (histogram.size() < need) histogram.resize(need, 0);
    }

    void record(int iterations, bool converged) {
        const auto it = static_cast<std::size_t>(iterations < 0 ? 0 : iterations);
        if (it >= histogram.size()) histogram.resize(it + 1, 0);
        ++histogram[it];
        ++frames;
        if (converged) ++converged_frames;
        iteration_sum += it;
    }

    void merge(const ConvergenceStats& o) {
        if (histogram.size() < o.histogram.size()) histogram.resize(o.histogram.size(), 0);
        for (std::size_t i = 0; i < o.histogram.size(); ++i) histogram[i] += o.histogram[i];
        frames += o.frames;
        converged_frames += o.converged_frames;
        iteration_sum += o.iteration_sum;
    }

    /// Zeroes every count but keeps the histogram's size (and capacity), so
    /// a reset engine stays allocation-free.
    void reset() {
        for (auto& h : histogram) h = 0;
        frames = 0;
        converged_frames = 0;
        iteration_sum = 0;
    }

    double mean_iterations() const {
        return frames ? static_cast<double>(iteration_sum) / static_cast<double>(frames) : 0.0;
    }
    double convergence_rate() const {
        return frames ? static_cast<double>(converged_frames) / static_cast<double>(frames) : 0.0;
    }
};

/// Per-iteration diagnostics delivered to an observer (see
/// Decoder::set_observer): convergence analyses, waterfall debugging, and
/// the E4 bench use these.
struct IterationTrace {
    int iteration = 0;            ///< 1-based iteration index
    int unsatisfied_checks = 0;   ///< syndrome weight of the hard decision
    double mean_abs_posterior = 0.0;  ///< mean |posterior| in decoder units
};

const char* to_string(Algorithm a);
const char* to_string(Schedule s);
const char* to_string(CheckRule r);
const char* to_string(DecoderBackend b);
const char* to_string(SimdLaneMode m);
const char* to_string(Arithmetic a);

}  // namespace dvbs2::core
