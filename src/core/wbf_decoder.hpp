// Improved weighted-bit-flipping decoder (Algorithm::Wbf).
//
// Implements the improved WBF algorithm of PAPERS.md (MA Ke-xiang et al.,
// "An Improved WBF Algorithm for Higher-Speed Decoding of LDPC Codes"):
// hard-decision decoding on the full Tanner graph (information bits plus
// the zigzag parity chain) with soft reliability weights. Per iteration:
//
//   1. syndrome s_m of the current hard decision (the stop decision itself
//      routes through the shared core/syndrome.hpp predicate, so WBF agrees
//      with every other backend on what "converged" means);
//   2. per-check weights from the two smallest neighbor reliabilities, so
//      the per-bit weight is w_{m,n} = min_{n' ∈ N(m)\{n}} |y_{n'}| at the
//      cost of one min1/min2 scan per check;
//   3. flip metric E_n = Σ_{m ∈ M(n)} (2s_m − 1)·w_{m,n} − α·|y_n|, and a
//      parallel multi-bit flip of every bit with E_n ≥ θ·max_n E_n (the
//      higher-speed bit-chosen strategy; θ = 1 recovers single-bit WBF).
//
// One iteration is a few integer/compare passes over the edges — an order
// of magnitude cheaper than a message-passing iteration (no boxplus, no
// message memories) — which is what makes WBF the low-latency tier of the
// engine registry. The price is a narrow operating regime: WBF corrects
// few-error patterns (high SNR). Two guards keep it honest outside that
// regime instead of burning the full iteration budget:
//   * surrender: if more than DecoderConfig::wbf_surrender of the checks
//     are unsatisfied at iteration 0, the frame is beyond flipping range —
//     fail fast with 0 iterations so an SLA layer reroutes the stream;
//   * stall stop: parallel flipping can oscillate; if the syndrome weight
//     stops improving for kStallLimit consecutive iterations, stop.
//
// Flooding-only by derivation, not fiat: the flip metric is a function of
// one whole iteration's syndrome, so only schedules whose check phase has a
// single dependence level (two-phase flooding) have a WBF analogue —
// analysis::ir::classify_algorithm derives exactly that from the schedule
// traces, and validate_engine_spec enforces it.
//
// Templated over the reliability value type: double for the float engine,
// quant::QLLR for the fixed engine (quantized |y| as integer weights — the
// flip metric is then pure integer arithmetic except for the α·|y| term).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "code/tanner.hpp"
#include "core/syndrome.hpp"
#include "core/types.hpp"
#include "util/error.hpp"

namespace dvbs2::core {

template <class Value>
class WbfDecoder {
public:
    WbfDecoder(const code::Dvbs2Code& code, const DecoderConfig& cfg)
        : code_(&code), cfg_(cfg) {
        const auto& cp = code.params();
        const int n = cp.n;
        const int m = cp.m();
        const int kc = code.check_in_degree();
        DVBS2_REQUIRE(cfg.max_iterations >= 0, "max_iterations must be non-negative");

        // Check-major adjacency over the full graph: CN j sees its kc
        // information bits, parity p_j, and (j > 0) parity p_{j-1}.
        cn_offset_.resize(static_cast<std::size_t>(m) + 1);
        std::size_t edges = 0;
        for (int j = 0; j < m; ++j) {
            cn_offset_[static_cast<std::size_t>(j)] = edges;
            edges += static_cast<std::size_t>(kc) + (j > 0 ? 2 : 1);
        }
        cn_offset_[static_cast<std::size_t>(m)] = edges;
        cn_vars_.resize(edges);
        for (int j = 0; j < m; ++j) {
            std::size_t w = cn_offset_[static_cast<std::size_t>(j)];
            const long long base = static_cast<long long>(j) * kc;
            for (int t = 0; t < kc; ++t)
                cn_vars_[w++] = code.edge_variable(base + t);
            cn_vars_[w++] = cp.k + j;
            if (j > 0) cn_vars_[w++] = cp.k + j - 1;
        }

        // Variable-major adjacency (for the flip metric): checks of each bit.
        var_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
        for (std::size_t e = 0; e < edges; ++e)
            ++var_offset_[static_cast<std::size_t>(cn_vars_[e]) + 1];
        for (int v = 0; v < n; ++v)
            var_offset_[static_cast<std::size_t>(v) + 1] +=
                var_offset_[static_cast<std::size_t>(v)];
        var_checks_.resize(edges);
        std::vector<std::size_t> cursor(var_offset_.begin(), var_offset_.end() - 1);
        for (int j = 0; j < m; ++j)
            for (std::size_t e = cn_offset_[static_cast<std::size_t>(j)];
                 e < cn_offset_[static_cast<std::size_t>(j) + 1]; ++e)
                var_checks_[cursor[static_cast<std::size_t>(cn_vars_[e])]++] = j;

        hard_.resize(static_cast<std::size_t>(n));
        rel_.resize(static_cast<std::size_t>(n));
        syn_.resize(static_cast<std::size_t>(m));
        w1_.resize(static_cast<std::size_t>(m));
        w2_.resize(static_cast<std::size_t>(m));
        argmin_.resize(static_cast<std::size_t>(m));
        metric_.resize(static_cast<std::size_t>(n));
    }

    void set_observer(std::function<void(const IterationTrace&)> observer) {
        observer_ = std::move(observer);
    }

    /// Internal-state views for the range-certification witness tests:
    /// valid after decode_into ran at least one flip pass. `reliabilities`
    /// are the |y| write-backs, `check_weights_min1` the per-check smallest
    /// neighbor reliability (the stored weight the certifier bounds), and
    /// `flip_metrics` the last flip pass's per-bit metric E_v.
    const std::vector<Value>& reliabilities() const noexcept { return rel_; }
    const std::vector<Value>& check_weights_min1() const noexcept { return w1_; }
    const std::vector<double>& flip_metrics() const noexcept { return metric_; }

    /// Decodes one frame of channel values (sign convention: positive
    /// favors bit 0). Allocation-free once `out` is sized.
    void decode_into(std::span<const Value> y, DecodeResult& out) {
        const auto& cp = code_->params();
        const int n = cp.n;
        const int m = cp.m();
        DVBS2_REQUIRE(y.size() == static_cast<std::size_t>(n), "channel length mismatch");
        for (int v = 0; v < n; ++v) {
            hard_[static_cast<std::size_t>(v)] = y[static_cast<std::size_t>(v)] < Value(0);
            rel_[static_cast<std::size_t>(v)] = y[static_cast<std::size_t>(v)] < Value(0)
                                                    ? Value(-y[static_cast<std::size_t>(v)])
                                                    : y[static_cast<std::size_t>(v)];
        }

        int it = 0;
        bool converged = false;
        int prev_unsat = m + 1;
        int stalls = 0;
        const int surrender_at =
            static_cast<int>(cfg_.wbf_surrender * static_cast<double>(m));
        for (;;) {
            const int unsat = compute_syndrome();
            if (observer_) emit_trace(it, unsat);
            if (unsat == 0) {
                // Confirm through the shared syndrome predicate so WBF's
                // convergence verdict cannot drift from the other backends.
                harden(out.codeword);
                converged = check_syndrome(*code_, out.codeword).satisfied;
                break;
            }
            if (it == 0 && unsat > surrender_at) break;  // beyond flipping range
            if (unsat >= prev_unsat && ++stalls >= kStallLimit) break;
            if (unsat < prev_unsat) stalls = 0;
            prev_unsat = unsat;
            if (it == cfg_.max_iterations) break;
            flip_pass();
            ++it;
        }
        if (!converged) harden(out.codeword);
        out.iterations = it;
        out.converged = converged;
        copy_info_bits(out);
    }

private:
    /// Non-improving iterations tolerated before the stall stop.
    static constexpr int kStallLimit = 2;

    /// Hard-decision syndrome over the full adjacency; returns its weight.
    int compute_syndrome() {
        const int m = code_->params().m();
        int unsat = 0;
        for (int j = 0; j < m; ++j) {
            unsigned s = 0;
            for (std::size_t e = cn_offset_[static_cast<std::size_t>(j)];
                 e < cn_offset_[static_cast<std::size_t>(j) + 1]; ++e)
                s ^= hard_[static_cast<std::size_t>(cn_vars_[e])];
            syn_[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(s);
            unsat += static_cast<int>(s);
        }
        return unsat;
    }

    /// One improved-WBF iteration: min1/min2 weights, flip metric, parallel
    /// multi-bit flip above θ·max E.
    void flip_pass() {
        const auto& cp = code_->params();
        const int n = cp.n;
        const int m = cp.m();
        for (int j = 0; j < m; ++j) {
            Value m1 = Value(0), m2 = Value(0);
            int am = -1;
            bool first = true, second = false;
            for (std::size_t e = cn_offset_[static_cast<std::size_t>(j)];
                 e < cn_offset_[static_cast<std::size_t>(j) + 1]; ++e) {
                const int v = cn_vars_[e];
                const Value r = rel_[static_cast<std::size_t>(v)];
                if (first || r < m1) {
                    if (!first) {
                        m2 = m1;
                        second = true;
                    }
                    m1 = r;
                    am = v;
                    first = false;
                } else if (!second || r < m2) {
                    m2 = r;
                    second = true;
                }
            }
            w1_[static_cast<std::size_t>(j)] = m1;
            w2_[static_cast<std::size_t>(j)] = m2;
            argmin_[static_cast<std::size_t>(j)] = am;
        }
        double emax = 0.0;
        int eargmax = -1;
        for (int v = 0; v < n; ++v) {
            double e_v = -cfg_.wbf_alpha * static_cast<double>(rel_[static_cast<std::size_t>(v)]);
            for (std::size_t c = var_offset_[static_cast<std::size_t>(v)];
                 c < var_offset_[static_cast<std::size_t>(v) + 1]; ++c) {
                const int j = var_checks_[c];
                const double w = static_cast<double>(
                    argmin_[static_cast<std::size_t>(j)] == v ? w2_[static_cast<std::size_t>(j)]
                                                              : w1_[static_cast<std::size_t>(j)]);
                e_v += syn_[static_cast<std::size_t>(j)] ? w : -w;
            }
            metric_[static_cast<std::size_t>(v)] = e_v;
            if (eargmax < 0 || e_v > emax) {
                emax = e_v;
                eargmax = v;
            }
        }
        if (emax > 0.0) {
            const double cut = cfg_.wbf_theta * emax;
            for (int v = 0; v < n; ++v)
                if (metric_[static_cast<std::size_t>(v)] >= cut)
                    hard_[static_cast<std::size_t>(v)] ^= 1U;
        } else if (eargmax >= 0) {
            // Every metric non-positive: flip only the most suspicious bit
            // (a θ-fraction of a negative maximum would flip near-certain
            // bits wholesale).
            hard_[static_cast<std::size_t>(eargmax)] ^= 1U;
        }
    }

    void harden(util::BitVec& codeword) const {
        const auto n = static_cast<std::size_t>(code_->params().n);
        if (codeword.size() != n)
            codeword = util::BitVec(n);
        else
            codeword.clear();
        for (std::size_t v = 0; v < n; ++v)
            if (hard_[v]) codeword.set(v, true);
    }

    void copy_info_bits(DecodeResult& out) const {
        const auto k = static_cast<std::size_t>(code_->params().k);
        if (out.info_bits.size() != k)
            out.info_bits = util::BitVec(k);
        else
            out.info_bits.clear();
        for (std::size_t v = 0; v < k; ++v)
            if (out.codeword.get(v)) out.info_bits.set(v, true);
    }

    void emit_trace(int it, int unsat) const {
        IterationTrace trace;
        trace.iteration = it;
        trace.unsatisfied_checks = unsat;
        double sum = 0.0;
        for (const Value& r : rel_) sum += static_cast<double>(r);
        trace.mean_abs_posterior = sum / static_cast<double>(rel_.size());
        observer_(trace);
    }

    const code::Dvbs2Code* code_;
    DecoderConfig cfg_;

    // Full-graph adjacency in CSR form, both orientations.
    std::vector<std::size_t> cn_offset_;
    std::vector<int> cn_vars_;
    std::vector<std::size_t> var_offset_;
    std::vector<int> var_checks_;

    // Per-decode state, reused across calls.
    std::vector<std::uint8_t> hard_;  ///< current hard decision
    std::vector<Value> rel_;          ///< reliabilities |y|
    std::vector<std::uint8_t> syn_;   ///< per-check syndrome bits
    std::vector<Value> w1_, w2_;      ///< per-check min1/min2 reliabilities
    std::vector<int> argmin_;         ///< per-check argmin variable
    std::vector<double> metric_;      ///< flip metric E_n

    std::function<void(const IterationTrace&)> observer_;
};

}  // namespace dvbs2::core
