#include "enc/encoder.hpp"

#include "util/error.hpp"
#include "util/prng.hpp"

namespace dvbs2::enc {

util::BitVec Encoder::encode(const util::BitVec& info) const {
    const auto& cp = code_->params();
    DVBS2_REQUIRE(info.size() == static_cast<std::size_t>(cp.k), "info length mismatch");
    const int p = cp.parallelism;
    const int q = cp.q;
    const int m = cp.m();

    util::BitVec cw(static_cast<std::size_t>(cp.n));
    for (int v = 0; v < cp.k; ++v)
        if (info.get(static_cast<std::size_t>(v))) cw.set(static_cast<std::size_t>(v), true);

    // Pass 1 (Eq. 2): accumulate information bits into the parity slots.
    // Work on a plain byte array: profiling shows the bit-packed flip is the
    // hot spot for N = 64800.
    std::vector<unsigned char> parity(static_cast<std::size_t>(m), 0);
    const auto& rows = code_->tables().rows;
    for (std::size_t g = 0; g < rows.size(); ++g) {
        for (int i = 0; i < p; ++i) {
            const int v = static_cast<int>(g) * p + i;
            if (!info.get(static_cast<std::size_t>(v))) continue;
            const int shift = i * q;
            for (std::uint32_t x : rows[g]) {
                int c = static_cast<int>(x) + shift;
                if (c >= m) c -= m;  // x < m and shift < m, so one wrap suffices
                parity[static_cast<std::size_t>(c)] ^= 1;
            }
        }
    }

    // Pass 2 (Eq. 3): the zigzag accumulator p_j ^= p_{j−1}.
    unsigned char acc = 0;
    for (int j = 0; j < m; ++j) {
        acc ^= parity[static_cast<std::size_t>(j)];
        if (acc) cw.set(static_cast<std::size_t>(cp.k + j), true);
    }
    return cw;
}

util::BitVec Encoder::encode_checked(const util::BitVec& info) const {
    util::BitVec cw = encode(info);
    DVBS2_REQUIRE(code_->is_codeword(cw), "encoder produced a non-codeword");
    return cw;
}

util::BitVec random_info_bits(int k, std::uint64_t seed) {
    util::Xoshiro256pp rng(seed);
    util::BitVec bits(static_cast<std::size_t>(k));
    for (int v = 0; v < k; ++v)
        if (rng() & 1u) bits.set(static_cast<std::size_t>(v), true);
    return bits;
}

}  // namespace dvbs2::enc
