// Linear-time IRA encoder (paper Sec. 2, Eq. 2 + Eq. 3).
//
// Encoding an IRA code is two passes:
//   1. accumulate: every information bit i_m toggles the parity accumulators
//      listed by its group-table entry, p_j ^= i_m for j = (x + i·q) mod M;
//   2. zigzag: prefix-XOR the accumulators, p_j ^= p_{j−1} (the accumulator
//      of the encoder, which is what makes the parity columns a banded
//      degree-2 zigzag in H and encoding complexity linear).
//
// The paper emphasizes this as the reason DVB-S2 chose IRA codes — generic
// LDPC encoding needs dense matrix operations.
#pragma once

#include "code/tanner.hpp"
#include "util/bitvec.hpp"

namespace dvbs2::enc {

/// Systematic IRA encoder bound to one code instance.
class Encoder {
public:
    explicit Encoder(const code::Dvbs2Code& code) : code_(&code) {}

    /// Encodes `info` (size K) into a codeword (size N): systematic bits
    /// first, then the N−K parity bits.
    util::BitVec encode(const util::BitVec& info) const;

    /// Convenience: encodes `info` and asserts H·xᵀ = 0 (used by tests and
    /// examples; the check is O(E)).
    util::BitVec encode_checked(const util::BitVec& info) const;

private:
    const code::Dvbs2Code* code_;
};

/// Draws K uniformly random information bits (deterministic in `seed`).
util::BitVec random_info_bits(int k, std::uint64_t seed);

}  // namespace dvbs2::enc
