#include "quant/fixed.hpp"

#include <cmath>

namespace dvbs2::quant {

QLLR quantize(double llr, const QuantSpec& spec) noexcept {
    const double scaled = llr / spec.step();
    const double rounded = std::nearbyint(scaled);
    // Clamp in double first: a huge LLR (e.g. from a noiseless channel) must
    // not overflow the intermediate integer conversion.
    const double hi = static_cast<double>(spec.max_raw());
    const double clamped = scaled > hi ? hi : (rounded < -hi ? -hi : rounded);
    return static_cast<QLLR>(clamped > hi ? hi : clamped);
}

void validate_spec(const QuantSpec& spec) {
    DVBS2_REQUIRE(spec.total_bits >= 2 && spec.total_bits <= 16,
                  "quantizer total_bits must be in [2, 16], got " +
                      std::to_string(spec.total_bits));
    DVBS2_REQUIRE(spec.frac_bits >= 0 && spec.frac_bits < spec.total_bits,
                  "quantizer frac_bits must be in [0, total_bits), got frac_bits=" +
                      std::to_string(spec.frac_bits) + " with total_bits=" +
                      std::to_string(spec.total_bits));
}

BoxplusTable::BoxplusTable(const QuantSpec& spec) : spec_(spec) {
    validate_spec(spec);
    // |a±b| ranges up to 2·max_raw; beyond the point where the correction
    // rounds to zero the table is not needed.
    const std::size_t len = static_cast<std::size_t>(2 * spec.max_raw() + 1);
    table_.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
        const double x = static_cast<double>(i) * spec.step();
        table_[i] = static_cast<QLLR>(std::nearbyint(std::log1p(std::exp(-x)) / spec.step()));
    }
}

QLLR BoxplusTable::boxplus(QLLR a, QLLR b) const noexcept {
    const QLLR mag_a = a < 0 ? -a : a;
    const QLLR mag_b = b < 0 ? -b : b;
    const QLLR m = mag_a < mag_b ? mag_a : mag_b;
    const QLLR signed_m = ((a < 0) != (b < 0)) ? -m : m;
    const QLLR sum_mag = (a + b) < 0 ? -(a + b) : (a + b);
    const QLLR dif_mag = (a - b) < 0 ? -(a - b) : (a - b);
    return saturate(signed_m + corr(sum_mag) - corr(dif_mag), spec_);
}

}  // namespace dvbs2::quant
