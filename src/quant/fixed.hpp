// Fixed-point LLR arithmetic for the bit-accurate decoder model.
//
// The paper (Sec. 2.1, citing Zhang/Wang/Parhi) uses a 6-bit quantization of
// channel values and exchanged messages (0.1 dB loss) and mentions the 5-bit
// alternative. We model messages as symmetric two's-complement integers with
// a configurable total width and number of fractional bits; all datapath
// operations (saturating add, boxplus with correction look-up table, min-sum)
// are integer-exact so the algorithmic fixed-point decoder and the
// cycle-driven architecture model produce bit-identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace dvbs2::quant {

/// Raw integer representation of a quantized LLR. 32 bits so that wide
/// variable-node accumulations never overflow before explicit saturation.
using QLLR = std::int32_t;

/// Describes a uniform symmetric quantizer: `total_bits` including sign,
/// `frac_bits` fractional bits. Representable raw range is
/// [-(2^(total-1)-1), +(2^(total-1)-1)] (symmetric, as LLR datapaths use);
/// real value = raw * 2^-frac_bits.
struct QuantSpec {
    int total_bits = 6;
    int frac_bits = 2;

    /// Largest positive raw value.
    constexpr QLLR max_raw() const noexcept { return (QLLR{1} << (total_bits - 1)) - 1; }
    /// Most negative raw value (symmetric saturation).
    constexpr QLLR min_raw() const noexcept { return -max_raw(); }
    /// Quantization step in LLR units.
    constexpr double step() const noexcept { return 1.0 / static_cast<double>(QLLR{1} << frac_bits); }
    /// Largest representable LLR magnitude.
    constexpr double max_value() const noexcept { return static_cast<double>(max_raw()) * step(); }

    friend constexpr bool operator==(const QuantSpec&, const QuantSpec&) = default;
};

/// The paper's default message quantization: 6 bits, 2 fractional → ±7.75.
inline constexpr QuantSpec kQuant6{6, 2};
/// The 5-bit alternative discussed in Sec. 2.1: 5 bits, 1 fractional → ±7.5.
inline constexpr QuantSpec kQuant5{5, 1};

/// Validates a quantizer spec, throwing std::runtime_error with a diagnostic
/// naming the offending field (`total_bits` / `frac_bits`) on violation.
/// BoxplusTable construction and core::validate_engine_spec both route
/// through this, so every fixed-point entry point rejects the same specs.
void validate_spec(const QuantSpec& spec);

/// Saturates a wide intermediate value into the representable raw range.
constexpr QLLR saturate(QLLR wide, const QuantSpec& spec) noexcept {
    const QLLR hi = spec.max_raw();
    if (wide > hi) return hi;
    if (wide < -hi) return -hi;
    return wide;
}

/// Quantizes a real LLR: round-to-nearest then saturate.
QLLR quantize(double llr, const QuantSpec& spec) noexcept;

/// Real value of a raw quantized LLR.
constexpr double dequantize(QLLR raw, const QuantSpec& spec) noexcept {
    return static_cast<double>(raw) * spec.step();
}

/// Saturating addition in the message domain.
constexpr QLLR sat_add(QLLR a, QLLR b, const QuantSpec& spec) noexcept {
    return saturate(a + b, spec);
}

/// Integer-exact pairwise boxplus with a precomputed correction LUT:
///   a ⊞ b = sign(a)sign(b)·min(|a|,|b|) + corr(|a+b|) − corr(|a−b|),
/// where corr(x) = round(log1p(exp(−x·step)) / step), exactly the structure a
/// hardware functional unit realizes with a small ROM. A table instance is
/// tied to one QuantSpec.
class BoxplusTable {
public:
    explicit BoxplusTable(const QuantSpec& spec);

    const QuantSpec& spec() const noexcept { return spec_; }

    /// Correction term for a raw magnitude (saturates the index into the
    /// table, correction is 0 beyond it).
    QLLR corr(QLLR raw_magnitude) const noexcept {
        const auto idx = static_cast<std::size_t>(raw_magnitude);
        return idx < table_.size() ? table_[idx] : 0;
    }

    /// Pairwise boxplus of two raw messages.
    QLLR boxplus(QLLR a, QLLR b) const noexcept;

    /// Raw table access for vectorized gathers (core/simd): `corr_data()[i]`
    /// equals `corr(i)` for i < corr_size(), and corr is 0 beyond that.
    const QLLR* corr_data() const noexcept { return table_.data(); }
    std::size_t corr_size() const noexcept { return table_.size(); }

private:
    QuantSpec spec_;
    std::vector<QLLR> table_;  // corr indexed by raw magnitude
};

/// Min-sum pairwise combine on raw messages (no table needed).
constexpr QLLR boxplus_minsum_raw(QLLR a, QLLR b) noexcept {
    const QLLR mag_a = a < 0 ? -a : a;
    const QLLR mag_b = b < 0 ? -b : b;
    const QLLR m = mag_a < mag_b ? mag_a : mag_b;
    return ((a < 0) != (b < 0)) ? -m : m;
}

}  // namespace dvbs2::quant
