#include "service/metrics.hpp"

#include <cmath>

namespace dvbs2::service {

void LatencyHistogram::record_seconds(double seconds) noexcept {
    if (!(seconds > 0.0)) {  // negatives/NaN clamp into the first bucket
        ++counts[0];
        ++total;
        return;
    }
    const double us = seconds * 1e6;
    int bucket = 0;
    if (us >= 1.0) {
        // [2^(i-1), 2^i) µs → bucket i: ilogb gives the binary exponent.
        bucket = std::ilogb(us) + 1;
        if (bucket >= kBuckets) bucket = kBuckets - 1;
    }
    ++counts[static_cast<std::size_t>(bucket)];
    ++total;
}

double LatencyHistogram::percentile(double p) const noexcept {
    if (total == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    const double target = p * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += counts[static_cast<std::size_t>(i)];
        if (static_cast<double>(seen) >= target) {
            // Upper edge of bucket i in seconds: 2^i µs (bucket 0 → 1 µs).
            return std::ldexp(1e-6, i);
        }
    }
    return std::ldexp(1e-6, kBuckets - 1);
}

void LatencyHistogram::merge(const LatencyHistogram& o) noexcept {
    for (int i = 0; i < kBuckets; ++i)
        counts[static_cast<std::size_t>(i)] += o.counts[static_cast<std::size_t>(i)];
    total += o.total;
}

}  // namespace dvbs2::service
