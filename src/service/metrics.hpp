// Observability surface of the streaming decode service.
//
// Everything here is a plain value type: the service assembles a
// ServiceMetrics snapshot on demand (DecodeService::metrics()) by merging
// per-worker engine telemetry (core::Engine::convergence_snapshot — the
// torn-read-safe accessor), per-stream latency histograms, and the batch
// scheduler's fill counters. Histograms are log-bucketed so a snapshot over
// millions of frames stays a few hundred bytes and percentiles cost O(#buckets).
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace dvbs2::service {

/// Log2-bucketed latency histogram (microsecond granularity). Bucket 0
/// covers [0, 1) µs, bucket i ≥ 1 covers [2^(i−1), 2^i) µs; the top bucket
/// absorbs everything beyond ~2^62 µs. Percentiles are resolved to the upper
/// bucket edge — a conservative (never optimistic) estimate whose relative
/// error is bounded by the bucket ratio of 2.
struct LatencyHistogram {
    static constexpr int kBuckets = 64;
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;

    void record_seconds(double seconds) noexcept;

    /// Latency (seconds) below which a fraction `p` ∈ [0, 1] of recorded
    /// frames finished; 0 when nothing was recorded.
    double percentile(double p) const noexcept;

    void merge(const LatencyHistogram& o) noexcept;
};

/// Point-in-time view of the whole service. All counters are cumulative
/// since construction; gauges (queue_depth) are sampled at snapshot time.
struct ServiceMetrics {
    // --- admission / completion counters ---
    std::uint64_t submitted = 0;  ///< submit() calls that reached admission
    std::uint64_t enqueued = 0;   ///< frames accepted into the queue
    std::uint64_t dropped = 0;    ///< frames rejected by admission control
    std::uint64_t decoded = 0;    ///< frames decoded and delivered
    std::uint64_t decode_failures = 0;  ///< batches whose decode threw (bug guard)

    // --- queue ---
    std::uint64_t queue_depth = 0;       ///< pending frames right now
    std::uint64_t peak_queue_depth = 0;  ///< high-water mark of pending frames

    // --- batch scheduler ---
    std::uint64_t batches = 0;        ///< decode_batch calls issued
    std::uint64_t batch_frames = 0;   ///< Σ frames over those batches
    std::uint64_t batch_slots = 0;    ///< Σ preferred_batch() over those batches
    std::uint64_t full_batches = 0;   ///< batches dispatched at exactly preferred_batch()
    std::uint64_t linger_batches = 0; ///< partial batches flushed by the max-linger deadline
    /// Histogram of batch fill = frames / preferred_batch(); decile i counts
    /// batches with fill in (i/10, (i+1)/10] (a full batch lands in decile 9).
    std::array<std::uint64_t, 10> batch_fill_deciles{};

    // --- per-frame results ---
    std::uint64_t ordering_violations = 0;  ///< must stay 0 (CI-gated)
    LatencyHistogram latency;               ///< submit → delivery, all streams
    core::ConvergenceStats convergence;     ///< merged over every worker engine

    /// Mean batch fill in [0, 1]: how full the coalesced lane blocks were.
    double mean_batch_fill() const noexcept {
        return batch_slots ? static_cast<double>(batch_frames) / static_cast<double>(batch_slots)
                           : 0.0;
    }
};

/// Compact latency summary of one stream (DecodeService::stream_latency).
struct LatencySummary {
    std::uint64_t frames = 0;
    double p50_s = 0.0;
    double p90_s = 0.0;
    double p99_s = 0.0;
};

}  // namespace dvbs2::service
