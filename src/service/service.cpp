// Streaming decode service implementation. See service.hpp for the
// pipeline overview; the short version of the concurrency design:
//
//   mu_          guards the frame queue (per-class pending FIFOs + free
//                lists), admission counters, and the class/stream tables.
//                Held briefly: never across a frame copy or a decode.
//   st->mu       per-stream delivery lock: serializes in-order delivery and
//                the reorder buffer. Callbacks run under it.
//   metrics_mu_  batch/latency aggregates.
//   w.engines_mu per-worker engine-table lock, so the metrics poller can
//                walk a worker's engines while the worker decodes (engine
//                telemetry itself is read with convergence_snapshot()).
//
// Lock order: st->mu and w.engines_mu are leaves except that delivery
// (under st->mu) may take metrics_mu_, and a callback may call submit()
// (st->mu → mu_). mu_ is never held while taking st->mu, so the order
// st->mu → {metrics_mu_, mu_} is acyclic.
//
// The scheduler is work-claiming rather than a dedicated thread: idle
// workers pick the next batch themselves under mu_ (full same-class blocks
// first, then the oldest class once its linger deadline passes), which
// keeps the service work-conserving with no hand-off hop on the hot path.
#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace dvbs2::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

}  // namespace

namespace detail {

struct Frame {
    std::vector<double> llr;  // capacity = class N, recycled via the free list
    StreamId stream = 0;
    std::uint64_t seq = 0;
    Clock::time_point enqueued_at{};
};

struct ClassState {
    const code::Dvbs2Code* code = nullptr;
    core::EngineSpec spec;
    std::size_t n = 0;
    std::size_t preferred = 1;
    // Both guarded by Impl::mu_.
    std::deque<std::unique_ptr<Frame>> pending;
    std::vector<std::unique_ptr<Frame>> free_list;
};

/// Result parked in a stream's reorder buffer until its predecessors land.
struct HeldResult {
    core::DecodeResult result;  // copied: the worker's slot is recycled
    Clock::time_point enqueued_at{};
};

struct StreamState {
    StreamId id = 0;
    ClassId cls = 0;
    ResultFn fn;
    /// Next submission index; atomic so callbacks can submit to their own
    /// stream without re-entering the delivery lock.
    std::atomic<std::uint64_t> next_seq{0};
    // --- delivery state, guarded by mu ---
    std::mutex mu;
    std::uint64_t next_deliver = 0;
    std::map<std::uint64_t, HeldResult> held;
    LatencyHistogram latency;
    std::uint64_t delivered = 0;
    std::uint64_t ordering_violations = 0;
};

struct WorkerClass {
    std::unique_ptr<core::Engine> engine;
    std::vector<core::DecodeResult> results;  // reused across batches
};

struct Worker {
    std::thread th;
    /// Guards the structure of per_class against the metrics poller; the
    /// engines themselves are polled via convergence_snapshot(), which is
    /// safe against the worker's concurrent decode by design.
    mutable std::mutex engines_mu;
    std::unordered_map<ClassId, WorkerClass> per_class;
    std::vector<double> staging;                   // contiguous B·N llr block
    std::vector<std::unique_ptr<Frame>> claimed;   // current batch's frames
};

}  // namespace detail

struct DecodeService::Impl {
    using Frame = detail::Frame;
    using ClassState = detail::ClassState;
    using StreamState = detail::StreamState;
    using Worker = detail::Worker;
    using WorkerClass = detail::WorkerClass;

    explicit Impl(const ServiceConfig& c) : cfg(c) {}

    ServiceConfig cfg;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;   // frames available / stopping
    std::condition_variable space_cv_;  // queue space freed / closing
    std::condition_variable drain_cv_;  // everything delivered
    std::deque<std::unique_ptr<ClassState>> classes_;
    std::deque<std::unique_ptr<StreamState>> streams_;
    std::size_t total_pending_ = 0;  // queued + reserved (copy in progress)
    std::size_t in_flight_ = 0;      // claimed by workers, not yet delivered
    bool closed_ = false;            // intake refused
    bool stopping_ = false;          // workers exit once the queue is empty
    // Admission counters (guarded by mu_ — they are only touched where mu_
    // is already held).
    std::uint64_t submitted_ = 0;
    std::uint64_t enqueued_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t peak_depth_ = 0;

    mutable std::mutex metrics_mu_;
    std::uint64_t decoded_ = 0;
    std::uint64_t decode_failures_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t batch_frames_ = 0;
    std::uint64_t batch_slots_ = 0;
    std::uint64_t full_batches_ = 0;
    std::uint64_t linger_batches_ = 0;
    std::array<std::uint64_t, 10> fill_deciles_{};
    LatencyHistogram latency_;

    std::vector<std::unique_ptr<Worker>> workers_;
    bool joined_ = false;  // guarded by join_mu_ (stop() idempotence)
    std::mutex join_mu_;

    // ------------------------------------------------------------ scheduler

    struct Claim {
        ClassState* cls = nullptr;
        ClassId cls_id = 0;
        bool linger_flush = false;
    };

    /// Claims the next batch into w.claimed. Policy: (1) the class with the
    /// most pending frames among those holding a full preferred_batch block;
    /// (2) once the oldest pending frame's linger deadline passes (or the
    /// service is stopping), the class owning that frame, partially filled.
    /// Otherwise sleep until the earliest deadline or a new frame. Returns
    /// false when the service is stopping and the queue is empty.
    bool claim_batch(Worker& w, Claim& out) {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            if (total_pending_ == 0) {
                if (stopping_) return false;
                work_cv_.wait(lock);
                continue;
            }
            ClassState* best_full = nullptr;
            ClassId best_full_id = 0;
            ClassState* oldest = nullptr;
            ClassId oldest_id = 0;
            Clock::time_point oldest_tp = Clock::time_point::max();
            for (std::size_t i = 0; i < classes_.size(); ++i) {
                ClassState& cs = *classes_[i];
                if (cs.pending.empty()) continue;
                if (cs.pending.size() >= cs.preferred &&
                    (best_full == nullptr || cs.pending.size() > best_full->pending.size())) {
                    best_full = &cs;
                    best_full_id = static_cast<ClassId>(i);
                }
                if (cs.pending.front()->enqueued_at < oldest_tp) {
                    oldest_tp = cs.pending.front()->enqueued_at;
                    oldest = &cs;
                    oldest_id = static_cast<ClassId>(i);
                }
            }
            if (oldest == nullptr) {
                // total_pending_ counts slots reserved by producers still
                // copying; the push that follows will notify us.
                work_cv_.wait(lock);
                continue;
            }
            ClassState* take = nullptr;
            ClassId take_id = 0;
            bool linger = false;
            if (best_full != nullptr) {
                take = best_full;
                take_id = best_full_id;
            } else if (stopping_) {
                take = oldest;
                take_id = oldest_id;
            } else {
                const auto deadline = oldest_tp + cfg.max_linger;
                if (Clock::now() < deadline) {
                    work_cv_.wait_until(lock, deadline);
                    continue;
                }
                take = oldest;
                take_id = oldest_id;
                linger = true;
            }
            const std::size_t count = std::min(take->pending.size(), take->preferred);
            w.claimed.clear();
            for (std::size_t i = 0; i < count; ++i) {
                w.claimed.push_back(std::move(take->pending.front()));
                take->pending.pop_front();
            }
            total_pending_ -= count;
            in_flight_ += count;
            out.cls = take;
            out.cls_id = take_id;
            out.linger_flush = linger && count < take->preferred;
            space_cv_.notify_all();
            // Another full block may already be waiting — chain a wakeup so
            // idle workers do not sit out a deep queue.
            if (total_pending_ > 0) work_cv_.notify_one();
            return true;
        }
    }

    /// Lazily builds this worker's engine for the class (one engine per
    /// (worker, class): engines are single-writer, never shared).
    WorkerClass& worker_class(Worker& w, ClassId id, const ClassState& cs) {
        auto it = w.per_class.find(id);
        if (it == w.per_class.end()) {
            auto engine = core::make_engine(*cs.code, cs.spec);
            const std::lock_guard<std::mutex> lock(w.engines_mu);
            it = w.per_class.emplace(id, WorkerClass{std::move(engine), {}}).first;
        }
        return it->second;
    }

    // ------------------------------------------------------------- delivery

    void fire(StreamState& st, std::uint64_t seq, const core::DecodeResult& r,
              Clock::time_point enqueued_at) {
        const double lat = seconds_between(enqueued_at, Clock::now());
        st.latency.record_seconds(lat);
        ++st.delivered;
        {
            const std::lock_guard<std::mutex> lock(metrics_mu_);
            latency_.record_seconds(lat);
        }
        if (st.fn) st.fn(StreamResult{st.id, seq, r, lat});
    }

    /// Delivers one decoded frame, re-ordering through the per-stream
    /// buffer so callbacks observe strict submission order even when two
    /// workers finish same-class batches out of order.
    void deliver(StreamState& st, const Frame& f, const core::DecodeResult& r) {
        const std::lock_guard<std::mutex> lock(st.mu);
        if (f.seq == st.next_deliver) {
            fire(st, f.seq, r, f.enqueued_at);
            ++st.next_deliver;
            auto it = st.held.begin();
            while (it != st.held.end() && it->first == st.next_deliver) {
                fire(st, it->first, it->second.result, it->second.enqueued_at);
                ++st.next_deliver;
                it = st.held.erase(it);
            }
        } else if (f.seq > st.next_deliver) {
            st.held.emplace(f.seq, detail::HeldResult{r, f.enqueued_at});
        } else {
            // A duplicate or past sequence number: a service bug, never
            // silently ignored (surfaces in metrics and the CI gate).
            ++st.ordering_violations;
        }
    }

    // ---------------------------------------------------------- worker loop

    void worker_main(Worker& w) {
        Claim c;
        while (claim_batch(w, c)) {
            ClassState& cs = *c.cls;
            WorkerClass& wc = worker_class(w, c.cls_id, cs);
            const std::size_t b = w.claimed.size();
            const std::size_t n = cs.n;
            w.staging.resize(b * n);
            for (std::size_t i = 0; i < b; ++i)
                std::memcpy(w.staging.data() + i * n, w.claimed[i]->llr.data(),
                            n * sizeof(double));
            wc.results.resize(b);
            bool failed = false;
            try {
                wc.engine->decode_batch(std::span<const double>(w.staging.data(), b * n),
                                        std::span<core::DecodeResult>(wc.results.data(), b));
            } catch (...) {
                // Inputs are validated at submit() and specs at add_class(),
                // so this is a backend bug. Deliver explicit failures (empty
                // codeword, converged=false) instead of stalling the streams
                // or killing the process, and count it for the operator.
                failed = true;
                for (std::size_t i = 0; i < b; ++i) wc.results[i] = core::DecodeResult{};
            }
            for (std::size_t i = 0; i < b; ++i) {
                StreamState* st = nullptr;
                {
                    const std::lock_guard<std::mutex> lock(mu_);
                    st = streams_[static_cast<std::size_t>(w.claimed[i]->stream)].get();
                }
                deliver(*st, *w.claimed[i], wc.results[i]);
            }
            {
                const std::lock_guard<std::mutex> lock(metrics_mu_);
                ++batches_;
                batch_frames_ += b;
                batch_slots_ += cs.preferred;
                decoded_ += b;
                if (failed) ++decode_failures_;
                if (b == cs.preferred) ++full_batches_;
                if (c.linger_flush) ++linger_batches_;
                const std::size_t decile = (b * 10 + cs.preferred - 1) / cs.preferred - 1;
                ++fill_deciles_[std::min<std::size_t>(decile, 9)];
            }
            {
                const std::lock_guard<std::mutex> lock(mu_);
                in_flight_ -= b;
                for (auto& f : w.claimed) cs.free_list.push_back(std::move(f));
                w.claimed.clear();
                if (total_pending_ == 0 && in_flight_ == 0) drain_cv_.notify_all();
            }
        }
    }
};

// ------------------------------------------------------------- public API

DecodeService::DecodeService(ServiceConfig cfg) : cfg_(cfg) {
    DVBS2_REQUIRE(cfg.queue_capacity > 0,
                  "DecodeService: queue_capacity must be positive, got " +
                      std::to_string(cfg.queue_capacity));
    DVBS2_REQUIRE(cfg.max_linger.count() >= 0,
                  "DecodeService: max_linger must be non-negative, got " +
                      std::to_string(cfg.max_linger.count()) + "us");
    cfg_.workers = util::resolve_thread_count(cfg.workers);
    impl_ = std::make_unique<Impl>(cfg_);
    impl_->workers_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i) {
        auto w = std::make_unique<detail::Worker>();
        detail::Worker* raw = w.get();
        impl_->workers_.push_back(std::move(w));
        raw->th = std::thread([this, raw] { impl_->worker_main(*raw); });
    }
}

DecodeService::~DecodeService() { stop(); }

ClassId DecodeService::add_class(const code::Dvbs2Code& code, core::EngineSpec spec) {
    core::validate_engine_spec(spec);
    // Build one prototype engine now: an unregistered backend or a builder
    // failure surfaces here, on the registering thread, with its own
    // diagnostic — and the prototype tells us the class geometry.
    const auto proto = core::make_engine(code, spec);
    auto cs = std::make_unique<detail::ClassState>();
    cs->code = &code;
    cs->spec = spec;
    cs->n = proto->frame_length() > 0 ? proto->frame_length()
                                      : static_cast<std::size_t>(code.n());
    cs->preferred = static_cast<std::size_t>(std::max(1, proto->preferred_batch()));
    const std::lock_guard<std::mutex> lock(impl_->mu_);
    impl_->classes_.push_back(std::move(cs));
    return static_cast<ClassId>(impl_->classes_.size() - 1);
}

StreamId DecodeService::open_stream(ClassId cls, ResultFn on_result) {
    const std::lock_guard<std::mutex> lock(impl_->mu_);
    DVBS2_REQUIRE(cls < impl_->classes_.size(),
                  "open_stream: unknown class id " + std::to_string(cls) + " (have " +
                      std::to_string(impl_->classes_.size()) + " classes)");
    auto st = std::make_unique<detail::StreamState>();
    st->id = static_cast<StreamId>(impl_->streams_.size());
    st->cls = cls;
    st->fn = std::move(on_result);
    impl_->streams_.push_back(std::move(st));
    return impl_->streams_.back()->id;
}

SubmitStatus DecodeService::submit(StreamId stream, std::span<const double> llr) {
    Impl& im = *impl_;
    detail::StreamState* st = nullptr;
    detail::ClassState* cs = nullptr;
    {
        const std::lock_guard<std::mutex> lock(im.mu_);
        DVBS2_REQUIRE(stream < im.streams_.size(),
                      "submit: unknown stream id " + std::to_string(stream) + " (have " +
                          std::to_string(im.streams_.size()) + " streams)");
        st = im.streams_[static_cast<std::size_t>(stream)].get();
        cs = im.classes_[st->cls].get();
    }
    // Input validation happens here, on the producer, before admission: a
    // malformed frame is the caller's bug and must neither occupy queue
    // space nor surface as a throw on a worker thread.
    DVBS2_REQUIRE(llr.size() == cs->n,
                  "submit: frame for stream " + std::to_string(stream) + " has " +
                      std::to_string(llr.size()) + " LLRs but its class decodes N=" +
                      std::to_string(cs->n) + " (expected span size == N)");
    for (std::size_t i = 0; i < llr.size(); ++i)
        DVBS2_REQUIRE(std::isfinite(llr[i]),
                      "submit: non-finite channel LLR at index " + std::to_string(i) +
                          " for stream " + std::to_string(stream));
    std::unique_ptr<detail::Frame> buf;
    {
        std::unique_lock<std::mutex> lock(im.mu_);
        ++im.submitted_;
        if (im.closed_) return SubmitStatus::Closed;
        if (im.total_pending_ >= im.cfg.queue_capacity) {
            if (im.cfg.admission == Admission::Reject) {
                ++im.dropped_;
                return SubmitStatus::Rejected;
            }
            im.space_cv_.wait(lock, [&im] {
                return im.closed_ || im.total_pending_ < im.cfg.queue_capacity;
            });
            if (im.closed_) return SubmitStatus::Closed;
        }
        // Reserve the slot while the copy happens outside the lock: drain()
        // and the workers see the frame as pending from this point on.
        ++im.total_pending_;
        im.peak_depth_ = std::max<std::uint64_t>(im.peak_depth_, im.total_pending_);
        ++im.enqueued_;
        if (!cs->free_list.empty()) {
            buf = std::move(cs->free_list.back());
            cs->free_list.pop_back();
        }
    }
    try {
        if (!buf) {
            buf = std::make_unique<detail::Frame>();
            buf->llr.resize(cs->n);
        }
    } catch (...) {
        // Release the reserved slot: the frame never existed.
        const std::lock_guard<std::mutex> lock(im.mu_);
        --im.total_pending_;
        --im.enqueued_;
        im.space_cv_.notify_all();
        throw;
    }
    std::memcpy(buf->llr.data(), llr.data(), cs->n * sizeof(double));
    buf->stream = stream;
    // The sequence number is only consumed for ACCEPTED frames — a rejected
    // frame leaves no gap, so delivery never stalls waiting for it.
    buf->seq = st->next_seq.fetch_add(1, std::memory_order_relaxed);
    buf->enqueued_at = Clock::now();
    {
        const std::lock_guard<std::mutex> lock(im.mu_);
        cs->pending.push_back(std::move(buf));
    }
    im.work_cv_.notify_one();
    return SubmitStatus::Accepted;
}

void DecodeService::drain() {
    Impl& im = *impl_;
    std::unique_lock<std::mutex> lock(im.mu_);
    im.drain_cv_.wait(lock, [&im] { return im.total_pending_ == 0 && im.in_flight_ == 0; });
}

void DecodeService::stop() {
    Impl& im = *impl_;
    {
        const std::lock_guard<std::mutex> lock(im.join_mu_);
        if (im.joined_) return;
        im.joined_ = true;
    }
    {
        const std::lock_guard<std::mutex> lock(im.mu_);
        im.closed_ = true;
        im.stopping_ = true;
    }
    im.work_cv_.notify_all();
    im.space_cv_.notify_all();
    for (auto& w : im.workers_)
        if (w->th.joinable()) w->th.join();
}

ServiceMetrics DecodeService::metrics() const {
    const Impl& im = *impl_;
    ServiceMetrics m;
    std::vector<detail::StreamState*> streams;
    {
        const std::lock_guard<std::mutex> lock(im.mu_);
        m.submitted = im.submitted_;
        m.enqueued = im.enqueued_;
        m.dropped = im.dropped_;
        m.queue_depth = im.total_pending_;
        m.peak_queue_depth = im.peak_depth_;
        streams.reserve(im.streams_.size());
        for (const auto& st : im.streams_) streams.push_back(st.get());
    }
    {
        const std::lock_guard<std::mutex> lock(im.metrics_mu_);
        m.decoded = im.decoded_;
        m.decode_failures = im.decode_failures_;
        m.batches = im.batches_;
        m.batch_frames = im.batch_frames_;
        m.batch_slots = im.batch_slots_;
        m.full_batches = im.full_batches_;
        m.linger_batches = im.linger_batches_;
        m.batch_fill_deciles = im.fill_deciles_;
        m.latency = im.latency_;
    }
    for (detail::StreamState* st : streams) {
        const std::lock_guard<std::mutex> lock(st->mu);
        m.ordering_violations += st->ordering_violations;
    }
    for (const auto& w : im.workers_) {
        const std::lock_guard<std::mutex> lock(w->engines_mu);
        for (const auto& [cls, wc] : w->per_class)
            if (wc.engine) m.convergence.merge(wc.engine->convergence_snapshot());
    }
    return m;
}

LatencySummary DecodeService::stream_latency(StreamId stream) const {
    const Impl& im = *impl_;
    detail::StreamState* st = nullptr;
    {
        const std::lock_guard<std::mutex> lock(im.mu_);
        DVBS2_REQUIRE(stream < im.streams_.size(),
                      "stream_latency: unknown stream id " + std::to_string(stream));
        st = im.streams_[static_cast<std::size_t>(stream)].get();
    }
    const std::lock_guard<std::mutex> lock(st->mu);
    LatencySummary s;
    s.frames = st->latency.total;
    s.p50_s = st->latency.percentile(0.50);
    s.p90_s = st->latency.percentile(0.90);
    s.p99_s = st->latency.percentile(0.99);
    return s;
}

int DecodeService::class_preferred_batch(ClassId cls) const {
    const std::lock_guard<std::mutex> lock(impl_->mu_);
    DVBS2_REQUIRE(cls < impl_->classes_.size(),
                  "class_preferred_batch: unknown class id " + std::to_string(cls));
    return static_cast<int>(impl_->classes_[cls]->preferred);
}

std::size_t DecodeService::class_frame_length(ClassId cls) const {
    const std::lock_guard<std::mutex> lock(impl_->mu_);
    DVBS2_REQUIRE(cls < impl_->classes_.size(),
                  "class_frame_length: unknown class id " + std::to_string(cls));
    return impl_->classes_[cls]->n;
}

}  // namespace dvbs2::service
