// Streaming decode service: sharded, batched, backpressured.
//
// The paper's IP core is a streaming device — frames arrive continuously
// and the decoder must sustain rate under mixed traffic. This subsystem is
// the software serving layer over the engine registry (core/engine.hpp),
// emulating in one process the shard/aggregate topology of the distributed
// MPI-LDPC decoder in PAPERS.md (Gokalgandhi & Seskar): a bounded MPSC
// frame queue plays the dispatcher rank, per-worker engine instances are
// the decode shards, and per-stream in-order delivery is the aggregation
// step. Pipeline:
//
//   producers ──submit()──▶ bounded queue (admission control: Reject/Block)
//                               │ per-class FIFOs
//                               ▼
//                      batch scheduler (work-claiming, runs on the workers
//                      themselves): coalesces same-class frames into full
//                      Engine::preferred_batch() lane blocks; a max-linger
//                      deadline flushes partial blocks so sparse streams
//                      never starve
//                               │
//                               ▼
//           N shard workers, one registry engine per (worker, class) —
//           engines are never shared across threads (single-writer
//           contract, core/engine.hpp)
//                               │
//                               ▼
//           per-stream reorder buffer → result callbacks strictly in
//           submission order; latency/fill/convergence metrics aggregated
//           via Engine::convergence_snapshot()
//
// A "class" is one (code, EngineSpec) combination — i.e. (rate, quant,
// algorithm, schedule, backend): only frames of the same class can share a
// SIMD lane block, so the class is the coalescing key, and two streams that
// differ only in decoding algorithm land in distinct classes (the SLA
// router in service/sla.hpp exploits exactly that). A "stream" is one
// tenant's ordered frame sequence within a class; thousands of streams may
// share a class.
//
// Memory is bounded by construction: admission control caps pending frames
// at ServiceConfig::queue_capacity, in-flight frames are capped at
// workers · preferred_batch, and every frame buffer is recycled through a
// per-class free list — steady-state traffic allocates only when a stream
// reorders (a held DecodeResult copy) or a histogram grows once.
//
// Callback rules: result callbacks run on worker threads under the stream's
// delivery lock. They may call submit() (e.g. to feed a decode pipeline),
// but with Admission::Block a callback that blocks on a full queue can
// stall its worker — use Admission::Reject (or dimension the queue) for
// feedback traffic. Callbacks must not call drain(), stop() or block on
// other streams' results.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>

#include "code/tanner.hpp"
#include "core/engine.hpp"
#include "service/metrics.hpp"

namespace dvbs2::service {

/// What submit() does when the queue is at capacity.
enum class Admission {
    Reject,  ///< drop the frame, count it, return SubmitStatus::Rejected
    Block,   ///< backpressure: block the producer until space frees up
};

struct ServiceConfig {
    /// Decode shard workers; 0 = util::resolve_thread_count (DVBS2_THREADS
    /// env var, else hardware concurrency).
    unsigned workers = 0;
    /// Bound on frames pending in the queue (admission control kicks in
    /// beyond it). Total outstanding frames are bounded by
    /// queue_capacity + workers · preferred_batch.
    std::size_t queue_capacity = 1024;
    /// How long a partial batch may wait for same-class frames before it is
    /// flushed to a worker anyway. Trades a little batch fill for bounded
    /// latency on sparse streams.
    std::chrono::microseconds max_linger{5000};
    Admission admission = Admission::Reject;
};

using ClassId = std::uint32_t;
using StreamId = std::uint64_t;

enum class SubmitStatus {
    Accepted,  ///< frame queued; the stream's callback will see it exactly once
    Rejected,  ///< admission control dropped it (queue full, Admission::Reject)
    Closed,    ///< service is stopping; no new frames are accepted
};

/// One delivered result. `result` is only valid during the callback (the
/// underlying storage is recycled); copy what you need.
struct StreamResult {
    StreamId stream = 0;
    std::uint64_t seq = 0;  ///< 0-based submission index within the stream
    const core::DecodeResult& result;
    double latency_s = 0.0;  ///< submit() → this callback
};

/// Per-stream result callback; invoked on worker threads, strictly in `seq`
/// order per stream (see header comment for re-entrancy rules).
using ResultFn = std::function<void(const StreamResult&)>;

class DecodeService {
public:
    /// Starts the worker threads immediately. Throws on a zero queue
    /// capacity or a negative linger.
    explicit DecodeService(ServiceConfig cfg);

    /// stop(): drains everything accepted, then joins the workers.
    ~DecodeService();

    DecodeService(const DecodeService&) = delete;
    DecodeService& operator=(const DecodeService&) = delete;

    /// Registers a decode class — one (code, engine-spec) combination. The
    /// spec is validated here (core::validate_engine_spec) and a prototype
    /// engine is built once to capture frame length and preferred batch, so
    /// an illegal spec fails at registration, not on a worker. The code must
    /// outlive the service. Thread-safe.
    ClassId add_class(const code::Dvbs2Code& code, core::EngineSpec spec);

    /// Opens a stream in `cls`. `on_result` receives every accepted frame's
    /// result exactly once, in submission order. Thread-safe.
    StreamId open_stream(ClassId cls, ResultFn on_result);

    /// Submits one frame of channel LLRs (size must be the class's N; every
    /// value must be finite — malformed input is rejected here, on the
    /// producer, so workers never see it). Copies the span. Thread-safe
    /// (MPSC: any number of producers). Returns Rejected/Closed per
    /// admission policy instead of ever growing the queue unboundedly.
    SubmitStatus submit(StreamId stream, std::span<const double> llr);

    /// Blocks until every frame accepted so far has been delivered. New
    /// frames submitted while draining extend the wait.
    void drain();

    /// Closes intake (submit returns Closed), decodes everything already
    /// accepted, delivers it, and joins the workers. Idempotent.
    void stop();

    /// Coherent snapshot of all counters/histograms; safe to call from any
    /// thread at any time (the metrics poller path — engine telemetry is
    /// gathered with core::Engine::convergence_snapshot()).
    ServiceMetrics metrics() const;

    /// Latency percentiles of one stream.
    LatencySummary stream_latency(StreamId stream) const;

    /// preferred_batch() of the class's engines (the coalescing target).
    int class_preferred_batch(ClassId cls) const;
    /// Channel frame length N of the class.
    std::size_t class_frame_length(ClassId cls) const;

    const ServiceConfig& config() const noexcept { return cfg_; }

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    ServiceConfig cfg_;
};

}  // namespace dvbs2::service
