#include "service/sla.hpp"

#include <cmath>
#include <limits>

#include "analysis/ir/analyses.hpp"

namespace dvbs2::service {

std::optional<core::Algorithm> select_algorithm(std::span<const FrontierRow> frontier,
                                                double snr_db, const SlaTarget& sla) {
    // Nearest measured SNR on the frontier grid.
    double best_gap = std::numeric_limits<double>::infinity();
    for (const FrontierRow& row : frontier)
        best_gap = std::min(best_gap, std::abs(row.snr_db - snr_db));
    if (!std::isfinite(best_gap)) return std::nullopt;

    // Cheapest adequate at that SNR: highest decoded throughput among the
    // rows meeting both SLA bounds.
    std::optional<core::Algorithm> pick;
    double pick_mbps = -1.0;
    for (const FrontierRow& row : frontier) {
        if (std::abs(row.snr_db - snr_db) > best_gap + 1e-9) continue;
        if (row.ber > sla.max_ber || row.mbps < sla.min_mbps) continue;
        if (row.mbps > pick_mbps) {
            pick_mbps = row.mbps;
            pick = row.algorithm;
        }
    }
    return pick;
}

core::EngineSpec spec_for(core::Algorithm algorithm, core::EngineSpec base) {
    base.config.algorithm = algorithm;
    const analysis::ir::AlgorithmClass& alg = analysis::ir::classify_algorithm(algorithm);
    if (!alg.supports(base.config.schedule)) {
        for (int s = 0; s < analysis::ir::kScheduleCount; ++s) {
            if (alg.schedule_supported[static_cast<std::size_t>(s)]) {
                base.config.schedule = static_cast<core::Schedule>(s);
                break;
            }
        }
    }
    if (!alg.simd_supported && base.config.backend == core::DecoderBackend::Simd)
        base.config.backend = core::DecoderBackend::Scalar;
    // Fall back to the registered arithmetic when the derived key is not in
    // the registry (RHS-BP is float-only: its trackers are the analog half).
    if (!core::engine_registered(core::engine_key(
            core::EngineSpec{base.arith, base.config, base.quant})))
        base.arith = core::Arithmetic::Float;
    return base;
}

}  // namespace dvbs2::service
