// SLA-driven algorithm selection over a measured decode frontier.
//
// bench/bench_frontier.cpp measures, per (algorithm, Eb/N0) point, the
// post-decode BER, the decoded information throughput and the mean
// iteration count, and emits the rows as BENCH_frontier.json. This module
// is the consumer of that frontier: given a stream's SLA (a BER ceiling
// and a throughput floor) and its operating SNR, it picks the cheapest
// adequate algorithm — the engine registry's Algorithm axis is what makes
// the choice actionable, because the service keys scheduler classes by the
// full EngineSpec, so two streams routed to different algorithms coalesce
// into different classes and never share a lane block (see service.hpp and
// tests/test_service.cpp).
//
// "Cheapest adequate" means: among the frontier rows at the operating SNR
// that meet BOTH SLA bounds, the one with the highest decoded throughput —
// the WBF tier's iterations are an order of magnitude cheaper than a
// message-passing iteration, so when it is adequate it wins; when its BER
// collapses (low SNR, beyond flipping range) it fails the ceiling and the
// selection falls back to the BP tiers.
#pragma once

#include <optional>
#include <span>

#include "core/engine.hpp"

namespace dvbs2::service {

/// One measured frontier point (a row of BENCH_frontier.json).
struct FrontierRow {
    core::Algorithm algorithm = core::Algorithm::MinSum;
    double snr_db = 0.0;          ///< Eb/N0 the row was measured at
    double ber = 0.0;             ///< post-decode information-bit error rate
    double mbps = 0.0;            ///< decoded information Mbit/s (wall clock)
    double mean_iterations = 0.0; ///< mean iterations per frame
};

/// A stream's service-level agreement.
struct SlaTarget {
    double max_ber = 1.0;    ///< acceptable post-decode BER (1 = don't care)
    double min_mbps = 0.0;   ///< required decoded throughput (0 = don't care)
};

/// Picks the cheapest adequate algorithm for `sla` from the frontier rows
/// measured nearest to `snr_db` (rows farther than any other measured SNR
/// are ignored, so interpolation is "nearest point", matching how the bench
/// samples the 2-4 dB range on a grid). Returns std::nullopt when no
/// algorithm meets both bounds at that SNR.
std::optional<core::Algorithm> select_algorithm(std::span<const FrontierRow> frontier,
                                                double snr_db, const SlaTarget& sla);

/// Engine spec for running `algorithm`, derived from `base`: sets the
/// algorithm, downgrades the backend/schedule/arithmetic to ones the
/// algorithm's derived classification (analysis::ir::classify_algorithm)
/// and the registry support — e.g. WBF gets two-phase flooding, RHS-BP
/// gets float arithmetic. The result passes validate_engine_spec and names
/// a registered engine, so Service::add_class accepts it directly.
core::EngineSpec spec_for(core::Algorithm algorithm, core::EngineSpec base);

}  // namespace dvbs2::service
