#include "service/traffic.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/modem.hpp"
#include "enc/encoder.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace dvbs2::service {

namespace {

/// Per-stream callback state. Everything is written under the stream's
/// delivery lock (callbacks are serialized per stream), read after drain.
struct StreamProbe {
    std::uint64_t expected_seq = 0;
    std::uint64_t delivered = 0;
    std::uint64_t converged = 0;
    std::uint64_t ordering_violations = 0;
    std::uint64_t bit_tally = 0;
};

std::vector<std::vector<double>> make_templates(const TrafficClass& tc, std::size_t count,
                                                std::uint64_t seed, std::size_t class_index) {
    const dvbs2::enc::Encoder encoder(*tc.code);
    const double rate = static_cast<double>(tc.code->k()) / static_cast<double>(tc.code->n());
    const double sigma = dvbs2::comm::noise_sigma(tc.ebn0_db, rate, dvbs2::comm::Modulation::Bpsk);
    std::vector<std::vector<double>> templates;
    templates.reserve(count);
    for (std::size_t t = 0; t < count; ++t) {
        // One derived stream per (class, template, role): frames are
        // reproducible independently of generation order.
        const auto info = dvbs2::enc::random_info_bits(
            tc.code->k(), dvbs2::util::derive_stream(seed, class_index, t, 0));
        dvbs2::comm::AwgnModem modem(dvbs2::comm::Modulation::Bpsk,
                                     dvbs2::util::derive_stream(seed, class_index, t, 1));
        templates.push_back(modem.transmit(encoder.encode(info), sigma));
    }
    return templates;
}

}  // namespace

TrafficReport run_traffic(DecodeService& svc, const std::vector<TrafficClass>& classes,
                          const TrafficOptions& opt) {
    DVBS2_REQUIRE(!classes.empty(), "run_traffic: need at least one traffic class");
    DVBS2_REQUIRE(opt.streams > 0, "run_traffic: need at least one stream");
    DVBS2_REQUIRE(opt.templates_per_class > 0, "run_traffic: need at least one template");

    // Pre-generate the channel realizations once; producers only memcpy.
    std::vector<std::vector<std::vector<double>>> templates;
    templates.reserve(classes.size());
    for (std::size_t c = 0; c < classes.size(); ++c)
        templates.push_back(make_templates(classes[c], opt.templates_per_class, opt.seed, c));

    // Open the streams: stream s runs class s mod #classes.
    std::vector<std::unique_ptr<StreamProbe>> probes(opt.streams);
    std::vector<StreamId> ids(opt.streams);
    std::vector<std::size_t> stream_class(opt.streams);
    for (std::size_t s = 0; s < opt.streams; ++s) {
        probes[s] = std::make_unique<StreamProbe>();
        stream_class[s] = s % classes.size();
        StreamProbe* probe = probes[s].get();
        ids[s] = svc.open_stream(classes[stream_class[s]].cls, [probe](const StreamResult& r) {
            if (r.seq != probe->expected_seq)
                ++probe->ordering_violations;
            else
                ++probe->expected_seq;
            ++probe->delivered;
            if (r.result.converged) ++probe->converged;
            probe->bit_tally += r.result.codeword.count();
        });
    }

    // Drive: producer p owns streams p, p+P, p+2P, ... — each stream is fed
    // by exactly one thread, so its submission order is deterministic.
    std::atomic<std::uint64_t> submitted{0}, accepted{0}, rejected{0}, closed{0};
    const unsigned producers = std::max(1u, opt.producers);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (std::size_t round = 0; round < opt.frames_per_stream; ++round) {
                for (std::size_t s = p; s < opt.streams; s += producers) {
                    const auto& pool = templates[stream_class[s]];
                    const auto& frame = pool[(s + round) % pool.size()];
                    submitted.fetch_add(1, std::memory_order_relaxed);
                    switch (svc.submit(ids[s], frame)) {
                        case SubmitStatus::Accepted:
                            accepted.fetch_add(1, std::memory_order_relaxed);
                            break;
                        case SubmitStatus::Rejected:
                            rejected.fetch_add(1, std::memory_order_relaxed);
                            break;
                        case SubmitStatus::Closed:
                            closed.fetch_add(1, std::memory_order_relaxed);
                            break;
                    }
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    svc.drain();
    const auto t1 = std::chrono::steady_clock::now();

    TrafficReport rep;
    rep.submitted = submitted.load();
    rep.accepted = accepted.load();
    rep.rejected = rejected.load();
    rep.closed = closed.load();
    rep.wall_s = std::chrono::duration<double>(t1 - t0).count();
    for (const auto& probe : probes) {
        rep.delivered += probe->delivered;
        rep.converged += probe->converged;
        rep.ordering_violations += probe->ordering_violations;
        rep.decoded_bit_tally += probe->bit_tally;
    }
    return rep;
}

}  // namespace dvbs2::service
