// Deterministic multi-stream traffic generator for the decode service.
//
// Shared by the service tests (tests/test_service.cpp), the soak bench
// (bench/bench_service.cpp) and the dvbs2_serve demo: it drives a
// DecodeService with many concurrent producer threads feeding many streams
// across mixed decode classes, and verifies service invariants on the
// callback side — per-stream delivery order, exactly-once delivery, and a
// decoded-bit tally that must be invariant across worker counts (the
// engine layer pins decode_batch bit-identical to per-frame decoding, so
// the service, which only re-batches, must not change a single bit).
//
// All randomness is seeded: each class pre-generates a small pool of
// template LLR frames (encode → AWGN at the class's Eb/N0 → demap) and
// streams cycle through them, so two runs with the same options submit
// byte-identical frames in the same per-stream order regardless of thread
// interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "service/service.hpp"

namespace dvbs2::service {

/// One decode class to exercise: an already-registered service class plus
/// the channel operating point used to synthesize its traffic.
struct TrafficClass {
    ClassId cls = 0;
    const code::Dvbs2Code* code = nullptr;  ///< same code the class was registered with
    double ebn0_db = 2.0;                   ///< channel operating point for templates
};

struct TrafficOptions {
    /// Total concurrent streams, assigned round-robin over the classes.
    std::size_t streams = 16;
    /// Frames each stream submits (in order).
    std::size_t frames_per_stream = 4;
    /// Producer threads; streams are partitioned round-robin across them, so
    /// any producer count preserves each stream's submission order.
    unsigned producers = 2;
    /// Template LLR frames pre-generated per class (streams cycle them).
    std::size_t templates_per_class = 4;
    std::uint64_t seed = 0x5eedULL;
};

/// Callback-side view of one run. `ordering_violations` counts frames whose
/// seq did not match the stream's own expected counter — an independent
/// check of the service's per-stream FIFO promise (the service also counts
/// internally; both must be zero). `decoded_bit_tally` is the sum of
/// codeword popcounts over every delivered frame: because submissions are
/// deterministic and decode_batch is bit-pinned, this tally is invariant
/// across worker counts whenever no frame was dropped.
struct TrafficReport {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t closed = 0;
    std::uint64_t delivered = 0;
    std::uint64_t converged = 0;
    std::uint64_t ordering_violations = 0;
    std::uint64_t decoded_bit_tally = 0;
    double wall_s = 0.0;  ///< submit start → drain complete
};

/// Opens `opt.streams` streams over the given classes, drives them from
/// `opt.producers` threads, drains the service, and returns the report.
/// The service must outlive the call; its admission policy decides whether
/// overload drops (Reject) or backpressures (Block).
TrafficReport run_traffic(DecodeService& svc, const std::vector<TrafficClass>& classes,
                          const TrafficOptions& opt);

}  // namespace dvbs2::service
