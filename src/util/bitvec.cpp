#include "util/bitvec.hpp"

#include <bit>

namespace dvbs2::util {

std::size_t BitVec::count() const noexcept {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
}

bool BitVec::none() const noexcept {
    for (auto w : words_)
        if (w != 0) return false;
    return true;
}

BitVec& BitVec::operator^=(const BitVec& other) {
    DVBS2_REQUIRE(size_ == other.size_, "BitVec XOR size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
    return *this;
}

std::size_t BitVec::hamming_distance(const BitVec& a, const BitVec& b) {
    DVBS2_REQUIRE(a.size_ == b.size_, "hamming_distance size mismatch");
    std::size_t d = 0;
    for (std::size_t i = 0; i < a.words_.size(); ++i)
        d += static_cast<std::size_t>(std::popcount(a.words_[i] ^ b.words_[i]));
    return d;
}

}  // namespace dvbs2::util
