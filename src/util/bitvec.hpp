// Packed bit vector used for codewords, syndromes and hard decisions.
//
// Dense 64-bit-word storage with O(n/64) XOR/popcount; indexing is bounds-
// checked in debug builds only. Semantics are value-like (regular type).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace dvbs2::util {

/// Fixed-size (after construction) vector of bits packed into 64-bit words.
class BitVec {
public:
    BitVec() = default;

    /// Creates `n` bits, all zero.
    explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    bool get(std::size_t i) const noexcept {
        DVBS2_ASSERT(i < size_);
        return (words_[i >> 6] >> (i & 63)) & 1u;
    }

    void set(std::size_t i, bool v) noexcept {
        DVBS2_ASSERT(i < size_);
        const std::uint64_t mask = std::uint64_t{1} << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /// XOR-toggles bit i (the core operation of IRA accumulation).
    void flip(std::size_t i) noexcept {
        DVBS2_ASSERT(i < size_);
        words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
    }

    /// Sets all bits to zero, keeping the size.
    void clear() noexcept {
        for (auto& w : words_) w = 0;
    }

    /// Number of set bits.
    std::size_t count() const noexcept;

    /// True if every bit is zero (e.g. a satisfied syndrome).
    bool none() const noexcept;

    /// Element-wise XOR; both operands must have equal size.
    BitVec& operator^=(const BitVec& other);

    friend BitVec operator^(BitVec a, const BitVec& b) {
        a ^= b;
        return a;
    }

    friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
        return a.size_ == b.size_ && a.words_ == b.words_;
    }

    /// Number of positions where `a` and `b` differ (Hamming distance);
    /// sizes must match.
    static std::size_t hamming_distance(const BitVec& a, const BitVec& b);

private:
    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace dvbs2::util
