#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace dvbs2::util {

long long parse_int(const std::string& text, const std::string& what) {
    std::size_t pos = 0;
    long long v = 0;
    try {
        v = std::stoll(text, &pos);
    } catch (const std::exception&) {
        throw std::runtime_error(what + ": expected an integer, got \"" + text + "\"");
    }
    if (pos != text.size())
        throw std::runtime_error(what + ": trailing characters after number in \"" + text + "\"");
    return v;
}

double parse_double(const std::string& text, const std::string& what) {
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &pos);
    } catch (const std::exception&) {
        throw std::runtime_error(what + ": expected a number, got \"" + text + "\"");
    }
    if (pos != text.size())
        throw std::runtime_error(what + ": trailing characters after number in \"" + text + "\"");
    return v;
}

CliArgs::CliArgs(int argc, const char* const* argv, std::vector<std::string> allowed) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const auto eq = body.find('=');
        const std::string name = body.substr(0, eq);
        DVBS2_REQUIRE(std::find(allowed.begin(), allowed.end(), name) != allowed.end(),
                      "unknown option --" + name);
        values_[name] = (eq == std::string::npos) ? std::string{} : body.substr(eq + 1);
    }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

long long CliArgs::get_int(const std::string& name, long long def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : parse_int(it->second, "--" + name);
}

double CliArgs::get_double(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : parse_double(it->second, "--" + name);
}

}  // namespace dvbs2::util
