#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace dvbs2::util {

CliArgs::CliArgs(int argc, const char* const* argv, std::vector<std::string> allowed) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const auto eq = body.find('=');
        const std::string name = body.substr(0, eq);
        DVBS2_REQUIRE(std::find(allowed.begin(), allowed.end(), name) != allowed.end(),
                      "unknown option --" + name);
        values_[name] = (eq == std::string::npos) ? std::string{} : body.substr(eq + 1);
    }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

long long CliArgs::get_int(const std::string& name, long long def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::stod(it->second);
}

}  // namespace dvbs2::util
