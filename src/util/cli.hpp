// Minimal command-line option parser for the example and bench binaries.
//
// Supports --name=value and --flag forms. Unknown options raise an error so
// typos are caught instead of silently ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dvbs2::util {

/// Strict numeric parsing for user-supplied text (CLI flags, environment
/// variables). Unlike bare std::stoll/std::stod these reject empty input,
/// trailing garbage ("8x") and out-of-range values with a std::runtime_error
/// naming `what` (e.g. "--threads" or "DVBS2_THREADS") instead of letting an
/// uncaught std::invalid_argument abort the program.
long long parse_int(const std::string& text, const std::string& what);
double parse_double(const std::string& text, const std::string& what);

/// Parses `--key=value` / `--flag` arguments and serves typed lookups with
/// defaults. Positional arguments are collected in order.
class CliArgs {
public:
    /// Parses argv; `allowed` lists the option names (without "--") the
    /// program accepts. Throws std::runtime_error on an unknown option or a
    /// malformed argument.
    CliArgs(int argc, const char* const* argv, std::vector<std::string> allowed);

    /// True if --name was present (with or without a value).
    bool has(const std::string& name) const;

    /// Typed accessors with defaults.
    std::string get(const std::string& name, const std::string& def) const;
    long long get_int(const std::string& name, long long def) const;
    double get_double(const std::string& name, double def) const;

    const std::vector<std::string>& positional() const noexcept { return positional_; }

private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

}  // namespace dvbs2::util
