#include "util/csv.hpp"

namespace dvbs2::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
    DVBS2_REQUIRE(out_.good(), "cannot open CSV file: " + path);
}

std::string CsvWriter::escape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"') quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
    DVBS2_REQUIRE(out_.good(), "CSV write failed");
    ++rows_;
}

}  // namespace dvbs2::util
