// Minimal CSV writer for exporting sweep results (BER curves, thresholds)
// to plotting tools.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace dvbs2::util {

/// Row-oriented CSV writer. Quoting: fields containing comma/quote/newline
/// are double-quoted with internal quotes doubled (RFC 4180).
class CsvWriter {
public:
    /// Opens `path` for writing (truncates). Throws when the file cannot be
    /// created.
    explicit CsvWriter(const std::string& path);

    /// Writes one row; call with the header first.
    void write_row(const std::vector<std::string>& fields);

    /// Number of rows written so far (including the header).
    std::size_t rows_written() const noexcept { return rows_; }

private:
    static std::string escape(const std::string& field);

    std::ofstream out_;
    std::size_t rows_ = 0;
};

}  // namespace dvbs2::util
