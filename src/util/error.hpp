// Error-handling helpers shared by all dvbs2 libraries.
//
// Construction-time and API-contract violations throw std::invalid_argument /
// std::runtime_error with a message that includes the failing expression and
// source location. Hot inner loops use DVBS2_ASSERT, which compiles out in
// release builds (NDEBUG).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dvbs2 {

/// Builds the exception message for DVBS2_REQUIRE; kept out-of-line so the
/// macro expansion stays small at call sites.
[[noreturn]] inline void throw_requirement_failure(const char* expr, const char* file, int line,
                                                   const std::string& what) {
    std::ostringstream os;
    os << "requirement failed: " << expr << " at " << file << ':' << line;
    if (!what.empty()) os << " — " << what;
    throw std::runtime_error(os.str());
}

}  // namespace dvbs2

/// Always-on contract check: throws std::runtime_error when `expr` is false.
/// Use for API preconditions and construction invariants.
#define DVBS2_REQUIRE(expr, msg)                                                \
    do {                                                                        \
        if (!(expr)) ::dvbs2::throw_requirement_failure(#expr, __FILE__, __LINE__, (msg)); \
    } while (0)

/// Debug-only check for hot paths; compiled out under NDEBUG.
#ifdef NDEBUG
#define DVBS2_ASSERT(expr) ((void)0)
#else
#define DVBS2_ASSERT(expr)                                                      \
    do {                                                                        \
        if (!(expr)) ::dvbs2::throw_requirement_failure(#expr, __FILE__, __LINE__, "debug assert"); \
    } while (0)
#endif
