// Numeric helpers for message-passing decoding.
//
// The check-node update in the sum-product algorithm (paper Eq. 5) is
// expressed either through tanh/atanh or through the pairwise "boxplus"
// operator; both are provided here with the numerical guards (clamping near
// ±1, log-domain correction terms) a production decoder needs.
#pragma once

#include <algorithm>
#include <cmath>

namespace dvbs2::util {

/// Largest LLR magnitude the floating-point decoder works with. Keeps
/// tanh(x/2) away from ±1 so atanh stays finite.
inline constexpr double kLlrClamp = 30.0;

/// Clamps an LLR into [-kLlrClamp, kLlrClamp].
inline double clamp_llr(double x) noexcept { return std::clamp(x, -kLlrClamp, kLlrClamp); }

/// Exact pairwise boxplus: L(a ⊞ b) = 2 atanh(tanh(a/2) tanh(b/2)).
/// Implemented in the log domain for numerical robustness:
///   a ⊞ b = sign(a)sign(b) min(|a|,|b|) + log1p(e^-|a+b|) - log1p(e^-|a-b|).
inline double boxplus_exact(double a, double b) noexcept {
    const double s = (std::signbit(a) == std::signbit(b)) ? 1.0 : -1.0;
    const double m = s * std::min(std::fabs(a), std::fabs(b));
    const double corr = std::log1p(std::exp(-std::fabs(a + b))) -
                        std::log1p(std::exp(-std::fabs(a - b)));
    return clamp_llr(m + corr);
}

/// Min-sum approximation of boxplus (drops the correction terms).
inline double boxplus_minsum(double a, double b) noexcept {
    const double s = (std::signbit(a) == std::signbit(b)) ? 1.0 : -1.0;
    return s * std::min(std::fabs(a), std::fabs(b));
}

/// Jacobian logarithm max*(a,b) = log(e^a + e^b).
inline double jacobian_log(double a, double b) noexcept {
    const double mx = std::max(a, b);
    return mx + std::log1p(std::exp(-std::fabs(a - b)));
}

/// Q-function (tail of the standard normal), used by the capacity module and
/// by uncoded-BPSK reference curves.
inline double q_function(double x) noexcept { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// dB → linear power ratio.
inline double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }

/// Linear power ratio → dB.
inline double linear_to_db(double lin) noexcept { return 10.0 * std::log10(lin); }

}  // namespace dvbs2::util
