#include "util/prng.hpp"

#include <cmath>

namespace dvbs2::util {

std::uint64_t Xoshiro256pp::below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless method: multiply-high, reject the small
    // biased window at the bottom of each residue class.
    auto mul_high = [](std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * b) >> 64);
    };
    std::uint64_t x = (*this)();
    std::uint64_t m_lo = x * bound;
    if (m_lo < bound) {
        const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
        while (m_lo < threshold) {
            x = (*this)();
            m_lo = x * bound;
        }
    }
    return mul_high(x, bound);
}

double Xoshiro256pp::gaussian() noexcept {
    if (have_cached_) {
        have_cached_ = false;
        return cached_;
    }
    // Polar Box–Muller: two independent N(0,1) per accepted pair.
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    have_cached_ = true;
    return u * factor;
}

}  // namespace dvbs2::util
