// Deterministic pseudo-random number generation.
//
// All stochastic parts of the library (code construction, AWGN channel,
// simulated annealing) consume one of these engines so that every experiment
// is reproducible from a single 64-bit seed. SplitMix64 is used to expand
// seeds; xoshiro256++ is the main engine (fast, passes BigCrush).
#pragma once

#include <array>
#include <cstdint>

namespace dvbs2::util {

/// SplitMix64: tiny splittable generator, used for seed expansion and for
/// cheap deterministic per-index hashing (e.g. code-table construction).
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    /// Next 64 uniformly distributed bits.
    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Stateless hash of a 64-bit value with SplitMix64's finalizer; handy for
/// deriving independent streams from (seed, index) pairs.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Derives a decorrelated child seed from a parent seed and up to three
/// 64-bit lane indices. This is the library's canonical counter-based stream
/// scheme: every consumer of randomness owns a coordinate tuple (e.g. the
/// Monte-Carlo engine uses (point, frame, role)) and the sampled values are
/// a pure function of (seed, coordinates), independent of evaluation order
/// or thread scheduling. Each lane is offset by a distinct odd constant
/// before the SplitMix64 finalizer so that swapping values between lanes, or
/// truncating trailing zero lanes, changes the result.
constexpr std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                                      std::uint64_t c = 0) noexcept {
    std::uint64_t h = mix64(seed + 0x9e3779b97f4a7c15ULL);
    h = mix64(h ^ (a + 0xbf58476d1ce4e5b9ULL));
    h = mix64(h ^ (b + 0x94d049bb133111ebULL));
    h = mix64(h ^ (c + 0x2545f4914f6cdd1dULL));
    return h;
}

/// xoshiro256++ by Blackman & Vigna — the library's workhorse engine.
/// Satisfies the essentials of UniformRandomBitGenerator.
class Xoshiro256pp {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit words of state via SplitMix64 so that any seed,
    /// including 0, yields a well-mixed state.
    explicit constexpr Xoshiro256pp(std::uint64_t seed = 0x6a09e667f3bcc908ULL) noexcept {
        SplitMix64 sm(seed);
        for (auto& w : s_) w = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 random bits.
    constexpr double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method
    /// simplified: rejection on the multiply-high range).
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Standard normal variate (polar Box–Muller with caching).
    double gaussian() noexcept;

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> s_{};
    bool have_cached_ = false;
    double cached_ = 0.0;
};

}  // namespace dvbs2::util
