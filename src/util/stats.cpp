#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dvbs2::util {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

ProportionCI wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
    if (trials == 0) return {0.0, 1.0};
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace dvbs2::util
