// Lightweight statistics used by the Monte-Carlo BER harness and by the
// simulated-annealing optimizer: streaming mean/variance (Welford) and
// confidence intervals for binomial proportions (Wilson score).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dvbs2::util {

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x) noexcept;

    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance; 0 for fewer than two samples.
    double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
    double stddev() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Two-sided Wilson score interval for a binomial proportion.
struct ProportionCI {
    double lo;
    double hi;
};

/// Wilson score interval for `successes` out of `trials` at confidence level
/// given by z (1.96 ≈ 95%). Well-behaved for rare events (BER estimation).
ProportionCI wilson_interval(std::uint64_t successes, std::uint64_t trials, double z = 1.96);

}  // namespace dvbs2::util
