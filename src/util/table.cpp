#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace dvbs2::util {

void TextTable::set_header(std::vector<std::string> header) {
    DVBS2_REQUIRE(rows_.empty(), "set_header must precede add_row");
    header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
    DVBS2_REQUIRE(row.size() == header_.size(), "row arity must match header");
    rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int prec) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

std::string TextTable::num(long long v) { return std::to_string(v); }

void TextTable::print(std::ostream& os, const std::string& title) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c])) << row[c];
            os << (c + 1 == row.size() ? " |\n" : " | ");
        }
    };

    if (!title.empty()) os << title << '\n';
    print_row(header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << (c + 1 == header_.size() ? "|\n" : "+");
    }
    for (const auto& row : rows_) print_row(row);
}

}  // namespace dvbs2::util
