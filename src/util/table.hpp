// Console table formatter: the bench binaries use this to print rows that
// mirror the paper's tables (fixed-width, right-aligned numerics).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dvbs2::util {

/// Accumulates rows of strings and renders them with per-column widths,
/// a header separator and an optional title. No ownership of the stream.
class TextTable {
public:
    /// Sets the column headers; must be called before adding rows.
    void set_header(std::vector<std::string> header);

    /// Appends a data row; its arity must match the header's.
    void add_row(std::vector<std::string> row);

    /// Formats a double with `prec` digits after the decimal point.
    static std::string num(double v, int prec = 2);

    /// Formats an integer with no decoration.
    static std::string num(long long v);

    /// Renders the table. `title`, when non-empty, is printed above.
    void print(std::ostream& os, const std::string& title = "") const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace dvbs2::util
