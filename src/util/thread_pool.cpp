#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "util/cli.hpp"
#include "util/error.hpp"

namespace dvbs2::util {

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
    std::packaged_task<void()> task(std::move(job));
    std::future<void> fut = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Once the destructor has begun (stopping_), workers exit as soon as
        // the queue they observe is empty — a job enqueued now may never be
        // drained, and its future would never become ready. Refuse loudly
        // instead of accepting work into the void (regression-tested in
        // tests/test_thread_pool.cpp).
        if (stopping_)
            throw std::runtime_error(
                "ThreadPool::submit on a stopping pool (destructor has begun): the job would "
                "be enqueued after the workers' shutdown drain and never run");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return fut;
}

void ThreadPool::run_workers(unsigned n, const std::function<void(unsigned)>& job) {
    std::vector<std::future<void>> futs;
    futs.reserve(n);
    for (unsigned i = 0; i < n; ++i) futs.push_back(submit([&job, i] { job(i); }));
    // Wait for everything before rethrowing so no instance outlives the call.
    std::exception_ptr first;
    for (auto& f : futs) {
        try {
            f.get();
        } catch (...) {
            if (!first) first = std::current_exception();
        }
    }
    if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            // Drain the queue even when stopping: jobs accepted before the
            // destructor ran are completed, not abandoned.
            if (queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();  // exceptions are captured by the packaged_task
    }
}

unsigned resolve_thread_count(unsigned requested) {
    if (requested > 0) return requested;
    if (const char* env = std::getenv("DVBS2_THREADS")) {
        // Only the truly empty value counts as unset; anything else must be
        // a valid positive integer. Malformed input used to fall back
        // silently to hardware_concurrency, hiding typos like
        // DVBS2_THREADS=8x. Whitespace-only values ("  ") are malformed too,
        // not unset — stoll would happen to reject them as "no conversion",
        // but the contract is pinned here explicitly (with its own
        // diagnostic) rather than leaning on parse_int internals
        // (tests/test_thread_pool.cpp).
        const std::string text(env);
        if (!text.empty()) {
            DVBS2_REQUIRE(text.find_first_not_of(" \t\n\r\f\v") != std::string::npos,
                          "DVBS2_THREADS is whitespace-only (\"" + text +
                              "\"); unset it or export DVBS2_THREADS= (empty) to fall back to "
                              "hardware concurrency");
            const long long v = parse_int(text, "DVBS2_THREADS");
            DVBS2_REQUIRE(v > 0 && v <= 4096,
                          "DVBS2_THREADS must be in [1, 4096], got \"" + text + "\"");
            return static_cast<unsigned>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

}  // namespace dvbs2::util
