// Small fixed-size worker pool.
//
// Built for the frame-parallel Monte-Carlo engine (comm/parallel) but
// generic: jobs are plain callables, exceptions propagate through the
// returned futures, and the pool is reusable across submission waves (a
// BER sweep reuses one pool for every Eb/N0 point). The pool makes no
// fairness or ordering promises beyond FIFO dispatch; deterministic callers
// must derive their results from logical indices (see util/prng
// derive_stream), never from scheduling order.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dvbs2::util {

class ThreadPool {
public:
    /// Spawns `threads` workers (at least 1).
    explicit ThreadPool(unsigned threads);

    /// Blocks until all queued and running jobs finish, then joins.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

    /// Enqueues `job`; the future delivers the job's exception, if any.
    /// Throws std::runtime_error if the pool's destructor has already begun
    /// (the job could never run — workers only drain jobs accepted before
    /// shutdown started).
    std::future<void> submit(std::function<void()> job);

    /// Runs `job(worker_index)` for worker_index in [0, n) and blocks until
    /// every instance returns. The first exception (lowest index) is
    /// rethrown after all instances have finished. `n` may exceed size();
    /// excess instances queue behind the others.
    void run_workers(unsigned n, const std::function<void(unsigned)>& job);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Simulation worker-thread count: `requested` if nonzero, else the
/// DVBS2_THREADS environment variable if set (non-empty), else
/// std::thread::hardware_concurrency() (at least 1). Throws
/// std::runtime_error when DVBS2_THREADS is set but is not a valid integer
/// in [1, 4096] — a typo must not silently change the worker count. Only
/// the truly empty string counts as unset; a whitespace-only value is
/// malformed like any other non-numeric text and throws.
unsigned resolve_thread_count(unsigned requested);

}  // namespace dvbs2::util
