// Tests of the per-event fixed-point range certification (src/analysis/ir/
// absint + src/analysis/lint_range_ir + core::engine_range_certificate):
//
//   * acceptance — for every legal (schedule, algorithm) pair and both
//     registered quantizers the interpreter produces a certificate the
//     independent checker accepts, with no lint error;
//   * engine/lint alignment — the AbsintSpec the engine derives for a
//     registered fixed spec matches absint_spec_for field-for-field, and
//     validate_engine_spec rejects an overflowing quantizer naming the
//     first offending trace event;
//   * checker negatives — corrupting a certificate's stored-word claim or
//     a space bound is caught, and the rejection names the event;
//   * witness tier — the concretized adversarial channel drives the REAL
//     fixed decoder of each algorithm to the certified per-space peaks
//     bit-exactly (tight) and never beyond them (sound), with a
//     core::RangeProbe reading the pre-saturation accumulator peaks;
//   * legacy subsumption — over every long-frame rate and schedule the
//     min-sum verdict of the legacy range.* stage table and the range.ir.*
//     certifier agree (no config flips legality), and non-min-sum configs
//     are routed to the certifier via range.algorithm-scope instead of
//     being silently analyzed as min-sum;
//   * golden witness pins — the concretized witness recipes at the
//     canonical trace dims are digest-pinned for all fifteen
//     schedule x algorithm combinations (golden_range_witness_pins.inc).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/ir/absint.hpp"
#include "analysis/ir/analyses.hpp"
#include "analysis/lint_range.hpp"
#include "analysis/lint_range_ir.hpp"
#include "code/params.hpp"
#include "code/tanner.hpp"
#include "core/arith.hpp"
#include "core/engine.hpp"
#include "core/mp_decoder.hpp"
#include "core/rhs_decoder.hpp"
#include "core/wbf_decoder.hpp"
#include "quant/fixed.hpp"

namespace an = dvbs2::analysis;
namespace ir = dvbs2::analysis::ir;
namespace dc = dvbs2::code;
namespace dd = dvbs2::core;
namespace dq = dvbs2::quant;

namespace {

constexpr dd::Schedule kAllSchedules[] = {
    dd::Schedule::TwoPhase, dd::Schedule::ZigzagForward, dd::Schedule::ZigzagSegmented,
    dd::Schedule::ZigzagMap, dd::Schedule::Layered};
constexpr dd::Algorithm kAllAlgorithms[] = {dd::Algorithm::MinSum, dd::Algorithm::Wbf,
                                            dd::Algorithm::RhsBp};

const dc::Dvbs2Code& toy_code() {
    static const dc::Dvbs2Code code(dc::toy_params(12, 7, 2, 6, 3));
    return code;
}

/// Decoder config the certification tests pin: a min-sum-family rule that
/// needs no boxplus LUT, no early stop (the witness decodes must run their
/// full budget so the posteriors of the final iteration are inspectable).
dd::DecoderConfig cert_config(dd::Algorithm algorithm, dd::Schedule schedule) {
    dd::DecoderConfig cfg;
    cfg.algorithm = algorithm;
    cfg.schedule = schedule;
    cfg.rule = dd::CheckRule::NormalizedMinSum;
    cfg.max_iterations = 5;
    cfg.early_stop = false;
    return cfg;
}

const ir::StageBound& stage_of(const ir::RangeCertificate& cert, const std::string& name) {
    for (const ir::StageBound& s : cert.stages)
        if (s.stage == name) return s;
    static ir::StageBound missing;
    ADD_FAILURE() << "certificate has no stage \"" << name << "\"";
    return missing;
}

/// First information bit of maximal variable degree (the adversarial flip
/// position concretize_witness asks for).
long long max_degree_info_bit(const dc::Dvbs2Code& code) {
    const auto& cp = code.params();
    std::vector<int> deg(static_cast<std::size_t>(cp.n), 0);
    for (long long e = 0; e < cp.e_in(); ++e)
        ++deg[static_cast<std::size_t>(code.edge_variable(e))];
    for (int v = 0; v < cp.k; ++v)
        if (deg[static_cast<std::size_t>(v)] == cp.deg_hi) return v;
    return 0;
}

// ---- FNV-1a 64 digest of a witness recipe (pattern, magnitude, peaks,
// and the expanded LLR vector itself) ----

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xffu;
        h *= kFnvPrime;
    }
}

std::uint64_t witness_digest(const ir::RangeWitness& w, long long n, long long flip_index) {
    std::uint64_t h = kFnvOffset;
    fnv_u64(h, static_cast<std::uint64_t>(w.algorithm));
    fnv_u64(h, static_cast<std::uint64_t>(w.pattern));
    fnv_u64(h, static_cast<std::uint64_t>(std::llround(w.channel_magnitude * 16.0)));
    for (long long p : w.peaks) fnv_u64(h, static_cast<std::uint64_t>(p));
    for (double llr : ir::witness_llrs(w, n, flip_index))
        fnv_u64(h, static_cast<std::uint64_t>(std::llround(llr * 16.0)));
    return h;
}

struct WitnessPin {
    dd::Schedule schedule;
    dd::Algorithm algorithm;
    std::uint64_t digest;
};

/// Enum spellings for the paste-ready regeneration lines.
const char* schedule_token(dd::Schedule s) {
    switch (s) {
        case dd::Schedule::TwoPhase: return "dd::Schedule::TwoPhase";
        case dd::Schedule::ZigzagForward: return "dd::Schedule::ZigzagForward";
        case dd::Schedule::ZigzagSegmented: return "dd::Schedule::ZigzagSegmented";
        case dd::Schedule::ZigzagMap: return "dd::Schedule::ZigzagMap";
        case dd::Schedule::Layered: return "dd::Schedule::Layered";
    }
    return "?";
}
const char* algorithm_token(dd::Algorithm a) {
    switch (a) {
        case dd::Algorithm::MinSum: return "dd::Algorithm::MinSum";
        case dd::Algorithm::Wbf: return "dd::Algorithm::Wbf";
        case dd::Algorithm::RhsBp: return "dd::Algorithm::RhsBp";
    }
    return "?";
}

}  // namespace

// ----------------------------------------------------------------------
// Acceptance: every legal combination certifies, checker-accepted
// ----------------------------------------------------------------------

TEST(Absint, CertificatesAcceptedForAllLegalCombos) {
    const auto& cp = toy_code().params();
    for (dd::Schedule s : kAllSchedules) {
        for (dd::Algorithm a : kAllAlgorithms) {
            const bool legal = ir::classify_algorithm(a).supports(s);
            for (const dq::QuantSpec& q : {dq::kQuant6, dq::kQuant5}) {
                const dd::DecoderConfig cfg = cert_config(a, s);
                const an::RangeIrAnalysis res = an::analyze_range_ir(cp, cfg, q);
                const std::string ctx = std::string(dd::to_string(s)) + "/" + dd::to_string(a) +
                                        "/" + std::to_string(q.total_bits) + "bit";
                EXPECT_EQ(res.report.error_count(), 0u) << ctx;
                if (legal) {
                    ASSERT_TRUE(res.certificate.has_value()) << ctx;
                    EXPECT_TRUE(res.certificate->ok) << ctx;
                    EXPECT_TRUE(res.checker_ok) << ctx;
                    EXPECT_GE(res.certificate->fixpoint_rounds, 1) << ctx;
                } else {
                    // no datapath to certify: the family reports the
                    // schedule obstruction as a note and stops
                    EXPECT_FALSE(res.certificate.has_value()) << ctx;
                    bool noted = false;
                    for (const an::Diagnostic& d : res.report.diagnostics())
                        noted = noted || d.rule == "range.ir.schedule";
                    EXPECT_TRUE(noted) << ctx;
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Engine / lint alignment
// ----------------------------------------------------------------------

TEST(Absint, EngineCertificateMatchesLintSpecDerivation) {
    for (const dd::EngineKey& key : dd::registered_engines()) {
        if (key.arith != dd::Arithmetic::Fixed) continue;
        dd::EngineSpec spec;
        spec.arith = key.arith;
        spec.config = cert_config(key.algorithm, key.algorithm == dd::Algorithm::Wbf
                                                     ? dd::Schedule::TwoPhase
                                                     : dd::Schedule::ZigzagForward);
        spec.config.backend = key.backend;
        if (key.backend == dd::DecoderBackend::Simd)
            spec.config.schedule = dd::Schedule::TwoPhase;
        const ir::RangeCertificate cert = dd::engine_range_certificate(spec);
        const std::string ctx = dd::to_string(key);
        EXPECT_TRUE(cert.ok) << ctx;
        EXPECT_EQ(cert.algorithm, key.algorithm) << ctx;

        // both derivation paths must agree field-for-field, or lint
        // verdicts and engine-construction verdicts drift apart
        const ir::AbsintSpec lint = an::absint_spec_for(spec.config, spec.quant);
        EXPECT_EQ(cert.spec.algorithm, lint.algorithm) << ctx;
        EXPECT_EQ(cert.spec.rule, lint.rule) << ctx;
        EXPECT_EQ(cert.spec.max_raw, lint.max_raw) << ctx;
        EXPECT_EQ(cert.spec.channel_clamp, lint.channel_clamp) << ctx;
        EXPECT_EQ(cert.spec.corr_peak, lint.corr_peak) << ctx;
        EXPECT_EQ(cert.spec.wide_capacity, lint.wide_capacity) << ctx;
        EXPECT_EQ(cert.spec.norm_num, lint.norm_num) << ctx;
        EXPECT_EQ(cert.spec.offset_raw, lint.offset_raw) << ctx;
        EXPECT_DOUBLE_EQ(cert.spec.wbf_alpha, lint.wbf_alpha) << ctx;
        EXPECT_EQ(cert.spec.rhs_cmax_raw, lint.rhs_cmax_raw) << ctx;
    }
}

TEST(Absint, OverflowingQuantizersAreRejectedNamingTheOffender) {
    // A 30-bit quantizer makes the Eq. 4 accumulation exceed the 32-bit
    // wide word. On the engine path the quantizer legality gate fires
    // first (the engine's word formats stop at 16 bits, all of which
    // certify clean — see EngineCertificateMatchesLintSpecDerivation), so
    // the event-naming rejection is exercised through the lint family,
    // which certifies the full 2..31-bit format space.
    dd::EngineSpec spec;
    spec.arith = dd::Arithmetic::Fixed;
    spec.config = cert_config(dd::Algorithm::MinSum, dd::Schedule::TwoPhase);
    spec.quant.total_bits = 30;
    spec.quant.frac_bits = 2;
    try {
        dd::validate_engine_spec(spec);
        FAIL() << "expected the 30-bit quantizer to be rejected";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("total_bits"), std::string::npos) << e.what();
    }

    // the same spec through the lint family: the certificate proves the
    // overflow and the diagnostic quotes the first offending trace event
    const an::RangeIrAnalysis res =
        an::analyze_range_ir(toy_code().params(), spec.config, spec.quant);
    ASSERT_TRUE(res.certificate.has_value());
    EXPECT_FALSE(res.certificate->ok);
    EXPECT_TRUE(res.checker_ok);
    EXPECT_GE(res.certificate->first_offender, 0);
    EXPECT_FALSE(res.certificate->offender_stage.empty());
    bool overflow_reported = false;
    for (const an::Diagnostic& d : res.report.diagnostics())
        if (d.rule == "range.ir.overflow") {
            overflow_reported = true;
            EXPECT_NE(d.message.find("first at"), std::string::npos) << d.message;
        }
    EXPECT_TRUE(overflow_reported);
}

// ----------------------------------------------------------------------
// Checker negatives: corrupted certificates are caught, naming events
// ----------------------------------------------------------------------

TEST(Absint, CheckerRejectsCorruptedCertificates) {
    const ir::TraceDims dims = an::range_trace_dims(toy_code().params());
    for (dd::Algorithm a : kAllAlgorithms) {
        const dd::DecoderConfig cfg = cert_config(a, dd::Schedule::TwoPhase);
        const ir::AbsintSpec spec = an::absint_spec_for(cfg, dq::kQuant6);
        const ir::Trace trace = ir::build_schedule_trace(dd::Schedule::TwoPhase, dims);
        const ir::RangeCertificate good = ir::certify_ranges(trace, spec);
        ASSERT_TRUE(good.ok) << dd::to_string(a);
        ASSERT_TRUE(ir::check_range_certificate(trace, spec, good).ok) << dd::to_string(a);

        // lower the last Def claim: the final-block replay recomputes the
        // transfer and must see the claim fall below it
        ir::RangeCertificate bad = good;
        std::int64_t last_def = -1;
        for (std::size_t i = trace.events.size(); i-- > 0;)
            if (trace.events[i].access == ir::Access::Def && bad.event_bound[i] > 0) {
                last_def = static_cast<std::int64_t>(i);
                break;
            }
        ASSERT_GE(last_def, 0) << dd::to_string(a);
        bad.event_bound[static_cast<std::size_t>(last_def)] -= 1;
        const ir::RangeCheck chk = ir::check_range_certificate(trace, spec, bad);
        EXPECT_FALSE(chk.ok) << dd::to_string(a);
        ASSERT_TRUE(chk.rejection.has_value()) << dd::to_string(a);
        EXPECT_GE(chk.rejection->event, 0) << dd::to_string(a);

        // shrink a claimed space bound below its events: coverage check
        ir::RangeCertificate shrunk = good;
        for (long long& b : shrunk.space_bound)
            if (b > 0) {
                b -= 1;
                break;
            }
        EXPECT_FALSE(ir::check_range_certificate(trace, spec, shrunk).ok) << dd::to_string(a);
    }
}

// ----------------------------------------------------------------------
// Witness tier: the real decoders reach the proven peaks bit-exactly
// ----------------------------------------------------------------------

TEST(AbsintWitness, MinSumFixedDecoderReachesProvenPeaks) {
    const dc::Dvbs2Code& code = toy_code();
    const dd::DecoderConfig cfg = cert_config(dd::Algorithm::MinSum, dd::Schedule::TwoPhase);
    const dq::QuantSpec q = dq::kQuant6;
    const an::RangeIrAnalysis res = an::analyze_range_ir(code.params(), cfg, q);
    ASSERT_TRUE(res.certificate && res.certificate->ok && res.checker_ok);
    const ir::RangeCertificate& cert = *res.certificate;

    const ir::RangeWitness wit = ir::concretize_witness(an::absint_spec_for(cfg, q), cert);
    EXPECT_EQ(wit.pattern, ir::WitnessPattern::AllSaturate);
    const std::vector<double> llrs = ir::witness_llrs(wit, code.n(), -1);

    dd::MpDecoder<dd::FixedArith> dec(
        code, cfg, dd::FixedArith(cfg.rule, q, nullptr, cfg.normalization, cfg.offset));
    dd::RangeProbe probe;
    dec.arith().attach_probe(&probe);
    std::vector<dq::QLLR> ch(llrs.size());
    for (std::size_t i = 0; i < llrs.size(); ++i) ch[i] = dq::quantize(llrs[i], q);
    dd::DecodeResult out;
    dec.decode_into(ch, out);

    auto peak = [](const auto& v) {
        long long p = 0;
        for (auto x : v) p = std::max(p, static_cast<long long>(x < 0 ? -x : x));
        return p;
    };
    // tight: the adversarial channel drives every certified peak exactly
    EXPECT_EQ(peak(dec.posterior_in()), stage_of(cert, "vn-accumulate").worst);
    EXPECT_EQ(peak(dec.posterior_p()), stage_of(cert, "parity-posterior").worst);
    EXPECT_EQ(probe.wide_peak, stage_of(cert, "vn-extrinsic").worst);
    EXPECT_EQ(peak(dec.v2c_messages()),
              cert.space_bound[static_cast<std::size_t>(ir::Space::MsgWord)]);
    // sound: no observed word beyond the stored-word space bound
    EXPECT_LE(probe.word_peak, cert.space_bound[static_cast<std::size_t>(ir::Space::MsgWord)]);
    EXPECT_LE(peak(dec.c2v_messages()),
              cert.space_bound[static_cast<std::size_t>(ir::Space::MsgWord)]);
}

TEST(AbsintWitness, WbfFixedDecoderReachesProvenPeaks) {
    const dc::Dvbs2Code& code = toy_code();
    const dd::DecoderConfig cfg = cert_config(dd::Algorithm::Wbf, dd::Schedule::TwoPhase);
    const dq::QuantSpec q = dq::kQuant6;
    const an::RangeIrAnalysis res = an::analyze_range_ir(code.params(), cfg, q);
    ASSERT_TRUE(res.certificate && res.certificate->ok && res.checker_ok);
    const ir::RangeCertificate& cert = *res.certificate;

    const ir::RangeWitness wit = ir::concretize_witness(an::absint_spec_for(cfg, q), cert);
    EXPECT_EQ(wit.pattern, ir::WitnessPattern::SingleFlip);
    // one flipped max-degree bit keeps its checks unsatisfied so the flip
    // pass runs, while every reliability sits at the saturation bound
    const std::vector<double> llrs = ir::witness_llrs(wit, code.n(), max_degree_info_bit(code));

    dd::WbfDecoder<dq::QLLR> dec(code, cfg);
    std::vector<dq::QLLR> ch(llrs.size());
    for (std::size_t i = 0; i < llrs.size(); ++i) ch[i] = dq::quantize(llrs[i], q);
    dd::DecodeResult out;
    dec.decode_into(ch, out);
    ASSERT_GE(out.iterations, 1) << "witness must run at least one flip pass";

    auto peak = [](const auto& v) {
        long long p = 0;
        for (auto x : v) p = std::max(p, static_cast<long long>(x < 0 ? -x : x));
        return p;
    };
    // tight: reliabilities and stored check weights at the proven peak
    EXPECT_EQ(peak(dec.reliabilities()),
              cert.space_bound[static_cast<std::size_t>(ir::Space::MsgWord)]);
    EXPECT_EQ(peak(dec.check_weights_min1()), stage_of(cert, "wbf-weight").worst);
    // sound: the flip metric of every bit stays within the certified bound
    double metric_peak = 0.0;
    for (double m : dec.flip_metrics()) metric_peak = std::max(metric_peak, std::fabs(m));
    EXPECT_LE(metric_peak,
              static_cast<double>(stage_of(cert, "wbf-flip-metric").worst));
    EXPECT_GT(metric_peak, 0.0);
}

TEST(AbsintWitness, RhsBpDecoderReachesProvenPeaks) {
    const dc::Dvbs2Code& code = toy_code();
    dd::DecoderConfig cfg = cert_config(dd::Algorithm::RhsBp, dd::Schedule::TwoPhase);
    cfg.max_iterations = 6;
    cfg.rhs_beta = 0.999;  // witness note: trackers reach the 2*atanh clamp
    const dq::QuantSpec q = dq::kQuant6;
    const an::RangeIrAnalysis res = an::analyze_range_ir(code.params(), cfg, q);
    ASSERT_TRUE(res.certificate && res.certificate->ok && res.checker_ok);
    const ir::RangeCertificate& cert = *res.certificate;

    const ir::RangeWitness wit = ir::concretize_witness(an::absint_spec_for(cfg, q), cert);
    EXPECT_EQ(wit.pattern, ir::WitnessPattern::SingleFlip);
    const std::vector<double> llrs = ir::witness_llrs(wit, code.n(), code.n() - 1);

    dd::RhsBpDecoder dec(code, cfg);
    dd::DecodeResult out;
    dec.decode_into(llrs, out);

    auto raw_peak = [&](const std::vector<double>& v) {
        double p = 0.0;
        for (double x : v) p = std::max(p, std::fabs(x));
        return std::llround(p / q.step());
    };
    // tight: with beta near 1 the trackers saturate the 2*atanh clamp, so
    // a clean max-degree node's posterior hits channel + deg * cmax in raw
    // units exactly
    EXPECT_EQ(raw_peak(dec.posterior_in()), stage_of(cert, "vn-accumulate").worst);
    EXPECT_EQ(raw_peak(dec.posterior_p()), stage_of(cert, "parity-posterior").worst);
}

// ----------------------------------------------------------------------
// Legacy subsumption: no config flips legality against the stage table
// ----------------------------------------------------------------------

TEST(Absint, LegacyStageTableVerdictsAreSubsumed) {
    for (dc::CodeRate rate : dc::all_rates()) {
        const dc::CodeParams params = dc::standard_params(rate, dc::FrameSize::Long);
        for (dd::Schedule s : kAllSchedules) {
            // min-sum: both families run; the verdicts must agree for the
            // registered quantizers and for an overflowing one
            for (const dq::QuantSpec& q :
                 {dq::kQuant6, dq::kQuant5, dq::QuantSpec{30, 2}}) {
                const dd::DecoderConfig cfg = cert_config(dd::Algorithm::MinSum, s);
                const an::RangeAnalysis legacy = an::analyze_fixed_point_range(params, cfg, q);
                const an::RangeIrAnalysis cert = an::analyze_range_ir(params, cfg, q);
                const std::string ctx = params.name + "/" + dd::to_string(s) + "/" +
                                        std::to_string(q.total_bits) + "bit";
                bool legacy_overflow = false;
                for (const an::Diagnostic& d : legacy.report.diagnostics())
                    legacy_overflow =
                        legacy_overflow || d.rule == "range.accumulator-overflow";
                ASSERT_TRUE(cert.certificate.has_value()) << ctx;
                EXPECT_EQ(legacy_overflow, !cert.certificate->ok) << ctx;
                // verdict divergence would surface as a range.ir.legacy error
                for (const an::Diagnostic& d : cert.report.diagnostics())
                    if (d.rule == "range.ir.legacy") {
                        EXPECT_NE(d.severity, an::Severity::Error) << ctx << ": " << d.message;
                    }
            }
        }
    }
    // non-min-sum configs must NOT be analyzed by the min-sum stage table:
    // the legacy family defers via range.algorithm-scope (the documented
    // algorithm-blind false-clean class) and the certifier owns the verdict
    const dc::CodeParams params = dc::standard_params(dc::CodeRate::R1_2, dc::FrameSize::Long);
    for (dd::Algorithm a : {dd::Algorithm::Wbf, dd::Algorithm::RhsBp}) {
        const dd::DecoderConfig cfg =
            cert_config(a, a == dd::Algorithm::Wbf ? dd::Schedule::TwoPhase
                                                   : dd::Schedule::Layered);
        const an::RangeAnalysis legacy =
            an::analyze_fixed_point_range(params, cfg, dq::kQuant6);
        bool deferred = false;
        for (const an::Diagnostic& d : legacy.report.diagnostics())
            deferred = deferred || d.rule == "range.algorithm-scope";
        EXPECT_TRUE(deferred) << dd::to_string(a);
        EXPECT_TRUE(legacy.stages.empty()) << dd::to_string(a)
                                           << ": stage table must not model this algorithm";
    }
}

// ----------------------------------------------------------------------
// Golden witness pins (canonical trace dims, all 15 combos)
// ----------------------------------------------------------------------

TEST(Absint, GoldenWitnessRecipesArePinned) {
    static const WitnessPin kPins[] = {
#include "golden_range_witness_pins.inc"
    };
    const ir::TraceDims dims;  // canonical: P=4, q=3, kc=2, 3 iterations
    const long long n = dims.m() + dims.check_in_degree;  // enough slots to expand
    std::size_t checked = 0;
    for (const WitnessPin& pin : kPins) {
        dd::DecoderConfig cfg = cert_config(pin.algorithm, pin.schedule);
        const ir::AbsintSpec spec = an::absint_spec_for(cfg, dq::kQuant6);
        const ir::Trace trace = ir::build_schedule_trace(pin.schedule, dims);
        const ir::RangeCertificate cert = ir::certify_ranges(trace, spec);
        ASSERT_TRUE(cert.ok) << dd::to_string(pin.schedule) << "/" << dd::to_string(pin.algorithm);
        const ir::RangeWitness wit = ir::concretize_witness(spec, cert);
        const std::uint64_t actual = witness_digest(wit, n, 0);
        EXPECT_EQ(actual, pin.digest)
            << dd::to_string(pin.schedule) << "/" << dd::to_string(pin.algorithm)
            << " witness recipe changed; if intended, paste the printed actual pin";
        if (actual != pin.digest)
            std::printf("actual pin: {%s, %s, 0x%016llxULL},\n", schedule_token(pin.schedule),
                        algorithm_token(pin.algorithm),
                        static_cast<unsigned long long>(actual));
        ++checked;
    }
    EXPECT_EQ(checked, 15u) << "expected all five schedules x three algorithms pinned";
}
